//! SMX-1D ISA playground: assemble a small program, execute it on the
//! instruction-set simulator, and inspect the architectural effects —
//! the workflow of an ISA bring-up test.
//!
//! Run with: `cargo run -p smx --release --example isa_playground`

use smx::align::{dp, AlignmentConfig, ElementWidth};
use smx::diffenc::pack::PackedVec;
use smx::isa::asm;
use smx::isa::insn::rs2_operand;
use smx::isa::Machine;

fn main() -> Result<(), smx::align::AlignError> {
    let cfg = AlignmentConfig::DnaEdit;
    let program = "\
        # one DP column of the edit-model recurrence\n\
        smx.v    a2, a0, a1   # ΔV' of the column\n\
        smx.h    a3, a0, a1   # bottom Δh'\n\
        smx.redsum a4, a2     # Σ of the shifted deltas\n";

    println!("program:");
    let words = asm::assemble(program)?;
    for (w, line) in words.iter().zip(asm::disassemble_words(&words)?) {
        println!("  {w:08x}  {line}");
    }

    // Align an 8-char query column against one reference char.
    let query = [0u8, 1, 2, 3, 0, 1, 2, 3]; // ACGTACGT
    let r_char = 2u8; // G
    let mut m = Machine::new(cfg.element_width(), &cfg.scoring())?;
    m.unit_mut().set_query(&query)?;
    m.unit_mut().set_reference(&[r_char])?;
    m.set_reg(10, 0); // a0: fresh ΔV' inputs
    m.set_reg(11, rs2_operand(0, 0, query.len() as u8)); // a1
    m.run(&words)?;

    let dv = PackedVec::from_word(ElementWidth::W2, m.reg(12));
    println!();
    println!("query column : ACGTACGT vs reference 'G'");
    println!("ΔV' lanes    : {:?}", dv.to_lanes(query.len()));
    println!("bottom Δh'   : {}", m.reg(13));
    println!("redsum       : {}", m.reg(14));
    println!("instructions : {} SMX ops", m.unit_mut().counts().smx_total());

    // Cross-check the column against the golden DP: the first column of
    // the full matrix (j = 1), expressed as shifted deltas.
    let scheme = cfg.scoring();
    let golden = dp::full_matrix(&query, &[r_char], &scheme);
    let expect: Vec<u8> = (1..=query.len())
        .map(|i| (golden.get(i, 1) - golden.get(i - 1, 1) - scheme.gap_insert()) as u8)
        .collect();
    assert_eq!(dv.to_lanes(query.len()), expect);
    println!();
    println!("matches the golden Needleman-Wunsch column: yes");
    Ok(())
}
