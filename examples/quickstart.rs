//! Quickstart: align two DNA sequences on the functional SMX device and
//! estimate the speedup of the heterogeneous architecture over the SIMD
//! baseline.
//!
//! Run with: `cargo run -p smx --release --example quickstart`

use smx::prelude::*;

fn main() -> Result<(), smx::align::AlignError> {
    // --- Functional path: pack -> SMX-2D block -> SMX-1D traceback. ---
    let query = Sequence::from_text(Alphabet::Dna2, "GATTACAGATTACAGGGATTACA")?;
    let reference = Sequence::from_text(Alphabet::Dna2, "GATTACACATTACAGGATTACA")?;
    let mut device = SmxDevice::new(AlignmentConfig::DnaEdit, 4)?;
    let alignment = device.align(&query, &reference)?;
    println!("query:     {query}");
    println!("reference: {reference}");
    println!("alignment: {alignment}");
    println!();
    print!("{}", smx::align::pretty::render(&alignment.cigar, &query, &reference, 60)?);
    println!(
        "smx.pack instructions: {}, tiles recomputed in traceback: {}",
        device.insn_counts().smx_pack,
        device.recompute_stats().tiles
    );

    // --- Performance path: simulated cycles on different engines. ---
    let ds = Dataset::synthetic(
        AlignmentConfig::DnaEdit,
        1000,
        8,
        smx::datagen::ErrorProfile::moderate(),
        42,
    );
    let mut aligner = SmxAligner::new(AlignmentConfig::DnaEdit);
    aligner.algorithm(Algorithm::Full).score_only(true);
    let simd = aligner.engine(EngineKind::Simd).run_batch(&ds.pairs)?;
    let smx = aligner.engine(EngineKind::Smx).run_batch(&ds.pairs)?;
    println!();
    println!("1K x 1K DNA-edit score-only, batch of 8 (simulated at 1 GHz):");
    println!("  SIMD baseline : {:>10.3} GCUPS", simd.gcups());
    println!("  SMX           : {:>10.3} GCUPS", smx.gcups());
    println!("  speedup       : {:>10.1}x", simd.timing.cycles / smx.timing.cycles);
    Ok(())
}
