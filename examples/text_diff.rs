//! ASCII text diff: the information-retrieval / spell-checking use case
//! of the 8-bit configuration. Aligns two versions of a sentence under
//! the edit model and renders the operation-level diff from the CIGAR.
//!
//! Run with: `cargo run -p smx --release --example text_diff`

use smx::align::Op;
use smx::prelude::*;

fn main() -> Result<(), smx::align::AlignError> {
    let old_text = "the smx engine computes one tile per cycle";
    let new_text = "the smx-engine computes a full tile each cycle";
    let reference = Sequence::from_text(Alphabet::Ascii, old_text)?;
    let query = Sequence::from_text(Alphabet::Ascii, new_text)?;

    let mut device = SmxDevice::new(AlignmentConfig::Ascii, 4)?;
    let alignment = device.align(&query, &reference)?;
    println!("old: {old_text}");
    println!("new: {new_text}");
    println!("edit distance: {}", -alignment.score);
    println!("cigar: {}", alignment.cigar);

    // Render the diff: '-' deleted from old, '+' inserted by new.
    let (mut qi, mut rj) = (0usize, 0usize);
    let (qb, rb) = (new_text.as_bytes(), old_text.as_bytes());
    let mut rendered = String::new();
    for op in alignment.cigar.iter_ops() {
        match op {
            Op::Match => {
                rendered.push(qb[qi] as char);
                qi += 1;
                rj += 1;
            }
            Op::Mismatch => {
                rendered.push_str(&format!("{{{}->{}}}", rb[rj] as char, qb[qi] as char));
                qi += 1;
                rj += 1;
            }
            Op::Insert => {
                rendered.push_str(&format!("{{+{}}}", qb[qi] as char));
                qi += 1;
            }
            Op::Delete => {
                rendered.push_str(&format!("{{-{}}}", rb[rj] as char));
                rj += 1;
            }
        }
    }
    println!("diff: {rendered}");
    Ok(())
}
