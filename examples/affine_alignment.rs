//! Gap-affine alignment on the SMX-A engine extension: align a read with
//! a long deletion under Minimap2's affine penalties, showing the
//! consolidated gap the linear model cannot express, and the area cost of
//! the affine engine.
//!
//! Run with: `cargo run -p smx --release --example affine_alignment`

use smx::align::dp_affine::{affine_rescore, AffineScheme};
use smx::align::{Alphabet, ElementWidth, ScoringScheme, Sequence};
use smx::coproc::affine::AffineEngine;
use smx::diffenc::affine::AffinePenalties;
use smx::physical::area::AreaModel;

fn main() -> Result<(), smx::align::AlignError> {
    // A reference and a read missing a 60-base block.
    let mut x = 2024u64;
    let mut gen = |len: usize| -> Vec<u8> {
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % 4) as u8
            })
            .collect()
    };
    let r_codes = gen(400);
    let mut q_codes = r_codes.clone();
    q_codes.drain(150..210);
    q_codes[300] ^= 2; // plus one substitution

    let scheme = AffineScheme::minimap2();
    let pen = AffinePenalties::from_scheme(&scheme)?;
    let engine = AffineEngine::new(ElementWidth::W4, pen)?;

    let res = engine.compute_block_traceback(&q_codes, &r_codes)?;
    let cigar = engine.traceback(&q_codes, &r_codes, &res)?;
    assert_eq!(affine_rescore(&cigar, &q_codes, &r_codes, &scheme)?, res.score);

    let q = Sequence::from_codes(Alphabet::Dna4, q_codes.clone())?;
    println!("read: {} bases, reference: {} bases", q.len(), r_codes.len());
    println!("affine score (match 2, mismatch -4, open -4, extend -2): {}", res.score);
    println!("cigar: {cigar}");
    let stats = cigar.stats();
    println!("gap segments: {} ({} deleted bases total)", stats.gap_segments, stats.deletions);

    // Contrast with the linear model: the same 60-base gap costs 60
    // separate unit gaps instead of one open + 60 extends.
    let linear = ScoringScheme::linear(2, -4, -4)?;
    let linear_score = smx::align::dp::score_only(&q_codes, &r_codes, &linear);
    println!();
    println!("linear-gap score of the same pair: {linear_score}");
    println!("affine consolidates the event: {} vs {} for the gap alone", scheme.gap(60), 60 * -4);

    let m = AreaModel::new();
    println!();
    println!(
        "area price of the affine engine: {:.3} mm^2 vs {:.3} mm^2 linear ({:.1}x)",
        m.affine_engine_area(),
        m.engine_area(),
        m.affine_engine_area() / m.engine_area()
    );
    Ok(())
}
