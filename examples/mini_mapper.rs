//! A miniature read mapper on SMX: k-mer seeding and chaining on the
//! general-purpose core (irregular work), banded extension as
//! SMX-accelerated DP-blocks — the Minimap2 pipeline shape the paper's
//! §9.3 end-to-end analysis is about, in one runnable binary.
//!
//! Run with: `cargo run -p smx --release --example mini_mapper`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smx::algos::mapper::{map_read, KmerIndex};
use smx::algos::timing::{estimate, BatchWork, EngineKind};
use smx::datagen::mutate::{mutate, random_sequence};
use smx::datagen::ErrorProfile;
use smx::prelude::*;

fn main() -> Result<(), smx::align::AlignError> {
    let mut rng = StdRng::seed_from_u64(4242);
    // A 50 kbp "genome" and 20 reads sampled from it with sequencing errors.
    let genome = random_sequence(Alphabet::Dna2, 50_000, &mut rng);
    let idx = KmerIndex::build(genome.codes(), 17)?;
    println!("reference: {} bp, index: {} distinct 17-mers", genome.len(), idx.distinct_kmers());

    let scheme = AlignmentConfig::DnaEdit.scoring();
    let mut outcomes = Vec::new();
    let mut placed = 0usize;
    let mut correct = 0usize;
    let reads: Vec<(usize, Sequence)> = (0..20)
        .map(|_| {
            let start = rng.gen_range(0..genome.len() - 1200);
            let template = genome.subsequence(start..start + 1000);
            (start, mutate(&template, &ErrorProfile::moderate(), &mut rng))
        })
        .collect();

    for (true_start, read) in &reads {
        if let Some(m) = map_read(&idx, genome.codes(), read.codes(), &scheme, 48)? {
            placed += 1;
            if m.ref_range.start.abs_diff(*true_start) <= 96 {
                correct += 1;
            }
            outcomes.push(m.outcome);
        }
    }
    println!("placed {placed}/{} reads, {correct} within one band of the true origin", reads.len());

    // What the extension stage costs on each engine.
    let work = BatchWork::from_outcomes(AlignmentConfig::DnaEdit, false, &outcomes);
    let simd = estimate(EngineKind::Simd, &work, 4);
    let smx = estimate(EngineKind::Smx, &work, 4);
    println!();
    println!(
        "extension stage ({} banded alignments, {:.1}M cells):",
        outcomes.len(),
        work.cells as f64 / 1e6
    );
    println!("  SIMD baseline : {:>12.0} cycles", simd.cycles);
    println!("  SMX           : {:>12.0} cycles ({:.0}x)", smx.cycles, simd.cycles / smx.cycles);
    println!();
    println!("seeding/chaining stay on the core; only the regular DP moves to the");
    println!("coprocessor — the division of labour the heterogeneous design is for.");
    Ok(())
}
