//! Hirschberg's algorithm on SMX: trade 2x the DP-elements computed for
//! linear memory (paper §2.3, Fig. 2's memory axis; §9's Hirschberg-SMX).
//! SMX-2D excels here because the recomputed blocks are large and regular.
//!
//! Run with: `cargo run -p smx --release --example low_memory_hirschberg`

use smx::algos::metrics;
use smx::prelude::*;

fn main() -> Result<(), smx::align::AlignError> {
    let config = AlignmentConfig::DnaEdit;
    let ds = Dataset::synthetic(config, 8000, 2, smx::datagen::ErrorProfile::moderate(), 3);
    let (m, n) = (ds.pairs[0].query.len(), ds.pairs[0].reference.len());
    println!("aligning {} pairs of ~{m} x {n} DP-matrices", ds.pairs.len());

    let mut aligner = SmxAligner::new(config);
    let full = aligner.algorithm(Algorithm::Full).engine(EngineKind::Smx).run_batch(&ds.pairs)?;
    let hirsch =
        aligner.algorithm(Algorithm::Hirschberg).engine(EngineKind::Smx).run_batch(&ds.pairs)?;

    let (fc, fs) = metrics::matrix_fractions(&full.outcomes[0], m, n);
    let (hc, hs) = metrics::matrix_fractions(&hirsch.outcomes[0], m, n);
    println!();
    println!("                     computed       stored       SMX cycles");
    println!("  full            {:>8.2}x    {:>9.6}x    {:>12.0}", fc, fs, full.timing.cycles);
    println!("  hirschberg      {:>8.2}x    {:>9.6}x    {:>12.0}", hc, hs, hirsch.timing.cycles);
    println!();
    println!(
        "hirschberg computes {:.1}x the cells but stores {:.0}x less memory",
        hirsch.work.cells as f64 / full.work.cells as f64,
        full.outcomes[0].cells_stored as f64 / hirsch.outcomes[0].cells_stored as f64
    );
    // Both produce the optimal score.
    assert_eq!(full.outcomes[0].score, hirsch.outcomes[0].score);
    println!("identical optimal scores: {:?}", full.outcomes[0].score);
    Ok(())
}
