//! Long-read alignment: the Minimap2-style use case (paper §9). Runs the
//! banded X-drop algorithm on PacBio-like reads across engines, showing
//! the accuracy/efficiency trade against the window heuristic (Fig. 14's
//! message on a laptop-sized instance).
//!
//! Run with: `cargo run -p smx --release --example long_read_mapping`

use smx::algos::xdrop;
use smx::prelude::*;

fn main() -> Result<(), smx::align::AlignError> {
    let config = AlignmentConfig::DnaGap;
    // Scaled-down PacBio-like reads so the example runs in seconds.
    let ds = Dataset::synthetic(config, 4000, 6, smx::datagen::ErrorProfile::pacbio_hifi(), 7);
    let band = xdrop::band_for_error_rate(4000, 0.01);
    println!("dataset: {} pairs of ~4 kbp reads, band {band}", ds.pairs.len());

    // Optimal scores from the exact linear-memory algorithm.
    let scheme = config.scoring();
    let optimal: Vec<i32> = ds
        .pairs
        .iter()
        .map(|p| smx::align::dp::score_only(p.query.codes(), p.reference.codes(), &scheme))
        .collect();

    let mut aligner = SmxAligner::new(config);
    aligner.algorithm(Algorithm::Xdrop { band, fraction: 0.08 });
    println!();
    println!("banded x-drop (full alignment) per engine:");
    let simd_cycles = {
        let rep = aligner.engine(EngineKind::Simd).run_batch(&ds.pairs)?;
        println!(
            "  {:>7}: {:>12.0} cycles, recall {:.2}",
            "simd",
            rep.timing.cycles,
            rep.recall(&optimal)
        );
        rep.timing.cycles
    };
    for engine in [EngineKind::Smx1d, EngineKind::Smx2d, EngineKind::Smx] {
        let rep = aligner.engine(engine).run_batch(&ds.pairs)?;
        println!(
            "  {:>7}: {:>12.0} cycles, recall {:.2}, speedup {:>6.1}x",
            engine.name(),
            rep.timing.cycles,
            rep.recall(&optimal),
            simd_cycles / rep.timing.cycles
        );
    }

    // The window heuristic is fast but loses recall on reads that span
    // structural variants (a 500-base deletion here).
    let noisy = Dataset::ont_sv_like(config, 4000, 500, 6, 8);
    let noisy_optimal: Vec<i32> = noisy
        .pairs
        .iter()
        .map(|p| smx::align::dp::score_only(p.query.codes(), p.reference.codes(), &scheme))
        .collect();
    let win = SmxAligner::new(config)
        .algorithm(Algorithm::Window { w: 320, o: 128 })
        .engine(EngineKind::Gact)
        .run_batch(&noisy.pairs)?;
    let xd = SmxAligner::new(config)
        .algorithm(Algorithm::Banded { band: 700 })
        .engine(EngineKind::Smx)
        .run_batch(&noisy.pairs)?;
    println!();
    println!("ONT-like reads (7% error):");
    println!("  window (GACT)   recall {:.2}", win.recall(&noisy_optimal));
    println!("  banded (SMX)    recall {:.2}", xd.recall(&noisy_optimal));
    Ok(())
}
