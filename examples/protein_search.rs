//! Protein database search: score a query against a small database of
//! homologs and decoys under BLOSUM50 (the DIAMOND/BLAST use case the
//! paper's protein configuration targets), ranking hits by score, and
//! reporting the simulated throughput advantage of SMX over SIMD.
//!
//! Run with: `cargo run -p smx --release --example protein_search`

use rand::rngs::StdRng;
use rand::SeedableRng;
use smx::datagen::protein;
use smx::prelude::*;

fn main() -> Result<(), smx::align::AlignError> {
    let mut rng = StdRng::seed_from_u64(2025);
    // The query and a database of 12 entries: 4 homologs, 8 unrelated.
    let (query, homolog) = protein::homolog_pair(300, 0.15, &mut rng);
    let mut database: Vec<(String, Sequence)> = vec![("homolog-0".into(), homolog)];
    for i in 1..4 {
        let (_, h) = protein::homolog_pair(300, 0.15 + 0.05 * i as f64, &mut rng);
        database.push((format!("homolog-{i}"), h));
    }
    for i in 0..8 {
        database.push((format!("decoy-{i}"), protein::random_protein(300, &mut rng)));
    }

    let mut device = SmxDevice::new(AlignmentConfig::Protein, 4)?;
    let mut hits: Vec<(String, i32)> = database
        .iter()
        .map(|(name, seq)| Ok((name.clone(), device.score(&query, seq)?)))
        .collect::<Result<_, smx::align::AlignError>>()?;
    hits.sort_by_key(|&(_, s)| std::cmp::Reverse(s));

    println!(
        "query: {} residues; database: {} entries (BLOSUM50, gap -5)",
        query.len(),
        database.len()
    );
    println!("top hits by SMX score:");
    for (name, score) in hits.iter().take(5) {
        println!("  {name:<12} score {score:>6}");
    }

    // Throughput comparison on the search workload.
    let pairs: Vec<SeqPair> = database
        .iter()
        .map(|(_, seq)| SeqPair { reference: seq.clone(), query: query.clone() })
        .collect();
    let mut aligner = SmxAligner::new(AlignmentConfig::Protein);
    aligner.algorithm(Algorithm::Full).score_only(true);
    let simd = aligner.engine(EngineKind::Simd).run_batch(&pairs)?;
    let smx = aligner.engine(EngineKind::Smx).run_batch(&pairs)?;
    println!();
    println!("simulated search throughput at 1 GHz:");
    println!(
        "  SIMD : {:>12.0} alignments/s ({:.3} GCUPS)",
        simd.alignments_per_second(),
        simd.gcups()
    );
    println!(
        "  SMX  : {:>12.0} alignments/s ({:.3} GCUPS)",
        smx.alignments_per_second(),
        smx.gcups()
    );
    println!("  speedup: {:.0}x", simd.timing.cycles / smx.timing.cycles);
    Ok(())
}
