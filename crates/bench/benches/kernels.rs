//! Criterion microbenchmarks of the functional SMX kernels: the bit-exact
//! PE, lane packing, the SMX-1D column kernel, SMX-2D tile/block compute,
//! and the golden-model DP they are all validated against.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use smx::align::{dp, AlignmentConfig};
use smx::coproc::block::BlockMode;
use smx::coproc::SmxCoprocessor;
use smx::diffenc::{pack::PackedSeq, pe};
use smx::isa::{kernels, Smx1dUnit};

fn seq(len: usize, seed: u64, card: u64) -> Vec<u8> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % card) as u8
        })
        .collect()
}

fn bench_pe(c: &mut Criterion) {
    let mut g = c.benchmark_group("pe");
    g.throughput(Throughput::Elements(1));
    g.bench_function("pe_exact_w2", |b| {
        b.iter(|| pe::pe_exact(smx::align::ElementWidth::W2, std::hint::black_box(1), 2, 2))
    });
    g.bench_function("pe_reference", |b| {
        b.iter(|| pe::pe_reference(std::hint::black_box(1), 2, 2))
    });
    g.finish();
}

fn bench_pack(c: &mut Criterion) {
    let codes = seq(4096, 7, 4);
    let mut g = c.benchmark_group("pack");
    g.throughput(Throughput::Elements(codes.len() as u64));
    g.bench_function("packed_seq_w2", |b| {
        b.iter(|| PackedSeq::from_codes(smx::align::ElementWidth::W2, std::hint::black_box(&codes)))
    });
    g.finish();
}

fn bench_block_kernels(c: &mut Criterion) {
    let cfg = AlignmentConfig::DnaEdit;
    let scheme = cfg.scoring();
    let q = seq(512, 3, 4);
    let r = seq(512, 11, 4);
    let mut g = c.benchmark_group("block_512x512");
    g.throughput(Throughput::Elements((q.len() * r.len()) as u64));
    g.bench_function("golden_score", |b| {
        b.iter(|| dp::score_only(std::hint::black_box(&q), &r, &scheme))
    });
    g.bench_function("smx1d_score", |b| {
        b.iter_batched(
            || Smx1dUnit::configure(cfg.element_width(), &scheme).unwrap(),
            |mut unit| kernels::score_block(&mut unit, std::hint::black_box(&q), &r, None).unwrap(),
            BatchSize::SmallInput,
        )
    });
    let coproc = SmxCoprocessor::new(cfg.element_width(), &scheme, 4).unwrap();
    g.bench_function("smx2d_score", |b| {
        b.iter(|| {
            coproc.compute_block(std::hint::black_box(&q), &r, None, BlockMode::ScoreOnly).unwrap()
        })
    });
    g.bench_function("smx2d_traceback", |b| {
        b.iter(|| {
            let out = coproc
                .compute_block(std::hint::black_box(&q), &r, None, BlockMode::Traceback)
                .unwrap();
            coproc.traceback(&q, &r, &out).unwrap()
        })
    });
    g.finish();
}

fn bench_software_baselines(c: &mut Criterion) {
    use smx::algos::baselines::{myers, wfa};
    let r = seq(4096, 21, 4);
    let mut q = r.clone();
    q[1000] ^= 1;
    q.remove(3000);
    let mut g = c.benchmark_group("edit_4k");
    g.throughput(Throughput::Elements((q.len() * r.len()) as u64));
    g.bench_function("myers_bitparallel", |b| {
        b.iter(|| myers::edit_distance(std::hint::black_box(&q), &r, 4).unwrap())
    });
    g.bench_function("wfa", |b| {
        b.iter(|| wfa::edit_distance(std::hint::black_box(&q), &r).unwrap())
    });
    g.finish();
}

fn bench_extensions(c: &mut Criterion) {
    use smx::algos::adaptive;
    use smx::align::dp_affine::AffineScheme;
    use smx::align::ScoringScheme;
    use smx::coproc::affine::AffineEngine;
    use smx::diffenc::affine::AffinePenalties;
    let q = seq(1024, 5, 4);
    let mut r = q.clone();
    r.remove(512);
    let mut g = c.benchmark_group("extensions_1k");
    g.throughput(Throughput::Elements((q.len() * r.len()) as u64));
    let pen = AffinePenalties::from_scheme(&AffineScheme::minimap2()).unwrap();
    let engine = AffineEngine::new(smx::align::ElementWidth::W4, pen).unwrap();
    g.bench_function("affine_engine_score", |b| {
        b.iter(|| engine.score_block(std::hint::black_box(&q), &r).unwrap())
    });
    let scheme = ScoringScheme::edit();
    g.bench_function("adaptive_band_w33", |b| {
        b.iter(|| adaptive::adaptive_banded_align(std::hint::black_box(&q), &r, &scheme, 33, false))
    });
    g.finish();
}

fn bench_timing_sim(c: &mut Criterion) {
    use smx::sim::coproc::{BlockShape, CoprocSim, CoprocTimingConfig};
    let mut g = c.benchmark_group("timing_sim");
    let shape = BlockShape::from_dims(10_000, 10_000, smx::align::ElementWidth::W2, false);
    g.bench_function("coproc_10k_block", |b| {
        let sim = CoprocSim::new(CoprocTimingConfig::for_ew(smx::align::ElementWidth::W2, 4));
        b.iter(|| sim.simulate_uniform(std::hint::black_box(shape), 4))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_pe,
    bench_pack,
    bench_block_kernels,
    bench_software_baselines,
    bench_extensions,
    bench_timing_sim
);
criterion_main!(benches);
