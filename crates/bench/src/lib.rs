//! Shared helpers for the SMX benchmark harness.
//!
//! Each binary in `src/bin` regenerates one table or figure from the
//! paper's evaluation (see DESIGN.md §3 for the experiment index). Run
//! them with `cargo run -p smx-bench --release --bin <name>`.

use std::fmt::Display;

/// Prints a section header.
pub fn header(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Prints one row of a fixed-width table.
pub fn row(cells: &[&dyn Display], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cells.iter().zip(widths) {
        line.push_str(&format!("{:>width$}  ", c, width = w));
    }
    println!("{}", line.trim_end());
}

/// Formats a ratio as `Nx`.
#[must_use]
pub fn ratio(a: f64, b: f64) -> String {
    format!("{:.1}x", a / b.max(1e-12))
}

/// Formats a fraction as a percentage.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Opens a CSV artifact file for a harness when `SMX_BENCH_CSV` names a
/// directory, so results can be post-processed; returns `None` (and the
/// harness stays print-only) otherwise.
#[must_use]
pub fn csv_artifact(name: &str) -> Option<std::fs::File> {
    let dir = std::env::var("SMX_BENCH_CSV").ok()?;
    std::fs::create_dir_all(&dir).ok()?;
    let path = std::path::Path::new(&dir).join(format!("{name}.csv"));
    std::fs::File::create(path).ok()
}

/// Writes one CSV row (no quoting — harness values are plain tokens).
pub fn csv_row(file: &mut Option<std::fs::File>, cells: &[&dyn Display]) {
    use std::io::Write;
    if let Some(f) = file {
        let line: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        let _ = writeln!(f, "{}", line.join(","));
    }
}

/// Whether the harness should run in quick mode (smaller instances),
/// controlled by the `SMX_BENCH_QUICK` environment variable.
#[must_use]
pub fn quick_mode() -> bool {
    std::env::var("SMX_BENCH_QUICK").is_ok_and(|v| v != "0")
}

/// Scales an instance size down in quick mode.
#[must_use]
pub fn scaled(full: usize, quick: usize) -> usize {
    if quick_mode() {
        quick
    } else {
        full
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_formats() {
        assert_eq!(ratio(10.0, 4.0), "2.5x");
        assert_eq!(ratio(1.0, 0.0), format!("{:.1}x", 1.0 / 1e-12));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.125), "12.5%");
        assert_eq!(pct(1.0), "100.0%");
    }

    #[test]
    fn scaled_honours_quick_mode() {
        // Quick mode is driven by the environment; in a test process the
        // variable is normally unset, so `scaled` returns the full size.
        if std::env::var("SMX_BENCH_QUICK").is_err() {
            assert_eq!(scaled(1000, 10), 1000);
        }
    }

    #[test]
    fn csv_artifact_disabled_without_env() {
        if std::env::var("SMX_BENCH_CSV").is_err() {
            assert!(csv_artifact("unit-test").is_none());
            let mut none = None;
            csv_row(&mut none, &[&1, &2]); // must be a no-op
        }
    }
}
