//! **Figure 2**: percentage of DP-elements computed and stored, and
//! alignment recall, for different algorithms on ONT-profile DNA reads.
//!
//! Paper series (ONT reads): Full computes/stores 100%/100% with recall 1;
//! banded and X-drop compute a few percent; Hirschberg computes ~200% but
//! stores ~0%; the window heuristic computes little and loses recall.

use smx::algos::{metrics, xdrop};
use smx::align::dp;
use smx::prelude::*;
use smx_bench::{header, pct, row, scaled};

fn main() {
    let config = AlignmentConfig::DnaEdit;
    let len = scaled(4000, 800);
    // Half the reads carry a structural deletion, as long ONT reads do.
    let mut ds = Dataset::ont_sv_like(config, len, len / 8, 3, 2026);
    let plain = Dataset::synthetic(config, len, 3, smx::datagen::ErrorProfile::ont(), 2027);
    ds.pairs.extend(plain.pairs);

    let scheme = config.scoring();
    let optimal: Vec<i32> = ds
        .pairs
        .iter()
        .map(|p| dp::score_only(p.query.codes(), p.reference.codes(), &scheme))
        .collect();

    let err_band = xdrop::band_for_error_rate(len, 0.10);
    let algos: Vec<(&str, Algorithm)> = vec![
        ("full", Algorithm::Full),
        ("banded", Algorithm::Banded { band: err_band }),
        ("banded-xdrop", Algorithm::Xdrop { band: err_band, fraction: 0.30 }),
        ("adaptive", Algorithm::AdaptiveBanded { width: err_band }),
        ("hirschberg", Algorithm::Hirschberg),
        ("window", Algorithm::Window { w: 320, o: 128 }),
    ];

    header(&format!(
        "Figure 2: DP-elements computed/stored and recall (ONT-profile, ~{len} bp, {} pairs)",
        ds.pairs.len()
    ));
    row(&[&"algorithm", &"computed", &"stored", &"recall"], &[14, 10, 10, 8]);
    for (name, algo) in algos {
        let rep = SmxAligner::new(config).algorithm(algo).run_batch(&ds.pairs).unwrap();
        let (mut comp, mut stor) = (0.0, 0.0);
        for (o, p) in rep.outcomes.iter().zip(&ds.pairs) {
            let (c, s) = metrics::matrix_fractions(o, p.query.len(), p.reference.len());
            comp += c;
            stor += s;
        }
        let k = ds.pairs.len() as f64;
        row(
            &[&name, &pct(comp / k), &pct(stor / k), &format!("{:.2}", rep.recall(&optimal))],
            &[14, 10, 10, 8],
        );
    }
    println!();
    println!("paper shape: full = 100%/100%, banded/xdrop compute a small band,");
    println!("hirschberg ~200% computed with ~0% stored, window loses recall.");
}
