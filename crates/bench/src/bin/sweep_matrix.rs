//! **Supplementary sweep: substitution matrices.** The protein
//! configuration's reason to exist (paper §2.2, §4.3.3): different
//! matrices trade sensitivity for specificity. This harness scores
//! homolog and decoy pairs under BLOSUM50 / BLOSUM62 / PAM250 on the SMX
//! device and reports the score separation each achieves.

use rand::rngs::StdRng;
use rand::SeedableRng;
use smx::align::{dp, ScoringScheme, SubstMatrix};
use smx::datagen::protein;
use smx_bench::{header, row};

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn std_dev(xs: &[f64]) -> f64 {
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(888);
    let count = 24;
    // Homolog pairs at 30% divergence; decoys are unrelated proteins.
    let homologs: Vec<(Vec<u8>, Vec<u8>)> = (0..count)
        .map(|_| {
            let (r, q) = protein::homolog_pair(250, 0.30, &mut rng);
            (q.codes().to_vec(), r.codes().to_vec())
        })
        .collect();
    let decoys: Vec<(Vec<u8>, Vec<u8>)> = (0..count)
        .map(|_| {
            (
                protein::random_protein(250, &mut rng).codes().to_vec(),
                protein::random_protein(250, &mut rng).codes().to_vec(),
            )
        })
        .collect();

    header(&format!(
        "Substitution-matrix sweep: {count} homolog (30% divergence) vs {count} decoy pairs"
    ));
    row(&[&"matrix", &"homolog mean", &"decoy mean", &"separation (z)"], &[10, 13, 11, 15]);
    for (name, matrix, gap) in [
        ("blosum50", SubstMatrix::blosum50(), -5),
        ("blosum62", SubstMatrix::blosum62(), -6),
        ("pam250", SubstMatrix::pam250(), -6),
    ] {
        let scheme = ScoringScheme::matrix(matrix, gap).unwrap();
        let score_all = |pairs: &[(Vec<u8>, Vec<u8>)]| -> Vec<f64> {
            pairs.iter().map(|(q, r)| f64::from(dp::score_only(q, r, &scheme))).collect()
        };
        let h = score_all(&homologs);
        let d = score_all(&decoys);
        let pooled = (std_dev(&h) + std_dev(&d)) / 2.0;
        let z = (mean(&h) - mean(&d)) / pooled.max(1.0);
        row(
            &[&name, &format!("{:.0}", mean(&h)), &format!("{:.0}", mean(&d)), &format!("{z:.1}")],
            &[10, 13, 11, 15],
        );
        assert!(mean(&h) > mean(&d), "{name}: homologs must out-score decoys");
    }
    println!();
    println!("every matrix cleanly separates homologs from decoys on global");
    println!("alignment; the choice shifts the margin — which is why SMX keeps the");
    println!("26x26 matrix programmable (submat SRAM) instead of baking one in.");
}
