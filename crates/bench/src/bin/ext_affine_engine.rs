//! **Extension: a gap-affine SMX engine ("SMX-A").** The paper's engine
//! implements the linear gap model; practical read aligners use affine
//! gaps. The Suzuki–Kasahara difference recurrences extend to affine with
//! two values per border element, preserving the systolic/tiled design.
//! This harness validates the tiled affine engine against the Gotoh
//! golden model and prices the extension with the area model.

use smx::align::dp_affine::{affine_score, AffineScheme};
use smx::align::ElementWidth;
use smx::coproc::affine::AffineEngine;
use smx::diffenc::affine::AffinePenalties;
use smx::physical::area::AreaModel;
use smx_bench::{header, row, scaled};

fn dna(len: usize, seed: u64) -> Vec<u8> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % 4) as u8
        })
        .collect()
}

fn main() {
    let scheme = AffineScheme::minimap2();
    let pen = AffinePenalties::from_scheme(&scheme).unwrap();
    let engine = AffineEngine::new(ElementWidth::W4, pen).unwrap();

    header("Extension: gap-affine SMX engine vs Gotoh golden model");
    let len = scaled(2000, 500);
    row(&[&"case", &"gotoh", &"smx-a", &"match"], &[22, 9, 9, 6]);
    let cases: Vec<(&str, Vec<u8>, Vec<u8>)> = {
        let r = dna(len, 7);
        let mut gap = r.clone();
        gap.drain(len / 3..len / 3 + 120);
        let mut noisy = r.clone();
        for k in (0..len).step_by(97) {
            noisy[k] ^= 1;
        }
        vec![
            ("identical", r.clone(), r.clone()),
            ("120-base gap", gap, r.clone()),
            ("1% substitutions", noisy, r.clone()),
            ("unrelated", dna(len, 12345), r),
        ]
    };
    for (name, q, r) in cases {
        let golden = affine_score(&q, &r, &scheme);
        let got = engine.score_block(&q, &r).unwrap();
        row(&[&name, &golden, &got, &if golden == got { "yes" } else { "NO" }], &[22, 9, 9, 6]);
        assert_eq!(golden, got);
    }

    header("Area cost of the affine engine (22nm model)");
    let m = AreaModel::new();
    println!("linear SMX-engine : {:.4} mm^2 (paper: 0.1136)", m.engine_area());
    println!(
        "affine SMX-engine : {:.4} mm^2 ({:.1}x)",
        m.affine_engine_area(),
        m.affine_engine_area() / m.engine_area()
    );
    println!(
        "SMX-2D with affine engine: {:.4} mm^2 ({:.1}% of the processor)",
        m.smx2d_area() - m.engine_area() + m.affine_engine_area(),
        (m.smx2d_area() - m.engine_area() + m.affine_engine_area())
            / smx::physical::area::PROCESSOR_AREA_MM2
            * 100.0
    );
    println!();
    println!("the affine datapath preserves the tile/supertile structure at ~3x the");
    println!("engine area — the kind of flexibility-vs-area step the paper's case");
    println!("study frames (the linear engine already covers DNA-gap and protein).");
}
