//! **Integrity storm: scoreboard, device pool, and hedging under
//! silent-corruption storms.**
//! Sweeps fault rate x pool size x hedge/quarantine settings through the
//! batch service while every device result is at risk of *silent*
//! corruption — faults past all checksums that only the host-side audit
//! can catch. At every operating point the batch is asserted
//! byte-identical (score *and* CIGAR) to a fault-free sequential run:
//! the audit-recovery ladder (retry on device, then software recompute)
//! must repair every corrupted pair. A second table isolates hedged
//! execution, and the closing lines compare the single-device
//! breaker-only service against the full pool + quarantine + hedge
//! stack at each storm intensity.
//!
//! Quick mode (`SMX_BENCH_QUICK=1`) shrinks the workload for CI.

use std::time::{Duration, Instant};

use smx::algos::simd::{self, SimdWorkspace};
use smx::coproc::faults::{FaultPlan, RecoveryPolicy};
use smx::datagen::{Dataset, ErrorProfile};
use smx::prelude::*;
use smx::service::BreakerConfig;
use smx::testkit::assert_byte_identical;
use smx_bench::{csv_artifact, csv_row, header, ratio, row, scaled};

/// One service run at an operating point. Returns (elapsed seconds,
/// final stats, corrupted results that escaped into the output).
///
/// An *audited* stack must never let a corrupted result through, and
/// that is asserted inline. An unaudited stack has no defense against
/// silent corruption — there the escapes are counted and reported,
/// which is the point of the comparison.
fn run_point(
    config: AlignmentConfig,
    pairs: &[(Sequence, Sequence)],
    clean: &[Alignment],
    rate: f64,
    seed: u64,
    cfg: ExecutorConfig,
) -> (f64, smx::service::ServiceStats, usize) {
    let audited = cfg.audit.is_some();
    let mut dev = SmxDevice::new(config, 4).expect("device");
    if rate > 0.0 {
        // Every injected fault is detectable *and* an equal rate of
        // results are silently corrupted — the worst case for trust.
        let plan = FaultPlan::new(seed, rate).with_silent_rate(rate);
        dev.enable_fault_injection(plan, RecoveryPolicy::default());
    }
    let exec = BatchExecutor::new(dev, cfg).expect("executor");
    let t0 = Instant::now();
    let report = exec.run(pairs);
    let dt = t0.elapsed().as_secs_f64();
    if audited {
        assert_byte_identical(&report, clean);
        return (dt, report.stats, 0);
    }
    let escaped = clean
        .iter()
        .enumerate()
        .filter(|(k, g)| {
            !report
                .alignment(*k)
                .is_some_and(|a| a.score == g.score && a.cigar.to_string() == g.cigar.to_string())
        })
        .count();
    (dt, report.stats, escaped)
}

fn main() {
    let config = AlignmentConfig::DnaGap;
    let len = scaled(1000, 160);
    let count = scaled(40, 12);
    let jobs = 4;
    let seed = 42u64;
    let ds = Dataset::synthetic(config, len, count, ErrorProfile::moderate(), 7);
    let pairs: Vec<(Sequence, Sequence)> =
        ds.pairs.iter().map(|p| (p.query.clone(), p.reference.clone())).collect();

    // Fault-free sequential reference: the byte-identity baseline.
    let mut clean_dev = SmxDevice::new(config, 4).expect("device");
    let clean: Vec<Alignment> =
        pairs.iter().map(|(q, r)| clean_dev.align(q, r).expect("clean align")).collect();

    // The pool's score audit verifies optimality through the streaming
    // kernel; prove both kernels byte-identical to the clean run on this
    // exact workload before storms rely on them.
    let scheme = config.scoring();
    let mut ws = SimdWorkspace::new();
    let mut kernel_s = [0.0f64; 2];
    for (i, baseline) in [Baseline::Scalar, Baseline::Simd].into_iter().enumerate() {
        let t0 = Instant::now();
        for ((q, r), g) in pairs.iter().zip(&clean) {
            let p = simd::score_profile(q.codes(), r.codes(), &scheme, baseline, &mut ws);
            assert_eq!(p.score, g.score, "{baseline} kernel diverged from the clean run");
        }
        kernel_s[i] = t0.elapsed().as_secs_f64();
    }
    println!(
        "audit score kernels byte-identical on storm traffic; {} {} over scalar",
        simd::selected_kernel(Baseline::Simd, &scheme, len, len).name(),
        ratio(kernel_s[0], kernel_s[1]),
    );

    let breaker = Some(BreakerConfig {
        window: 8,
        min_samples: 4,
        threshold: 0.25,
        cooldown_pairs: 8,
        probes: 2,
    });
    let quarantine = Some(QuarantineConfig {
        alpha: 0.25,
        threshold: 0.5,
        min_samples: 4,
        canary_period: 8,
        canary_probes: 2,
    });

    let mut csv = csv_artifact("integrity_storm");
    csv_row(
        &mut csv,
        &[
            &"rate",
            &"devices",
            &"stack",
            &"ms",
            &"pairs_per_s",
            &"audits",
            &"violations",
            &"recomputed",
            &"quarantines",
            &"canaries",
            &"hedges",
            &"escaped",
        ],
    );

    header(&format!(
        "integrity storm: {config}, {count} pairs x {len} bp, {jobs} jobs, seed {seed}, \
         full audit, silent-rate = fault-rate"
    ));
    let widths = [6, 8, 9, 8, 9, 7, 11, 11, 6, 8, 7, 10];
    row(
        &[
            &"rate",
            &"devices",
            &"stack",
            &"ms",
            &"pairs/s",
            &"audits",
            &"violations",
            &"recomputed",
            &"quar",
            &"canary",
            &"hedges",
            &"escaped",
        ],
        &widths,
    );

    // stack sweep: breaker-only single device (the PR-2 service) vs the
    // audited multi-device pool with quarantine and hedging.
    let mut compare: Vec<(f64, f64, f64)> = Vec::new();
    let mut total_escaped = [0usize; 2];
    for rate in [0.0, 0.05, 0.15] {
        let mut elapsed = [0.0f64; 2];
        for (i, (stack, devices, audit, q, hedge)) in [
            ("breaker", 1usize, None, None, None),
            (
                "pool",
                4usize,
                Some(AuditConfig::full()),
                quarantine,
                Some(HedgeConfig::after(Duration::from_millis(250))),
            ),
        ]
        .into_iter()
        .enumerate()
        {
            let cfg = ExecutorConfig {
                jobs,
                queue_cap: 16,
                breaker,
                devices,
                audit,
                quarantine: q,
                hedge,
                ..ExecutorConfig::default()
            };
            let (dt, s, escaped) = run_point(config, &pairs, &clean, rate, seed, cfg);
            elapsed[i] = dt;
            total_escaped[i] += escaped;
            let throughput = count as f64 / dt.max(1e-9);
            row(
                &[
                    &format!("{rate:.2}"),
                    &devices,
                    &stack,
                    &format!("{:.1}", dt * 1e3),
                    &format!("{throughput:.0}"),
                    &s.audits_run,
                    &s.integrity_violations,
                    &s.integrity_recomputed,
                    &s.quarantines,
                    &s.canary_runs,
                    &s.hedges_launched,
                    &escaped,
                ],
                &widths,
            );
            csv_row(
                &mut csv,
                &[
                    &rate,
                    &devices,
                    &stack,
                    &format!("{:.3}", dt * 1e3),
                    &format!("{throughput:.1}"),
                    &s.audits_run,
                    &s.integrity_violations,
                    &s.integrity_recomputed,
                    &s.quarantines,
                    &s.canary_runs,
                    &s.hedges_launched,
                    &escaped,
                ],
            );
            // Whenever the device actually corrupted a result silently,
            // the full-rate audit must have caught at least one — the
            // byte-identity assertion above already proved recovery.
            if audit.is_some() && s.recovery.silent_corruptions > 0 {
                assert!(
                    s.integrity_violations > 0,
                    "rate {rate}: {} silent corruptions escaped a full audit",
                    s.recovery.silent_corruptions
                );
            }
        }
        compare.push((rate, elapsed[0], elapsed[1]));
    }

    header("hedged execution: devices=2, rate 0.10, full audit");
    let widths = [12, 8, 9, 9, 7, 10];
    row(&[&"hedge", &"ms", &"pairs/s", &"launched", &"won", &"output"], &widths);
    for (tag, hedge) in [
        ("off", None),
        ("after-250ms", Some(HedgeConfig::after(Duration::from_millis(250)))),
        ("p95", Some(HedgeConfig::p95())),
    ] {
        let cfg = ExecutorConfig {
            jobs,
            queue_cap: 16,
            breaker,
            devices: 2,
            audit: Some(AuditConfig::full()),
            quarantine,
            hedge,
            ..ExecutorConfig::default()
        };
        let (dt, s, _) = run_point(config, &pairs, &clean, 0.10, seed, cfg);
        row(
            &[
                &tag,
                &format!("{:.1}", dt * 1e3),
                &format!("{:.0}", count as f64 / dt.max(1e-9)),
                &s.hedges_launched,
                &s.hedges_won,
                &"identical",
            ],
            &widths,
        );
    }

    println!();
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    for (rate, breaker_s, pool_s) in &compare {
        println!(
            "pool+quarantine+hedge vs single-device breaker at rate {rate:.2}: \
             {:.2}x throughput",
            breaker_s / pool_s.max(1e-9)
        );
    }
    if cores < 2 {
        println!(
            "(host has {cores} core; the pool's parallel dispatch over {jobs} jobs cannot show \
             wall-clock gains here — compare the escaped-corruption column instead)"
        );
    }
    println!(
        "\ncorrupted results in final output: breaker-only {} / audited pool {}",
        total_escaped[0], total_escaped[1]
    );
    println!("audited runs asserted byte-identical to the fault-free sequential run");
}
