//! **Extension: §9.3 measured on our own pipeline.** Instead of assuming
//! Minimap2's published 70–76% alignment fraction, run the repository's
//! mini-mapper, time the seeding/chaining stage with the CPU loop model
//! and the extension stage on SIMD vs SMX, and compose the end-to-end
//! speedup from measured parts.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smx::algos::mapper::{map_read, KmerIndex};
use smx::algos::timing::{estimate, BatchWork, EngineKind};
use smx::datagen::mutate::{mutate, random_sequence};
use smx::datagen::ErrorProfile;
use smx::prelude::*;
use smx::sim::cpu::{kernel_cycles, CpuConfig, LoopKernel, UopClass};
use smx::sim::mem::MemParams;
use smx_bench::{header, scaled};

fn main() {
    let mut rng = StdRng::seed_from_u64(9393);
    let genome_len = scaled(200_000, 40_000);
    let reads = scaled(50, 12);
    let read_len = 2000;
    let genome = random_sequence(Alphabet::Dna2, genome_len, &mut rng);
    let idx = KmerIndex::build(genome.codes(), 17).unwrap();
    let scheme = AlignmentConfig::DnaEdit.scoring();

    let mut outcomes = Vec::new();
    let mut seed_hits = 0u64;
    for _ in 0..reads {
        let start = rng.gen_range(0..genome.len() - read_len - 200);
        let template = genome.subsequence(start..start + read_len);
        let read = mutate(&template, &ErrorProfile::moderate(), &mut rng);
        seed_hits += idx.seeds_of(read.codes()).len() as u64;
        if let Some(m) = map_read(&idx, genome.codes(), read.codes(), &scheme, 48).unwrap() {
            outcomes.push(m.outcome);
        }
    }

    // Seeding + chaining cost: one hash probe per read position (random
    // access into an index larger than the LLC) plus chaining overhead.
    let cpu = CpuConfig::table1_ooo();
    let mem = MemParams::table1();
    let mut seeding = LoopKernel::compute_only(
        "seed+chain",
        (reads * read_len) as f64,
        vec![(UopClass::IntAlu, 6.0), (UopClass::Load, 2.0), (UopClass::Branch, 1.0)],
        3.0,
    );
    seeding.random_accesses = 1.0;
    seeding.working_set = (idx.distinct_kmers() * 24) as u64;
    seeding.mispredicts = 0.05;
    let seed_cycles = kernel_cycles(&seeding, &cpu, &mem) + seed_hits as f64 * 4.0; // per-hit chaining work

    let work = BatchWork::from_outcomes(AlignmentConfig::DnaEdit, false, &outcomes);
    let ext_simd = estimate(EngineKind::Simd, &work, 4).cycles;
    let ext_smx = estimate(EngineKind::Smx, &work, 4).cycles;

    header(&format!(
        "Mini-mapper pipeline: {reads} reads of {read_len} bp against {genome_len} bp"
    ));
    println!("mapped reads           : {}/{reads}", outcomes.len());
    println!("seeding + chaining     : {seed_cycles:>14.0} cycles (CPU, both systems)");
    println!("extension on SIMD      : {ext_simd:>14.0} cycles");
    println!(
        "extension on SMX       : {ext_smx:>14.0} cycles ({:.0}x kernel speedup)",
        ext_simd / ext_smx
    );
    let total_simd = seed_cycles + ext_simd;
    let total_smx = seed_cycles + ext_smx;
    let frac = ext_simd / total_simd;
    println!();
    println!("alignment fraction of baseline runtime: {:.0}%", frac * 100.0);
    println!(
        "end-to-end speedup     : {:.2}x (paper's Minimap2 range: 3.3-4.1x",
        total_simd / total_smx
    );
    println!("                          at a 70-76% alignment fraction)");
    println!();
    println!("the end-to-end gain is capped by the seeding stage exactly as");
    println!("Amdahl predicts — the part of the pipeline SMX deliberately leaves");
    println!("on the general-purpose core.");
}
