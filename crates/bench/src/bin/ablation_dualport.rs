//! **Ablation: merged `smx.vh` on dual-destination cores.** Paper §4.2:
//! the separate `smx.v`/`smx.h` pair suits single-destination RISC cores
//! (like `mul`/`mulh`), while a two-port register file can merge them,
//! "enhancing encoding efficiency and throughput". This ablation measures
//! the instruction-count and cycle effect of the merge.

use smx::datagen::ErrorProfile;
use smx::isa::{kernels, Smx1dUnit};
use smx::prelude::*;
use smx::sim::cpu::{iteration_cycles, CpuConfig, LoopKernel, UopClass};
use smx::sim::mem::MemParams;
use smx_bench::{header, ratio, row, scaled};

fn main() {
    let len = scaled(1000, 400);
    header(&format!("Ablation: smx.v+smx.h vs merged smx.vh ({len}x{len} score-only)"));
    row(
        &[
            &"config",
            &"2-insn SMX ops",
            &"merged ops",
            &"2-insn cyc/col*",
            &"merged cyc/col*",
            &"gain",
        ],
        &[9, 14, 11, 14, 14, 7],
    );
    for config in AlignmentConfig::ALL {
        let ds = Dataset::synthetic(config, len, 1, ErrorProfile::moderate(), 77);
        let (q, r) = (&ds.pairs[0].query, &ds.pairs[0].reference);
        let scheme = config.scoring();
        let mut u1 = Smx1dUnit::configure(config.element_width(), &scheme).unwrap();
        let mut u2 = Smx1dUnit::configure(config.element_width(), &scheme).unwrap();
        let two = kernels::score_block(&mut u1, q.codes(), r.codes(), None).unwrap();
        let merged = kernels::score_block_dualport(&mut u2, q.codes(), r.codes(), None).unwrap();
        assert_eq!(two.score, merged.score);

        // Per-column cycle model on the in-order edge core, where issue
        // width (not the recurrence) is the limit and the merge pays off;
        // the 8-wide OoO core hides the extra instruction entirely.
        let cpu = CpuConfig::table2_inorder();
        let mem = MemParams::table1();
        let protein = config == AlignmentConfig::Protein;
        let recurrence = if protein { 5.4 } else { 2.2 };
        let body = |smx_ops: f64| {
            LoopKernel::compute_only(
                "col",
                1.0,
                vec![(UopClass::Smx, smx_ops), (UopClass::IntAlu, 3.0), (UopClass::Branch, 1.0)],
                recurrence,
            )
        };
        let cyc2 = iteration_cycles(&body(2.0), &cpu, &mem);
        let cyc1 = iteration_cycles(&body(1.0), &cpu, &mem);
        row(
            &[
                &config.name(),
                &two.counts.smx_total(),
                &merged.counts.smx_total(),
                &format!("{cyc2:.2}"),
                &format!("{cyc1:.2}"),
                &ratio(cyc2, cyc1),
            ],
            &[9, 14, 11, 14, 14, 7],
        );
    }
    println!();
    println!("* cycles per column on the Table-2 in-order core.");
    println!("merging halves the dynamic SMX instruction count; the cycle gain is");
    println!("bounded by the recurrence chain (paper: like mul/mulh, the split form");
    println!("is an encoding concession to single-destination pipelines).");
}
