//! **Extension: energy per alignment.** Integrates the §10 power model
//! over the simulated cycles of the Fig. 11-style workloads, comparing
//! the SIMD-on-CPU baseline against the heterogeneous SMX.

use smx::algos::xdrop;
use smx::physical::energy::{cpu_energy_nj, smx_energy_nj, smx_pj_per_cell};
use smx::prelude::*;
use smx_bench::{header, ratio, row, scaled};

fn main() {
    let len = scaled(8_000, 2_000);
    let workloads: Vec<(&str, AlignmentConfig, Algorithm, Vec<SeqPair>, bool)> = vec![
        (
            "hirschberg/dna",
            AlignmentConfig::DnaGap,
            Algorithm::Hirschberg,
            Dataset::synthetic(
                AlignmentConfig::DnaGap,
                len,
                2,
                smx::datagen::ErrorProfile::pacbio_hifi(),
                301,
            )
            .pairs,
            false,
        ),
        (
            "xdrop/dna",
            AlignmentConfig::DnaGap,
            Algorithm::Xdrop { band: xdrop::band_for_error_rate(len, 0.02), fraction: 0.08 },
            Dataset::synthetic(
                AlignmentConfig::DnaGap,
                len,
                2,
                smx::datagen::ErrorProfile::pacbio_hifi(),
                302,
            )
            .pairs,
            false,
        ),
        (
            "full/protein",
            AlignmentConfig::Protein,
            Algorithm::Full,
            Dataset::uniprot_like(32, 303).pairs,
            true,
        ),
    ];

    header("Energy per alignment (22nm model, 1 GHz)");
    row(&[&"workload", &"simd nJ/aln", &"smx nJ/aln", &"saving"], &[16, 12, 12, 9]);
    for (name, config, algorithm, pairs, score_only) in workloads {
        let mut aligner = SmxAligner::new(config);
        aligner.algorithm(algorithm).score_only(score_only);
        let simd = aligner.engine(EngineKind::Simd).run_batch(&pairs).unwrap();
        let smx = aligner.engine(EngineKind::Smx).run_batch(&pairs).unwrap();
        let k = pairs.len() as f64;
        let e_simd = cpu_energy_nj(simd.timing.cycles) / k;
        let e_smx = smx_energy_nj(smx.timing.cycles, smx.timing.core_busy_frac) / k;
        row(
            &[&name, &format!("{e_simd:.1}"), &format!("{e_smx:.3}"), &ratio(e_simd, e_smx)],
            &[16, 12, 12, 9],
        );
    }
    println!();
    println!("peak energy per DP-element:");
    for config in AlignmentConfig::ALL {
        println!("  {:<9} {:.4} pJ/cell", config.name(), smx_pj_per_cell(config));
    }
    println!();
    println!("the energy saving tracks the speedup: the SMX add-on burns ~31% of");
    println!("the core's power but retires two-to-three orders of magnitude more");
    println!("DP-elements per cycle.");
}
