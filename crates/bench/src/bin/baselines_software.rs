//! **Extension: software edit-distance baselines.** Functional (measured
//! wall-clock) comparison of the exact software aligners this repository
//! implements: scalar DP, Myers's blocked bit-parallel algorithm (the
//! Edlib core), and the wavefront algorithm — the landscape SMX competes
//! against on the DNA-edit configuration.

use smx::algos::baselines::{myers, wfa};
use smx::align::dp;
use smx::prelude::*;
use smx_bench::{header, row, scaled};
use std::time::Instant;

fn main() {
    let len = scaled(20_000, 4_000);
    for error_pct in [1.0f64, 5.0] {
        let profile = smx::datagen::ErrorProfile {
            sub_rate: error_pct / 100.0 * 0.5,
            ins_rate: error_pct / 100.0 * 0.25,
            del_rate: error_pct / 100.0 * 0.25,
        };
        let ds = Dataset::synthetic(AlignmentConfig::DnaEdit, len, 2, profile, 401);
        header(&format!(
            "Software edit-distance baselines ({len} bp, {error_pct}% error, wall-clock on this host)"
        ));
        row(&[&"algorithm", &"distance", &"cells", &"time", &"host GCUPS"], &[12, 9, 12, 10, 11]);
        for p in &ds.pairs.iter().take(1).collect::<Vec<_>>() {
            let (q, r) = (p.query.codes(), p.reference.codes());
            let area = (q.len() as u64) * (r.len() as u64);

            let t0 = Instant::now();
            let scalar = dp::edit_distance(q, r);
            let t_scalar = t0.elapsed();

            let t0 = Instant::now();
            let bitpar = myers::edit_distance(q, r, 4).unwrap();
            let t_myers = t0.elapsed();

            let t0 = Instant::now();
            let wave = wfa::edit_distance(q, r).unwrap();
            let t_wfa = t0.elapsed();

            assert_eq!(scalar, bitpar);
            assert_eq!(scalar, wave.distance);

            let report = |name: &str, cells: u64, t: std::time::Duration| {
                let gcups = cells as f64 / t.as_secs_f64() / 1e9;
                row(
                    &[
                        &name,
                        &format!("{scalar}"),
                        &format!("{cells}"),
                        &format!("{:.2?}", t),
                        &format!("{gcups:.2}"),
                    ],
                    &[12, 9, 12, 10, 11],
                );
            };
            report("scalar-dp", area, t_scalar);
            report("myers", area, t_myers);
            report("wfa", wave.cells, t_wfa);
        }
    }
    println!();
    println!("myers retires 64 cells per word (the strongest CPU edit baseline);");
    println!("wfa's work collapses with similarity (O(n*s)); SMX's 1024 cells per");
    println!("cycle at 1 GHz corresponds to 1024 GCUPS — above any of these.");
}
