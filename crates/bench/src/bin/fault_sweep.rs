//! **Fault sweep: injected fault rate vs recovery cost.** Sweeps the
//! deterministic fault plan across rates on the heterogeneous device,
//! verifying at every rate that recovered alignments are byte-identical
//! (score *and* CIGAR) to the fault-free run, and tabling the recovery
//! counters alongside the cycle-level slowdown from the detailed
//! coprocessor simulator. The whole sweep is seeded: rerunning it prints
//! the same table.

use smx::coproc::faults::{FaultPlan, RecoveryPolicy};
use smx::datagen::{Dataset, ErrorProfile};
use smx::prelude::*;
use smx::sim::{BlockShape, CoprocSim, CoprocTimingConfig, FaultTiming};
use smx_bench::{header, pct, row, scaled};

fn main() {
    let config = AlignmentConfig::DnaGap;
    let ew = config.element_width();
    let len = scaled(2000, 400);
    let pairs = scaled(8, 4);
    let seed = 42u64;
    let ds = Dataset::synthetic(config, len, pairs, ErrorProfile::moderate(), 7);
    let policy = RecoveryPolicy::default();

    // Fault-free reference run: the byte-identity baseline.
    let mut clean_dev = SmxDevice::new(config, 4).expect("device");
    let clean: Vec<Alignment> = ds
        .pairs
        .iter()
        .map(|p| clean_dev.align(&p.query, &p.reference).expect("clean align"))
        .collect();

    // Timing baseline from the cycle-level simulator.
    let shapes: Vec<BlockShape> = ds
        .pairs
        .iter()
        .map(|p| BlockShape::from_dims(p.query.len(), p.reference.len(), ew, true))
        .collect();
    let sim = CoprocSim::new(CoprocTimingConfig::for_ew(ew, 4));
    let clean_cycles = sim.simulate(&shapes).cycles;

    header(&format!(
        "fault sweep: {config}, {} pairs x {len} bp, seed {seed}, \
         policy: {} retries / {}-cycle backoff / {}-cycle watchdog",
        ds.pairs.len(),
        policy.max_retries,
        policy.backoff_cycles,
        policy.watchdog_cycles
    ));
    let widths = [8, 8, 8, 9, 9, 11, 12, 9, 9];
    row(
        &[
            &"rate",
            &"faults",
            &"retries",
            &"fallback",
            &"cyc-lost",
            &"sim-cycles",
            &"slowdown",
            &"events",
            &"output",
        ],
        &widths,
    );

    let mut all_identical = true;
    for rate in [0.0, 1e-4, 1e-3, 1e-2] {
        let plan = FaultPlan::new(seed, rate);
        let mut dev = SmxDevice::new(config, 4).expect("device");
        dev.enable_fault_injection(plan, policy);
        let mut identical = true;
        for (p, reference_aln) in ds.pairs.iter().zip(&clean) {
            let aln = dev.align(&p.query, &p.reference).expect("recovered align");
            identical &= aln.score == reference_aln.score
                && aln.cigar.to_string() == reference_aln.cigar.to_string();
        }
        let stats = dev.recovery_stats();
        assert!(stats.invariants_hold(), "counter invariants violated: {stats:?}");
        let events = dev.take_fault_events().len();

        let ft = FaultTiming::for_ew(ew, plan, policy);
        let (timing, _) = sim.simulate_with_faults(&shapes, &ft);
        let slowdown = timing.cycles as f64 / clean_cycles as f64;

        row(
            &[
                &format!("{rate:.0e}"),
                &stats.faults_injected,
                &stats.retries,
                &stats.fallbacks,
                &stats.cycles_lost,
                &timing.cycles,
                &format!("{slowdown:.4}x"),
                &events,
                &(if identical { "identical" } else { "DIVERGED" }),
            ],
            &widths,
        );
        all_identical &= identical;
    }

    // Determinism spot-check: replaying the highest rate must reproduce
    // the same counters and the same simulated makespan.
    let replay = |_: ()| {
        let mut dev = SmxDevice::new(config, 4).expect("device");
        dev.enable_fault_injection(FaultPlan::new(seed, 1e-2), policy);
        for p in &ds.pairs {
            let _ = dev.align(&p.query, &p.reference).expect("align");
        }
        let ft = FaultTiming::for_ew(ew, FaultPlan::new(seed, 1e-2), policy);
        (dev.recovery_stats(), sim.simulate_with_faults(&shapes, &ft).0.cycles)
    };
    let (s1, c1) = replay(());
    let (s2, c2) = replay(());
    assert_eq!((s1, c1), (s2, c2), "sweep is not deterministic");
    println!();
    println!(
        "determinism: replay at 1e-2 reproduced {} faults / {} cycles; \
         fault share of makespan {}",
        s1.faults_injected,
        c1,
        pct((c1 - clean_cycles) as f64 / c1 as f64)
    );

    assert!(all_identical, "recovered output diverged from the fault-free run");
    println!("verification: recovered alignments byte-identical at every rate");
}
