//! **Figure 10**: SMX-engine utilization versus SMX-worker count (1–8)
//! for the four configurations and three block sizes, score-only mode.
//!
//! Paper anchors: one worker reaches 30–45% on large blocks; four workers
//! ≈90%; beyond four the gain is marginal; 100×100 blocks stay low due to
//! communication overhead. The shared L2 port stays ≤25% busy.

use smx::align::{AlignmentConfig, ElementWidth};
use smx::sim::coproc::{BlockShape, CoprocSim, CoprocTimingConfig};
use smx_bench::{csv_artifact, csv_row, header, pct, row, scaled};

fn main() {
    let sizes = [100usize, 1000, scaled(10_000, 4000)];
    let mut csv = csv_artifact("fig10_utilization");
    csv_row(&mut csv, &[&"config", &"block", &"workers", &"utilization", &"port"]);
    header("Figure 10: SMX-engine utilization by worker count (score-only)");
    row(
        &[&"config", &"block", &"w=1", &"w=2", &"w=3", &"w=4", &"w=6", &"w=8", &"L2@4"],
        &[9, 7, 7, 7, 7, 7, 7, 7, 7],
    );
    for config in AlignmentConfig::ALL {
        let ew: ElementWidth = config.element_width();
        for &len in &sizes {
            let shape = BlockShape::from_dims(len, len, ew, false);
            let mut utils = Vec::new();
            let mut port4 = 0.0;
            for workers in [1usize, 2, 3, 4, 6, 8] {
                let sim = CoprocSim::new(CoprocTimingConfig::for_ew(ew, workers));
                // Enough blocks to keep every worker fed.
                let r = sim.simulate_uniform(shape, workers * 4);
                utils.push(r.utilization);
                if workers == 4 {
                    port4 = r.port_utilization;
                }
            }
            for (w, u) in [1usize, 2, 3, 4, 6, 8].iter().zip(&utils) {
                csv_row(&mut csv, &[&config.name(), &len, w, u, &port4]);
            }
            row(
                &[
                    &config.name(),
                    &format!("{len}"),
                    &pct(utils[0]),
                    &pct(utils[1]),
                    &pct(utils[2]),
                    &pct(utils[3]),
                    &pct(utils[4]),
                    &pct(utils[5]),
                    &pct(port4),
                ],
                &[9, 7, 7, 7, 7, 7, 7, 7, 7],
            );
        }
    }
    println!();
    println!("paper shape: ~30-45% at one worker on large blocks, ~90% at four,");
    println!("marginal beyond four; small blocks much lower; L2 port ≤25%.");
}
