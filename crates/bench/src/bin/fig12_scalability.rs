//! **Figure 12**: multicore scalability of SMX-accelerated algorithms
//! (left panel) and core-busy / SMX-engine utilization (right panel).
//!
//! Paper anchors: near-linear scaling to 8 cores for all workloads, with
//! X-drop slightly less efficient (CPU-coprocessor communication); on the
//! right panel Hirschberg keeps both units busy, X-drop keeps the core
//! hot, and protein-full leaves the core nearly idle.

use smx::algos::xdrop;
use smx::prelude::*;
use smx::sim::system::multicore_speedup;
use smx_bench::{header, pct, row, scaled};

fn main() {
    let len = scaled(8_000, 2_000);
    let workloads: Vec<(&str, AlignmentConfig, Algorithm, Vec<SeqPair>)> = vec![
        (
            "hirschberg/pacbio",
            AlignmentConfig::DnaGap,
            Algorithm::Hirschberg,
            Dataset::synthetic(
                AlignmentConfig::DnaGap,
                len,
                2,
                smx::datagen::ErrorProfile::pacbio_hifi(),
                121,
            )
            .pairs,
        ),
        (
            "hirschberg/ont",
            AlignmentConfig::DnaGap,
            Algorithm::Hirschberg,
            Dataset::synthetic(
                AlignmentConfig::DnaGap,
                len + len / 2,
                2,
                smx::datagen::ErrorProfile::ont(),
                122,
            )
            .pairs,
        ),
        (
            "xdrop/ont",
            AlignmentConfig::DnaGap,
            Algorithm::Xdrop { band: xdrop::band_for_error_rate(len, 0.08), fraction: 0.2 },
            Dataset::synthetic(
                AlignmentConfig::DnaGap,
                len,
                2,
                smx::datagen::ErrorProfile::ont(),
                123,
            )
            .pairs,
        ),
        (
            "full/uniprot",
            AlignmentConfig::Protein,
            Algorithm::Full,
            Dataset::uniprot_like(32, 124).pairs,
        ),
    ];

    header("Figure 12 (left): multicore speedup of SMX-accelerated algorithms");
    row(&[&"workload", &"1", &"2", &"4", &"8"], &[18, 6, 6, 6, 6]);
    let mut reports = Vec::new();
    for (name, config, algorithm, pairs) in &workloads {
        let rep = SmxAligner::new(*config)
            .algorithm(*algorithm)
            .engine(EngineKind::Smx)
            .score_only(*name == "full/uniprot")
            .run_batch(pairs)
            .unwrap();
        // DRAM traffic per core: sequences in, borders out. X-drop strips
        // add CPU-coprocessor round trips (more cache-hierarchy traffic).
        let seq_bytes: f64 = pairs.iter().map(|p| (p.query.len() + p.reference.len()) as f64).sum();
        let traffic_factor = if name.starts_with("xdrop") { 22.0 } else { 2.0 };
        let dram = seq_bytes * traffic_factor;
        let s: Vec<String> = [1usize, 2, 4, 8]
            .iter()
            .map(|&c| format!("{:.2}", multicore_speedup(rep.timing.cycles, dram, c, 23.9)))
            .collect();
        row(&[name, &s[0], &s[1], &s[2], &s[3]], &[18, 6, 6, 6, 6]);
        reports.push((name.to_string(), rep));
    }

    header("Figure 12 (right): core busy time and SMX-engine utilization");
    row(&[&"workload", &"core busy", &"engine util"], &[18, 11, 12]);
    for (name, rep) in &reports {
        row(
            &[name, &pct(rep.timing.core_busy_frac), &pct(rep.timing.engine_utilization)],
            &[18, 11, 12],
        );
    }
    println!();
    println!("paper shape: near-linear scaling (xdrop slightly below); hirschberg");
    println!("balances both units, xdrop keeps the core busy, protein leaves it idle.");
}
