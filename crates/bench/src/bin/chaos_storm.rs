//! **Chaos storm: seeded failpoint schedules against the full stack.**
//!
//! Peer of `server_storm`/`integrity_storm`, but the faults live in the
//! *host* paths instead of the simulated device: checkpoint write/fsync,
//! the framed-TCP codec, pool dispatch, the session ack (see DESIGN.md
//! §10). Each run installs one seeded [`FailSchedule`], drives the full
//! serve→align→checkpoint→resume lifecycle through a reconnecting
//! client, and asserts the standing invariants:
//!
//! * every `RESULT` ever acked is byte-identical to a fault-free
//!   reference run of the same workload;
//! * zero acked-but-lost pairs across a mid-run crash (`kill -9`
//!   simulated in-process, and for real via a spawned `smx-cli serve`
//!   child killed by a pinned `kill=` failpoint);
//! * no deadlock — every run finishes under a watchdog;
//! * breaker/quarantine liveness — a device poisoned by the schedule is
//!   canary-readmitted once its faults stop.
//!
//! A failing seed is greedily shrunk (drop one injection at a time) to a
//! minimal schedule and reported with a one-line replay command; replay
//! it with `--replay '<schedule>'`. Writes `BENCH_chaos.json`. Quick
//! mode (`SMX_BENCH_QUICK=1`) shrinks the seed count for CI.
//!
//! Requires `--features failpoints`; without it this binary is a stub
//! that explains how to rebuild (a fault-free "chaos" run would pass
//! vacuously).

#[cfg(not(feature = "failpoints"))]
fn main() {
    eprintln!(
        "chaos_storm needs armed failpoints; rebuild with\n  cargo run --release -p smx-bench \
         --features failpoints --bin chaos_storm"
    );
    std::process::exit(2);
}

#[cfg(feature = "failpoints")]
fn main() {
    armed::main()
}

#[cfg(feature = "failpoints")]
mod armed {
    use std::collections::HashMap;
    use std::io::Write as _;
    use std::net::TcpStream;
    use std::time::Duration;

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use smx::coproc::faults::{FaultPlan, RecoveryPolicy};
    use smx::failpoint::{self, Action, FailSchedule};
    use smx::prelude::*;
    use smx::server::proto::{read_frame, write_frame, Request, Response};
    use smx::server::tenant::{Priority, TenantPolicy};
    use smx::service::ServiceStats;
    use smx::{RetryConfig, Server, ServerConfig, ServerHandle, SmxDevice};
    use smx_bench::{header, quick_mode, scaled};

    const CONFIG: AlignmentConfig = AlignmentConfig::DnaEdit;
    const PAIR_LEN: usize = 64;
    /// Rounds of submit→read a schedule run may take before the harness
    /// declares it stuck (every schedule's rules are hit-limited, so a
    /// healthy stack always converges long before this).
    const MAX_ROUNDS: usize = 60;

    /// Exits with a message instead of panicking: the harness is held to
    /// the same panic-freedom lint zone as the code it attacks.
    fn must<T, E: std::fmt::Display>(r: Result<T, E>, what: &str) -> T {
        match r {
            Ok(v) => v,
            Err(e) => {
                eprintln!("chaos_storm: {what}: {e}");
                std::process::exit(1);
            }
        }
    }

    fn must_some<T>(o: Option<T>, what: &str) -> T {
        match o {
            Some(v) => v,
            None => {
                eprintln!("chaos_storm: {what}");
                std::process::exit(1);
            }
        }
    }

    /// Aborts the whole harness if a run outlives `secs` — the
    /// no-deadlock invariant. Dropping the guard disarms it.
    struct Watchdog {
        _tx: std::sync::mpsc::Sender<()>,
    }

    fn watchdog(label: String, secs: u64) -> Watchdog {
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        std::thread::spawn(move || {
            if rx.recv_timeout(Duration::from_secs(secs))
                == Err(std::sync::mpsc::RecvTimeoutError::Timeout)
            {
                eprintln!("chaos_storm: WATCHDOG: {label} still running after {secs}s — deadlock");
                std::process::exit(1);
            }
        });
        Watchdog { _tx: tx }
    }

    fn storm_device() -> SmxDevice {
        let mut dev = must(SmxDevice::new(CONFIG, 2), "device");
        // Device-level faults stay ON underneath the host-path chaos:
        // the two fault planes must compose without breaking identity.
        dev.enable_fault_injection(FaultPlan::new(42, 5e-4), RecoveryPolicy::default());
        dev
    }

    fn chaos_server(dir: &std::path::Path, resume: bool) -> ServerHandle {
        let cfg = ServerConfig {
            exec: ExecutorConfig {
                jobs: 2,
                // Must exceed the full-mode workload (48 pairs all
                // submitted in one round): a QueueFull reject would be
                // legitimate backpressure, and the harness treats every
                // reject as a violation.
                queue_cap: 128,
                breaker: Some(BreakerConfig::default()),
                quarantine: Some(QuarantineConfig::default()),
                ..ExecutorConfig::default()
            },
            // Admission generosity: every reject in a chaos run should
            // come from an injected fault path, not the token bucket.
            policy: TenantPolicy { rate: 1e6, burst: 1e6 },
            retry: RetryConfig::default(),
            checkpoint_dir: Some(dir.to_path_buf()),
            resume_sessions: resume,
            ..ServerConfig::default()
        };
        must(Server::bind(storm_device(), cfg, "127.0.0.1:0"), "bind")
    }

    fn make_pair(rng: &mut StdRng, id: usize) -> Request {
        const BASES: [char; 4] = ['A', 'C', 'G', 'T'];
        let query: String = (0..PAIR_LEN).map(|_| BASES[rng.gen_range(0..4usize)]).collect();
        let mut reference = query.clone();
        let i = rng.gen_range(0..PAIR_LEN);
        reference.replace_range(i..=i, "T");
        Request::Pair { id, query, reference }
    }

    /// The shared workload every schedule runs, and its fault-free
    /// golden outcome (computed on a clean device, no fault plan).
    fn build_workload(pairs: usize) -> (Vec<Request>, Vec<(i32, String)>) {
        let mut rng = StdRng::seed_from_u64(7);
        let workload: Vec<Request> = (0..pairs).map(|id| make_pair(&mut rng, id)).collect();
        let mut clean = must(SmxDevice::new(CONFIG, 2), "reference device");
        let mut reference = Vec::with_capacity(pairs);
        for req in &workload {
            let Request::Pair { query, reference: r, .. } = req else { continue };
            let q = must(Sequence::from_text(Alphabet::Dna2, query), "query seq");
            let r = must(Sequence::from_text(Alphabet::Dna2, r), "reference seq");
            let a = must(clean.align(&q, &r), "reference align");
            reference.push((a.score, a.cigar.to_string()));
        }
        (workload, reference)
    }

    /// Deterministic seed → schedule: 2–4 hit-limited rules drawn from
    /// the site menu. Every rule carries a limit, so faults always stop
    /// and a correct stack always converges.
    fn schedule_for(seed: u64) -> FailSchedule {
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        const MENU: [(&str, Action); 8] = [
            ("ckpt.fsync", Action::Error),
            ("ckpt.write", Action::Partial),
            ("proto.write_frame", Action::Partial),
            ("proto.write_frame", Action::Error),
            ("proto.read_frame", Action::Partial),
            ("session.ack", Action::Error),
            ("pool.dispatch", Action::Error),
            ("proto.write_frame", Action::Delay(3)),
        ];
        let mut s = FailSchedule::new(seed);
        let count = 2 + (next() % 3) as usize;
        let mut picked: Vec<usize> = Vec::new();
        while picked.len() < count {
            let i = (next() % MENU.len() as u64) as usize;
            if picked.contains(&i) {
                continue;
            }
            picked.push(i);
            let (site, action) = must_some(MENU.get(i).copied(), "menu index");
            let rate = 0.02 + (next() % 12) as f64 * 0.01;
            let limit = 8 + next() % 25;
            s = s.rule(site, None, action, rate, Some(limit));
        }
        s
    }

    /// One framed session split into writer and reader halves, both with
    /// short timeouts so an injected dead connection surfaces as an
    /// error, never a hang.
    struct Session {
        wr: TcpStream,
        rd: TcpStream,
    }

    /// Opens a session, retrying: the HELLO exchange itself runs through
    /// the proto failpoints, and a just-dropped predecessor connection
    /// may still hold the session busy for a beat.
    fn try_open(addr: std::net::SocketAddr, session: &str) -> Option<Session> {
        for _ in 0..40 {
            let attempt = (|| -> Result<Session, ()> {
                let mut wr = TcpStream::connect(addr).map_err(|_| ())?;
                wr.set_nodelay(true).ok();
                wr.set_write_timeout(Some(Duration::from_secs(2))).ok();
                let mut rd = wr.try_clone().map_err(|_| ())?;
                rd.set_read_timeout(Some(Duration::from_secs(2))).ok();
                let hello = Request::Hello {
                    session: session.to_string(),
                    tenant: "chaos".to_string(),
                    priority: Priority::Normal,
                    deadline_ms: 0,
                };
                write_frame(&mut wr, &hello.encode()).map_err(|_| ())?;
                let reply = read_frame(&mut rd).map_err(|_| ())?.ok_or(())?;
                match Response::parse(&reply).map_err(|_| ())? {
                    Response::Ok { .. } => Ok(Session { wr, rd }),
                    _ => Err(()),
                }
            })();
            if let Ok(sess) = attempt {
                return Some(sess);
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        None
    }

    struct RunSummary {
        rounds: usize,
        crashed: bool,
    }

    /// Drives the whole workload through a server living under
    /// `schedule` until every pair is acked, reconnecting through
    /// injected connection deaths; `crash_mid` kills the server
    /// in-process after the first acks and restarts it with resume.
    ///
    /// Returns `Err(violation)` when a standing invariant breaks.
    fn run_schedule(
        schedule: &FailSchedule,
        crash_mid: bool,
        workload: &[Request],
        reference: &[(i32, String)],
        tag: &str,
    ) -> Result<RunSummary, String> {
        let dir = std::env::temp_dir().join(format!("smx-chaos-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        if let Err(e) = std::fs::create_dir_all(&dir) {
            return Err(format!("harness: mkdir {}: {e}", dir.display()));
        }
        failpoint::install(schedule.clone());
        let finish = |r: Result<RunSummary, String>| {
            failpoint::clear();
            let _ = std::fs::remove_dir_all(&dir);
            r
        };

        let mut handle = Some(chaos_server(&dir, false));
        let mut addr = must_some(handle.as_ref(), "live handle").addr();
        // First-ack values; byte-identity is checked against `reference`
        // on every RESULT, so re-acks are transitively identical too.
        let mut acked: HashMap<usize, ()> = HashMap::new();
        let mut acked_before_crash: Vec<usize> = Vec::new();
        let mut crashed = false;
        let mut resubmit_all = false;
        let mut rounds = 0usize;

        // Wedge detection is stagnation-based: with limited schedules the
        // faults eventually stop firing, so a healthy server acks *some*
        // pending pair every few rounds. Consecutive ack-less rounds mean
        // the server can no longer make progress (e.g. a permanently
        // unopenable session); bail fast so the shrinker stays cheap.
        const STALE_ROUNDS: usize = 8;
        let mut stale = 0usize;
        while acked.len() < workload.len() {
            rounds += 1;
            if stale >= STALE_ROUNDS || rounds > MAX_ROUNDS {
                return finish(Err(format!(
                    "no progress: {}/{} pairs acked after {rounds} rounds \
                     ({stale} consecutive rounds without a new ack)",
                    acked.len(),
                    workload.len()
                )));
            }
            let acked_at_round_start = acked.len();
            if crash_mid && !crashed && !acked.is_empty() {
                // Simulated kill -9: cancel in-flight work, drop every
                // socket, restart over the same checkpoint dir. All
                // previously acked pairs must now replay from the
                // manifest — recomputing one means its fsynced record
                // was lost.
                crashed = true;
                acked_before_crash = acked.keys().copied().collect();
                if let Some(h) = handle.take() {
                    h.crash();
                }
                handle = Some(chaos_server(&dir, true));
                addr = must_some(handle.as_ref(), "live handle").addr();
                resubmit_all = true;
            }
            let Some(mut sess) = try_open(addr, "chaos") else { continue };
            let mut submitted = 0usize;
            for req in workload {
                let Request::Pair { id, .. } = req else { continue };
                if !resubmit_all && acked.contains_key(id) {
                    continue;
                }
                // A crash run must actually crash with acks at stake:
                // hold back half the workload until the kill has fired,
                // so the run can never complete in a single pre-crash
                // round.
                if crash_mid && !crashed && submitted >= workload.len() / 2 {
                    break;
                }
                if write_frame(&mut sess.wr, &req.encode()).is_err() {
                    break;
                }
                submitted += 1;
            }
            let _ = write_frame(&mut sess.wr, &Request::Bye.encode());
            while let Ok(Some(frame)) = read_frame(&mut sess.rd) {
                match Response::parse(&frame) {
                    Ok(Response::Result { id, score, cigar, resumed }) => {
                        let Some((want_score, want_cigar)) = reference.get(id) else {
                            return finish(Err(format!("RESULT for unknown pair {id}")));
                        };
                        if score != *want_score || cigar != *want_cigar {
                            return finish(Err(format!(
                                "pair {id} diverged from fault-free reference: got \
                                 {score}/{cigar}, want {want_score}/{want_cigar}"
                            )));
                        }
                        if crashed && !resumed && acked_before_crash.contains(&id) {
                            return finish(Err(format!(
                                "acked-but-lost: pair {id} was acked before the crash but \
                                 recomputed (not replayed) after resume"
                            )));
                        }
                        acked.insert(id, ());
                    }
                    Ok(Response::Reject { id, reason, .. }) => {
                        return finish(Err(format!(
                            "unexpected REJECT for pair {id} ({reason:?}) under a generous \
                             admission policy"
                        )));
                    }
                    // Typed FAILs are legitimate chaos outcomes (e.g.
                    // "checkpoint write failed"); the pair stays pending
                    // and is resubmitted next round.
                    Ok(Response::Fail { .. }) => {}
                    Ok(Response::Done { .. }) => break,
                    Ok(_) => {}
                    Err(_) => break,
                }
            }
            resubmit_all = false;
            stale = if acked.len() > acked_at_round_start { 0 } else { stale + 1 };
        }
        if let Some(h) = handle.take() {
            h.drain();
        }
        finish(Ok(RunSummary { rounds, crashed }))
    }

    /// Greedy schedule shrink: repeatedly drop the first single rule or
    /// kill whose removal still reproduces the failure, to a local
    /// minimum. `failing` returns true when the candidate still fails.
    fn shrink(
        schedule: &FailSchedule,
        failing: &mut dyn FnMut(&FailSchedule) -> bool,
    ) -> FailSchedule {
        let mut cur = schedule.clone();
        loop {
            let mut improved = false;
            for i in 0..cur.rules.len() {
                let mut cand = cur.clone();
                cand.rules.remove(i);
                if failing(&cand) {
                    cur = cand;
                    improved = true;
                    break;
                }
            }
            if improved {
                continue;
            }
            for i in 0..cur.kills.len() {
                let mut cand = cur.clone();
                cand.kills.remove(i);
                if failing(&cand) {
                    cur = cand;
                    improved = true;
                    break;
                }
            }
            if !improved {
                return cur;
            }
        }
    }

    fn replay_command(schedule: &FailSchedule) -> String {
        format!(
            "cargo run --release -p smx-bench --features failpoints --bin chaos_storm -- \
             --replay '{schedule}'"
        )
    }

    /// The shrinker must find the exact minimal failing core, not just
    /// some smaller schedule — proven here against a synthetic predicate
    /// before any real shrink is trusted.
    fn shrink_self_test() {
        let fat = FailSchedule::new(1)
            .rule("ckpt.fsync", None, Action::Error, 0.5, Some(10))
            .rule("proto.write_frame", None, Action::Partial, 0.5, Some(10))
            .rule("pool.dispatch", Some(1), Action::Error, 0.5, Some(10))
            .kill_at("session.ack", None, 3)
            .kill_at("ckpt.write", None, 9);
        let mut evals = 0usize;
        let mut failing = |s: &FailSchedule| {
            evals += 1;
            s.rules.iter().any(|r| r.site == "proto.write_frame")
                && s.kills.iter().any(|k| k.site == "session.ack")
        };
        let min = shrink(&fat, &mut failing);
        assert_eq!(min.rules.len(), 1, "shrunk to one rule: {min}");
        assert_eq!(min.kills.len(), 1, "shrunk to one kill: {min}");
        assert!(
            min.rules.iter().any(|r| r.site == "proto.write_frame")
                && min.kills.iter().any(|k| k.site == "session.ack"),
            "shrink kept the failing core: {min}"
        );
        println!("shrinker self-test: 5 injections -> minimal 2-injection core ({evals} evals)");
    }

    /// Breaker/quarantine liveness under a schedule-driven poison: lane
    /// 1 of the pool fails every dispatch for a bounded burst, then
    /// heals; the quarantine ladder must readmit it through canaries.
    fn quarantine_liveness_phase(quick: bool) -> ServiceStats {
        let _wd = watchdog("quarantine liveness phase".to_string(), 120);
        failpoint::install(FailSchedule::new(5).rule(
            "pool.dispatch",
            Some(1),
            Action::Error,
            1.0,
            Some(30),
        ));
        let exec = must(
            BatchExecutor::new(
                storm_device(),
                ExecutorConfig {
                    jobs: 2,
                    queue_cap: 32,
                    devices: 3,
                    breaker: Some(BreakerConfig::default()),
                    quarantine: Some(QuarantineConfig::default()),
                    ..ExecutorConfig::default()
                },
            ),
            "executor",
        );
        let count = if quick { 300 } else { 600 };
        let mut rng = StdRng::seed_from_u64(11);
        let pairs: Vec<(Sequence, Sequence)> = (0..count)
            .map(|id| {
                let Request::Pair { query, reference, .. } = make_pair(&mut rng, id) else {
                    return must(Err::<(Sequence, Sequence), &str>("not a pair"), "workload");
                };
                (
                    must(Sequence::from_text(Alphabet::Dna2, &query), "q"),
                    must(Sequence::from_text(Alphabet::Dna2, &reference), "r"),
                )
            })
            .collect();
        // A device fault fails that pair in the batch report by design
        // (the server layer retries via client resubmission), so drive
        // the executor the same way: re-run failed pairs in rounds. The
        // liveness claim is that the faults stop (hit limit 30), the
        // quarantined lane is canary-readmitted, and a bounded number of
        // retry rounds reaches a clean pass.
        let mut readmissions = 0u64;
        let mut pending: Vec<(Sequence, Sequence)> = pairs;
        let mut rounds = 0usize;
        let mut stats = loop {
            rounds += 1;
            let report = exec.run(&pending);
            readmissions += report.stats.readmissions;
            let failed: Vec<(Sequence, Sequence)> =
                report.failures().iter().map(|f| pending[f.index].clone()).collect();
            if failed.is_empty() {
                break report.stats;
            }
            assert!(
                rounds < 6,
                "poisoned-lane batch never reached a clean pass: {} pair(s) still failing \
                 after {rounds} rounds ({:?})",
                failed.len(),
                report.stats
            );
            pending = failed;
        };
        stats.readmissions = readmissions;
        failpoint::clear();
        assert!(
            stats.readmissions >= 1,
            "device poisoned by the schedule was never canary-readmitted after its faults \
             stopped: {stats:?}"
        );
        println!(
            "quarantine liveness: lane 1 poisoned for 30 dispatches over {count} pairs -> \
             {} readmission(s), all pairs completed in {rounds} round(s)",
            stats.readmissions
        );
        stats
    }

    /// Real-process kill runs: spawn `smx-cli serve` with a pinned
    /// `kill=session.ack:<hit>` schedule in `SMX_FAILPOINTS`, watch it
    /// die mid-ack, restart with `--resume-sessions`, and assert every
    /// pre-kill ack replays byte-identically (`resumed=true`).
    ///
    /// Returns the number of kill runs executed (0 when the CLI binary
    /// is not present next to this harness — CI builds it first).
    fn kill_process_phase(
        seeds: &[u64],
        workload: &[Request],
        reference: &[(i32, String)],
    ) -> usize {
        failpoint::clear(); // only the child gets injections
        let Some(cli) = std::env::current_exe()
            .ok()
            .and_then(|p| p.parent().map(|d| d.join("smx-cli")))
            .filter(|p| p.exists())
        else {
            println!(
                "kill phase: SKIPPED — smx-cli not built; run `cargo build --release -p \
                 smx-cli --features failpoints` first"
            );
            return 0;
        };
        for &seed in seeds {
            let hit = 3 + seed % 5;
            let schedule = FailSchedule::new(seed).kill_at("session.ack", None, hit);
            let _wd = watchdog(format!("kill run seed {seed}"), 120);
            let dir =
                std::env::temp_dir().join(format!("smx-chaos-kill-{}-{seed}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            must(std::fs::create_dir_all(&dir), "mkdir kill dir");

            let (mut child, addr, banner) = spawn_serve(&cli, &dir, Some(&schedule));
            assert!(
                banner.contains("# failpoints:"),
                "child never confirmed its schedule (got {banner:?}); was smx-cli built with \
                 --features failpoints?"
            );
            // Drive until the pinned kill severs the connection.
            let mut acked: Vec<usize> = Vec::new();
            if let Some(mut sess) = try_open(addr, "kchaos") {
                for req in workload {
                    if write_frame(&mut sess.wr, &req.encode()).is_err() {
                        break;
                    }
                }
                while let Ok(Some(frame)) = read_frame(&mut sess.rd) {
                    if let Ok(Response::Result { id, score, cigar, .. }) = Response::parse(&frame) {
                        check_reference(id, score, &cigar, reference, "pre-kill");
                        acked.push(id);
                    }
                }
            }
            let status = must(child.wait(), "wait killed child");
            assert!(
                !status.success(),
                "child exited cleanly despite kill=session.ack:{hit} (status {status})"
            );
            assert!(!acked.is_empty(), "no pair was acked before the pinned kill at hit {hit}");

            // Restart without injections; every pre-kill ack must come
            // back replayed from the manifest, byte-identical.
            let (mut child, addr, _) = spawn_serve(&cli, &dir, None);
            let mut replayed: HashMap<usize, bool> = HashMap::new();
            let mut rounds = 0usize;
            while replayed.len() < workload.len() && rounds < MAX_ROUNDS {
                rounds += 1;
                let Some(mut sess) = try_open(addr, "kchaos") else { continue };
                for req in workload {
                    if write_frame(&mut sess.wr, &req.encode()).is_err() {
                        break;
                    }
                }
                let _ = write_frame(&mut sess.wr, &Request::Bye.encode());
                while let Ok(Some(frame)) = read_frame(&mut sess.rd) {
                    match Response::parse(&frame) {
                        Ok(Response::Result { id, score, cigar, resumed }) => {
                            check_reference(id, score, &cigar, reference, "post-kill");
                            replayed.insert(id, resumed);
                        }
                        Ok(Response::Done { .. }) => break,
                        _ => {}
                    }
                }
            }
            let mut lost = 0usize;
            for id in &acked {
                match replayed.get(id) {
                    Some(true) => {}
                    _ => lost += 1,
                }
            }
            assert_eq!(
                lost, 0,
                "{lost} acked pair(s) were not replayed from the manifest after the kill \
                 (seed {seed}); replay: SMX_FAILPOINTS='{schedule}' smx-cli serve ..."
            );
            assert_eq!(replayed.len(), workload.len(), "resume run did not finish (seed {seed})");
            let _ = child.kill();
            let _ = child.wait();
            let _ = std::fs::remove_dir_all(&dir);
            println!(
                "kill run seed {seed}: killed at session.ack hit {hit} with {} acks, all \
                 replayed byte-identically after resume, 0 acked-but-lost",
                acked.len()
            );
        }
        seeds.len()
    }

    fn check_reference(
        id: usize,
        score: i32,
        cigar: &str,
        reference: &[(i32, String)],
        when: &str,
    ) {
        let (want_score, want_cigar) = must_some(reference.get(id), "reference index");
        assert!(
            score == *want_score && cigar == want_cigar,
            "{when}: pair {id} diverged: got {score}/{cigar}, want {want_score}/{want_cigar}"
        );
    }

    /// Spawns `smx-cli serve` over `dir`, optionally with a schedule in
    /// the environment; returns the child, its bound address, and
    /// whatever stderr banner lines arrived before "listening".
    fn spawn_serve(
        cli: &std::path::Path,
        dir: &std::path::Path,
        schedule: Option<&FailSchedule>,
    ) -> (std::process::Child, std::net::SocketAddr, String) {
        let mut cmd = std::process::Command::new(cli);
        cmd.args([
            "serve",
            "--config",
            "dna-edit",
            "--port",
            "0",
            "--jobs",
            "2",
            "--checkpoint-dir",
        ])
        .arg(dir)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped());
        match schedule {
            Some(s) => {
                cmd.env(failpoint::ENV_VAR, s.to_string());
            }
            None => {
                cmd.arg("--resume-sessions");
                cmd.env_remove(failpoint::ENV_VAR);
            }
        }
        let mut child = must(cmd.spawn(), "spawn smx-cli serve");
        let stderr = must_some(child.stderr.take(), "child stderr");
        let banner_rx = {
            let (tx, rx) = std::sync::mpsc::channel::<String>();
            std::thread::spawn(move || {
                use std::io::BufRead as _;
                let mut banner = String::new();
                for line in std::io::BufReader::new(stderr).lines() {
                    let Ok(line) = line else { break };
                    if line.starts_with("# failpoints:") {
                        banner = line.clone();
                    }
                    let _ = tx.send(banner.clone());
                }
            });
            rx
        };
        let stdout = must_some(child.stdout.take(), "child stdout");
        let mut addr: Option<std::net::SocketAddr> = None;
        {
            use std::io::BufRead as _;
            for line in std::io::BufReader::new(stdout).lines() {
                let Ok(line) = line else { break };
                if let Some(rest) = line.strip_prefix("listening on ") {
                    addr = rest.trim().parse().ok();
                    break;
                }
            }
        }
        let addr = must_some(
            addr,
            "child never printed its address (a feature-off smx-cli refuses SMX_FAILPOINTS; \
             rebuild it with --features smx-cli/failpoints)",
        );
        // Give the stderr thread a beat to surface the banner.
        let mut banner = String::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while std::time::Instant::now() < deadline {
            match banner_rx.try_recv() {
                Ok(b) if !b.is_empty() => {
                    banner = b;
                    break;
                }
                _ if schedule.is_none() => break,
                _ => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        (child, addr, banner)
    }

    pub fn main() {
        let args: Vec<String> = std::env::args().collect();
        let quick = quick_mode();
        let pairs = scaled(48, 24);
        let (workload, reference) = build_workload(pairs);

        // Replay mode: one schedule, straight from a failure report.
        if args.get(1).map(String::as_str) == Some("--replay") {
            let text = must_some(args.get(2), "--replay needs a schedule string");
            let schedule = must(FailSchedule::parse(text), "parse replay schedule");
            let crash_mid = schedule.seed % 4 == 3;
            let _wd = watchdog(format!("replay {schedule}"), 120);
            match run_schedule(&schedule, crash_mid, &workload, &reference, "replay") {
                Ok(s) => {
                    println!(
                        "replay {schedule}: PASS ({} rounds, crashed={})",
                        s.rounds, s.crashed
                    );
                }
                Err(v) => {
                    eprintln!("replay {schedule}: VIOLATION: {v}");
                    std::process::exit(1);
                }
            }
            return;
        }

        let seed_base: u64 =
            std::env::var("SMX_CHAOS_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(42);
        let seeds = scaled(32, 8);
        let kill_seeds: Vec<u64> =
            (0..scaled(4, 2) as u64).map(|i| seed_base ^ 0xdead ^ i).collect();

        header(&format!(
            "chaos storm: {CONFIG}, {pairs} pairs/run, {seeds} seeded schedules (base \
             {seed_base}), device faults on underneath"
        ));
        println!("replay any seed with: SMX_CHAOS_SEED={seed_base} ... or a single schedule via");
        println!("  {}", replay_command(&schedule_for(seed_base)));

        shrink_self_test();

        let mut violations: Vec<(FailSchedule, String)> = Vec::new();
        let mut crash_runs = 0usize;
        let mut total_rounds = 0usize;
        for i in 0..seeds as u64 {
            let seed = seed_base.wrapping_add(i);
            let schedule = schedule_for(seed);
            let crash_mid = seed % 4 == 3;
            // The per-seed watchdog is scoped to the single run; the
            // shrinker below re-runs many candidates (each failing one
            // takes STALE_ROUNDS of read-timeouts) and gets its own,
            // longer watchdog.
            let outcome = {
                let _wd = watchdog(format!("seed {seed} ({schedule})"), 120);
                run_schedule(&schedule, crash_mid, &workload, &reference, &format!("s{seed}"))
            };
            match outcome {
                Ok(s) => {
                    total_rounds += s.rounds;
                    crash_runs += usize::from(s.crashed);
                    println!(
                        "seed {seed}: ok in {} round(s){} [{schedule}]",
                        s.rounds,
                        if s.crashed { ", crash+resume" } else { "" }
                    );
                }
                Err(v) => {
                    eprintln!("seed {seed}: VIOLATION: {v}");
                    eprintln!("  shrinking {schedule} ...");
                    let _wd = watchdog(format!("shrink seed {seed}"), 600);
                    let minimal = shrink(&schedule, &mut |cand| {
                        run_schedule(cand, crash_mid, &workload, &reference, "shrink").is_err()
                    });
                    eprintln!("  minimal repro: {minimal}");
                    eprintln!("  replay: {}", replay_command(&minimal));
                    violations.push((minimal, v));
                }
            }
        }

        let qstats = quarantine_liveness_phase(quick);
        let kill_runs = kill_process_phase(&kill_seeds, &workload, &reference);

        println!(
            "chaos storm: {seeds} schedules ({crash_runs} with crash+resume, {total_rounds} \
             total rounds), {kill_runs} process-kill runs, {} violation(s)",
            violations.len()
        );

        let mut json = String::from("{\n  \"bench\": \"chaos_storm\",\n");
        json.push_str(&format!("  \"quick\": {quick},\n"));
        json.push_str(&format!("  \"seed_base\": {seed_base},\n"));
        json.push_str(&format!("  \"pairs_per_run\": {pairs},\n"));
        json.push_str(&format!("  \"schedule_runs\": {seeds},\n"));
        json.push_str(&format!("  \"crash_resume_runs\": {crash_runs},\n"));
        json.push_str(&format!("  \"process_kill_runs\": {kill_runs},\n"));
        json.push_str(&format!("  \"total_client_rounds\": {total_rounds},\n"));
        json.push_str(&format!("  \"quarantine_readmissions\": {},\n", qstats.readmissions));
        json.push_str(&format!("  \"violations\": {}\n}}\n", violations.len()));
        let mut f = must(std::fs::File::create("BENCH_chaos.json"), "create BENCH_chaos.json");
        must(f.write_all(json.as_bytes()), "write BENCH_chaos.json");
        println!("wrote BENCH_chaos.json");

        if !violations.is_empty() {
            for (minimal, v) in &violations {
                eprintln!("FAILED: {v}\n  minimal: {minimal}\n  {}", replay_command(minimal));
            }
            std::process::exit(1);
        }
    }
}
