//! **Ablation: configurable element width.** What the runtime-selectable
//! EW buys (paper §4.1, §8's "importance of configurable EW and VL"):
//! compare each configuration running at its native width against being
//! forced onto the widest (8-bit) array, as a fixed-width design would.

use smx::align::{AlignmentConfig, ElementWidth};
use smx::sim::coproc::{BlockShape, CoprocSim, CoprocTimingConfig};
use smx_bench::{header, ratio, row, scaled};

fn main() {
    let len = scaled(4000, 1000);
    header(&format!("Ablation: native EW vs forced 8-bit elements ({len}x{len} blocks)"));
    row(
        &[&"config", &"native EW", &"native cyc", &"ew8 cyc", &"native gain"],
        &[9, 10, 12, 12, 12],
    );
    for config in AlignmentConfig::ALL {
        let native = config.element_width();
        let run = |ew: ElementWidth| {
            let sim = CoprocSim::new(CoprocTimingConfig::for_ew(ew, 4));
            sim.simulate_uniform(BlockShape::from_dims(len, len, ew, false), 8).cycles as f64
        };
        let native_cycles = run(native);
        let wide_cycles = run(ElementWidth::W8);
        row(
            &[
                &config.name(),
                &format!("{native}"),
                &format!("{native_cycles:.0}"),
                &format!("{wide_cycles:.0}"),
                &ratio(wide_cycles, native_cycles),
            ],
            &[9, 10, 12, 12, 12],
        );
    }
    println!();
    println!("narrow elements pack more PEs per tile: the 2-bit configuration does");
    println!("16x the work per cycle of the 8-bit array, which is exactly what a");
    println!("fixed 8-bit DSA gives up (paper: the 8x-32x instruction reduction).");
}
