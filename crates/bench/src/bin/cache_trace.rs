//! **Instrumented claim: blocks fit the private caches (§9.1).** Replays
//! the coprocessor's actual line-access pattern (sequence lines + border
//! lines per supertile) through the functional set-associative cache
//! model and reports L2 hit rates across block sizes — the mechanism
//! behind the paper's near-linear multicore scaling.

use smx::align::{AlignmentConfig, ElementWidth};
use smx::sim::mem::{Cache, LINE_BYTES};
use smx_bench::{header, pct, row, scaled};

/// Replays the supertile access trace of `blocks` score-mode DP-blocks
/// through an L2-sized cache; returns the hit rate.
fn replay(len: usize, ew: ElementWidth, blocks: usize, l2_bytes: u64) -> f64 {
    let mut l2 = Cache::new(l2_bytes, 8);
    let cpl = 512 / ew.bits() as usize; // chars per line
    let st = len.div_ceil(cpl); // supertiles per side
                                // Address map: query at 0x1000_0000, reference at 0x2000_0000,
                                // Δh border row at 0x3000_0000 (reused across supertile rows),
                                // Δv border column buffer at 0x4000_0000.
    for b in 0..blocks as u64 {
        let qbase = 0x1000_0000 + b * 0x0100_0000;
        let rbase = 0x2000_0000 + b * 0x0100_0000;
        let hbase = 0x3000_0000 + b * 0x0100_0000;
        let vbase = 0x4000_0000 + b * 0x0100_0000;
        for si in 0..st as u64 {
            for sj in 0..st as u64 {
                l2.access(qbase + si * LINE_BYTES);
                l2.access(rbase + sj * LINE_BYTES);
                // Border row segment for these columns: load then store.
                l2.access(hbase + sj * LINE_BYTES);
                l2.access(hbase + sj * LINE_BYTES);
                // Border column segment for these rows.
                l2.access(vbase + si * LINE_BYTES);
                l2.access(vbase + si * LINE_BYTES);
            }
        }
    }
    l2.hit_rate()
}

fn main() {
    header("L2 behaviour of the coprocessor access stream (1 MB private L2, 8-way)");
    row(&[&"config", &"block", &"working set", &"L2 hit rate"], &[9, 8, 12, 12]);
    let big = scaled(100_000, 40_000);
    for config in [AlignmentConfig::DnaEdit, AlignmentConfig::Ascii] {
        let ew = config.element_width();
        for len in [1_000usize, 10_000, big] {
            // Working set: packed query + reference + two border vectors.
            let ws = 2 * len * ew.bits() as usize / 8 + 2 * len * ew.bits() as usize / 8;
            let rate = replay(len, ew, 4, 1 << 20);
            row(
                &[&config.name(), &format!("{len}"), &format!("{} KB", ws >> 10), &pct(rate)],
                &[9, 8, 12, 12],
            );
        }
    }
    println!();
    println!("even 10K-class blocks keep their streams resident in the private L2");
    println!("(the paper's premise for near-linear multicore scaling); only blocks");
    println!("whose packed borders approach the megabyte mark start missing.");
}
