//! **Table 3**: peak GCUPS and area per processing unit across the state
//! of the art, with SMX's four configuration rows.
//!
//! Paper anchors: SMX reaches 1024/256/100/64 peak GCUPS in a 0.34 mm²
//! add-on, i.e. 15.5–18.6x the peak-throughput-per-area of the standalone
//! DSAs while staying configurable.

use smx::algos::baselines::{smx_peak_gcups, table3_entries};
use smx::align::AlignmentConfig;
use smx::physical::area::AreaModel;
use smx_bench::{header, row};

fn main() {
    header("Table 3: peak GCUPS and additional area per processing unit");
    row(
        &[&"study", &"device", &"E", &"G", &"P", &"T", &"PGCUPS/PU", &"mm2/PU", &"GCUPS/mm2"],
        &[14, 10, 2, 2, 2, 2, 10, 8, 10],
    );
    let mark = |b: bool| if b { "y" } else { "." };
    for e in table3_entries() {
        let (ed, gp, pr, tb) = e.supports;
        let eff = e
            .area_mm2_per_unit
            .map_or("-".to_string(), |a| format!("{:.0}", e.pgcups_per_unit / a));
        row(
            &[
                &e.name,
                &e.device,
                &mark(ed),
                &mark(gp),
                &mark(pr),
                &mark(tb),
                &format!("{:.1}", e.pgcups_per_unit),
                &e.area_mm2_per_unit.map_or("-".to_string(), |a| format!("{a:.2}")),
                &eff,
            ],
            &[14, 10, 2, 2, 2, 2, 10, 8, 10],
        );
    }
    let area = AreaModel::new().total_area();
    for cfg in AlignmentConfig::ALL {
        let peak = smx_peak_gcups(cfg);
        let (ed, gp, pr) = match cfg {
            AlignmentConfig::DnaEdit | AlignmentConfig::Ascii => (true, false, false),
            AlignmentConfig::DnaGap => (true, true, false),
            AlignmentConfig::Protein => (true, true, true),
        };
        row(
            &[
                &format!("SMX {}", cfg.name()),
                &"ISA+coproc",
                &mark(ed),
                &mark(gp),
                &mark(pr),
                &mark(true),
                &format!("{peak:.1}"),
                &format!("{area:.2}"),
                &format!("{:.0}", peak / area),
            ],
            &[14, 10, 2, 2, 2, 2, 10, 8, 10],
        );
    }
    println!();
    let smx_eff = smx_peak_gcups(AlignmentConfig::DnaEdit) / area;
    let genasm_eff = 64.0 / 0.33;
    let darwin_eff = 54.2 / 1.34;
    println!(
        "SMX DNA-edit efficiency vs GenASM: {:.1}x, vs Darwin: {:.1}x (paper: 15.5-18.6x)",
        smx_eff / genasm_eff,
        smx_eff / darwin_eff
    );
}
