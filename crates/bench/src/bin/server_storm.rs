//! **Server storm: open-loop load against the framed-TCP front door.**
//!
//! Drives `smx::server` over loopback with Poisson arrivals at a sweep
//! of offered loads, with fault injection on and two adversaries in the
//! mix: a *hot tenant* (low priority, offering ~2x the whole sweep's top
//! load) and a *slow client* (submits a burst, then stops reading).
//! Every submitted pair must come back with a terminal frame — RESULT,
//! typed REJECT, or typed FAIL — so a hang shows up as a harness
//! timeout, not a silent gap. Reports p50/p99/p999 latency vs offered
//! load, flags the saturation knee, and finishes with a crash/resume
//! pass asserting zero acked-but-lost pairs across a simulated kill -9.
//!
//! Writes `BENCH_server.json` with the latency table. Quick mode
//! (`SMX_BENCH_QUICK=1`) shrinks the sweep for CI.

use std::collections::HashMap;
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smx::coproc::faults::{FaultPlan, RecoveryPolicy};
use smx::prelude::*;
use smx::server::proto::{read_frame, write_frame, Request, Response};
use smx::server::tenant::{Priority, TenantPolicy};
use smx::{RetryConfig, Server, ServerConfig, ServerHandle, SmxDevice};
use smx_bench::{header, quick_mode, row};

const CONFIG: AlignmentConfig = AlignmentConfig::DnaEdit;
const PAIR_LEN: usize = 64;

fn storm_device() -> SmxDevice {
    let mut dev = SmxDevice::new(CONFIG, 2).expect("device");
    // Fault injection stays ON for the whole storm: transient tile
    // faults ride through retry/recovery, never to the client.
    dev.enable_fault_injection(FaultPlan::new(42, 5e-4), RecoveryPolicy::default());
    dev
}

fn storm_server(checkpoint: Option<std::path::PathBuf>, resume: bool) -> ServerHandle {
    let cfg = ServerConfig {
        exec: ExecutorConfig {
            jobs: 4,
            queue_cap: 64,
            audit: Some(AuditConfig { rate: 0.05, seed: 9 }),
            breaker: Some(BreakerConfig::default()),
            ..ExecutorConfig::default()
        },
        // A bucket small enough that the hot tenant's 2x flood drains it
        // at the top of the sweep.
        policy: TenantPolicy { rate: 800.0, burst: 200.0 },
        retry: RetryConfig::default(),
        checkpoint_dir: checkpoint,
        resume_sessions: resume,
        ..ServerConfig::default()
    };
    Server::bind(storm_device(), cfg, "127.0.0.1:0").expect("bind")
}

/// One framed-TCP session split into a writer half and a reader half so
/// the submitter never blocks on responses (true open loop).
struct Session {
    wr: TcpStream,
    rd: TcpStream,
}

fn open_session(
    addr: std::net::SocketAddr,
    session: &str,
    tenant: &str,
    prio: Priority,
) -> Session {
    let mut wr = TcpStream::connect(addr).expect("connect");
    wr.set_nodelay(true).ok();
    let mut rd = wr.try_clone().expect("clone stream");
    rd.set_read_timeout(Some(Duration::from_secs(30))).ok();
    let hello = Request::Hello {
        session: session.to_string(),
        tenant: tenant.to_string(),
        priority: prio,
        deadline_ms: 0,
    };
    write_frame(&mut wr, &hello.encode()).expect("hello");
    let reply = read_frame(&mut rd).expect("hello reply").expect("hello frame");
    match Response::parse(&reply).expect("parse hello reply") {
        Response::Ok { .. } => {}
        other => panic!("expected OK, got {other:?}"),
    }
    Session { wr, rd }
}

fn make_pair(rng: &mut StdRng, id: usize) -> Request {
    const BASES: [char; 4] = ['A', 'C', 'G', 'T'];
    let query: String = (0..PAIR_LEN).map(|_| BASES[rng.gen_range(0..4usize)]).collect();
    let mut reference = query.clone();
    let i = rng.gen_range(0..PAIR_LEN);
    reference.replace_range(i..=i, "T");
    Request::Pair { id, query, reference }
}

/// Terminal outcomes one tenant connection observed, with latencies for
/// the completed pairs.
#[derive(Debug, Default)]
struct TenantOutcome {
    latencies_ms: Vec<f64>,
    completed: usize,
    rejected: usize,
    failed: usize,
}

/// Open-loop Poisson submission of `count` pairs at `rate` pairs/sec;
/// a reader thread timestamps terminal frames as they arrive.
fn drive_tenant(
    addr: std::net::SocketAddr,
    tenant: &str,
    prio: Priority,
    rate: f64,
    count: usize,
    seed: u64,
) -> TenantOutcome {
    let mut sess = open_session(addr, "-", tenant, prio);
    let sent: Mutex<HashMap<usize, Instant>> = Mutex::new(HashMap::new());
    let mut out = TenantOutcome::default();

    std::thread::scope(|scope| {
        let sent = &sent;
        let reader = scope.spawn({
            let mut rd = sess.rd.try_clone().expect("clone reader");
            move || {
                let mut o = TenantOutcome::default();
                let mut terminal = 0usize;
                while terminal < count {
                    let frame = read_frame(&mut rd).expect("storm read").expect("storm frame");
                    match Response::parse(&frame).expect("parse storm frame") {
                        Response::Result { id, .. } => {
                            let t0 = sent.lock().unwrap()[&id];
                            o.latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                            o.completed += 1;
                            terminal += 1;
                        }
                        Response::Reject { .. } => {
                            o.rejected += 1;
                            terminal += 1;
                        }
                        Response::Fail { .. } => {
                            o.failed += 1;
                            terminal += 1;
                        }
                        other => panic!("unexpected frame {other:?}"),
                    }
                }
                o
            }
        });

        let mut rng = StdRng::seed_from_u64(seed);
        for id in 0..count {
            let req = make_pair(&mut rng, id);
            sent.lock().unwrap().insert(id, Instant::now());
            write_frame(&mut sess.wr, &req.encode()).expect("storm write");
            // Exponential inter-arrival: open loop, no waiting on acks.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let gap = -u.ln() / rate;
            std::thread::sleep(Duration::from_secs_f64(gap.min(0.05)));
        }
        out = reader.join().expect("reader thread");
    });

    write_frame(&mut sess.wr, &Request::Bye.encode()).ok();
    out
}

/// The slow-client adversary: bursts pairs, then refuses to read for a
/// while. The per-connection outstanding cap must answer the overflow
/// with typed REJECT overloaded frames — never an unbounded buffer or a
/// hang.
fn drive_slow_client(addr: std::net::SocketAddr, count: usize) -> TenantOutcome {
    let mut sess = open_session(addr, "-", "sloth", Priority::Normal);
    let mut rng = StdRng::seed_from_u64(0xfeed);
    for id in 0..count {
        let req = make_pair(&mut rng, id);
        write_frame(&mut sess.wr, &req.encode()).expect("slow write");
    }
    // The adversarial pause: responses pile up server-side.
    std::thread::sleep(Duration::from_millis(300));
    let mut out = TenantOutcome::default();
    let mut terminal = 0usize;
    while terminal < count {
        let frame = read_frame(&mut sess.rd).expect("slow read").expect("slow frame");
        match Response::parse(&frame).expect("parse slow frame") {
            Response::Result { .. } => {
                out.completed += 1;
                terminal += 1;
            }
            Response::Reject { .. } => {
                out.rejected += 1;
                terminal += 1;
            }
            Response::Fail { .. } => {
                out.failed += 1;
                terminal += 1;
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
    write_frame(&mut sess.wr, &Request::Bye.encode()).ok();
    out
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

struct LoadPoint {
    offered: f64,
    p50: f64,
    p99: f64,
    p999: f64,
    hi_p99: f64,
    completed: usize,
    rejected: usize,
    failed: usize,
    hot_shaped: usize,
}

fn run_load(addr: std::net::SocketAddr, offered: f64, seconds: f64) -> LoadPoint {
    // Tenant mix: 25% high, 50% normal on the offered load; the hot
    // tenant (low priority) floods at 2x the *whole* offered load.
    let hi_count = (offered * 0.25 * seconds) as usize;
    let norm_count = (offered * 0.5 * seconds) as usize;
    let hot_count = (offered * 2.0 * seconds) as usize;

    let (hi, norm, hot) = std::thread::scope(|scope| {
        let hi = scope
            .spawn(move || drive_tenant(addr, "hi", Priority::High, offered * 0.25, hi_count, 1));
        let norm = scope.spawn(move || {
            drive_tenant(addr, "norm", Priority::Normal, offered * 0.5, norm_count, 2)
        });
        let hot = scope
            .spawn(move || drive_tenant(addr, "hot", Priority::Low, offered * 2.0, hot_count, 3));
        (hi.join().unwrap(), norm.join().unwrap(), hot.join().unwrap())
    });

    let mut all: Vec<f64> = Vec::new();
    all.extend(&hi.latencies_ms);
    all.extend(&norm.latencies_ms);
    all.extend(&hot.latencies_ms);
    all.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut hi_lat = hi.latencies_ms.clone();
    hi_lat.sort_by(|a, b| a.partial_cmp(b).unwrap());

    LoadPoint {
        offered,
        p50: percentile(&all, 0.50),
        p99: percentile(&all, 0.99),
        p999: percentile(&all, 0.999),
        hi_p99: percentile(&hi_lat, 0.99),
        completed: hi.completed + norm.completed + hot.completed,
        rejected: hi.rejected + norm.rejected + hot.rejected,
        failed: hi.failed + norm.failed + hot.failed,
        hot_shaped: hot.rejected,
    }
}

/// Crash/resume pass: a simulated kill -9 mid-stream must lose nothing
/// the client saw acked, and the restart must replay those pairs
/// byte-identically.
fn crash_resume_pass() {
    let dir = std::env::temp_dir().join(format!("smx-server-storm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");

    let handle = storm_server(Some(dir.clone()), false);
    let addr = handle.addr();
    let mut sess = open_session(addr, "storm", "crash", Priority::Normal);
    let mut rng = StdRng::seed_from_u64(77);
    const PAIRS: usize = 32;
    const ACKS: usize = 10;
    let reqs: Vec<Request> = (0..PAIRS).map(|id| make_pair(&mut rng, id)).collect();
    for req in &reqs {
        write_frame(&mut sess.wr, &req.encode()).expect("crash write");
    }
    let mut acked: HashMap<usize, (i32, String)> = HashMap::new();
    while acked.len() < ACKS {
        let frame = read_frame(&mut sess.rd).expect("crash read").expect("crash frame");
        if let Response::Result { id, score, cigar, .. } = Response::parse(&frame).expect("parse") {
            acked.insert(id, (score, cigar));
        }
    }
    handle.crash();

    let handle = storm_server(Some(dir.clone()), true);
    let mut sess = open_session(handle.addr(), "storm", "crash", Priority::Normal);
    for req in &reqs {
        write_frame(&mut sess.wr, &req.encode()).expect("resume write");
    }
    let mut replayed: HashMap<usize, (i32, String, bool)> = HashMap::new();
    while replayed.len() < PAIRS {
        let frame = read_frame(&mut sess.rd).expect("resume read").expect("resume frame");
        if let Response::Result { id, score, cigar, resumed } =
            Response::parse(&frame).expect("parse")
        {
            replayed.insert(id, (score, cigar, resumed));
        }
    }
    let mut lost = 0usize;
    for (id, (score, cigar)) in &acked {
        let (rs, rc, was_resumed) = &replayed[id];
        assert_eq!(
            (rs, rc.as_str()),
            (&score.clone(), cigar.as_str()),
            "pair {id} not byte-identical across crash"
        );
        if !was_resumed {
            lost += 1;
        }
    }
    assert_eq!(lost, 0, "{lost} acked pairs were recomputed instead of replayed");
    handle.drain();
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "crash/resume: {ACKS} acked before kill -9, all replayed byte-identically, \
         0 acked-but-lost"
    );
}

fn main() {
    let quick = quick_mode();
    let seconds = if quick { 1.5 } else { 4.0 };
    let loads: &[f64] = if quick { &[150.0, 600.0] } else { &[150.0, 600.0, 1500.0, 4000.0] };

    header(&format!(
        "server storm: {CONFIG}, {PAIR_LEN} bp pairs, fault injection on, \
         hot tenant at 2x offered, {seconds} s per point"
    ));
    let widths = [9, 8, 8, 8, 8, 10, 9, 7, 11];
    row(
        &[
            &"offered/s",
            &"p50ms",
            &"p99ms",
            &"p999ms",
            &"hi-p99",
            &"completed",
            &"rejected",
            &"failed",
            &"hot-shaped",
        ],
        &widths,
    );

    let handle = storm_server(None, false);
    let addr = handle.addr();
    let slow = std::thread::spawn(move || drive_slow_client(addr, 24));

    let mut points: Vec<LoadPoint> = Vec::new();
    for &offered in loads {
        let p = run_load(addr, offered, seconds);
        row(
            &[
                &format!("{offered:.0}"),
                &format!("{:.2}", p.p50),
                &format!("{:.2}", p.p99),
                &format!("{:.2}", p.p999),
                &format!("{:.2}", p.hi_p99),
                &p.completed,
                &p.rejected,
                &p.failed,
                &p.hot_shaped,
            ],
            &widths,
        );
        points.push(p);
    }

    let slow_out = slow.join().expect("slow client");
    assert_eq!(
        slow_out.completed + slow_out.rejected + slow_out.failed,
        24,
        "slow client must see a terminal frame per pair"
    );
    println!(
        "slow client: 24 pairs burst then a read stall -> {} completed, {} typed rejects, \
         {} failed (no hangs)",
        slow_out.completed, slow_out.rejected, slow_out.failed
    );

    // The hot tenant must actually be shaped at the top load: either the
    // bucket ran dry (rate-limit rejects) or brownout stepped in.
    let top = points.last().expect("at least one load point");
    assert!(
        top.hot_shaped > 0 || top.rejected > 0,
        "hot tenant was never shaped at {} pairs/s offered",
        top.offered
    );
    // The high-priority class must stay usable while the hot tenant
    // floods: bounded p99, never starved.
    assert!(
        top.hi_p99.is_nan() || top.hi_p99 < 5_000.0,
        "high-priority p99 blew past 5 s: {:.1} ms",
        top.hi_p99
    );

    // Saturation knee: first load whose overall p99 exceeds 4x the p99
    // at the lightest load.
    let base_p99 = points[0].p99.max(0.5);
    let knee = points.iter().find(|p| p.p99 > 4.0 * base_p99).map(|p| p.offered);
    match knee {
        Some(k) => println!("saturation knee: p99 exceeds 4x baseline at ~{k:.0} pairs/s offered"),
        None => println!("saturation knee: not reached within this sweep"),
    }

    let stats = handle.stats_text();
    println!("--- final /stats ---\n{stats}");
    handle.drain();

    crash_resume_pass();

    let mut json = String::from("{\n  \"bench\": \"server_storm\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"pair_len\": {PAIR_LEN},\n  \"seconds_per_point\": {seconds},\n"));
    json.push_str("  \"loads\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"offered_pairs_per_s\": {:.0}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"p999_ms\": {:.3}, \"high_priority_p99_ms\": {:.3}, \"completed\": {}, \
             \"rejected\": {}, \"failed\": {}}}{}\n",
            p.offered,
            p.p50,
            p.p99,
            p.p999,
            p.hi_p99,
            p.completed,
            p.rejected,
            p.failed,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    match knee {
        Some(k) => json.push_str(&format!("  \"knee_pairs_per_s\": {k:.0}\n")),
        None => json.push_str("  \"knee_pairs_per_s\": null\n"),
    }
    json.push_str("}\n");
    let mut f = std::fs::File::create("BENCH_server.json").expect("create BENCH_server.json");
    f.write_all(json.as_bytes()).expect("write BENCH_server.json");
    println!("wrote BENCH_server.json");
}
