//! **§9.3**: end-to-end application speedups for Minimap2 and DIAMOND by
//! Amdahl composition of the measured kernel speedups.
//!
//! Paper anchors: Minimap2's alignment phase is 70–76% of runtime and
//! accelerates 274x, giving 3.3–4.1x end to end; DIAMOND's alignment is
//! ~99% and accelerates 744x, giving 88.3x.

use smx::algos::xdrop;
use smx::prelude::*;
use smx_bench::{header, row, scaled};

fn amdahl(fraction: f64, speedup: f64) -> f64 {
    1.0 / ((1.0 - fraction) + fraction / speedup)
}

fn main() {
    // Measure the two kernel speedups on the harness's own workloads.
    let len = scaled(10_000, 2_000);
    let mm2 = Dataset::synthetic(
        AlignmentConfig::DnaGap,
        len,
        2,
        smx::datagen::ErrorProfile::pacbio_hifi(),
        93,
    );
    let mut aligner = SmxAligner::new(AlignmentConfig::DnaGap);
    aligner.algorithm(Algorithm::Xdrop {
        band: xdrop::band_for_error_rate(len, 0.02),
        fraction: 0.08,
    });
    let simd = aligner.engine(EngineKind::Simd).run_batch(&mm2.pairs).unwrap();
    let smx = aligner.engine(EngineKind::Smx).run_batch(&mm2.pairs).unwrap();
    let mm2_kernel = simd.timing.cycles / smx.timing.cycles;

    let prot = Dataset::uniprot_like(32, 94);
    let mut paligner = SmxAligner::new(AlignmentConfig::Protein);
    paligner.algorithm(Algorithm::Full).score_only(true);
    let psimd = paligner.engine(EngineKind::Simd).run_batch(&prot.pairs).unwrap();
    let psmx = paligner.engine(EngineKind::Smx).run_batch(&prot.pairs).unwrap();
    let dia_kernel = psimd.timing.cycles / psmx.timing.cycles;

    header("Section 9.3: end-to-end application speedups (Amdahl composition)");
    row(
        &[&"application", &"align %", &"kernel speedup", &"end-to-end", &"paper"],
        &[12, 9, 15, 11, 12],
    );
    for (name, frac_lo, frac_hi, kernel, paper) in [
        ("minimap2", 0.70, 0.76, mm2_kernel, "3.3-4.1x"),
        ("diamond", 0.99, 0.99, dia_kernel, "88.3x"),
    ] {
        let lo = amdahl(frac_lo, kernel);
        let hi = amdahl(frac_hi, kernel);
        let e2e =
            if (lo - hi).abs() < 0.05 { format!("{lo:.1}x") } else { format!("{lo:.1}-{hi:.1}x") };
        row(
            &[
                &name,
                &format!("{:.0}-{:.0}%", frac_lo * 100.0, frac_hi * 100.0),
                &format!("{kernel:.0}x"),
                &e2e,
                &paper,
            ],
            &[12, 9, 15, 11, 12],
        );
    }
    println!();
    println!("paper shape: the end-to-end gain saturates at 1/(1-f): Minimap2 is");
    println!("bounded by its non-alignment 24-30%, DIAMOND is alignment-dominated.");
}
