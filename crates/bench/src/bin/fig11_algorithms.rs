//! **Figure 11**: throughput of SMX-accelerated practical algorithms
//! versus the SIMD baseline on the real-dataset stand-ins.
//!
//! Paper anchors: Hirschberg ~390x on real DNA; banded X-drop ~256x;
//! full protein alignment ~744x.
//!
//! The ONT stand-in is scaled from ~50 kbp to a few kbp so the functional
//! run finishes in seconds; speedups are throughput ratios, which the
//! scaling preserves (see EXPERIMENTS.md).

use smx::algos::xdrop;
use smx::prelude::*;
use smx_bench::{header, ratio, row, scaled};

struct Workload {
    name: &'static str,
    config: AlignmentConfig,
    algorithm: Algorithm,
    pairs: Vec<SeqPair>,
}

fn main() {
    let pb_len = scaled(12_000, 2_000);
    let ont_len = scaled(16_000, 3_000);
    let workloads = vec![
        Workload {
            name: "hirschberg/pacbio",
            config: AlignmentConfig::DnaGap,
            algorithm: Algorithm::Hirschberg,
            pairs: Dataset::synthetic(
                AlignmentConfig::DnaGap,
                pb_len,
                2,
                smx::datagen::ErrorProfile::pacbio_hifi(),
                111,
            )
            .pairs,
        },
        Workload {
            name: "hirschberg/ont",
            config: AlignmentConfig::DnaGap,
            algorithm: Algorithm::Hirschberg,
            pairs: Dataset::synthetic(
                AlignmentConfig::DnaGap,
                ont_len,
                2,
                smx::datagen::ErrorProfile::ont(),
                112,
            )
            .pairs,
        },
        Workload {
            name: "xdrop/pacbio",
            config: AlignmentConfig::DnaGap,
            algorithm: Algorithm::Xdrop {
                band: xdrop::band_for_error_rate(pb_len, 0.02),
                fraction: 0.08,
            },
            pairs: Dataset::synthetic(
                AlignmentConfig::DnaGap,
                pb_len,
                2,
                smx::datagen::ErrorProfile::pacbio_hifi(),
                113,
            )
            .pairs,
        },
        Workload {
            name: "full/uniprot",
            config: AlignmentConfig::Protein,
            algorithm: Algorithm::Full,
            pairs: Dataset::uniprot_like(32, 114).pairs,
        },
    ];

    header("Figure 11: SMX-accelerated algorithm throughput vs SIMD (1 GHz)");
    row(&[&"workload", &"pairs", &"simd aln/s", &"smx aln/s", &"speedup"], &[18, 6, 12, 12, 9]);
    for w in workloads {
        let mut aligner = SmxAligner::new(w.config);
        aligner.algorithm(w.algorithm);
        // Protein-to-protein alignment needs only the score (paper §2.1,
        // §9.2: the core's role reduces to a column reduction).
        aligner.score_only(w.name == "full/uniprot");
        let simd = aligner.engine(EngineKind::Simd).run_batch(&w.pairs).unwrap();
        let smx = aligner.engine(EngineKind::Smx).run_batch(&w.pairs).unwrap();
        row(
            &[
                &w.name,
                &w.pairs.len(),
                &format!("{:.2e}", simd.alignments_per_second()),
                &format!("{:.2e}", smx.alignments_per_second()),
                &ratio(simd.timing.cycles, smx.timing.cycles),
            ],
            &[18, 6, 12, 12, 9],
        );
    }
    println!();
    println!("paper shape: hirschberg highest (~390x), xdrop lower (~256x) due to");
    println!("CPU-coprocessor communication on band strips, protein full highest");
    println!("of all (~744x) because the SIMD baseline pays for submat gathers.");
}
