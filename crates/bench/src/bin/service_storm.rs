//! **Service storm: batch-executor throughput under fault storms.**
//! Drives the resilient batch service ([`BatchExecutor`]) with a pool of
//! workers through seeded fault storms, comparing throughput and routing
//! counters with the circuit breaker disabled vs enabled. At every
//! operating point the outputs are verified byte-identical (score *and*
//! CIGAR) to a fault-free sequential run — the service layer may change
//! *where* a pair computes, never *what* it computes. A second table
//! shows bounded-queue admission: blocking backpressure vs load
//! shedding.
//!
//! Quick mode (`SMX_BENCH_QUICK=1`) shrinks the workload for CI.

use std::time::Instant;

use smx::algos::simd::{self, SimdWorkspace};
use smx::coproc::faults::{FaultPlan, RecoveryPolicy};
use smx::datagen::{Dataset, ErrorProfile};
use smx::prelude::*;
use smx::service::BreakerConfig;
use smx_bench::{csv_artifact, csv_row, header, ratio, row, scaled};

fn main() {
    let config = AlignmentConfig::DnaGap;
    let len = scaled(1200, 200);
    let count = scaled(48, 12);
    let jobs = 4;
    let seed = 42u64;
    let ds = Dataset::synthetic(config, len, count, ErrorProfile::moderate(), 7);
    let pairs: Vec<(Sequence, Sequence)> =
        ds.pairs.iter().map(|p| (p.query.clone(), p.reference.clone())).collect();

    // Fault-free sequential reference: the byte-identity baseline.
    let mut clean_dev = SmxDevice::new(config, 4).expect("device");
    let clean: Vec<Alignment> =
        pairs.iter().map(|(q, r)| clean_dev.align(q, r).expect("clean align")).collect();

    // Streaming score-kernel identity on the storm workload: the scalar
    // and vectorized passes (the audit fast path) must agree with the
    // clean run on every pair before any storm timing runs.
    let scheme = config.scoring();
    let mut ws = SimdWorkspace::new();
    let mut kernel_s = [0.0f64; 2];
    for (i, baseline) in [Baseline::Scalar, Baseline::Simd].into_iter().enumerate() {
        let t0 = Instant::now();
        for ((q, r), g) in pairs.iter().zip(&clean) {
            let p = simd::score_profile(q.codes(), r.codes(), &scheme, baseline, &mut ws);
            assert_eq!(p.score, g.score, "{baseline} kernel diverged from the clean run");
        }
        kernel_s[i] = t0.elapsed().as_secs_f64();
    }
    println!(
        "score kernels byte-identical on storm traffic; {} {} over scalar",
        simd::selected_kernel(Baseline::Simd, &scheme, len, len).name(),
        ratio(kernel_s[0], kernel_s[1]),
    );

    let mut csv = csv_artifact("service_storm");
    csv_row(
        &mut csv,
        &[
            &"rate",
            &"breaker",
            &"ms",
            &"pairs_per_s",
            &"faulted",
            &"software",
            &"probes",
            &"opened",
            &"closed",
            &"identical",
        ],
    );

    header(&format!("service storm: {config}, {count} pairs x {len} bp, {jobs} jobs, seed {seed}"));
    let widths = [6, 8, 8, 9, 8, 9, 7, 7, 7, 10];
    row(
        &[
            &"rate",
            &"breaker",
            &"ms",
            &"pairs/s",
            &"faulted",
            &"software",
            &"probes",
            &"opened",
            &"closed",
            &"output",
        ],
        &widths,
    );

    let breaker_cfg =
        BreakerConfig { window: 8, min_samples: 4, threshold: 0.25, cooldown_pairs: 8, probes: 2 };
    let mut gains: Vec<(f64, f64)> = Vec::new();
    for rate in [0.0, 0.05, 0.1, 0.3] {
        let mut elapsed = [0.0f64; 2];
        for (i, breaker) in [None, Some(breaker_cfg)].into_iter().enumerate() {
            let mut dev = SmxDevice::new(config, 4).expect("device");
            if rate > 0.0 {
                dev.enable_fault_injection(FaultPlan::new(seed, rate), RecoveryPolicy::default());
            }
            let exec = BatchExecutor::new(
                dev,
                ExecutorConfig { jobs, queue_cap: 16, breaker, ..ExecutorConfig::default() },
            )
            .expect("executor");
            let t0 = Instant::now();
            let report = exec.run(&pairs);
            let dt = t0.elapsed().as_secs_f64();
            elapsed[i] = dt;
            let identical = clean.iter().enumerate().all(|(k, g)| {
                report.alignment(k).is_some_and(|a| {
                    a.score == g.score && a.cigar.to_string() == g.cigar.to_string()
                })
            });
            assert!(identical, "rate {rate} breaker {breaker:?}: outputs diverged");
            let s = &report.stats;
            let throughput = count as f64 / dt.max(1e-9);
            let (opened, closed) =
                s.breaker.map_or((0, 0), |b| (b.transitions.opened, b.transitions.closed));
            let tag = if breaker.is_some() { "on" } else { "off" };
            row(
                &[
                    &format!("{rate:.2}"),
                    &tag,
                    &format!("{:.1}", dt * 1e3),
                    &format!("{throughput:.0}"),
                    &s.faulted_pairs,
                    &s.software_pairs,
                    &s.probe_pairs,
                    &opened,
                    &closed,
                    &"identical",
                ],
                &widths,
            );
            csv_row(
                &mut csv,
                &[
                    &rate,
                    &tag,
                    &format!("{:.3}", dt * 1e3),
                    &format!("{throughput:.1}"),
                    &s.faulted_pairs,
                    &s.software_pairs,
                    &s.probe_pairs,
                    &opened,
                    &closed,
                    &"yes",
                ],
            );
        }
        if rate > 0.0 {
            gains.push((rate, elapsed[0] / elapsed[1].max(1e-9)));
        }
    }
    for (rate, gain) in &gains {
        println!("breaker speedup at rate {rate:.2}: {gain:.2}x");
    }

    header("bounded-queue admission: blocking backpressure vs shedding");
    let widths = [8, 10, 10, 10, 7, 10];
    row(&[&"queue", &"policy", &"completed", &"shed", &"depth", &"output"], &widths);
    for (cap, admission) in
        [(16, AdmissionPolicy::Block), (2, AdmissionPolicy::Block), (2, AdmissionPolicy::Shed)]
    {
        let dev = SmxDevice::new(config, 4).expect("device");
        let exec = BatchExecutor::new(
            dev,
            ExecutorConfig { jobs, queue_cap: cap, admission, ..ExecutorConfig::default() },
        )
        .expect("executor");
        let report = exec.run(&pairs);
        let s = &report.stats;
        assert_eq!(s.completed + s.shed, count as u64, "accounting must close");
        // Every pair that did run is byte-identical to the baseline.
        for (k, g) in clean.iter().enumerate() {
            if let Some(a) = report.alignment(k) {
                assert_eq!(a.score, g.score);
                assert_eq!(a.cigar.to_string(), g.cigar.to_string());
            }
        }
        let policy = match admission {
            AdmissionPolicy::Block => "block",
            AdmissionPolicy::Shed => "shed",
        };
        row(&[&cap, &policy, &s.completed, &s.shed, &s.max_queue_depth, &"identical"], &widths);
    }
    println!("\nall outputs byte-identical to the fault-free sequential run");
}
