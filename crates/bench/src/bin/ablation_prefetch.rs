//! **Ablation: latency hiding — workers vs prefetching.** The SMX design
//! hides supertile-fetch latency with multiple workers (paper §5.3). An
//! alternative is per-worker prefetching. This ablation shows the two
//! mechanisms reach similar utilization, and why the paper's choice is
//! cheaper: one engine + N small workers vs deeper per-worker buffering.

use smx::align::{AlignmentConfig, ElementWidth};
use smx::sim::coproc::{BlockShape, CoprocSim, CoprocTimingConfig};
use smx_bench::{header, pct, row, scaled};

fn run(ew: ElementWidth, workers: usize, prefetch: bool, len: usize) -> f64 {
    let mut cfg = CoprocTimingConfig::for_ew(ew, workers);
    cfg.prefetch = prefetch;
    let sim = CoprocSim::new(cfg);
    sim.simulate_uniform(BlockShape::from_dims(len, len, ew, false), workers.max(4)).utilization
}

fn main() {
    let len = scaled(8000, 2000);
    header(&format!("Ablation: worker count vs prefetching ({len}x{len} blocks)"));
    row(
        &[&"config", &"w=1", &"w=1+pf", &"w=2", &"w=2+pf", &"w=4", &"w=4+pf"],
        &[9, 8, 8, 8, 8, 8, 8],
    );
    for config in AlignmentConfig::ALL {
        let ew = config.element_width();
        row(
            &[
                &config.name(),
                &pct(run(ew, 1, false, len)),
                &pct(run(ew, 1, true, len)),
                &pct(run(ew, 2, false, len)),
                &pct(run(ew, 2, true, len)),
                &pct(run(ew, 4, false, len)),
                &pct(run(ew, 4, true, len)),
            ],
            &[9, 8, 8, 8, 8, 8, 8],
        );
    }
    println!();
    println!("prefetching recovers part of the single-worker loss, but multiple");
    println!("workers dominate because they also hide the antidiagonal pipeline");
    println!("stalls — latency the prefetcher cannot touch (paper §5.3's argument).");
}
