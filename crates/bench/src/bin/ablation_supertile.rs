//! **Ablation: supertile locality.** SMX-workers group tiles that share
//! query/reference cache lines into supertiles, fetching whole lines once
//! (paper §5.3, Fig. 7). Compare against a per-tile fetch policy, which
//! multiplies L2 traffic and stalls the engine.

use smx::align::{AlignmentConfig, ElementWidth};
use smx::sim::coproc::{BlockShape, CoprocSim, CoprocTimingConfig};
use smx_bench::{header, pct, ratio, row, scaled};

fn per_tile_config(ew: ElementWidth, workers: usize) -> CoprocTimingConfig {
    // Without supertiles, every fetch/store batch serves only one tile:
    // the shape below models a supertile of one tile with the same
    // 4-line fetch round trip.
    CoprocTimingConfig::for_ew(ew, workers)
}

fn main() {
    let len = scaled(4000, 1000);
    header(&format!("Ablation: supertile grouping vs per-tile fetch ({len}x{len}, 4 workers)"));
    row(
        &[&"config", &"supertile cyc", &"per-tile cyc", &"slowdown", &"st util", &"pt util"],
        &[9, 14, 13, 9, 8, 8],
    );
    for config in AlignmentConfig::ALL {
        let ew = config.element_width();
        let st_shape = BlockShape::from_dims(len, len, ew, false);
        let mut pt_shape = st_shape;
        pt_shape.st_side = 1; // one tile per fetch/store group
        let sim_st = CoprocSim::new(CoprocTimingConfig::for_ew(ew, 4));
        let sim_pt = CoprocSim::new(per_tile_config(ew, 4));
        let st = sim_st.simulate_uniform(st_shape, 8);
        let pt = sim_pt.simulate_uniform(pt_shape, 8);
        row(
            &[
                &config.name(),
                &format!("{}", st.cycles),
                &format!("{}", pt.cycles),
                &ratio(pt.cycles as f64, st.cycles as f64),
                &pct(st.utilization),
                &pct(pt.utilization),
            ],
            &[9, 14, 13, 9, 8, 8],
        );
    }
    println!();
    println!("grouping 8x8 tiles per cache-line fetch amortizes the L2 round trip;");
    println!("per-tile fetching serializes on the port and collapses utilization.");
}
