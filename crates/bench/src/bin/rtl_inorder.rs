//! **§7/§10 context**: SMX-1D on the Table-2 in-order single-issue edge
//! processor — the core the paper's RTL physical design integrates SMX
//! into. Shows that the ISA extension pays off even without an
//! out-of-order engine behind it, and how much the 8-wide Table-1 core
//! adds.

use smx::algos::timing::{estimate_with, BatchWork, EngineKind};
use smx::datagen::ErrorProfile;
use smx::prelude::*;
use smx::sim::cpu::CpuConfig;
use smx::sim::mem::MemParams;
use smx_bench::{header, ratio, row, scaled};

fn main() {
    let len = scaled(1000, 400);
    header(&format!("SMX-1D on the in-order edge core (Table 2) vs the OoO SoC (Table 1), {len}x{len} score-only"));
    row(
        &[&"config", &"inorder simd", &"inorder smx1d", &"speedup", &"ooo smx1d", &"ooo gain"],
        &[9, 13, 14, 9, 12, 9],
    );
    for config in AlignmentConfig::ALL {
        let ds = Dataset::synthetic(config, len, 4, ErrorProfile::moderate(), 201);
        let rep = SmxAligner::new(config)
            .algorithm(Algorithm::Full)
            .score_only(true)
            .run_batch(&ds.pairs)
            .unwrap();
        let work = BatchWork::from_outcomes(config, true, &rep.outcomes);
        let io = (CpuConfig::table2_inorder(), MemParams::table2());
        let ooo = (CpuConfig::table1_ooo(), MemParams::table1());
        let in_simd = estimate_with(EngineKind::Simd, &work, 4, &io.0, &io.1).cycles;
        let in_smx1 = estimate_with(EngineKind::Smx1d, &work, 4, &io.0, &io.1).cycles;
        let ooo_smx1 = estimate_with(EngineKind::Smx1d, &work, 4, &ooo.0, &ooo.1).cycles;
        row(
            &[
                &config.name(),
                &format!("{in_simd:.3e}"),
                &format!("{in_smx1:.3e}"),
                &ratio(in_simd, in_smx1),
                &format!("{ooo_smx1:.3e}"),
                &ratio(in_smx1, ooo_smx1),
            ],
            &[9, 13, 14, 9, 12, 9],
        );
    }
    println!();
    println!("the SMX-1D recurrence chain dominates on both cores, so the narrow");
    println!("in-order pipeline keeps most of the ISA speedup — the property that");
    println!("makes the 0.015 mm^2 edge-core integration (paper §10) worthwhile.");
}
