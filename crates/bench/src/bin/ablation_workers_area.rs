//! **Ablation: worker count vs silicon (paper §8.1).** "Beyond 4 workers,
//! performance gains are marginal, making the area increase
//! unjustifiable" — this harness combines the utilization sweep with the
//! area model into throughput-per-mm², showing where the knee sits.

use smx::align::{AlignmentConfig, ElementWidth};
use smx::physical::area::AreaModel;
use smx::sim::coproc::{BlockShape, CoprocSim, CoprocTimingConfig};
use smx_bench::{header, pct, row, scaled};

fn main() {
    let len = scaled(4000, 1500);
    let config = AlignmentConfig::DnaEdit;
    let ew: ElementWidth = config.element_width();
    let shape = BlockShape::from_dims(len, len, ew, false);

    header(&format!(
        "Ablation: workers vs area ({len}x{len} DNA-edit blocks, throughput per mm^2)"
    ));
    row(
        &[&"workers", &"utilization", &"GCUPS", &"SMX-2D mm^2", &"GCUPS/mm^2", &"marginal"],
        &[8, 12, 8, 12, 11, 10],
    );
    let mut prev_gcups = 0.0;
    for workers in 1..=8usize {
        let sim = CoprocSim::new(CoprocTimingConfig::for_ew(ew, workers));
        let r = sim.simulate_uniform(shape, workers.max(4) * 2);
        let gcups = 1024.0 * r.utilization;
        let area = AreaModel { workers }.smx2d_area();
        let marginal = gcups - prev_gcups;
        row(
            &[
                &workers,
                &pct(r.utilization),
                &format!("{gcups:.0}"),
                &format!("{area:.4}"),
                &format!("{:.0}", gcups / area),
                &format!("{marginal:+.0}"),
            ],
            &[8, 12, 8, 12, 11, 10],
        );
        prev_gcups = gcups;
    }
    println!();
    println!("each worker adds 0.0369 mm^2; the marginal GCUPS collapses once the");
    println!("engine saturates, which is why the paper fixes the design at four.");
}
