//! **SIMD streaming-kernel benchmark: full DP vs the streaming score
//! kernels on storm-shaped traffic.** Uses the same `Dataset::synthetic`
//! pairs that feed the service/integrity storms, across the DNA-edit,
//! DNA-gap, and protein configurations. Before any timing, every pair is
//! checked byte-identical across kernels: the scalar, SIMD, and auto
//! [`ScoreProfile`]s must be equal to each other, to the golden DP score,
//! to the golden last-row best, and to the golden CIGAR's operation
//! counts. Then three engines are timed on the identical inputs:
//!
//! * `full-dp` — [`dp::align_codes`] (O(mn) matrix + traceback), the
//!   recompute the streaming score pass lets the audit path avoid;
//! * `scalar`  — the allocation-free streaming row kernel;
//! * `simd`    — the vectorized anti-diagonal kernel (AVX2 when the CPU
//!   has it, portable-autovectorized otherwise).
//!
//! The tentpole target is a >=8x speedup for the SIMD pass over `full-dp`
//! (the path it replaces in the scoreboard audit); scalar-vs-simd is
//! reported alongside. Quick mode (`SMX_BENCH_QUICK=1`) shrinks the
//! workload for CI.

use std::hint::black_box;
use std::time::Instant;

use smx::algos::simd::{self, Baseline, ScoreProfile, SimdWorkspace};
use smx::align::dp;
use smx::datagen::{Dataset, ErrorProfile};
use smx::prelude::*;
use smx_bench::{csv_artifact, csv_row, header, ratio, row, scaled};

fn main() {
    let len = scaled(1024, 160);
    let count = scaled(48, 10);
    let reps = scaled(3, 1);
    let seed = 7u64;

    let mut csv = csv_artifact("simd_bench");
    csv_row(
        &mut csv,
        &[&"config", &"engine", &"kernel", &"ms", &"gcups", &"vs_full_dp", &"vs_scalar"],
    );

    header(&format!(
        "simd streaming score kernel: {count} pairs x {len} bp per config, {reps} reps, seed {seed}"
    ));
    println!(
        "kernels selected: auto={} simd={} (force_scalar={})",
        simd::selected_kernel(Baseline::Auto, &AlignmentConfig::DnaEdit.scoring(), len, len).name(),
        simd::selected_kernel(Baseline::Simd, &AlignmentConfig::DnaEdit.scoring(), len, len).name(),
        simd::force_scalar(),
    );
    let widths = [9, 8, 13, 9, 8, 11, 10, 10];
    row(
        &[&"config", &"engine", &"kernel", &"ms", &"gcups", &"vs full-dp", &"vs scalar", &"output"],
        &widths,
    );

    let mut speedups: Vec<(AlignmentConfig, f64, f64)> = Vec::new();
    for config in [AlignmentConfig::DnaEdit, AlignmentConfig::DnaGap, AlignmentConfig::Protein] {
        let scheme = config.scoring();
        let ds = Dataset::synthetic(config, len, count, ErrorProfile::moderate(), seed);
        let pairs: Vec<(&[u8], &[u8])> =
            ds.pairs.iter().map(|p| (p.query.codes(), p.reference.codes())).collect();
        let cells: u64 = pairs.iter().map(|(q, r)| q.len() as u64 * r.len() as u64).sum();

        // Byte-identity gate: all three baselines must produce the same
        // profile, matching the golden DP on every component. A harness
        // that times diverging kernels measures nothing.
        let mut ws = SimdWorkspace::new();
        for (k, (q, r)) in pairs.iter().enumerate() {
            let golden = dp::align_codes(q, r, &scheme);
            let scalar = simd::score_profile(q, r, &scheme, Baseline::Scalar, &mut ws);
            let vector = simd::score_profile(q, r, &scheme, Baseline::Simd, &mut ws);
            let auto = simd::score_profile(q, r, &scheme, Baseline::Auto, &mut ws);
            assert_eq!(scalar, vector, "{config} pair {k}: scalar vs simd profile diverged");
            assert_eq!(scalar, auto, "{config} pair {k}: scalar vs auto profile diverged");
            assert_eq!(scalar.score, golden.score, "{config} pair {k}: global score diverged");
            let (best, end) = dp::last_row_best(&dp::last_row(q, r, &scheme));
            assert_eq!(
                (scalar.best_score, scalar.best_end),
                (best, end),
                "{config} pair {k}: last-row best diverged"
            );
            let stats = golden.cigar.stats();
            assert_eq!(
                (scalar.matches, scalar.mismatches, scalar.gap_inserts, scalar.gap_deletes),
                (stats.matches, stats.mismatches, stats.insertions, stats.deletions),
                "{config} pair {k}: operation counts diverged"
            );
        }

        let t_full = time(reps, || {
            let mut acc = 0i64;
            for (q, r) in &pairs {
                acc += i64::from(dp::align_codes(q, r, &scheme).score);
            }
            black_box(acc)
        });
        let t_scalar = time(reps, || {
            let mut acc = 0i64;
            for (q, r) in &pairs {
                acc +=
                    i64::from(simd::score_profile(q, r, &scheme, Baseline::Scalar, &mut ws).score);
            }
            black_box(acc)
        });
        let t_simd = time(reps, || {
            let mut acc = 0i64;
            for (q, r) in &pairs {
                acc += i64::from(simd::score_profile(q, r, &scheme, Baseline::Simd, &mut ws).score);
            }
            black_box(acc)
        });

        let kernel = simd::selected_kernel(Baseline::Simd, &scheme, len, len).name();
        for (engine, kname, t) in [
            ("full-dp", "matrix+tb", t_full),
            ("scalar", "scalar", t_scalar),
            ("simd", kernel, t_simd),
        ] {
            let gcups = cells as f64 / t.max(1e-12) / 1e9;
            let vs_full = ratio(t_full, t);
            let vs_scalar = ratio(t_scalar, t);
            row(
                &[
                    &config,
                    &engine,
                    &kname,
                    &format!("{:.1}", t * 1e3),
                    &format!("{gcups:.2}"),
                    &vs_full,
                    &vs_scalar,
                    &"identical",
                ],
                &widths,
            );
            csv_row(
                &mut csv,
                &[
                    &config,
                    &engine,
                    &kname,
                    &format!("{:.3}", t * 1e3),
                    &format!("{gcups:.3}"),
                    &format!("{:.2}", t_full / t.max(1e-12)),
                    &format!("{:.2}", t_scalar / t.max(1e-12)),
                ],
            );
        }
        speedups.push((config, t_full / t_simd.max(1e-12), t_scalar / t_simd.max(1e-12)));
    }

    header("summary (target: simd >= 8x over full-dp, the audit recompute it replaces)");
    for (config, vs_full, vs_scalar) in &speedups {
        let verdict = if *vs_full >= 8.0 { "meets 8x target" } else { "below 8x target" };
        println!(
            "{config}: simd {vs_full:.1}x over full-dp ({vs_scalar:.1}x over scalar) — {verdict}"
        );
    }
    println!("\nall kernel profiles byte-identical to the golden DP on every pair");
    // Keep the type in the public signature exercised so doc moves get caught.
    let _: ScoreProfile = ScoreProfile::default();
}

/// Best-of-`reps` wall time for one full pass over the workload.
fn time<T>(reps: usize, mut pass: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        black_box(pass());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}
