//! **Figure 13 / §10**: physical design — post-PnR area breakdown of the
//! SMX-enhanced processor at 22nm, and power at a 20% activity factor.
//!
//! Paper anchors: SMX-1D 0.0152 mm² (1.37% of the processor, comparable
//! to a 2-cycle 64-bit multiplier); SMX-2D 0.3280 mm² (29.66%, 2.13× the
//! 32 KB L1D), of which engine 0.1136 mm² and 0.0369 mm² per worker;
//! power 0.342 mW.

use smx::physical::area::{AreaModel, L1D_AREA_MM2, PROCESSOR_AREA_MM2};
use smx_bench::{header, row};

fn main() {
    let model = AreaModel::new();
    header("Figure 13b: area breakdown (22nm, post-PnR model, 1 GHz)");
    row(&[&"module", &"mm^2", &"% of CPU"], &[16, 9, 9]);
    for m in model.breakdown() {
        row(
            &[
                &m.name,
                &format!("{:.4}", m.mm2),
                &format!("{:.2}%", m.mm2 / PROCESSOR_AREA_MM2 * 100.0),
            ],
            &[16, 9, 9],
        );
    }
    println!();
    println!(
        "SMX-1D total : {:.4} mm^2 ({:.2}% of processor; paper: 0.0152 / 1.37%)",
        model.smx1d_area(),
        model.smx1d_area() / PROCESSOR_AREA_MM2 * 100.0
    );
    println!(
        "SMX-2D total : {:.4} mm^2 ({:.2}% of processor; paper: 0.3280 / 29.66%)",
        model.smx2d_area(),
        model.smx2d_area() / PROCESSOR_AREA_MM2 * 100.0
    );
    println!("SMX-2D / L1D : {:.2}x (paper: 2.13x)", model.smx2d_area() / L1D_AREA_MM2);
    println!("SMX total    : {:.4} mm^2 (paper: ~0.34)", model.total_area());
    println!("power @ 20%  : {:.3} mW (paper: 0.342)", model.power_mw(0.2));
}
