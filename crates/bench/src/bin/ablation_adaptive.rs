//! **Ablation: static vs adaptive banding.** A static band must be sized
//! for the *cumulative* drift of the whole read (every structural indel
//! adds up); the adaptive band (Suzuki–Kasahara, paper ref [98]) only
//! needs to cover the largest single event, re-centering after each.
//! This is the software-flexibility argument the SMX hardware is built to
//! serve: the accelerator computes whatever band the algorithm asks for.

use rand::rngs::StdRng;
use rand::SeedableRng;
use smx::align::dp;
use smx::datagen::{dna, ErrorProfile, SeqPair};
use smx::prelude::*;
use smx_bench::{header, row, scaled};

/// Builds reads whose query lacks `events` separated blocks of `sv` bases
/// (total drift `events × sv`), plus a light error channel.
fn multi_sv_pairs(len: usize, sv: usize, events: usize, count: usize, seed: u64) -> Vec<SeqPair> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let reference = dna::random_dna(smx::align::Alphabet::Dna2, len, &mut rng);
            let mut codes = Vec::with_capacity(len);
            // Cluster all events in the first half of the read: the drift
            // accumulates early and the static (length-scaled) diagonal
            // sits far from the true path for most of the read.
            let span = len / (2 * events);
            let mut pos = 0usize;
            for e in 0..events {
                let cut = e * span + span / 2;
                codes.extend_from_slice(&reference.codes()[pos..cut]);
                pos = (cut + sv).min(len);
            }
            codes.extend_from_slice(&reference.codes()[pos..]);
            let deleted =
                smx::align::Sequence::from_codes(smx::align::Alphabet::Dna2, codes).unwrap();
            let query = smx::datagen::mutate::mutate(&deleted, &ErrorProfile::moderate(), &mut rng);
            SeqPair { query, reference }
        })
        .collect()
}

fn main() {
    let len = scaled(6000, 1500);
    let sv = len / 40; // e.g. 150 bases per event
    let events = 6;
    let pairs = multi_sv_pairs(len, sv, events, 4, 88);
    let config = AlignmentConfig::DnaEdit;
    let scheme = config.scoring();
    let optimal: Vec<i32> = pairs
        .iter()
        .map(|p| dp::score_only(p.query.codes(), p.reference.codes(), &scheme))
        .collect();

    // Static bands must cover the cumulative drift; adaptive only the
    // largest single event (with ~1.5x margin for re-centering lag).
    let total_drift = events * sv;
    let entries: Vec<(&str, Algorithm)> = vec![
        ("static-largest-event", Algorithm::Banded { band: (3 * sv) / 2 }),
        ("static-total-drift", Algorithm::Banded { band: (4 * total_drift) / 5 }),
        ("adaptive", Algorithm::AdaptiveBanded { width: 2 * sv }),
    ];

    header(&format!(
        "Ablation: static vs adaptive band ({} reads, ~{len} bp, {events} deletions of {sv} bases)",
        pairs.len()
    ));
    row(&[&"band", &"cells (M)", &"recall"], &[18, 11, 8]);
    for (name, algo) in entries {
        let rep = SmxAligner::new(config).algorithm(algo).run_batch(&pairs).unwrap();
        row(
            &[
                &name,
                &format!("{:.1}", rep.work.cells as f64 / 1e6),
                &format!("{:.2}", rep.recall(&optimal)),
            ],
            &[18, 11, 8],
        );
    }
    println!();
    println!("a static band sized for one event misses the read's later drift; one");
    println!("sized for all events computes several times the cells the adaptive");
    println!("band needs — and the gap widens with every additional variant.");
}
