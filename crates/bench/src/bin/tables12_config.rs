//! **Tables 1 & 2**: the simulated SoC configurations, printed from the
//! actual model parameters so the configuration the harnesses run is the
//! configuration reported (no drift between docs and code).

use smx::align::ElementWidth;
use smx::sim::coproc::CoprocTimingConfig;
use smx::sim::cpu::CpuConfig;
use smx::sim::mem::MemParams;
use smx_bench::header;

fn print_cpu(cpu: &CpuConfig) {
    println!("  pipeline       : {} (issue width {})", cpu.name, cpu.width);
    print!("  FU throughput  :");
    for (c, t) in &cpu.throughput {
        print!(" {c:?}={t}");
    }
    println!();
    println!("  mispredict     : {} cycles", cpu.mispredict_penalty);
    println!("  miss exposure  : {}", cpu.exposure);
}

fn print_mem(mem: &MemParams) {
    println!("  L1D            : {} KB, {} cycles", mem.l1_bytes >> 10, mem.l1_latency);
    println!("  private L2     : {} KB, {} cycles", mem.l2_bytes >> 10, mem.l2_latency);
    println!("  LLC (per core) : {} KB, {} cycles", mem.llc_bytes >> 10, mem.llc_latency);
    println!(
        "  DRAM           : {} cycles, {} B/cycle ({:.1} GB/s at 1 GHz)",
        mem.dram_latency, mem.dram_bytes_per_cycle, mem.dram_bytes_per_cycle
    );
}

fn main() {
    header("Table 1: out-of-order SoC configuration (simulation model)");
    print_cpu(&CpuConfig::table1_ooo());
    print_mem(&MemParams::table1());
    println!("  SMX-2D         : 4 workers per core on the private L2 port");

    header("Table 2: in-order edge processor (RTL integration target)");
    print_cpu(&CpuConfig::table2_inorder());
    print_mem(&MemParams::table2());

    header("SMX-engine design points (paper §7)");
    for ew in ElementWidth::ALL {
        let cfg = CoprocTimingConfig::for_ew(ew, 4);
        println!(
            "  EW={}  VL={:<3} tile {:>4} cells/cycle, pipeline {} cycles, L2 latency {}, fetch {} + store {} lines per supertile",
            ew,
            ew.vl(),
            ew.vl() * ew.vl(),
            cfg.pipeline_depth,
            cfg.l2_latency,
            cfg.fetch_lines,
            cfg.store_lines
        );
    }
}
