//! **Figure 14**: alignments/s and recall of SMX against the state of the
//! art on the ONT stand-in (DNA) and the UniProt stand-in (protein).
//!
//! Paper anchors: SMX(H) 5.9x over GMX(H); 411x over DPX(H); GACT(W) is
//! 2.4x faster than SMX(W) but has zero recall on ONT; SMX(X) is 5.2x
//! slower than GACT with 90% recall; SMX(H) 22.7x slower with 100%
//! recall; a 72-core SMX Grace projects 1.7x over CUDASW++ on an H100.

use smx::algos::baselines;
use smx::algos::xdrop;
use smx::align::dp;
use smx::prelude::*;
use smx_bench::{header, row, scaled};

fn main() {
    let len = scaled(8_000, 2_000);
    // ONT reads spanning structural deletions, as real ultra-long reads
    // do (the paper's window-heuristic recall is zero on ONT).
    let ds = Dataset::ont_sv_like(AlignmentConfig::DnaEdit, len, len / 10, 6, 140);
    let config = AlignmentConfig::DnaEdit;
    let scheme = config.scoring();
    let optimal: Vec<i32> = ds
        .pairs
        .iter()
        .map(|p| dp::score_only(p.query.codes(), p.reference.codes(), &scheme))
        .collect();

    let band = xdrop::band_for_error_rate(len, 0.08);
    let entries: Vec<(&str, Algorithm, EngineKind)> = vec![
        ("GMX (H)", Algorithm::Hirschberg, EngineKind::Gmx),
        ("DPX (H)", Algorithm::Hirschberg, EngineKind::Dpx),
        ("GACT (W)", Algorithm::Window { w: 320, o: 128 }, EngineKind::Gact),
        ("SMX (W)", Algorithm::Window { w: 320, o: 128 }, EngineKind::Smx),
        ("SMX (X)", Algorithm::Xdrop { band, fraction: 0.4 }, EngineKind::Smx),
        ("SMX (H)", Algorithm::Hirschberg, EngineKind::Smx),
    ];

    header(&format!(
        "Figure 14: ONT DNA (~{len} bp, {} pairs), alignments/s and recall",
        ds.pairs.len()
    ));
    row(&[&"system", &"aln/s", &"recall", &"vs SMX(H)"], &[10, 12, 8, 10]);
    let mut smx_h_aps = 0.0;
    let mut results = Vec::new();
    for (name, algorithm, engine) in entries {
        let rep = SmxAligner::new(config)
            .algorithm(algorithm)
            .engine(engine)
            .run_batch(&ds.pairs)
            .unwrap();
        let aps = rep.alignments_per_second();
        let recall = rep.recall(&optimal);
        if name == "SMX (H)" {
            smx_h_aps = aps;
        }
        results.push((name, aps, recall));
    }
    for (name, aps, recall) in &results {
        row(
            &[
                name,
                &format!("{aps:.2e}"),
                &format!("{recall:.2}"),
                &format!("{:.1}x", aps / smx_h_aps),
            ],
            &[10, 12, 8, 10],
        );
    }

    header("Figure 14 (right): protein throughput projection");
    let h100 = baselines::cudasw_h100_effective_gcups();
    let grace = baselines::smx_grace_protein_gcups();
    println!("CUDASW++ 4.0 on H100 (effective): {h100:.0} GCUPS");
    println!("72-core SMX-enhanced Grace at 1 GHz: {grace:.0} GCUPS");
    println!("SMX advantage: {:.1}x (paper: 1.7x)", grace / h100);
    println!();
    println!("paper shape: GACT fastest but zero recall on SV-bearing ONT reads;");
    println!("SMX trades throughput for recall across (W)->(X)->(H); GMX/DPX slower.");
}
