//! **Supplementary sweep: band width vs recall vs work.** The knob behind
//! Fig. 2's banded point and Fig. 14's (X) column: how wide must the band
//! be on ONT-profile reads, and what does each increment cost on SMX?
//! Also contrasts static and adaptive banding along the whole sweep.

use smx::align::dp;
use smx::prelude::*;
use smx_bench::{csv_artifact, csv_row, header, pct, row, scaled};

fn main() {
    let len = scaled(4000, 1200);
    let config = AlignmentConfig::DnaEdit;
    let ds = Dataset::synthetic(config, len, 6, smx::datagen::ErrorProfile::ont(), 555);
    let scheme = config.scoring();
    let optimal: Vec<i32> = ds
        .pairs
        .iter()
        .map(|p| dp::score_only(p.query.codes(), p.reference.codes(), &scheme))
        .collect();

    let mut csv = csv_artifact("sweep_band");
    csv_row(&mut csv, &[&"kind", &"band", &"recall", &"cells", &"smx_cycles"]);
    header(&format!(
        "Band sweep on ONT-profile reads (~{len} bp, {} pairs, edit model)",
        ds.pairs.len()
    ));
    row(&[&"kind", &"band", &"recall", &"cells (M)", &"smx cycles"], &[10, 7, 8, 11, 12]);
    for band in [8usize, 16, 32, 64, 128, 256, 512] {
        for (kind, algo) in [
            ("static", Algorithm::Banded { band }),
            ("adaptive", Algorithm::AdaptiveBanded { width: 2 * band + 1 }),
        ] {
            let rep = SmxAligner::new(config)
                .algorithm(algo)
                .engine(EngineKind::Smx)
                .run_batch(&ds.pairs)
                .unwrap();
            let recall = rep.recall(&optimal);
            csv_row(&mut csv, &[&kind, &band, &recall, &rep.work.cells, &rep.timing.cycles]);
            row(
                &[
                    &kind,
                    &band,
                    &pct(recall),
                    &format!("{:.1}", rep.work.cells as f64 / 1e6),
                    &format!("{:.0}", rep.timing.cycles),
                ],
                &[10, 7, 8, 11, 12],
            );
        }
    }
    println!();
    println!("recall saturates once the band covers the indel random walk of the");
    println!("error process; every extra diagonal past that point is pure cost —");
    println!("the flexibility SMX preserves by leaving band policy to software.");
}
