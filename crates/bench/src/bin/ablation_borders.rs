//! **Ablation: border-only tile storage.** The SMX-2D design keeps only
//! tile borders and recomputes interiors during traceback (paper §5).
//! Compare the memory footprint and writeback traffic against storing
//! full tiles (what a traceback-memory DSA does) and against the
//! software 32-bit matrix.

use smx::align::AlignmentConfig;
use smx::coproc::block::BlockMode;
use smx::coproc::worker::{block_transfer_stats, full_matrix_bytes};
use smx_bench::{header, ratio, row, scaled};

fn main() {
    let len = scaled(10_000, 2_000);
    header(&format!("Ablation: traceback storage for one {len}x{len} DP-block"));
    row(
        &[&"config", &"borders B", &"full-tile B", &"sw 32-bit B", &"vs full", &"vs sw"],
        &[9, 12, 13, 13, 9, 9],
    );
    for config in AlignmentConfig::ALL {
        let ew = config.element_width();
        let stats = block_transfer_stats(len, len, ew, BlockMode::Traceback);
        let borders = stats.border_bytes_stored;
        // Storing every tile interior = the whole matrix at EW bits.
        let full_tiles = full_matrix_bytes(len, len, ew.bits() as usize);
        let software = full_matrix_bytes(len, len, 32);
        row(
            &[
                &config.name(),
                &format!("{borders}"),
                &format!("{full_tiles}"),
                &format!("{software}"),
                &ratio(full_tiles as f64, borders as f64),
                &ratio(software as f64, borders as f64),
            ],
            &[9, 12, 13, 13, 9, 9],
        );
    }
    println!();
    println!("paper shape: borders cut footprint ~VL/2 x vs storing tiles (4-64x");
    println!("over SMX-1D depending on EW) and up to ~256x vs the software matrix,");
    println!("at the price of recomputing path tiles during traceback.");
}
