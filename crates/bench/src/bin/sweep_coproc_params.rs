//! **Design-space sweep: coprocessor sensitivity.** How the SMX-2D
//! utilization responds to its two latency parameters — the engine
//! pipeline depth (set by the 1 GHz timing closure, §7) and the L2 hit
//! latency — for one and four workers. Quantifies the §5.3 argument that
//! worker count is the design's latency-tolerance mechanism.

use smx::align::ElementWidth;
use smx::sim::coproc::{BlockShape, CoprocSim, CoprocTimingConfig};
use smx_bench::{header, pct, row, scaled};

fn util(ew: ElementWidth, workers: usize, depth: u64, l2: u64, len: usize) -> f64 {
    let mut cfg = CoprocTimingConfig::for_ew(ew, workers);
    cfg.pipeline_depth = depth;
    cfg.l2_latency = l2;
    CoprocSim::new(cfg)
        .simulate_uniform(BlockShape::from_dims(len, len, ew, false), workers.max(4))
        .utilization
}

fn main() {
    let len = scaled(4000, 1500);
    let ew = ElementWidth::W2;

    header(&format!("Pipeline-depth sweep (DNA-edit {len}x{len}, L2 latency 18)"));
    row(&[&"depth", &"w=1", &"w=4"], &[7, 8, 8]);
    for depth in [1u64, 3, 5, 7, 10, 14] {
        row(
            &[&depth, &pct(util(ew, 1, depth, 18, len)), &pct(util(ew, 4, depth, 18, len))],
            &[7, 8, 8],
        );
    }

    header(&format!("L2-latency sweep (DNA-edit {len}x{len}, depth 7)"));
    row(&[&"latency", &"w=1", &"w=4"], &[8, 8, 8]);
    for l2 in [6u64, 12, 18, 30, 60, 120] {
        row(&[&l2, &pct(util(ew, 1, 7, l2, len)), &pct(util(ew, 4, 7, l2, len))], &[8, 8, 8]);
    }
    println!();
    println!("one worker bleeds utilization linearly with either latency; four");
    println!("workers flatten both curves — the latency tolerance the paper buys");
    println!("with 0.0369 mm^2 of control per worker instead of deeper buffering.");
}
