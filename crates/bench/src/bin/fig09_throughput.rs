//! **Figure 9**: throughput (DP-blocks per second at 1 GHz) of the SIMD
//! baseline, SMX-1D, SMX-2D, and heterogeneous SMX when aligning blocks
//! of 100×100, 1K×1K, and 10K×10K for the four configurations, in both
//! score-only and full-alignment modes.
//!
//! Paper anchors: score-mode peak speedups over SIMD of ~1465x (DNA-edit),
//! ~379x (DNA-gap), ~778x (protein), ~96x (ASCII); alignment mode ~404x /
//! 299x / 696x / 98x; SMX-1D alone 6-23x.

use smx::algos::timing::{estimate, BatchWork};
use smx::datagen::ErrorProfile;
use smx::prelude::*;
use smx_bench::{csv_artifact, csv_row, header, row, scaled};

fn main() {
    let sizes: Vec<(usize, usize)> = vec![(100, 16), (1000, 8), (scaled(10_000, 2_000), 4)];
    let engines = [EngineKind::Simd, EngineKind::Smx1d, EngineKind::Smx2d, EngineKind::Smx];
    let mut csv = csv_artifact("fig09_throughput");
    csv_row(&mut csv, &[&"mode", &"config", &"size", &"simd", &"smx1d", &"smx2d", &"smx"]);
    for score_only in [true, false] {
        header(&format!(
            "Figure 9 ({}): DP-blocks/s at 1 GHz",
            if score_only { "Score" } else { "Alignment" }
        ));
        row(
            &[&"config", &"size", &"simd", &"smx-1d", &"smx-2d", &"smx", &"smx/simd"],
            &[9, 7, 12, 12, 12, 12, 9],
        );
        for config in AlignmentConfig::ALL {
            for &(len, count) in &sizes {
                let ds = Dataset::synthetic(
                    config,
                    len,
                    count,
                    ErrorProfile::moderate(),
                    90 + len as u64,
                );
                // One functional pass; per-engine timing from the shared
                // work profile.
                let mut aligner = SmxAligner::new(config);
                aligner.algorithm(Algorithm::Full).score_only(score_only);
                let rep = aligner.run_batch(&ds.pairs).unwrap();
                let work = BatchWork::from_outcomes(config, score_only, &rep.outcomes);
                let cycles: Vec<f64> =
                    engines.iter().map(|&e| estimate(e, &work, 4).cycles / count as f64).collect();
                let bps = |c: f64| format!("{:.3e}", 1e9 / c);
                csv_row(
                    &mut csv,
                    &[
                        &if score_only { "score" } else { "alignment" },
                        &config.name(),
                        &len,
                        &bps(cycles[0]),
                        &bps(cycles[1]),
                        &bps(cycles[2]),
                        &bps(cycles[3]),
                    ],
                );
                row(
                    &[
                        &config.name(),
                        &format!("{len}"),
                        &bps(cycles[0]),
                        &bps(cycles[1]),
                        &bps(cycles[2]),
                        &bps(cycles[3]),
                        &format!("{:.0}x", cycles[0] / cycles[3]),
                    ],
                    &[9, 7, 12, 12, 12, 12, 9],
                );
            }
        }
    }
    println!();
    println!("paper shape: SMX-1D gives one order of magnitude over SIMD; SMX-2D/SMX");
    println!("give two-to-three orders for large blocks, with the DNA-edit (EW=2)");
    println!("configuration highest and ASCII (EW=8) lowest; for small blocks and");
    println!("full alignments SMX beats SMX-2D thanks to the SMX-1D traceback.");
}
