//! Border bookkeeping: converting between absolute DP values and shifted
//! deltas at block boundaries, and reconstructing scores from borders
//! (paper §6: "the core then sums all Δh values along the first row and
//! Δv along the last column to obtain the alignment score").

use crate::delta::DeltaBlock;
use smx_align_core::{AlignError, ScoringScheme};

/// The input borders of a DP-block in shifted differential form.
///
/// `top_dh[j]` is the Δh′ of the cell directly above block column `j`;
/// `left_dv[i]` is the Δv′ of the cell directly left of block row `i`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BlockBorders {
    /// Shifted Δh′ inputs along the top (length = block columns).
    pub top_dh: Vec<u8>,
    /// Shifted Δv′ inputs along the left (length = block rows).
    pub left_dv: Vec<u8>,
}

impl BlockBorders {
    /// Fresh borders for a block anchored at the DP-matrix origin.
    #[must_use]
    pub fn fresh(rows: usize, cols: usize) -> BlockBorders {
        BlockBorders { top_dh: vec![0; cols], left_dv: vec![0; rows] }
    }

    /// Borders assembled from neighbor outputs.
    #[must_use]
    pub fn from_neighbors(top_dh: Vec<u8>, left_dv: Vec<u8>) -> BlockBorders {
        BlockBorders { top_dh, left_dv }
    }

    /// Block rows implied by the left border.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.left_dv.len()
    }

    /// Block columns implied by the top border.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.top_dh.len()
    }

    /// Bytes needed to store these borders at `ew_bits` per element —
    /// the coprocessor's border-only footprint.
    #[must_use]
    pub fn storage_bits(&self, ew_bits: u8) -> usize {
        (self.top_dh.len() + self.left_dv.len()) * ew_bits as usize
    }
}

/// Converts a row of absolute DP values into shifted Δh′ deltas.
///
/// `row[j]` are absolute scores `M(i, j0+j)` for `j = 0..=n`; the result
/// has `n` entries `Δh′ = M(i, j) − M(i, j−1) − D`.
///
/// # Errors
///
/// Returns [`AlignError::Internal`] if any delta falls outside `[0, θ]`
/// (which would indicate the row did not come from a valid DP under this
/// scheme).
pub fn absolute_row_to_dh(row: &[i32], scheme: &ScoringScheme) -> Result<Vec<u8>, AlignError> {
    deltas_from_absolute(row, scheme.gap_delete(), scheme.theta(), "Δh")
}

/// Converts a column of absolute DP values into shifted Δv′ deltas.
pub fn absolute_col_to_dv(col: &[i32], scheme: &ScoringScheme) -> Result<Vec<u8>, AlignError> {
    deltas_from_absolute(col, scheme.gap_insert(), scheme.theta(), "Δv")
}

fn deltas_from_absolute(
    values: &[i32],
    shift: i32,
    theta: i32,
    what: &str,
) -> Result<Vec<u8>, AlignError> {
    values
        .windows(2)
        .map(|w| {
            let d = w[1] - w[0] - shift;
            if (0..=theta).contains(&d) {
                Ok(d as u8)
            } else {
                Err(AlignError::Internal(format!("{what} delta {d} outside [0, {theta}]")))
            }
        })
        .collect()
}

/// Reconstructs absolute values from shifted Δh′ deltas and a row anchor.
#[must_use]
pub fn dh_to_absolute_row(anchor: i32, dh: &[u8], scheme: &ScoringScheme) -> Vec<i32> {
    accumulate(anchor, dh, scheme.gap_delete())
}

/// Reconstructs absolute values from shifted Δv′ deltas and a column anchor.
#[must_use]
pub fn dv_to_absolute_col(anchor: i32, dv: &[u8], scheme: &ScoringScheme) -> Vec<i32> {
    accumulate(anchor, dv, scheme.gap_insert())
}

fn accumulate(anchor: i32, deltas: &[u8], shift: i32) -> Vec<i32> {
    let mut out = Vec::with_capacity(deltas.len() + 1);
    out.push(anchor);
    let mut acc = anchor;
    for &d in deltas {
        acc += d as i32 + shift;
        out.push(acc);
    }
    out
}

/// Computes the score at the bottom-right of a block from its anchor
/// `M(i0, j0)`, its input top border, and its computed right column —
/// exactly the Δ-summation the core performs for score-only use cases.
#[must_use]
pub fn block_score(
    anchor: i32,
    borders_in: &BlockBorders,
    block: &DeltaBlock,
    scheme: &ScoringScheme,
) -> i32 {
    let (gi, gd) = (scheme.gap_insert(), scheme.gap_delete());
    let top: i32 = borders_in.top_dh.iter().map(|&d| d as i32 + gd).sum();
    let right: i32 = block.right_dv().iter().map(|&d| d as i32 + gi).sum();
    anchor + top + right
}

#[cfg(test)]
mod tests {
    use super::*;
    use smx_align_core::{dp, ElementWidth};

    #[test]
    fn row_roundtrip() {
        let scheme = ScoringScheme::linear(2, -4, -4).unwrap();
        let q = [0u8, 1, 2, 3];
        let r = [0u8, 2, 1, 3, 3];
        let golden = dp::full_matrix(&q, &r, &scheme);
        let row: Vec<i32> = (0..=r.len()).map(|j| golden.get(2, j)).collect();
        let dh = absolute_row_to_dh(&row, &scheme).unwrap();
        assert_eq!(dh_to_absolute_row(row[0], &dh, &scheme), row);
    }

    #[test]
    fn col_roundtrip() {
        let scheme = ScoringScheme::edit();
        let q = [0u8, 1, 2, 3, 1];
        let r = [0u8, 2, 1];
        let golden = dp::full_matrix(&q, &r, &scheme);
        let col: Vec<i32> = (0..=q.len()).map(|i| golden.get(i, 2)).collect();
        let dv = absolute_col_to_dv(&col, &scheme).unwrap();
        assert_eq!(dv_to_absolute_col(col[0], &dv, &scheme), col);
    }

    #[test]
    fn invalid_deltas_rejected() {
        let scheme = ScoringScheme::edit(); // theta = 2, shift = -1
                                            // A jump of +5 cannot come from an edit DP row.
        assert!(absolute_row_to_dh(&[0, 5], &scheme).is_err());
    }

    #[test]
    fn block_score_matches_golden() {
        let scheme = ScoringScheme::linear(2, -4, -4).unwrap();
        let q = [0u8, 1, 2, 3, 0, 1, 2];
        let r = [0u8, 2, 1, 3, 3, 1];
        let borders = BlockBorders::fresh(q.len(), r.len());
        let blk = DeltaBlock::compute(
            ElementWidth::W4,
            &q,
            &r,
            &scheme,
            &borders.top_dh,
            &borders.left_dv,
        )
        .unwrap();
        let expect = dp::score_only(&q, &r, &scheme);
        assert_eq!(block_score(0, &borders, &blk, &scheme), expect);
    }

    #[test]
    fn storage_bits_counts_borders_only() {
        let b = BlockBorders::fresh(32, 32);
        assert_eq!(b.storage_bits(2), 128);
        assert_eq!(b.rows(), 32);
        assert_eq!(b.cols(), 32);
    }
}
