//! # smx-diffenc
//!
//! The SMX differential-encoding layer (paper §2.4 and §4.1): the Δv/Δh
//! difference recurrences (Eq. 3–4), the shifted non-negative form
//! Δv′/Δh′ with `S′ = S − I − D` (Eq. 5–6), a bit-exact model of the
//! SMX Processing Element (four subtractors + two sign-controlled 3:1
//! muxes, Fig. 5), and the EW-bit lane packing that lets 32/16/10/8
//! DP-elements share one 64-bit word.
//!
//! Everything downstream — the SMX-1D ISA model and the SMX-2D coprocessor
//! model — computes through this crate, and everything here is property
//! tested against the golden absolute-value DP in `smx-align-core`.
//!
//! ## Example: one PE step equals the wide-integer reference
//!
//! ```
//! use smx_align_core::{ElementWidth, ScoringScheme};
//! use smx_diffenc::pe;
//!
//! let scheme = ScoringScheme::edit(); // theta = 2, fits EW = 2 bits
//! let s = scheme.shifted_score(0, 0) as u8;
//! // A fresh cell: boundary deltas are the shifted zeros.
//! assert_eq!(pe::pe_exact(ElementWidth::W2, 0, 0, s), pe::pe_reference(0, 0, s));
//! ```

pub mod affine;
pub mod boundary;
pub mod delta;
pub mod pack;
pub mod pe;

pub use boundary::BlockBorders;
pub use delta::DeltaBlock;
pub use pack::{PackedSeq, PackedVec};
