//! Gap-affine differential encoding — the "SMX-A" extension.
//!
//! The paper's SMX-PE implements the linear-gap difference recurrences;
//! practical read aligners (Minimap2/KSW2) use gap-affine penalties. The
//! Suzuki–Kasahara difference formulation (the paper's reference [99],
//! the kernel inside KSW2) extends to affine gaps with *two* values per
//! direction, which keeps the systolic structure of the SMX engine: each
//! cell receives `(u, x)` from the left and `(v, y)` from above, and
//! produces `(u, x)` to the right and `(v, y)` below.
//!
//! With `H` the score matrix, `E`/`F` the gap matrices, `q` the gap-open
//! and `e` the gap-extend penalty (both positive):
//!
//! ```text
//! u_ij = H_ij − H_{i−1,j}        v_ij = H_ij − H_{i,j−1}
//! x_ij = E_{i,j+1} − H_ij        y_ij = F_{i+1,j} − H_ij
//!
//! z    = max( s(a,b), x_left + u_left, y_up + v_up )
//! u'   = z − v_up                v'   = z − u_left
//! x'   = max(x_left + u_left − z, −q) − e
//! y'   = max(y_up   + v_up   − z, −q) − e
//! ```
//!
//! All four values are bounded (|u|,|v| ≤ s_max + q + e; x,y ∈
//! [−q−e+e, e] shifted), so an affine SMX-PE needs only a slightly wider
//! datapath than the linear one — the area trade the `ext_affine_engine`
//! harness quantifies.

use smx_align_core::dp_affine::AffineScheme;
use smx_align_core::AlignError;

/// The `(u, x)` pair flowing rightward between affine PEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RightFlow {
    /// Vertical score difference `u`.
    pub u: i32,
    /// Deletion-gap difference `x`.
    pub x: i32,
}

/// The `(v, y)` pair flowing downward between affine PEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DownFlow {
    /// Horizontal score difference `v`.
    pub v: i32,
    /// Insertion-gap difference `y`.
    pub y: i32,
}

/// Penalties in the positive-cost form the recurrences use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AffinePenalties {
    /// Match score (≥ 0).
    pub match_score: i32,
    /// Mismatch score (≤ 0).
    pub mismatch: i32,
    /// Gap-open penalty `q` (> 0 cost).
    pub q: i32,
    /// Gap-extend penalty `e` (> 0 cost).
    pub e: i32,
}

impl AffinePenalties {
    /// Converts from the maximizing [`AffineScheme`].
    ///
    /// # Errors
    ///
    /// Returns [`AlignError::InvalidScoring`] if the extend penalty is
    /// zero (the recurrences need `e > 0`).
    pub fn from_scheme(scheme: &AffineScheme) -> Result<AffinePenalties, AlignError> {
        if scheme.gap_extend >= 0 {
            return Err(AlignError::InvalidScoring("affine extend must be negative".into()));
        }
        Ok(AffinePenalties {
            match_score: scheme.match_score,
            mismatch: scheme.mismatch,
            q: -scheme.gap_open,
            e: -scheme.gap_extend,
        })
    }

    fn s(&self, a: u8, b: u8) -> i32 {
        if a == b {
            self.match_score
        } else {
            self.mismatch
        }
    }

    /// Bound on `|u|, |v|` (the datapath-width driver of an affine PE).
    #[must_use]
    pub fn uv_bound(&self) -> i32 {
        self.match_score.max(-self.mismatch) + self.q + self.e
    }

    /// Bits per `u`/`v` value in a signed hardware representation.
    #[must_use]
    pub fn uv_bits(&self) -> u32 {
        32 - (2 * self.uv_bound() + 1).leading_zeros()
    }
}

/// One affine PE step: Fig. 5's datapath generalized to two values per
/// direction.
#[must_use]
pub fn affine_pe(
    pen: &AffinePenalties,
    a: u8,
    b: u8,
    left: RightFlow,
    up: DownFlow,
) -> (RightFlow, DownFlow) {
    let s = pen.s(a, b);
    let from_e = left.x + left.u;
    let from_f = up.y + up.v;
    let z = s.max(from_e).max(from_f);
    let u_out = z - up.v;
    let v_out = z - left.u;
    let x_out = (from_e - z).max(-pen.q) - pen.e;
    let y_out = (from_f - z).max(-pen.q) - pen.e;
    (RightFlow { u: u_out, x: x_out }, DownFlow { v: v_out, y: y_out })
}

/// Fresh (origin-anchored, global-alignment) borders for an `m × n`
/// affine block: the `(v, y)` inputs of the top row and the `(u, x)`
/// inputs of the left column.
#[must_use]
pub fn fresh_borders(pen: &AffinePenalties, m: usize, n: usize) -> (Vec<DownFlow>, Vec<RightFlow>) {
    let top: Vec<DownFlow> = (0..n)
        .map(|j| {
            let v = if j == 0 { -(pen.q + pen.e) } else { -pen.e };
            DownFlow { v, y: -(pen.q + pen.e) }
        })
        .collect();
    let left: Vec<RightFlow> = (0..m)
        .map(|i| {
            let u = if i == 0 { -(pen.q + pen.e) } else { -pen.e };
            RightFlow { u, x: -(pen.q + pen.e) }
        })
        .collect();
    (top, left)
}

/// A fully computed affine block's output borders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffineBlockOut {
    /// `(u, x)` leaving each row on the right.
    pub right: Vec<RightFlow>,
    /// `(v, y)` leaving each column at the bottom.
    pub bottom: Vec<DownFlow>,
}

/// Computes an affine DP block from input borders (the functional model
/// of an affine SMX-engine sweep).
///
/// # Errors
///
/// Returns [`AlignError::Internal`] on border-length mismatches and
/// [`AlignError::EmptySequence`] for empty inputs.
pub fn affine_block(
    pen: &AffinePenalties,
    query: &[u8],
    reference: &[u8],
    top: &[DownFlow],
    left: &[RightFlow],
) -> Result<AffineBlockOut, AlignError> {
    let (m, n) = (query.len(), reference.len());
    if m == 0 || n == 0 {
        return Err(AlignError::EmptySequence);
    }
    if top.len() != n || left.len() != m {
        return Err(AlignError::Internal(format!(
            "affine borders ({}, {}) do not match block ({m}, {n})",
            top.len(),
            left.len()
        )));
    }
    let mut down = top.to_vec();
    let mut right = Vec::with_capacity(m);
    for (i, &qc) in query.iter().enumerate() {
        let mut flow = left[i];
        for (j, &rc) in reference.iter().enumerate() {
            let (r, d) = affine_pe(pen, qc, rc, flow, down[j]);
            flow = r;
            down[j] = d;
        }
        right.push(flow);
    }
    Ok(AffineBlockOut { right, bottom: down })
}

/// One column step of the affine chain — the SMX-A analogue of the
/// SMX-1D column instruction. Lane `i` of the column consumes the left
/// `(u, x)` pair from the previous column and the `(v, y)` pair chained
/// from the lane above (`top` for lane 0).
///
/// Returns the new left-flow column (for the next column) and the bottom
/// `(v, y)` pair (for the next row strip).
///
/// # Panics
///
/// Panics if `q_col` and `left` lengths differ.
#[must_use]
pub fn affine_column_step(
    pen: &AffinePenalties,
    q_col: &[u8],
    r_char: u8,
    left: &[RightFlow],
    top: DownFlow,
) -> (Vec<RightFlow>, DownFlow) {
    assert_eq!(q_col.len(), left.len(), "query column and left flows must match");
    let mut out = Vec::with_capacity(left.len());
    let mut down = top;
    for (&qc, &l) in q_col.iter().zip(left) {
        let (r, d) = affine_pe(pen, qc, r_char, l, down);
        out.push(r);
        down = d;
    }
    (out, down)
}

/// Reconstructs the block's bottom-right score from the borders:
/// `H(m,n) = Σ_j v_top(j) + Σ_i u_right(i)` relative to the block anchor.
#[must_use]
pub fn affine_block_score(top: &[DownFlow], out: &AffineBlockOut) -> i32 {
    let top_sum: i32 = top.iter().map(|d| d.v).sum();
    let right_sum: i32 = out.right.iter().map(|r| r.u).sum();
    top_sum + right_sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use smx_align_core::dp_affine;

    fn pen() -> AffinePenalties {
        AffinePenalties::from_scheme(&AffineScheme::minimap2()).unwrap()
    }

    fn golden(q: &[u8], r: &[u8]) -> i32 {
        dp_affine::affine_score(q, r, &AffineScheme::minimap2())
    }

    fn block_score(q: &[u8], r: &[u8]) -> i32 {
        let p = pen();
        let (top, left) = fresh_borders(&p, q.len(), r.len());
        let out = affine_block(&p, q, r, &top, &left).unwrap();
        affine_block_score(&top, &out)
    }

    #[test]
    fn identical_sequences() {
        let q = [0u8, 1, 2, 3, 0, 1];
        assert_eq!(block_score(&q, &q), golden(&q, &q));
    }

    #[test]
    fn single_gap() {
        let r = [0u8, 1, 2, 3, 0, 1, 2, 3];
        let q = [0u8, 1, 2, 3, 2, 3];
        assert_eq!(block_score(&q, &r), golden(&q, &r));
    }

    #[test]
    fn chained_blocks_equal_monolithic() {
        let p = pen();
        let q = [0u8, 1, 2, 3, 0, 1];
        let r = [3u8, 1, 2, 0, 0, 1, 2];
        let (top, left) = fresh_borders(&p, 6, 7);
        let whole = affine_block(&p, &q, &r, &top, &left).unwrap();
        // Split the reference: left block then right block fed by it.
        let l = affine_block(&p, &q, &r[..3], &top[..3], &left).unwrap();
        let rgt = affine_block(&p, &q, &r[3..], &top[3..], &l.right).unwrap();
        assert_eq!(rgt.right, whole.right);
        assert_eq!(rgt.bottom, whole.bottom[3..].to_vec());
    }

    #[test]
    fn column_steps_compose_to_block() {
        // Sweeping columns with affine_column_step must equal the
        // row-major affine_block.
        let p = pen();
        let q = [0u8, 1, 2, 3, 0];
        let r = [3u8, 1, 2, 0, 0, 1];
        let (top, left) = fresh_borders(&p, q.len(), r.len());
        let blk = affine_block(&p, &q, &r, &top, &left).unwrap();
        let mut left_col = left.clone();
        let mut bottoms = Vec::new();
        for (j, &rc) in r.iter().enumerate() {
            let (next, bottom) = affine_column_step(&p, &q, rc, &left_col, top[j]);
            left_col = next;
            bottoms.push(bottom);
        }
        assert_eq!(left_col, blk.right);
        assert_eq!(bottoms, blk.bottom);
    }

    #[test]
    fn uv_bound_fits_8_bits_for_minimap2() {
        let p = pen();
        assert_eq!(p.uv_bound(), 4 + 4 + 2);
        assert!(p.uv_bits() <= 8);
    }

    #[test]
    fn wrong_borders_rejected() {
        let p = pen();
        let (top, left) = fresh_borders(&p, 2, 2);
        assert!(affine_block(&p, &[0, 1], &[0, 1, 2], &top, &left).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn affine_blocks_match_gotoh(
            q in proptest::collection::vec(0u8..4, 1..40),
            r in proptest::collection::vec(0u8..4, 1..40),
        ) {
            prop_assert_eq!(block_score(&q, &r), golden(&q, &r));
        }

        #[test]
        fn uv_values_stay_bounded(
            q in proptest::collection::vec(0u8..4, 1..30),
            r in proptest::collection::vec(0u8..4, 1..30),
        ) {
            let p = pen();
            let (top, left) = fresh_borders(&p, q.len(), r.len());
            let out = affine_block(&p, &q, &r, &top, &left).unwrap();
            let bound = p.uv_bound();
            for f in &out.right {
                prop_assert!(f.u.abs() <= bound, "u {}", f.u);
                prop_assert!(f.x <= -p.e && f.x >= -(p.q + p.e), "x {}", f.x);
            }
            for d in &out.bottom {
                prop_assert!(d.v.abs() <= bound, "v {}", d.v);
                prop_assert!(d.y <= -p.e && d.y >= -(p.q + p.e), "y {}", d.y);
            }
        }
    }
}
