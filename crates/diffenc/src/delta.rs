//! Block-level differential DP (paper Eq. 3–6).
//!
//! A *DP-block* is a rectangular region of the DP-matrix computed in
//! shifted differential form. Block inputs are the Δh′ values of the row
//! above it and the Δv′ values of the column left of it; outputs are the
//! Δh′ of its bottom row and the Δv′ of its rightmost column. For a block
//! anchored at the matrix origin the input borders are all zero, because
//! the global-alignment boundary conditions `M_{i,0} = i·I`,
//! `M_{0,j} = j·D` make every boundary delta exactly the shift constant.

use crate::pe;
use smx_align_core::{AlignError, ElementWidth, ScoringScheme};

/// A fully computed DP-block in shifted differential form.
///
/// Stores the complete interior (`m × n` values of Δv′ and Δh′), which is
/// what the traceback recomputation path materializes per tile. The
/// coprocessor's border-only storage keeps just
/// [`bottom_dh`](DeltaBlock::bottom_dh) / [`right_dv`](DeltaBlock::right_dv).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaBlock {
    m: usize,
    n: usize,
    dv: Vec<u8>,
    dh: Vec<u8>,
}

impl DeltaBlock {
    /// Computes a block of `query.len() × reference.len()` DP-elements.
    ///
    /// `top_dh` must hold `reference.len()` shifted Δh′ inputs and
    /// `left_dv` must hold `query.len()` shifted Δv′ inputs.
    ///
    /// # Errors
    ///
    /// Returns [`AlignError::ElementWidthOverflow`] if the scheme's theta
    /// does not fit `ew`, [`AlignError::InvalidScoring`] if the scheme is
    /// not encodable, and [`AlignError::Internal`] on border-length
    /// mismatches.
    pub fn compute(
        ew: ElementWidth,
        query: &[u8],
        reference: &[u8],
        scheme: &ScoringScheme,
        top_dh: &[u8],
        left_dv: &[u8],
    ) -> Result<DeltaBlock, AlignError> {
        scheme.check_encodable()?;
        let theta = scheme.theta();
        if !ew.fits_theta(theta) {
            return Err(AlignError::ElementWidthOverflow { theta, ew_bits: ew.bits() });
        }
        let (m, n) = (query.len(), reference.len());
        if top_dh.len() != n || left_dv.len() != m {
            return Err(AlignError::Internal(format!(
                "border lengths ({}, {}) do not match block ({m}, {n})",
                top_dh.len(),
                left_dv.len()
            )));
        }
        let mut dv = vec![0u8; m * n];
        let mut dh = vec![0u8; m * n];
        // Row-major sweep; Δh′ flows down a column, Δv′ flows right along
        // a row. We keep the "incoming Δh′ per column" in a rolling buffer.
        let mut dh_in: Vec<u8> = top_dh.to_vec();
        for i in 0..m {
            let mut dv_in = left_dv[i];
            for j in 0..n {
                let s = scheme.shifted_score(query[i], reference[j]) as u8;
                let (v, h) = pe::pe_exact(ew, dv_in, dh_in[j], s);
                dv[i * n + j] = v;
                dh[i * n + j] = h;
                dv_in = v;
                dh_in[j] = h;
            }
        }
        Ok(DeltaBlock { m, n, dv, dh })
    }

    /// Fresh borders (all-zero shifted deltas) for an `m × n` block
    /// anchored at the DP-matrix origin.
    #[must_use]
    pub fn fresh_borders(m: usize, n: usize) -> (Vec<u8>, Vec<u8>) {
        (vec![0u8; n], vec![0u8; m])
    }

    /// Query-side size (rows).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.m
    }

    /// Reference-side size (columns).
    #[must_use]
    pub fn cols(&self) -> usize {
        self.n
    }

    /// Shifted Δv′ at local cell `(i, j)` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn dv(&self, i: usize, j: usize) -> u8 {
        assert!(i < self.m && j < self.n);
        self.dv[i * self.n + j]
    }

    /// Shifted Δh′ at local cell `(i, j)` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn dh(&self, i: usize, j: usize) -> u8 {
        assert!(i < self.m && j < self.n);
        self.dh[i * self.n + j]
    }

    /// The Δh′ outputs of the bottom row (inputs for the block below).
    #[must_use]
    pub fn bottom_dh(&self) -> Vec<u8> {
        (0..self.n).map(|j| self.dh(self.m - 1, j)).collect()
    }

    /// The Δv′ outputs of the rightmost column (inputs for the block to
    /// the right).
    #[must_use]
    pub fn right_dv(&self) -> Vec<u8> {
        (0..self.m).map(|i| self.dv(i, self.n - 1)).collect()
    }

    /// Reconstructs the absolute DP value at local interior cell `(i, j)`
    /// (0-based; global cell `(i0+1+i, j0+1+j)`), given the absolute
    /// anchor `M(i0, j0)` at the block's top-left corner and the block's
    /// input left border.
    ///
    /// Walks the left border down to row `i`, then the interior Δh′ values
    /// across row `i`. Used by the traceback path, which converts a tile's
    /// deltas back to absolute scores.
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` is out of range or `left_dv` is shorter than
    /// `i + 1`.
    #[must_use]
    pub fn absolute_at(
        &self,
        anchor: i32,
        scheme: &ScoringScheme,
        left_dv: &[u8],
        i: usize,
        j: usize,
    ) -> i32 {
        let (gi, gd) = (scheme.gap_insert(), scheme.gap_delete());
        let mut v = anchor;
        for &b in &left_dv[..=i] {
            v += b as i32 + gi;
        }
        for l in 0..=j {
            v += self.dh(i, l) as i32 + gd;
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use smx_align_core::dp;

    /// Reconstructs the absolute DP matrix from a DeltaBlock and compares
    /// with the golden model. This is the central correctness property of
    /// the whole encoding.
    fn assert_block_matches_golden(ew: ElementWidth, q: &[u8], r: &[u8], scheme: &ScoringScheme) {
        let (top, left) = DeltaBlock::fresh_borders(q.len(), r.len());
        let blk = DeltaBlock::compute(ew, q, r, scheme, &top, &left).unwrap();
        let golden = dp::full_matrix(q, r, scheme);
        let (gi, gd) = (scheme.gap_insert(), scheme.gap_delete());
        // M[i][j] for i,j >= 1 via prefix sums of unshifted deltas down
        // column j: M[i][j] = M[0][j] + sum_{k=1..=i} Δv[k][j].
        for j in 1..=r.len() {
            let mut acc = golden.get(0, j);
            for i in 1..=q.len() {
                acc += blk.dv(i - 1, j - 1) as i32 + gi;
                assert_eq!(acc, golden.get(i, j), "Δv path at ({i},{j})");
            }
        }
        // And across row i: M[i][j] = M[i][0] + sum Δh.
        for i in 1..=q.len() {
            let mut acc = golden.get(i, 0);
            for j in 1..=r.len() {
                acc += blk.dh(i - 1, j - 1) as i32 + gd;
                assert_eq!(acc, golden.get(i, j), "Δh path at ({i},{j})");
            }
        }
    }

    #[test]
    fn edit_block_matches_golden() {
        let q = [0u8, 1, 2, 3, 0, 1];
        let r = [0u8, 2, 2, 3, 1];
        assert_block_matches_golden(ElementWidth::W2, &q, &r, &ScoringScheme::edit());
    }

    #[test]
    fn gap_block_matches_golden() {
        let q = [0u8, 1, 2, 3, 0, 1, 3, 3];
        let r = [0u8, 2, 2, 3, 1, 0, 0];
        let scheme = ScoringScheme::linear(2, -4, -4).unwrap();
        assert_block_matches_golden(ElementWidth::W4, &q, &r, &scheme);
    }

    #[test]
    fn protein_block_matches_golden() {
        let scheme = ScoringScheme::matrix(smx_align_core::SubstMatrix::blosum50(), -5).unwrap();
        let q: Vec<u8> = b"HEAGAWGHEE".iter().map(|c| c - b'A').collect();
        let r: Vec<u8> = b"PAWHEAE".iter().map(|c| c - b'A').collect();
        assert_block_matches_golden(ElementWidth::W6, &q, &r, &scheme);
    }

    #[test]
    fn chained_blocks_equal_one_big_block() {
        // Split a 6x6 computation into four 3x3 blocks wired through their
        // borders; the composite must equal the monolithic block.
        let q = [0u8, 1, 2, 3, 0, 1];
        let r = [3u8, 2, 2, 3, 1, 0];
        let scheme = ScoringScheme::edit();
        let ew = ElementWidth::W2;
        let (top, left) = DeltaBlock::fresh_borders(6, 6);
        let whole = DeltaBlock::compute(ew, &q, &r, &scheme, &top, &left).unwrap();

        let b00 =
            DeltaBlock::compute(ew, &q[..3], &r[..3], &scheme, &[0, 0, 0], &[0, 0, 0]).unwrap();
        let b01 = DeltaBlock::compute(ew, &q[..3], &r[3..], &scheme, &[0, 0, 0], &b00.right_dv())
            .unwrap();
        let b10 = DeltaBlock::compute(ew, &q[3..], &r[..3], &scheme, &b00.bottom_dh(), &[0, 0, 0])
            .unwrap();
        let b11 =
            DeltaBlock::compute(ew, &q[3..], &r[3..], &scheme, &b01.bottom_dh(), &b10.right_dv())
                .unwrap();

        for j in 0..6 {
            let (blk, jj) = if j < 3 { (&b10, j) } else { (&b11, j - 3) };
            assert_eq!(whole.dh(5, j), blk.dh(2, jj), "bottom row col {j}");
        }
        for i in 0..6 {
            let (blk, ii) = if i < 3 { (&b01, i) } else { (&b11, i - 3) };
            assert_eq!(whole.dv(i, 5), blk.dv(ii, 2), "right col row {i}");
        }
    }

    #[test]
    fn absolute_at_matches_golden() {
        let q = [0u8, 1, 2, 3, 0, 1];
        let r = [3u8, 2, 2, 3, 1];
        let scheme = ScoringScheme::linear(2, -4, -4).unwrap();
        let (top, left) = DeltaBlock::fresh_borders(q.len(), r.len());
        let blk = DeltaBlock::compute(ElementWidth::W4, &q, &r, &scheme, &top, &left).unwrap();
        let golden = dp::full_matrix(&q, &r, &scheme);
        for i in 0..q.len() {
            for j in 0..r.len() {
                assert_eq!(
                    blk.absolute_at(0, &scheme, &left, i, j),
                    golden.get(i + 1, j + 1),
                    "cell ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn rejects_wrong_border_lengths() {
        let r = DeltaBlock::compute(
            ElementWidth::W2,
            &[0, 1],
            &[0, 1],
            &ScoringScheme::edit(),
            &[0],
            &[0, 0],
        );
        assert!(r.is_err());
    }

    #[test]
    fn rejects_theta_overflow() {
        // theta = 10 does not fit 2 bits.
        let scheme = ScoringScheme::linear(2, -4, -4).unwrap();
        let r = DeltaBlock::compute(ElementWidth::W2, &[0], &[0], &scheme, &[0], &[0]);
        assert!(matches!(r, Err(AlignError::ElementWidthOverflow { .. })));
    }

    proptest! {
        #[test]
        fn random_dna_blocks_match_golden(
            q in proptest::collection::vec(0u8..4, 1..24),
            r in proptest::collection::vec(0u8..4, 1..24),
        ) {
            assert_block_matches_golden(ElementWidth::W2, &q, &r, &ScoringScheme::edit());
            let gap = ScoringScheme::linear(2, -4, -4).unwrap();
            assert_block_matches_golden(ElementWidth::W4, &q, &r, &gap);
        }

        #[test]
        fn random_protein_blocks_match_golden(
            q in proptest::collection::vec(0u8..26, 1..16),
            r in proptest::collection::vec(0u8..26, 1..16),
        ) {
            let scheme =
                ScoringScheme::matrix(smx_align_core::SubstMatrix::blosum50(), -5).unwrap();
            assert_block_matches_golden(ElementWidth::W6, &q, &r, &scheme);
        }

        #[test]
        fn deltas_never_exceed_theta(
            q in proptest::collection::vec(0u8..4, 1..20),
            r in proptest::collection::vec(0u8..4, 1..20),
        ) {
            // The §4.1 range theorem: all Δ′ lie in [0, theta].
            let scheme = ScoringScheme::linear(2, -4, -4).unwrap();
            let theta = scheme.theta() as u8;
            let (top, left) = DeltaBlock::fresh_borders(q.len(), r.len());
            let blk = DeltaBlock::compute(ElementWidth::W4, &q, &r, &scheme, &top, &left).unwrap();
            for i in 0..q.len() {
                for j in 0..r.len() {
                    prop_assert!(blk.dv(i, j) <= theta);
                    prop_assert!(blk.dh(i, j) <= theta);
                }
            }
        }
    }
}
