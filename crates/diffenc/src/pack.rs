//! EW-bit lane packing (paper §4, §4.2 `smx.pack`).
//!
//! SMX packs `VL` elements of `EW` bits into a 64-bit word: 32×2-bit,
//! 16×4-bit, 10×6-bit, or 8×8-bit. Both sequence characters (in
//! `smx_query` / `smx_reference`) and shifted DP-deltas (in general-purpose
//! registers) use this layout, lane 0 in the least-significant bits.

use smx_align_core::{AlignError, ElementWidth};

/// A single 64-bit word holding up to `VL` lanes of `EW` bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PackedVec {
    word: u64,
    ew_bits: u8,
}

impl PackedVec {
    /// Packs `lanes` (at most `ew.vl()` values, each < 2^EW) into a word.
    ///
    /// # Errors
    ///
    /// Returns [`AlignError::Internal`] if more than `VL` lanes are given
    /// or any value does not fit `EW` bits.
    pub fn from_lanes(ew: ElementWidth, lanes: &[u8]) -> Result<PackedVec, AlignError> {
        if lanes.len() > ew.vl() {
            return Err(AlignError::Internal(format!(
                "{} lanes exceed VL={} for {ew}",
                lanes.len(),
                ew.vl()
            )));
        }
        let mut word = 0u64;
        for (k, &v) in lanes.iter().enumerate() {
            if u32::from(v) > ew.max_value() {
                return Err(AlignError::Internal(format!("lane value {v} overflows {ew}")));
            }
            word |= u64::from(v) << (k as u32 * u32::from(ew.bits()));
        }
        Ok(PackedVec { word, ew_bits: ew.bits() })
    }

    /// Wraps a raw register value (no validation; hardware semantics).
    #[must_use]
    pub fn from_word(ew: ElementWidth, word: u64) -> PackedVec {
        PackedVec { word, ew_bits: ew.bits() }
    }

    /// The raw 64-bit register value.
    #[must_use]
    pub fn word(self) -> u64 {
        self.word
    }

    /// The element width this vector was packed with.
    #[must_use]
    pub fn ew(self) -> ElementWidth {
        match self.ew_bits {
            2 => ElementWidth::W2,
            4 => ElementWidth::W4,
            6 => ElementWidth::W6,
            _ => ElementWidth::W8,
        }
    }

    /// Extracts lane `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= VL`.
    #[must_use]
    pub fn lane(self, k: usize) -> u8 {
        let ew = self.ew();
        assert!(k < ew.vl(), "lane {k} out of range for {ew}");
        ((self.word >> (k as u32 * u32::from(self.ew_bits))) & u64::from(ew.max_value())) as u8
    }

    /// Replaces lane `k`, returning the new vector.
    ///
    /// # Panics
    ///
    /// Panics if `k >= VL` or `v` does not fit `EW` bits.
    #[must_use]
    pub fn with_lane(self, k: usize, v: u8) -> PackedVec {
        let ew = self.ew();
        assert!(k < ew.vl(), "lane {k} out of range for {ew}");
        assert!(u32::from(v) <= ew.max_value(), "value {v} overflows {ew}");
        let shift = k as u32 * u32::from(self.ew_bits);
        let mask = u64::from(ew.max_value()) << shift;
        PackedVec { word: (self.word & !mask) | (u64::from(v) << shift), ew_bits: self.ew_bits }
    }

    /// Unpacks the first `count` lanes.
    ///
    /// # Panics
    ///
    /// Panics if `count > VL`.
    #[must_use]
    pub fn to_lanes(self, count: usize) -> Vec<u8> {
        (0..count).map(|k| self.lane(k)).collect()
    }

    /// Sum of the first `count` lanes (the `smx.redsum` datapath).
    ///
    /// # Panics
    ///
    /// Panics if `count > VL`.
    #[must_use]
    pub fn lane_sum(self, count: usize) -> u64 {
        (0..count).map(|k| u64::from(self.lane(k))).sum()
    }
}

/// A whole sequence packed `VL` symbols per 64-bit word.
///
/// This is the memory representation the SMX-2D coprocessor streams
/// through cache lines, and the source of `smx_query`/`smx_reference`
/// register loads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedSeq {
    ew: ElementWidth,
    len: usize,
    words: Vec<u64>,
}

impl PackedSeq {
    /// Packs `codes` (each < 2^EW) into words.
    ///
    /// # Errors
    ///
    /// Returns [`AlignError::Internal`] if a code overflows `EW` bits.
    pub fn from_codes(ew: ElementWidth, codes: &[u8]) -> Result<PackedSeq, AlignError> {
        let vl = ew.vl();
        let mut words = Vec::with_capacity(codes.len().div_ceil(vl));
        for chunk in codes.chunks(vl) {
            words.push(PackedVec::from_lanes(ew, chunk)?.word());
        }
        Ok(PackedSeq { ew, len: codes.len(), words })
    }

    /// The element width.
    #[must_use]
    pub fn ew(&self) -> ElementWidth {
        self.ew
    }

    /// Number of symbols.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sequence is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of 64-bit words used.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Memory footprint in bytes (what the coprocessor transfers).
    #[must_use]
    pub fn byte_len(&self) -> usize {
        self.words.len() * 8
    }

    /// Symbol at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    #[must_use]
    pub fn get(&self, idx: usize) -> u8 {
        assert!(idx < self.len, "index {idx} out of range");
        let vl = self.ew.vl();
        PackedVec::from_word(self.ew, self.words[idx / vl]).lane(idx % vl)
    }

    /// Unpacks the whole sequence back to one code per byte.
    #[must_use]
    pub fn unpack(&self) -> Vec<u8> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// A contiguous segment `[start, start+count)` unpacked to codes
    /// (clamped at the sequence end).
    #[must_use]
    pub fn segment(&self, start: usize, count: usize) -> Vec<u8> {
        let end = (start + count).min(self.len);
        (start.min(self.len)..end).map(|i| self.get(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pack_unpack_roundtrip_all_widths() {
        for ew in ElementWidth::ALL {
            let modulus = ew.max_value() as u16 + 1;
            let lanes: Vec<u8> = (0..ew.vl() as u16).map(|k| (k % modulus) as u8).collect();
            let v = PackedVec::from_lanes(ew, &lanes).unwrap();
            assert_eq!(v.to_lanes(lanes.len()), lanes, "{ew}");
        }
    }

    #[test]
    fn rejects_overflow_lane() {
        assert!(PackedVec::from_lanes(ElementWidth::W2, &[4]).is_err());
        assert!(PackedVec::from_lanes(ElementWidth::W6, &[64]).is_err());
    }

    #[test]
    fn rejects_too_many_lanes() {
        let lanes = vec![0u8; 33];
        assert!(PackedVec::from_lanes(ElementWidth::W2, &lanes).is_err());
    }

    #[test]
    fn with_lane_replaces_only_target() {
        let v = PackedVec::from_lanes(ElementWidth::W4, &[1, 2, 3, 4]).unwrap();
        let v2 = v.with_lane(2, 15);
        assert_eq!(v2.to_lanes(4), vec![1, 2, 15, 4]);
        assert_eq!(v.to_lanes(4), vec![1, 2, 3, 4]);
    }

    #[test]
    fn lane_sum_is_redsum() {
        let v = PackedVec::from_lanes(ElementWidth::W8, &[10, 20, 30]).unwrap();
        assert_eq!(v.lane_sum(3), 60);
        assert_eq!(v.lane_sum(8), 60);
    }

    #[test]
    fn w6_uses_only_60_bits() {
        let lanes = vec![63u8; 10];
        let v = PackedVec::from_lanes(ElementWidth::W6, &lanes).unwrap();
        assert_eq!(v.word() >> 60, 0);
    }

    #[test]
    fn seq_footprint_matches_paper_reduction() {
        // 32-bit per element baseline vs 2-bit packing: 16x fewer bytes
        // for the same symbol count (paper: 2-8x vs 8-bit, more vs 32-bit).
        let codes = vec![1u8; 320];
        let packed = PackedSeq::from_codes(ElementWidth::W2, &codes).unwrap();
        assert_eq!(packed.byte_len(), 80);
        assert_eq!(packed.words().len(), 10);
    }

    proptest! {
        #[test]
        fn seq_roundtrip(codes in proptest::collection::vec(0u8..4, 0..200)) {
            let p = PackedSeq::from_codes(ElementWidth::W2, &codes).unwrap();
            prop_assert_eq!(p.unpack(), codes);
        }

        #[test]
        fn seq_segment_matches_slice(
            codes in proptest::collection::vec(0u8..26, 1..120),
            start in 0usize..140,
            count in 0usize..60,
        ) {
            let p = PackedSeq::from_codes(ElementWidth::W6, &codes).unwrap();
            let end = (start + count).min(codes.len());
            let expect: Vec<u8> =
                if start >= codes.len() { vec![] } else { codes[start..end].to_vec() };
            prop_assert_eq!(p.segment(start, count), expect);
        }
    }
}
