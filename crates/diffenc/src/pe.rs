//! The SMX Processing Element (paper §4.3.1, Fig. 5).
//!
//! One PE computes one DP-element in shifted differential form:
//!
//! ```text
//! Δv′_out = max( S′ − Δh′_in,  Δv′_in − Δh′_in,  0 )
//! Δh′_out = max( S′ − Δv′_in,  Δh′_in − Δv′_in,  0 )
//! ```
//!
//! The hardware uses exactly four subtractors — `a = S′ − Δh′`,
//! `b = Δv′ − Δh′`, `c = S′ − Δv′`, `d = Δh′ − Δv′` — whose sign
//! (overflow) bits drive two 3:1 muxes:
//!
//! * `Δv′_out`: if `sign(c) = 0` then (`a` if `sign(a) = 0` else `0`)
//!   else (`b` if `sign(b) = 0` else `0`) — because `a − b = c`, the sign
//!   of `c` decides which of `a`, `b` is larger.
//! * `Δh′_out`: symmetric, with `c − d = a` deciding between `c` and `d`.
//!
//! [`pe_exact`] models this datapath with EW+1-bit two's-complement
//! arithmetic; [`pe_reference`] is the obvious wide-integer version. The
//! two are proven equivalent by property tests for all in-range inputs.

use smx_align_core::ElementWidth;

/// Wide-integer reference PE: plain `max` over `i32`.
///
/// Inputs and outputs are *shifted* values (`Δ′ ∈ [0, θ]`, `S′ ∈ [0, θ]`).
#[must_use]
pub fn pe_reference(dv_in: u8, dh_in: u8, s: u8) -> (u8, u8) {
    let (dv, dh, s) = (dv_in as i32, dh_in as i32, s as i32);
    let dv_out = (s - dh).max(dv - dh).max(0);
    let dh_out = (s - dv).max(dh - dv).max(0);
    (dv_out as u8, dh_out as u8)
}

/// Bit-exact PE: EW+1-bit subtractors with sign-bit-controlled muxes,
/// mirroring the Fig. 5 datapath.
///
/// # Panics
///
/// Debug builds assert that the inputs fit in `ew` bits; release builds
/// mask silently (as the hardware would).
#[must_use]
pub fn pe_exact(ew: ElementWidth, dv_in: u8, dh_in: u8, s: u8) -> (u8, u8) {
    let bits = ew.bits() as u32;
    debug_assert!(u32::from(dv_in) <= ew.max_value(), "dv_in {dv_in} overflows {ew}");
    debug_assert!(u32::from(dh_in) <= ew.max_value(), "dh_in {dh_in} overflows {ew}");
    debug_assert!(u32::from(s) <= ew.max_value(), "s {s} overflows {ew}");
    let mask = (1u16 << (bits + 1)) - 1; // EW+1-bit datapath
    let value_mask = (1u16 << bits) - 1;
    let sign_bit = 1u16 << bits;

    let dv = u16::from(dv_in) & value_mask;
    let dh = u16::from(dh_in) & value_mask;
    let s = u16::from(s) & value_mask;

    // Four subtractors in EW+1-bit two's complement.
    let sub = |x: u16, y: u16| x.wrapping_sub(y) & mask;
    let a = sub(s, dh); // S′ − Δh′
    let b = sub(dv, dh); // Δv′ − Δh′
    let c = sub(s, dv); // S′ − Δv′
    let d = sub(dh, dv); // Δh′ − Δv′
    let neg = |x: u16| x & sign_bit != 0;

    // Δv′ mux: sign(c) picks between a and b (a − b = c); the selected
    // value's own sign picks between it and zero.
    let dv_out = if !neg(c) {
        if !neg(a) {
            a
        } else {
            0
        }
    } else if !neg(b) {
        b
    } else {
        0
    };
    // Δh′ mux: sign(a) picks between c and d (c − d = a).
    let dh_out = if !neg(a) {
        if !neg(c) {
            c
        } else {
            0
        }
    } else if !neg(d) {
        d
    } else {
        0
    };
    ((dv_out & value_mask) as u8, (dh_out & value_mask) as u8)
}

/// Runs a vertical chain of `pe_exact` steps: the SMX-1D column operation.
///
/// Lane `k` computes the DP-element at row `k` of the current column:
/// its `Δv′` input comes from `dv_col_in[k]` (the previous column), its
/// `Δh′` input from the cell above (`dh_top` for lane 0, then the chain).
/// Returns the new column `Δv′` values and the bottom `Δh′` output.
#[must_use]
pub fn pe_chain(ew: ElementWidth, dv_col_in: &[u8], dh_top: u8, s_col: &[u8]) -> (Vec<u8>, u8) {
    assert_eq!(dv_col_in.len(), s_col.len(), "Δv column and S′ column must match");
    let mut dv_out = Vec::with_capacity(dv_col_in.len());
    let mut dh = dh_top;
    for (&dv, &s) in dv_col_in.iter().zip(s_col) {
        let (v, h) = pe_exact(ew, dv, dh, s);
        dv_out.push(v);
        dh = h;
    }
    (dv_out, dh)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pe_matches_reference_exhaustive_small_widths() {
        for ew in [ElementWidth::W2, ElementWidth::W4] {
            let max = ew.max_value() as u8;
            for dv in 0..=max {
                for dh in 0..=max {
                    for s in 0..=max {
                        assert_eq!(
                            pe_exact(ew, dv, dh, s),
                            pe_reference(dv, dh, s),
                            "{ew} dv={dv} dh={dh} s={s}"
                        );
                    }
                }
            }
        }
    }

    proptest! {
        #[test]
        fn pe_matches_reference_w6_w8(dv in 0u8..=255, dh in 0u8..=255, s in 0u8..=255) {
            for ew in [ElementWidth::W6, ElementWidth::W8] {
                let modulus = ew.max_value() as u16 + 1;
                let reduce = |x: u8| (x as u16 % modulus) as u8;
                let (dv, dh, s) = (reduce(dv), reduce(dh), reduce(s));
                prop_assert_eq!(pe_exact(ew, dv, dh, s), pe_reference(dv, dh, s));
            }
        }

        #[test]
        fn outputs_stay_in_range(dv in 0u8..=63, dh in 0u8..=63, s in 0u8..=63) {
            // Closure property: in-range inputs produce in-range outputs,
            // the "no truncation or overflow" claim of §4.1.
            let (v, h) = pe_reference(dv, dh, s);
            let theta = dv.max(dh).max(s);
            prop_assert!(v <= theta);
            prop_assert!(h <= theta);
        }
    }

    #[test]
    fn mutual_dependence_of_first_terms() {
        // Paper §4.1: if the first term (S′ − Δ) is selected in one
        // equation it is also selected in the other — check a case where
        // S′ dominates both.
        let (v, h) = pe_reference(1, 2, 63);
        assert_eq!(v, 61); // S′ − Δh′
        assert_eq!(h, 62); // S′ − Δv′
    }

    #[test]
    fn chain_matches_manual_steps() {
        let ew = ElementWidth::W4;
        let dv_col = [3u8, 0, 7];
        let s_col = [10u8, 4, 10];
        let (out, dh_bot) = pe_chain(ew, &dv_col, 5, &s_col);
        let mut dh = 5u8;
        let mut expect = Vec::new();
        for k in 0..3 {
            let (v, h) = pe_reference(dv_col[k], dh, s_col[k]);
            expect.push(v);
            dh = h;
        }
        assert_eq!(out, expect);
        assert_eq!(dh_bot, dh);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn chain_rejects_mismatched_lengths() {
        let _ = pe_chain(ElementWidth::W2, &[0, 0], 0, &[0]);
    }
}
