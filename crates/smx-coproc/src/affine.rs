//! "SMX-A": a gap-affine SMX-engine extension (score-only).
//!
//! The linear SMX-engine generalizes to affine gaps by carrying two
//! values per border element (see `smx_diffenc::affine`). The systolic
//! structure, supertile blocking, and border-only storage all carry over;
//! each PE roughly doubles in area (two extra adders and a second 3:1
//! mux pair), the trade quantified by the `ext_affine_engine` harness.

use smx_align_core::{AlignError, ElementWidth};
use smx_diffenc::affine::{
    affine_block, affine_block_score, fresh_borders, AffineBlockOut, AffinePenalties, DownFlow,
    RightFlow,
};

/// Functional model of an affine SMX-engine instance.
#[derive(Debug, Clone, Copy)]
pub struct AffineEngine {
    pen: AffinePenalties,
    ew: ElementWidth,
}

impl AffineEngine {
    /// Builds an affine engine; `ew` selects the tile geometry exactly as
    /// in the linear engine.
    ///
    /// # Errors
    ///
    /// Returns [`AlignError::InvalidScoring`] if the penalty ranges do
    /// not fit the `EW+2`-bit affine datapath (u/v need sign plus the
    /// `s_max + q + e` bound).
    pub fn new(ew: ElementWidth, pen: AffinePenalties) -> Result<AffineEngine, AlignError> {
        let needed = pen.uv_bits();
        let available = u32::from(ew.bits()) + 2;
        if needed > available {
            return Err(AlignError::InvalidScoring(format!(
                "affine u/v values need {needed} bits, the EW{}+2 datapath has {available}",
                ew.bits()
            )));
        }
        Ok(AffineEngine { pen, ew })
    }

    /// Tile side (`VL`), matching the linear engine's geometry.
    #[must_use]
    pub fn tile_dim(&self) -> usize {
        self.ew.vl()
    }

    /// The penalties in positive-cost form.
    #[must_use]
    pub fn penalties(&self) -> AffinePenalties {
        self.pen
    }

    /// Computes one tile (≤ `VL × VL`).
    ///
    /// # Errors
    ///
    /// Returns [`AlignError::Internal`] on geometry violations.
    pub fn compute_tile(
        &self,
        q_seg: &[u8],
        r_seg: &[u8],
        top: &[DownFlow],
        left: &[RightFlow],
    ) -> Result<AffineBlockOut, AlignError> {
        let vl = self.tile_dim();
        if q_seg.len() > vl || r_seg.len() > vl {
            return Err(AlignError::Internal(format!(
                "affine tile ({}, {}) exceeds VL={vl}",
                q_seg.len(),
                r_seg.len()
            )));
        }
        affine_block(&self.pen, q_seg, r_seg, top, left)
    }

    /// Computes an arbitrary `m × n` block by sweeping the tile grid and
    /// returns the global affine score (origin-anchored borders).
    ///
    /// # Errors
    ///
    /// Returns [`AlignError::EmptySequence`] for empty inputs.
    pub fn score_block(&self, query: &[u8], reference: &[u8]) -> Result<i32, AlignError> {
        let (m, n) = (query.len(), reference.len());
        if m == 0 || n == 0 {
            return Err(AlignError::EmptySequence);
        }
        let vl = self.tile_dim();
        let (top0, left0) = fresh_borders(&self.pen, m, n);
        let mut dh_carry: Vec<DownFlow> = top0.clone();
        let mut right_all: Vec<RightFlow> = Vec::with_capacity(m);
        for ti in 0..m.div_ceil(vl) {
            let r0 = ti * vl;
            let rows = (m - r0).min(vl);
            let mut dv_carry: Vec<RightFlow> = left0[r0..r0 + rows].to_vec();
            for tj in 0..n.div_ceil(vl) {
                let c0 = tj * vl;
                let cols = (n - c0).min(vl);
                let out = self.compute_tile(
                    &query[r0..r0 + rows],
                    &reference[c0..c0 + cols],
                    &dh_carry[c0..c0 + cols],
                    &dv_carry,
                )?;
                dh_carry[c0..c0 + cols].copy_from_slice(&out.bottom);
                dv_carry = out.right;
            }
            right_all.extend_from_slice(&dv_carry);
        }
        Ok(affine_block_score(&top0, &AffineBlockOut { right: right_all, bottom: dh_carry }))
    }
}

/// Stored per-tile state for affine traceback: input flows and absolute
/// `H` anchors at tile corners.
#[derive(Debug, Clone)]
pub struct AffineStore {
    vl: usize,
    m: usize,
    n: usize,
    t_cols: usize,
    /// `(top flows, left flows)` per tile, row-major.
    inputs: Vec<(Vec<DownFlow>, Vec<RightFlow>)>,
    anchors: Vec<i32>,
}

impl AffineStore {
    fn input(&self, ti: usize, tj: usize) -> &(Vec<DownFlow>, Vec<RightFlow>) {
        &self.inputs[ti * self.t_cols + tj]
    }

    fn anchor(&self, ti: usize, tj: usize) -> i32 {
        self.anchors[ti * self.t_cols + tj]
    }
}

/// An affine block computed with traceback state retained.
#[derive(Debug, Clone)]
pub struct AffineBlockResult {
    /// Bottom-right score relative to the block anchor.
    pub score: i32,
    store: AffineStore,
}

const NEG: i32 = i32::MIN / 4;

impl AffineEngine {
    /// Computes a block keeping every tile's input borders and corner
    /// anchors for traceback (the affine analogue of
    /// [`crate::BlockMode::Traceback`]).
    ///
    /// # Errors
    ///
    /// Returns [`AlignError::EmptySequence`] for empty inputs.
    pub fn compute_block_traceback(
        &self,
        query: &[u8],
        reference: &[u8],
    ) -> Result<AffineBlockResult, AlignError> {
        let (m, n) = (query.len(), reference.len());
        if m == 0 || n == 0 {
            return Err(AlignError::EmptySequence);
        }
        let vl = self.tile_dim();
        let t_rows = m.div_ceil(vl);
        let t_cols = n.div_ceil(vl);
        let (top0, left0) = fresh_borders(&self.pen, m, n);
        let mut dh_carry: Vec<DownFlow> = top0.clone();
        let mut inputs = Vec::with_capacity(t_rows * t_cols);
        let mut anchors = Vec::with_capacity(t_rows * t_cols);
        let mut right_all: Vec<RightFlow> = Vec::with_capacity(m);
        let mut left_anchor = 0i32;
        for ti in 0..t_rows {
            let r0 = ti * vl;
            let rows = (m - r0).min(vl);
            let mut dv_carry: Vec<RightFlow> = left0[r0..r0 + rows].to_vec();
            let mut anchor = left_anchor;
            for tj in 0..t_cols {
                let c0 = tj * vl;
                let cols = (n - c0).min(vl);
                let top_in = dh_carry[c0..c0 + cols].to_vec();
                inputs.push((top_in.clone(), dv_carry.clone()));
                anchors.push(anchor);
                anchor += top_in.iter().map(|d| d.v).sum::<i32>();
                let out = self.compute_tile(
                    &query[r0..r0 + rows],
                    &reference[c0..c0 + cols],
                    &top_in,
                    &dv_carry,
                )?;
                dh_carry[c0..c0 + cols].copy_from_slice(&out.bottom);
                dv_carry = out.right;
            }
            right_all.extend_from_slice(&dv_carry);
            left_anchor += left0[r0..r0 + rows].iter().map(|f| f.u).sum::<i32>();
        }
        let score =
            affine_block_score(&top0, &AffineBlockOut { right: right_all, bottom: dh_carry });
        Ok(AffineBlockResult { score, store: AffineStore { vl, m, n, t_cols, inputs, anchors } })
    }

    /// Traces back an affine block by recomputing the Gotoh layers of the
    /// tiles on the optimal path. The CIGAR re-scores (under affine
    /// penalties) to the block score.
    ///
    /// # Errors
    ///
    /// Returns [`AlignError::Internal`] on inconsistent inputs.
    pub fn traceback(
        &self,
        query: &[u8],
        reference: &[u8],
        result: &AffineBlockResult,
    ) -> Result<smx_align_core::Cigar, AlignError> {
        use smx_align_core::{Cigar, Op};
        let store = &result.store;
        if query.len() != store.m || reference.len() != store.n {
            return Err(AlignError::Internal("sequences do not match stored block".into()));
        }
        let pen = self.pen;
        let (q_pen, e_pen) = (pen.q, pen.e);
        let vl = store.vl;
        let mut cigar = Cigar::new();
        let (mut gi, mut gj) = (store.m, store.n);
        // Traceback layer: 0 = H, 1 = E (deletion), 2 = F (insertion).
        let mut layer = 0u8;

        while gi > 0 || gj > 0 {
            if gi == 0 {
                cigar.push_run(Op::Delete, gj as u32);
                break;
            }
            if gj == 0 {
                cigar.push_run(Op::Insert, gi as u32);
                break;
            }
            let ti = (gi - 1) / vl;
            let tj = (gj - 1) / vl;
            let (r0, c0) = (ti * vl, tj * vl);
            let rows = (store.m - r0).min(vl);
            let cols = (store.n - c0).min(vl);
            let (top_in, left_in) = store.input(ti, tj);
            let q_seg = &query[r0..r0 + rows];
            let r_seg = &reference[c0..c0 + cols];
            let anchor = store.anchor(ti, tj);

            // Recompute absolute H/E/F for the tile.
            let w = cols + 1;
            let mut h = vec![NEG; (rows + 1) * w];
            let mut e = vec![NEG; (rows + 1) * w];
            let mut f = vec![NEG; (rows + 1) * w];
            h[0] = anchor;
            for j in 1..=cols {
                h[j] = h[j - 1] + top_in[j - 1].v;
                f[w + j] = h[j] + top_in[j - 1].y; // F(1, j) from the y flow
            }
            for i in 1..=rows {
                h[i * w] = h[(i - 1) * w] + left_in[i - 1].u;
                e[i * w + 1] = h[i * w] + left_in[i - 1].x; // E(i, 1) from x
            }
            for i in 1..=rows {
                for j in 1..=cols {
                    if j >= 2 {
                        e[i * w + j] =
                            (e[i * w + j - 1] - e_pen).max(h[i * w + j - 1] - q_pen - e_pen);
                    }
                    if i >= 2 {
                        f[i * w + j] =
                            (f[(i - 1) * w + j] - e_pen).max(h[(i - 1) * w + j] - q_pen - e_pen);
                    }
                    let s =
                        if q_seg[i - 1] == r_seg[j - 1] { pen.match_score } else { pen.mismatch };
                    h[i * w + j] = (h[(i - 1) * w + j - 1] + s).max(e[i * w + j]).max(f[i * w + j]);
                }
            }

            // Walk within the tile.
            let mut li = gi - r0;
            let mut lj = gj - c0;
            while li > 0 && lj > 0 {
                match layer {
                    0 => {
                        let here = h[li * w + lj];
                        let s = if q_seg[li - 1] == r_seg[lj - 1] {
                            pen.match_score
                        } else {
                            pen.mismatch
                        };
                        if here == h[(li - 1) * w + lj - 1] + s {
                            cigar.push(if q_seg[li - 1] == r_seg[lj - 1] {
                                Op::Match
                            } else {
                                Op::Mismatch
                            });
                            li -= 1;
                            lj -= 1;
                        } else if here == e[li * w + lj] {
                            layer = 1;
                        } else if here == f[li * w + lj] {
                            layer = 2;
                        } else {
                            return Err(AlignError::Internal(format!(
                                "broken affine H traceback at ({gi}, {gj})"
                            )));
                        }
                    }
                    1 => {
                        // Deletion layer: consume one reference char.
                        let here = e[li * w + lj];
                        cigar.push(Op::Delete);
                        if lj >= 2 && here == e[li * w + lj - 1] - e_pen {
                            // stay in E
                        } else if here == h[li * w + lj - 1] - q_pen - e_pen {
                            layer = 0;
                        } else if lj == 1 {
                            // The gap continues into the tile to the left;
                            // stay in E and cross the border.
                        } else {
                            return Err(AlignError::Internal(format!(
                                "broken affine E traceback at ({gi}, {gj})"
                            )));
                        }
                        lj -= 1;
                    }
                    _ => {
                        let here = f[li * w + lj];
                        cigar.push(Op::Insert);
                        if li >= 2 && here == f[(li - 1) * w + lj] - e_pen {
                            // stay in F
                        } else if here == h[(li - 1) * w + lj] - q_pen - e_pen {
                            layer = 0;
                        } else if li == 1 {
                            // Gap continues into the tile above.
                        } else {
                            return Err(AlignError::Internal(format!(
                                "broken affine F traceback at ({gi}, {gj})"
                            )));
                        }
                        li -= 1;
                    }
                }
                gi = r0 + li;
                gj = c0 + lj;
            }
        }
        let mut out = cigar;
        out.reverse();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use smx_align_core::dp_affine::{affine_rescore, affine_score, AffineScheme};

    fn engine() -> AffineEngine {
        let pen = AffinePenalties::from_scheme(&AffineScheme::minimap2()).unwrap();
        AffineEngine::new(ElementWidth::W4, pen).unwrap()
    }

    fn dna(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % 4) as u8
            })
            .collect()
    }

    #[test]
    fn tiled_blocks_match_gotoh() {
        let e = engine();
        let scheme = AffineScheme::minimap2();
        let q = dna(70, 3);
        let r = dna(55, 9);
        assert_eq!(e.score_block(&q, &r).unwrap(), affine_score(&q, &r, &scheme));
    }

    #[test]
    fn long_gap_consolidation_survives_tiling() {
        // A 40-base gap spans multiple 16-wide tiles: the (u, x) carries
        // must keep the gap open across tile borders.
        let e = engine();
        let scheme = AffineScheme::minimap2();
        let r = dna(100, 7);
        let mut q = r.clone();
        q.drain(30..70);
        assert_eq!(e.score_block(&q, &r).unwrap(), affine_score(&q, &r, &scheme));
    }

    #[test]
    fn datapath_width_validated() {
        // Huge penalties do not fit the EW2+2 = 4-bit signed datapath.
        let pen = AffinePenalties { match_score: 10, mismatch: -20, q: 30, e: 5 };
        assert!(AffineEngine::new(ElementWidth::W2, pen).is_err());
        assert!(AffineEngine::new(ElementWidth::W8, pen).is_ok());
    }

    #[test]
    fn empty_rejected() {
        assert!(engine().score_block(&[], &[0]).is_err());
    }

    #[test]
    fn traceback_rescores_to_block_score() {
        let e = engine();
        let scheme = AffineScheme::minimap2();
        let r = dna(90, 5);
        let mut q = r.clone();
        q.drain(20..45); // long gap crossing tile borders
        q[50] ^= 1;
        let res = e.compute_block_traceback(&q, &r).unwrap();
        assert_eq!(res.score, affine_score(&q, &r, &scheme));
        let cigar = e.traceback(&q, &r, &res).unwrap();
        assert_eq!(affine_rescore(&cigar, &q, &r, &scheme).unwrap(), res.score);
        // The 25-base deletion must appear as one consolidated run.
        let dels: Vec<u32> = cigar
            .runs()
            .iter()
            .filter(|(op, _)| *op == smx_align_core::Op::Delete)
            .map(|&(_, n)| n)
            .collect();
        assert!(dels.contains(&25), "deletions {dels:?}");
    }

    #[test]
    fn traceback_gap_only_edges() {
        let e = engine();
        let scheme = AffineScheme::minimap2();
        let q = dna(5, 3);
        let r = dna(40, 9);
        let res = e.compute_block_traceback(&q, &r).unwrap();
        let cigar = e.traceback(&q, &r, &res).unwrap();
        assert_eq!(affine_rescore(&cigar, &q, &r, &scheme).unwrap(), res.score);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn random_tiled_blocks_match_gotoh(
            q in proptest::collection::vec(0u8..4, 1..80),
            r in proptest::collection::vec(0u8..4, 1..80),
        ) {
            let e = engine();
            let scheme = AffineScheme::minimap2();
            prop_assert_eq!(e.score_block(&q, &r).unwrap(), affine_score(&q, &r, &scheme));
        }

        #[test]
        fn random_tracebacks_rescore(
            q in proptest::collection::vec(0u8..4, 1..60),
            r in proptest::collection::vec(0u8..4, 1..60),
        ) {
            let e = engine();
            let scheme = AffineScheme::minimap2();
            let res = e.compute_block_traceback(&q, &r).unwrap();
            prop_assert_eq!(res.score, affine_score(&q, &r, &scheme));
            let cigar = e.traceback(&q, &r, &res).unwrap();
            prop_assert_eq!(affine_rescore(&cigar, &q, &r, &scheme).unwrap(), res.score);
            prop_assert_eq!(cigar.query_len(), q.len());
            prop_assert_eq!(cigar.reference_len(), r.len());
        }
    }
}
