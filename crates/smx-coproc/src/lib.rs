//! # smx-coproc
//!
//! Functional model of the **SMX-2D coprocessor** (paper §5): the
//! SMX-engine (a 2D systolic array computing one VL×VL DP-tile per cycle),
//! the SMX-workers that partition DP-blocks into supertiles and tiles and
//! manage border storage, and the block-level API the core offloads to.
//!
//! This crate is purely *functional* — it produces bit-exact DP results,
//! border stores, and memory-traffic statistics. Cycle-level timing of the
//! same structures (pipeline occupancy, worker contention, the shared L2
//! port) lives in `smx-sim`.
//!
//! ## Example
//!
//! ```
//! use smx_align_core::AlignmentConfig;
//! use smx_coproc::{BlockMode, SmxCoprocessor};
//!
//! # fn main() -> Result<(), smx_align_core::AlignError> {
//! let cfg = AlignmentConfig::DnaEdit;
//! let coproc = SmxCoprocessor::new(cfg.element_width(), &cfg.scoring(), 4)?;
//! let q = vec![0u8; 100];
//! let r = vec![0u8; 100];
//! let out = coproc.compute_block(&q, &r, None, BlockMode::ScoreOnly)?;
//! assert_eq!(out.score, 0); // perfect match under the edit model
//! # Ok(())
//! # }
//! ```

pub mod affine;
pub mod block;
pub mod control;
pub mod coproc;
pub mod engine;
pub mod faults;
pub mod tile;
pub mod traceback;
pub mod worker;

pub use block::{BlockMode, BlockOutput, TileBorderStore};
pub use control::CancelToken;
pub use coproc::SmxCoprocessor;
pub use engine::SmxEngine;
pub use faults::{FaultEvent, FaultKind, FaultPlan, FaultSession, RecoveryPolicy, RecoveryStats};
pub use tile::{TileInput, TileOutput};
pub use worker::TransferStats;
