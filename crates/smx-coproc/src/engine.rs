//! The SMX-engine (paper §5.2): a 2D array of SMX-PEs computing one
//! `VL × VL` DP-tile per cycle, with per-EW geometry (32×32, 16×16,
//! 10×10, 8×8) and the pipeline depths of the 1 GHz design point.

use crate::tile::{TileInput, TileOutput};
use smx_align_core::{AlignError, ElementWidth, ScoringScheme};
use smx_diffenc::delta::DeltaBlock;
use smx_isa::config::SmxConfig;

/// Functional model of the SMX-engine compute array.
///
/// Holds the validated configuration and scoring scheme (the hardware
/// keeps the substitution matrix in registers so ten columns can be read
/// per cycle — functionally equivalent to a scheme lookup).
#[derive(Debug, Clone)]
pub struct SmxEngine {
    ew: ElementWidth,
    scheme: ScoringScheme,
}

impl SmxEngine {
    /// Builds an engine for `ew` and `scheme`.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation errors (theta overflow,
    /// non-encodable scheme).
    pub fn new(ew: ElementWidth, scheme: &ScoringScheme) -> Result<SmxEngine, AlignError> {
        let _ = SmxConfig::from_scheme(ew, scheme)?;
        Ok(SmxEngine { ew, scheme: scheme.clone() })
    }

    /// The configured element width.
    #[must_use]
    pub fn ew(&self) -> ElementWidth {
        self.ew
    }

    /// The scoring scheme.
    #[must_use]
    pub fn scheme(&self) -> &ScoringScheme {
        &self.scheme
    }

    /// Tile side length (`VL`).
    #[must_use]
    pub fn tile_dim(&self) -> usize {
        self.ew.vl()
    }

    /// Pipeline depth in cycles at the 1 GHz design point.
    #[must_use]
    pub fn pipeline_depth(&self) -> u32 {
        self.ew.engine_pipeline_depth()
    }

    /// Peak DP-elements per cycle (`VL²`): 1024 / 256 / 100 / 64.
    #[must_use]
    pub fn peak_elements_per_cycle(&self) -> u32 {
        (self.tile_dim() * self.tile_dim()) as u32
    }

    /// Computes one tile's output borders.
    ///
    /// # Errors
    ///
    /// Returns [`AlignError::Internal`] if the segment lengths disagree
    /// with the input borders or exceed `VL`.
    pub fn compute_tile(
        &self,
        q_seg: &[u8],
        r_seg: &[u8],
        input: &TileInput,
    ) -> Result<TileOutput, AlignError> {
        let blk = self.compute_tile_full(q_seg, r_seg, input)?;
        Ok(TileOutput { dv_right: blk.right_dv(), dh_bottom: blk.bottom_dh() })
    }

    /// Computes one tile keeping the full interior (the traceback
    /// recompute path).
    ///
    /// # Errors
    ///
    /// Same conditions as [`SmxEngine::compute_tile`].
    pub fn compute_tile_full(
        &self,
        q_seg: &[u8],
        r_seg: &[u8],
        input: &TileInput,
    ) -> Result<DeltaBlock, AlignError> {
        let vl = self.tile_dim();
        if q_seg.len() > vl || r_seg.len() > vl {
            return Err(AlignError::Internal(format!(
                "tile segment ({}, {}) exceeds VL={vl}",
                q_seg.len(),
                r_seg.len()
            )));
        }
        if input.rows() != q_seg.len() || input.cols() != r_seg.len() {
            return Err(AlignError::Internal(format!(
                "tile borders ({}, {}) do not match segments ({}, {})",
                input.rows(),
                input.cols(),
                q_seg.len(),
                r_seg.len()
            )));
        }
        DeltaBlock::compute(self.ew, q_seg, r_seg, &self.scheme, &input.dh_top, &input.dv_left)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smx_align_core::{dp, AlignmentConfig};

    fn engine(cfg: AlignmentConfig) -> SmxEngine {
        SmxEngine::new(cfg.element_width(), &cfg.scoring()).unwrap()
    }

    #[test]
    fn geometry_matches_paper() {
        assert_eq!(engine(AlignmentConfig::DnaEdit).peak_elements_per_cycle(), 1024);
        assert_eq!(engine(AlignmentConfig::DnaGap).peak_elements_per_cycle(), 256);
        assert_eq!(engine(AlignmentConfig::Protein).peak_elements_per_cycle(), 100);
        assert_eq!(engine(AlignmentConfig::Ascii).peak_elements_per_cycle(), 64);
    }

    #[test]
    fn full_tile_matches_golden_score() {
        let cfg = AlignmentConfig::DnaEdit;
        let e = engine(cfg);
        let q: Vec<u8> = (0..32).map(|i| (i % 4) as u8).collect();
        let r: Vec<u8> = (0..32).map(|i| (i % 3) as u8).collect();
        let out = e.compute_tile(&q, &r, &TileInput::fresh(32, 32)).unwrap();
        let scheme = cfg.scoring();
        // Reconstruct score from borders and compare to golden.
        let score: i32 = r.len() as i32 * scheme.gap_delete()
            + out.dv_right.iter().map(|&d| i32::from(d) + scheme.gap_insert()).sum::<i32>();
        assert_eq!(score, dp::score_only(&q, &r, &scheme));
    }

    #[test]
    fn partial_tile_supported() {
        let e = engine(AlignmentConfig::Protein);
        let q = [7u8, 4, 0];
        let r = [15u8, 0];
        let out = e.compute_tile(&q, &r, &TileInput::fresh(3, 2)).unwrap();
        assert_eq!(out.dv_right.len(), 3);
        assert_eq!(out.dh_bottom.len(), 2);
    }

    #[test]
    fn oversized_tile_rejected() {
        let e = engine(AlignmentConfig::Ascii); // VL = 8
        let q = vec![0u8; 9];
        let r = vec![0u8; 8];
        assert!(e.compute_tile(&q, &r, &TileInput::fresh(9, 8)).is_err());
    }

    #[test]
    fn mismatched_borders_rejected() {
        let e = engine(AlignmentConfig::DnaEdit);
        let q = vec![0u8; 4];
        let r = vec![0u8; 4];
        assert!(e.compute_tile(&q, &r, &TileInput::fresh(3, 4)).is_err());
    }
}
