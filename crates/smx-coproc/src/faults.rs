//! Deterministic fault injection and tile-level recovery.
//!
//! The fault model covers the three hardware failure modes of the SMX-2D
//! datapath that matter for the border-only storage scheme (DESIGN.md,
//! "Fault model & recovery semantics"):
//!
//! * **Border corruption** — a tile's output border is damaged in the
//!   worker SRAM before it is consumed by the next tile.
//! * **Worker stall** — an SMX-worker hangs mid-tile and never signals
//!   completion; the watchdog fires at a cycle deadline.
//! * **L2 bit flip** — a single bit flips on the shared L2 port while a
//!   border crosses it (block compute writes, traceback reads).
//!
//! Detection is mechanical, not oracular: every border that crosses the
//! SRAM/L2 path carries a [Fletcher-style checksum](border_checksum)
//! computed at the engine output port and re-verified after the transfer.
//! The injected corruptions always change at least one byte, so a
//! mismatch is guaranteed — silent corruption is impossible by
//! construction, which is what makes the recovery invariant (recovered
//! output is byte-identical to the fault-free run) hold at any fault
//! rate.
//!
//! Faults are drawn from a seeded counter-based hash over
//! `(seed, epoch, tile, attempt)`, so a given plan replays identically
//! regardless of scheduling — the property the `fault_sweep` bench and
//! the recovery property tests rely on.

use std::fmt;

use crate::engine::SmxEngine;
use crate::tile::{TileInput, TileOutput};
use smx_align_core::{AlignError, Alignment, Cigar, Op};

/// The failure modes the plan can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A tile output border damaged in worker SRAM (byte smashed).
    BorderCorrupt,
    /// A worker hangs; the watchdog fires at the cycle deadline.
    WorkerStall,
    /// A single bit flips on the shared L2 port during a transfer.
    L2BitFlip,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultKind::BorderCorrupt => "border-corrupt",
            FaultKind::WorkerStall => "worker-stall",
            FaultKind::L2BitFlip => "l2-bit-flip",
        })
    }
}

/// How a detected fault was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAction {
    /// The tile was reissued after a backoff.
    Retried,
    /// Retries were exhausted; the core recomputed the tile in software.
    FellBack,
    /// Retries were exhausted and the policy forbids the software path;
    /// the error escalates to the orchestrator.
    Exhausted,
}

impl fmt::Display for RecoveryAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RecoveryAction::Retried => "retried",
            RecoveryAction::FellBack => "fell-back",
            RecoveryAction::Exhausted => "exhausted",
        })
    }
}

/// A cycle-stamped fault record for post-mortem analysis and the detailed
/// simulator's event log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Logical device cycle at which the fault was detected.
    pub cycle: u64,
    /// Epoch (block or traceback pass) the fault occurred in.
    pub epoch: u64,
    /// Tile row in the block's tile grid.
    pub ti: usize,
    /// Tile column in the block's tile grid.
    pub tj: usize,
    /// Zero-based attempt at which the fault fired.
    pub attempt: u32,
    /// The injected failure mode.
    pub kind: FaultKind,
    /// How recovery responded.
    pub action: RecoveryAction,
}

/// Shapes of *silent* readout corruption: damage applied to a finished
/// alignment as it crosses the result path back to the host, after every
/// border checksum and the device's internal re-verification have
/// passed. The device cannot detect these by construction — only an
/// independent host-side audit ([`Alignment::verify`]) can.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SilentKind {
    /// The reported score is skewed by a small nonzero delta while the
    /// CIGAR stays intact (score/CIGAR disagreement).
    ScoreSkew,
    /// One CIGAR run's operation is flipped (`=`↔`X`, `I`↔`D`), so the
    /// operations disagree with the actual symbols or consumption.
    OpFlip,
    /// One CIGAR run's length is inflated, so the path walks off the end
    /// of the query/reference (malformed run length).
    RunOverrun,
}

impl fmt::Display for SilentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SilentKind::ScoreSkew => "score-skew",
            SilentKind::OpFlip => "op-flip",
            SilentKind::RunOverrun => "run-overrun",
        })
    }
}

/// A seeded, deterministic plan of which tile computations fault.
///
/// Draws are pure functions of `(seed, epoch, ti, tj, attempt)`: the same
/// plan replayed over the same work produces the same faults, independent
/// of scheduling or wall-clock. A fault that fires at attempt `k` persists
/// into attempt `k + 1` with probability [`persistence`](Self::persistence)
/// (transient faults clear on retry; stuck-at faults survive until the
/// software fallback takes over).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rate: f64,
    persistence: f64,
    silent_rate: f64,
}

/// Salt distinguishing the fault-site draw from derived draws.
const SALT_SITE: u64 = 0x5157_u64;
/// Salt for the corruption-placement draw.
const SALT_CORRUPT: u64 = 0xC0FF_u64;
/// Salt for the fault-kind draw.
const SALT_KIND: u64 = 0x4B49_u64;
/// Salt for the silent readout-corruption draw.
const SALT_SILENT: u64 = 0x51E7_u64;

impl FaultPlan {
    /// A plan injecting faults at `rate` per tile transfer, seeded by
    /// `seed`. `rate` is clamped to `[0, 1]`; persistence defaults to
    /// 0.25 (three quarters of faults are transient).
    #[must_use]
    pub fn new(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan { seed, rate: rate.clamp(0.0, 1.0), persistence: 0.25, silent_rate: 0.0 }
    }

    /// A plan that never faults (the fault-free baseline).
    #[must_use]
    pub fn none() -> FaultPlan {
        FaultPlan::new(0, 0.0)
    }

    /// Overrides the persistence probability (clamped to `[0, 1]`).
    #[must_use]
    pub fn with_persistence(mut self, persistence: f64) -> FaultPlan {
        self.persistence = persistence.clamp(0.0, 1.0);
        self
    }

    /// Enables silent readout corruption at `rate` per completed device
    /// alignment (clamped to `[0, 1]`). Unlike the detectable tile
    /// faults, these bypass every checksum — only a host-side audit
    /// catches them.
    #[must_use]
    pub fn with_silent_rate(mut self, rate: f64) -> FaultPlan {
        self.silent_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Re-seeds the plan, keeping every rate. Pool construction derives
    /// each device's plan from the template this way so the N simulated
    /// devices fault independently but reproducibly.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> FaultPlan {
        self.seed = seed;
        self
    }

    /// The plan's seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Per-tile-transfer fault probability.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Probability a fired fault persists into the next attempt.
    #[must_use]
    pub fn persistence(&self) -> f64 {
        self.persistence
    }

    /// Per-alignment silent readout-corruption probability.
    #[must_use]
    pub fn silent_rate(&self) -> f64 {
        self.silent_rate
    }

    fn hash(&self, epoch: u64, ti: usize, tj: usize, salt: u64) -> u64 {
        // SplitMix64 finalization over the mixed coordinates; each input
        // is folded in through its own round so nearby sites decorrelate.
        let mut x = self.seed;
        for v in [epoch, ti as u64, tj as u64, salt] {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15).wrapping_add(v);
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^= x >> 31;
        }
        x
    }

    fn unit(h: u64) -> f64 {
        // 53 uniform bits into [0, 1).
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Whether (and how) the tile transfer `(epoch, ti, tj)` faults on
    /// `attempt`. Attempt 0 fires at [`rate`](Self::rate); attempt `k > 0`
    /// fires only if every earlier attempt fired and each persistence draw
    /// succeeded.
    #[must_use]
    pub fn draw(&self, epoch: u64, ti: usize, tj: usize, attempt: u32) -> Option<FaultKind> {
        if self.rate <= 0.0 {
            return None;
        }
        let site = self.hash(epoch, ti, tj, SALT_SITE);
        if Self::unit(site) >= self.rate {
            return None;
        }
        for a in 1..=attempt {
            let h = self.hash(epoch, ti, tj, SALT_SITE ^ (u64::from(a) << 16));
            if Self::unit(h) >= self.persistence {
                return None;
            }
        }
        let kind = self.hash(epoch, ti, tj, SALT_KIND);
        Some(match kind % 3 {
            0 => FaultKind::BorderCorrupt,
            1 => FaultKind::WorkerStall,
            _ => FaultKind::L2BitFlip,
        })
    }

    /// Whether (and how) the `readout`-th result readout is silently
    /// corrupted. Draws are pure functions of `(seed, readout)`.
    #[must_use]
    pub fn draw_silent(&self, readout: u64) -> Option<SilentKind> {
        if self.silent_rate <= 0.0 {
            return None;
        }
        let site = self.hash(readout, 0, 0, SALT_SILENT);
        if Self::unit(site) >= self.silent_rate {
            return None;
        }
        let kind = self.hash(readout, 1, 0, SALT_SILENT ^ SALT_KIND);
        Some(match kind % 3 {
            0 => SilentKind::ScoreSkew,
            1 => SilentKind::OpFlip,
            _ => SilentKind::RunOverrun,
        })
    }
}

/// Applies `kind`'s corruption to a finished alignment, placed by hash
/// `h`. Every shape is guaranteed to change the alignment in a way a
/// full [`Alignment::verify`] re-check catches: a nonzero score delta, a
/// run whose operation disagrees with the symbols or consumption, or a
/// run that overruns a sequence.
fn corrupt_alignment(aln: &mut Alignment, kind: SilentKind, h: u64) {
    let runs = aln.cigar.runs().to_vec();
    if runs.is_empty() || kind == SilentKind::ScoreSkew {
        // An empty CIGAR leaves only the score to damage.
        let delta = 1 + ((h >> 8) as i32 & 0x7);
        aln.score =
            if h & 1 == 0 { aln.score.wrapping_add(delta) } else { aln.score.wrapping_sub(delta) };
        return;
    }
    let target = (h as usize) % runs.len();
    let mut rebuilt = Cigar::new();
    for (i, &(op, n)) in runs.iter().enumerate() {
        if i != target {
            rebuilt.push_run(op, n);
            continue;
        }
        match kind {
            SilentKind::OpFlip => {
                let flipped = match op {
                    Op::Match => Op::Mismatch,
                    Op::Mismatch => Op::Match,
                    Op::Insert => Op::Delete,
                    Op::Delete => Op::Insert,
                };
                rebuilt.push_run(flipped, n);
            }
            SilentKind::RunOverrun => {
                rebuilt.push_run(op, n.saturating_add(1 + ((h >> 16) as u32 & 0x3)));
            }
            SilentKind::ScoreSkew => unreachable!("handled above"),
        }
    }
    aln.cigar = rebuilt;
}

/// Tile-level recovery policy: how hard the device tries before degrading.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Retries per tile before falling back (0 disables retry).
    pub max_retries: u32,
    /// Cycles of backoff added before each retry.
    pub backoff_cycles: u64,
    /// Watchdog deadline for a single tile computation, in cycles.
    pub watchdog_cycles: u64,
    /// Whether exhausted tiles are recomputed on the core's software path
    /// (`false` escalates [`AlignError::RecoveryExhausted`] instead).
    pub software_fallback: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> RecoveryPolicy {
        RecoveryPolicy {
            max_retries: 2,
            backoff_cycles: 16,
            watchdog_cycles: 4096,
            software_fallback: true,
        }
    }
}

impl RecoveryPolicy {
    /// A policy that never retries and never falls back: every fault
    /// escalates. Useful for testing the fail-closed batch path.
    #[must_use]
    pub fn strict() -> RecoveryPolicy {
        RecoveryPolicy {
            max_retries: 0,
            backoff_cycles: 0,
            watchdog_cycles: 4096,
            software_fallback: false,
        }
    }
}

/// Counters accumulated by fault detection and recovery.
///
/// When `max_retries >= 1` the counters obey
/// `fallbacks <= retries <= faults_injected`: every fallback is preceded
/// by at least one retry of the same tile, and every retry is provoked by
/// a distinct fault firing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Tile computations requested (fault-free and faulty alike).
    pub tiles_computed: u64,
    /// Fault firings injected by the plan.
    pub faults_injected: u64,
    /// Faults caught by the checksum or watchdog (always equals
    /// `faults_injected`: detection has no escape path).
    pub faults_detected: u64,
    /// Tile reissues after a detected fault.
    pub retries: u64,
    /// Tiles recomputed on the core's software path.
    pub fallbacks: u64,
    /// Whole alignments degraded to the software path by the
    /// orchestrator.
    pub software_alignments: u64,
    /// Cycles spent on watchdog waits, backoff, and wasted attempts.
    pub cycles_lost: u64,
    /// Silent readout corruptions injected past the checksums. These are
    /// *not* counted in `faults_injected`/`faults_detected`: the device
    /// cannot detect them, only the service layer's audit can.
    pub silent_corruptions: u64,
}

impl RecoveryStats {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &RecoveryStats) {
        self.tiles_computed += other.tiles_computed;
        self.faults_injected += other.faults_injected;
        self.faults_detected += other.faults_detected;
        self.retries += other.retries;
        self.fallbacks += other.fallbacks;
        self.software_alignments += other.software_alignments;
        self.cycles_lost += other.cycles_lost;
        self.silent_corruptions += other.silent_corruptions;
    }

    /// The counter invariants that hold under any policy with
    /// `max_retries >= 1` (see the type-level docs).
    #[must_use]
    pub fn invariants_hold(&self) -> bool {
        self.faults_detected == self.faults_injected
            && self.fallbacks <= self.retries
            && self.retries <= self.faults_injected
    }
}

/// Fletcher-style checksum over tile border bytes, computed at the engine
/// output port and verified after the SRAM/L2 transfer.
///
/// A single smashed byte or flipped bit always changes the checksum (the
/// per-byte delta is in `±255`, never `0 mod 65521`), so the injected
/// corruptions of [`FaultKind`] are detected with certainty.
#[must_use]
pub fn border_checksum(dv: &[u8], dh: &[u8]) -> u32 {
    let mut s1: u32 = 1;
    let mut s2: u32 = 0;
    for &b in dv.iter().chain(dh.iter()) {
        s1 = (s1 + u32::from(b)) % 65521;
        s2 = (s2 + s1) % 65521;
    }
    (s2 << 16) | s1
}

/// Applies `kind`'s corruption to a border pair, placed by hash `h`.
/// `WorkerStall` does not corrupt data (the tile never completes).
fn corrupt_borders(dv: &mut [u8], dh: &mut [u8], kind: FaultKind, h: u64) {
    let total = dv.len() + dh.len();
    if total == 0 {
        return;
    }
    let idx = (h as usize) % total;
    let byte = if idx < dv.len() { &mut dv[idx] } else { &mut dh[idx - dv.len()] };
    match kind {
        // Smash the byte by a nonzero delta in 1..=8.
        FaultKind::BorderCorrupt => *byte = byte.wrapping_add(1 + ((h >> 32) as u8 & 0x7)),
        FaultKind::L2BitFlip => *byte ^= 1 << ((h >> 32) & 7),
        FaultKind::WorkerStall => {}
    }
}

/// Upper bound on retained fault events; beyond it only counters grow.
const MAX_EVENTS: usize = 4096;

/// Live fault-injection state threaded through block compute and
/// traceback: the plan, the recovery policy, accumulated statistics, the
/// cycle-stamped event log, and a logical cycle counter.
#[derive(Debug, Clone)]
pub struct FaultSession {
    plan: FaultPlan,
    policy: RecoveryPolicy,
    stats: RecoveryStats,
    events: Vec<FaultEvent>,
    events_dropped: u64,
    cycle: u64,
    epoch: u64,
    readouts: u64,
}

impl FaultSession {
    /// A session running `plan` under `policy`.
    #[must_use]
    pub fn new(plan: FaultPlan, policy: RecoveryPolicy) -> FaultSession {
        FaultSession {
            plan,
            policy,
            stats: RecoveryStats::default(),
            events: Vec::new(),
            events_dropped: 0,
            cycle: 0,
            epoch: 0,
            readouts: 0,
        }
    }

    /// The plan being injected.
    #[must_use]
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// The active recovery policy.
    #[must_use]
    pub fn policy(&self) -> RecoveryPolicy {
        self.policy
    }

    /// Accumulated counters.
    #[must_use]
    pub fn stats(&self) -> RecoveryStats {
        self.stats
    }

    /// The retained fault events (oldest first, capped).
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Events dropped past the retention cap.
    #[must_use]
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    /// Drains the retained event log.
    pub fn take_events(&mut self) -> Vec<FaultEvent> {
        std::mem::take(&mut self.events)
    }

    /// The logical device cycle.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Starts a new epoch (one block computation or traceback pass) so
    /// repeated work over the same tile grid sees fresh draws.
    pub fn begin_epoch(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// Records an orchestrator-level degradation to the software path.
    pub fn record_software_alignment(&mut self) {
        self.stats.software_alignments += 1;
    }

    /// Runs one finished device alignment through the (possibly faulty)
    /// result readout path. When the plan's silent rate fires, the
    /// alignment is corrupted *after* all device-side verification — no
    /// checksum sees it — and the shape of the damage is returned so
    /// harnesses can assert on it. The corruption counter is the only
    /// device-side trace; detection is entirely the auditor's job.
    pub fn corrupt_readout(&mut self, aln: &mut Alignment) -> Option<SilentKind> {
        self.readouts += 1;
        let kind = self.plan.draw_silent(self.readouts)?;
        let h = self.plan.hash(self.readouts, 2, 0, SALT_SILENT ^ SALT_CORRUPT);
        corrupt_alignment(aln, kind, h);
        self.stats.silent_corruptions += 1;
        Some(kind)
    }

    fn push_event(&mut self, event: FaultEvent) {
        if self.events.len() < MAX_EVENTS {
            self.events.push(event);
        } else {
            self.events_dropped += 1;
        }
    }

    /// Latency charged for one tile issue + drain (engine fill plus one
    /// antidiagonal sweep).
    fn tile_latency(engine: &SmxEngine) -> u64 {
        u64::from(engine.pipeline_depth()) + engine.tile_dim() as u64
    }

    /// Runs one tile computation under the fault plan: compute, checksum
    /// at the engine output, transfer (where corruption strikes), verify,
    /// and retry or fall back per the policy.
    ///
    /// # Errors
    ///
    /// Propagates engine errors; returns [`AlignError::RecoveryExhausted`]
    /// when retries run out and the policy forbids the software fallback.
    #[allow(clippy::too_many_arguments)] // mirrors SmxEngine::compute_tile plus the fault site
    pub fn run_tile(
        &mut self,
        engine: &SmxEngine,
        q_seg: &[u8],
        r_seg: &[u8],
        input: &TileInput,
        epoch: u64,
        ti: usize,
        tj: usize,
    ) -> Result<TileOutput, AlignError> {
        self.stats.tiles_computed += 1;
        let latency = Self::tile_latency(engine);
        let mut attempt: u32 = 0;
        loop {
            let kind = match self.plan.draw(epoch, ti, tj, attempt) {
                None => {
                    // Fault-free attempt: compute, checksum at the source,
                    // verify after the (clean) transfer.
                    let out = engine.compute_tile(q_seg, r_seg, input)?;
                    self.cycle += latency;
                    let source = border_checksum(&out.dv_right, &out.dh_bottom);
                    let received = border_checksum(&out.dv_right, &out.dh_bottom);
                    debug_assert_eq!(source, received);
                    return Ok(out);
                }
                Some(kind) => kind,
            };
            self.stats.faults_injected += 1;
            match kind {
                FaultKind::WorkerStall => {
                    // The worker hangs; the watchdog fires at the deadline.
                    self.cycle += self.policy.watchdog_cycles;
                    self.stats.cycles_lost += self.policy.watchdog_cycles;
                }
                FaultKind::BorderCorrupt | FaultKind::L2BitFlip => {
                    let mut out = engine.compute_tile(q_seg, r_seg, input)?;
                    let source = border_checksum(&out.dv_right, &out.dh_bottom);
                    let h = self.plan.hash(epoch, ti, tj, SALT_CORRUPT ^ u64::from(attempt));
                    corrupt_borders(&mut out.dv_right, &mut out.dh_bottom, kind, h);
                    let received = border_checksum(&out.dv_right, &out.dh_bottom);
                    if received == source {
                        // Unreachable with the corruptions above; a passing
                        // checksum on corrupted data would be silent
                        // corruption, which must never be swallowed.
                        return Err(AlignError::Internal(format!(
                            "corrupted tile ({ti}, {tj}) passed its checksum"
                        )));
                    }
                    self.cycle += latency;
                    self.stats.cycles_lost += latency;
                }
            }
            self.stats.faults_detected += 1;
            attempt = self.resolve(kind, epoch, ti, tj, attempt, |s| {
                // Core-side software recompute of the same tile: bit-exact
                // by construction (the functional engine is the reference).
                s.stats.fallbacks += 1;
            })?;
            if attempt == u32::MAX {
                return engine.compute_tile(q_seg, r_seg, input);
            }
        }
    }

    /// Re-reads a stored tile input border through the (possibly faulty)
    /// L2 port, verifying it against the checksum recorded when the
    /// worker stored it. The fallback path re-fetches through the core's
    /// coherent load path, which bypasses the L2 fault site.
    ///
    /// # Errors
    ///
    /// Returns [`AlignError::RecoveryExhausted`] when retries run out and
    /// the policy forbids the fallback path.
    pub fn fetch_input(
        &mut self,
        epoch: u64,
        ti: usize,
        tj: usize,
        stored: &TileInput,
    ) -> Result<TileInput, AlignError> {
        let source = border_checksum(&stored.dv_left, &stored.dh_top);
        let mut attempt: u32 = 0;
        loop {
            let kind = match self.plan.draw(epoch, ti, tj, attempt) {
                None => {
                    let fetched = stored.clone();
                    self.cycle += 1;
                    debug_assert_eq!(border_checksum(&fetched.dv_left, &fetched.dh_top), source);
                    return Ok(fetched);
                }
                Some(kind) => kind,
            };
            self.stats.faults_injected += 1;
            match kind {
                FaultKind::WorkerStall => {
                    // Stalled port arbiter: the read never completes.
                    self.cycle += self.policy.watchdog_cycles;
                    self.stats.cycles_lost += self.policy.watchdog_cycles;
                }
                FaultKind::BorderCorrupt | FaultKind::L2BitFlip => {
                    let mut fetched = stored.clone();
                    let h = self.plan.hash(epoch, ti, tj, SALT_CORRUPT ^ u64::from(attempt));
                    corrupt_borders(&mut fetched.dv_left, &mut fetched.dh_top, kind, h);
                    if border_checksum(&fetched.dv_left, &fetched.dh_top) == source {
                        return Err(AlignError::Internal(format!(
                            "corrupted border read ({ti}, {tj}) passed its checksum"
                        )));
                    }
                    self.cycle += 1;
                    self.stats.cycles_lost += 1;
                }
            }
            self.stats.faults_detected += 1;
            attempt = self.resolve(kind, epoch, ti, tj, attempt, |s| {
                s.stats.fallbacks += 1;
            })?;
            if attempt == u32::MAX {
                return Ok(stored.clone());
            }
        }
    }

    /// Shared retry/fallback resolution. Returns the next attempt number,
    /// `u32::MAX` to signal "take the fallback path now", or the
    /// escalation error.
    fn resolve(
        &mut self,
        kind: FaultKind,
        epoch: u64,
        ti: usize,
        tj: usize,
        attempt: u32,
        on_fallback: impl FnOnce(&mut FaultSession),
    ) -> Result<u32, AlignError> {
        if attempt < self.policy.max_retries {
            self.stats.retries += 1;
            self.cycle += self.policy.backoff_cycles;
            self.stats.cycles_lost += self.policy.backoff_cycles;
            self.push_event(FaultEvent {
                cycle: self.cycle,
                epoch,
                ti,
                tj,
                attempt,
                kind,
                action: RecoveryAction::Retried,
            });
            return Ok(attempt + 1);
        }
        if self.policy.software_fallback {
            on_fallback(self);
            self.push_event(FaultEvent {
                cycle: self.cycle,
                epoch,
                ti,
                tj,
                attempt,
                kind,
                action: RecoveryAction::FellBack,
            });
            return Ok(u32::MAX);
        }
        self.push_event(FaultEvent {
            cycle: self.cycle,
            epoch,
            ti,
            tj,
            attempt,
            kind,
            action: RecoveryAction::Exhausted,
        });
        Err(AlignError::RecoveryExhausted { ti, tj, retries: attempt })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smx_align_core::AlignmentConfig;

    #[test]
    fn draws_are_deterministic() {
        let plan = FaultPlan::new(42, 0.1);
        for epoch in 0..4 {
            for ti in 0..8 {
                for tj in 0..8 {
                    for attempt in 0..3 {
                        assert_eq!(
                            plan.draw(epoch, ti, tj, attempt),
                            plan.draw(epoch, ti, tj, attempt)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn zero_rate_never_fires() {
        let plan = FaultPlan::none();
        for ti in 0..32 {
            assert_eq!(plan.draw(1, ti, ti, 0), None);
        }
    }

    #[test]
    fn rate_one_always_fires() {
        let plan = FaultPlan::new(7, 1.0);
        for ti in 0..32 {
            assert!(plan.draw(1, ti, 0, 0).is_some());
        }
    }

    #[test]
    fn empirical_rate_tracks_nominal() {
        let plan = FaultPlan::new(9, 0.05);
        let fired = (0..20_000).filter(|&i| plan.draw(0, i, 0, 0).is_some()).count();
        // 5% of 20k = 1000; allow generous sampling slack.
        assert!((700..1300).contains(&fired), "fired {fired}");
    }

    #[test]
    fn persistence_gates_later_attempts() {
        // A fault can only persist where attempt 0 fired.
        let plan = FaultPlan::new(3, 0.2).with_persistence(0.5);
        for i in 0..2000 {
            if plan.draw(0, i, 0, 1).is_some() {
                assert!(plan.draw(0, i, 0, 0).is_some(), "site {i}");
            }
        }
        // Zero persistence: nothing survives to attempt 1.
        let transient = FaultPlan::new(3, 0.5).with_persistence(0.0);
        for i in 0..2000 {
            assert_eq!(transient.draw(0, i, 0, 1), None);
        }
    }

    #[test]
    fn checksum_detects_single_byte_and_bit_damage() {
        let dv: Vec<u8> = (0..32).collect();
        let dh: Vec<u8> = (100..150).collect();
        let clean = border_checksum(&dv, &dh);
        for idx in 0..dv.len() + dh.len() {
            let (mut cdv, mut cdh) = (dv.clone(), dh.clone());
            let h = (idx as u64) | (1u64 << 32);
            corrupt_borders(&mut cdv, &mut cdh, FaultKind::BorderCorrupt, h);
            assert_ne!(border_checksum(&cdv, &cdh), clean, "byte smash at {idx}");
            let (mut fdv, mut fdh) = (dv.clone(), dh.clone());
            corrupt_borders(&mut fdv, &mut fdh, FaultKind::L2BitFlip, h);
            assert_ne!(border_checksum(&fdv, &fdh), clean, "bit flip at {idx}");
        }
    }

    #[test]
    fn run_tile_recovers_bit_exact_output() {
        let cfg = AlignmentConfig::DnaGap;
        let engine = SmxEngine::new(cfg.element_width(), &cfg.scoring()).unwrap();
        let q: Vec<u8> = (0..16).map(|i| (i % 4) as u8).collect();
        let r: Vec<u8> = (0..16).map(|i| (i % 3) as u8).collect();
        let tin = TileInput::fresh(16, 16);
        let clean = engine.compute_tile(&q, &r, &tin).unwrap();
        // Force the fault to fire every attempt so the fallback engages.
        let plan = FaultPlan::new(11, 1.0).with_persistence(1.0);
        let mut session = FaultSession::new(plan, RecoveryPolicy::default());
        let out = session.run_tile(&engine, &q, &r, &tin, 1, 0, 0).unwrap();
        assert_eq!(out, clean);
        let stats = session.stats();
        assert_eq!(stats.fallbacks, 1);
        assert_eq!(stats.retries, u64::from(RecoveryPolicy::default().max_retries));
        assert!(stats.invariants_hold(), "{stats:?}");
        assert!(!session.events().is_empty());
        assert!(session.cycle() > 0);
    }

    #[test]
    fn strict_policy_escalates() {
        let cfg = AlignmentConfig::DnaGap;
        let engine = SmxEngine::new(cfg.element_width(), &cfg.scoring()).unwrap();
        let q = vec![0u8; 8];
        let tin = TileInput::fresh(8, 8);
        let plan = FaultPlan::new(5, 1.0).with_persistence(1.0);
        let mut session = FaultSession::new(plan, RecoveryPolicy::strict());
        let err = session.run_tile(&engine, &q, &q, &tin, 1, 2, 3).unwrap_err();
        assert!(matches!(err, AlignError::RecoveryExhausted { ti: 2, tj: 3, .. }));
        assert!(err.is_recoverable_fault());
    }

    #[test]
    fn fetch_input_recovers_stored_borders() {
        let stored = TileInput { dv_left: vec![1, 2, 3, 4], dh_top: vec![5, 6, 7] };
        let plan = FaultPlan::new(21, 1.0).with_persistence(1.0);
        let mut session = FaultSession::new(plan, RecoveryPolicy::default());
        let fetched = session.fetch_input(1, 0, 0, &stored).unwrap();
        assert_eq!(fetched, stored);
        assert!(session.stats().invariants_hold());
    }

    #[test]
    fn transient_fault_clears_on_retry() {
        let cfg = AlignmentConfig::DnaGap;
        let engine = SmxEngine::new(cfg.element_width(), &cfg.scoring()).unwrap();
        let q = vec![0u8; 8];
        let tin = TileInput::fresh(8, 8);
        let clean = engine.compute_tile(&q, &q, &tin).unwrap();
        // Fires on attempt 0, never persists: one retry suffices.
        let plan = FaultPlan::new(13, 1.0).with_persistence(0.0);
        let mut session = FaultSession::new(plan, RecoveryPolicy::default());
        let out = session.run_tile(&engine, &q, &q, &tin, 1, 0, 0).unwrap();
        assert_eq!(out, clean);
        let stats = session.stats();
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.fallbacks, 0);
    }

    #[test]
    fn silent_draws_are_deterministic_and_gated_by_rate() {
        let plan = FaultPlan::new(17, 0.0).with_silent_rate(0.3);
        for readout in 0..256 {
            assert_eq!(plan.draw_silent(readout), plan.draw_silent(readout));
        }
        let off = FaultPlan::new(17, 0.5);
        assert!((0..256).all(|r| off.draw_silent(r).is_none()), "default silent rate is 0");
        let always = FaultPlan::new(17, 0.0).with_silent_rate(1.0);
        assert!((1..64).all(|r| always.draw_silent(r).is_some()));
    }

    #[test]
    fn with_seed_changes_draws_but_keeps_rates() {
        let a = FaultPlan::new(1, 0.3).with_persistence(0.7).with_silent_rate(0.2);
        let b = a.with_seed(2);
        assert_eq!(b.seed(), 2);
        assert_eq!(b.rate(), a.rate());
        assert_eq!(b.persistence(), a.persistence());
        assert_eq!(b.silent_rate(), a.silent_rate());
        let differs = (0..512).any(|t| a.draw(0, t, 0, 0) != b.draw(0, t, 0, 0));
        assert!(differs, "reseeding must decorrelate the fault sites");
    }

    #[test]
    fn every_silent_corruption_shape_is_caught_by_a_full_audit() {
        use smx_align_core::ScoringScheme;
        let scheme = ScoringScheme::edit();
        let q = vec![0u8, 1, 2, 3, 0, 1];
        let r = vec![0u8, 1, 2, 0, 0, 1];
        let clean = smx_align_core::dp::align_codes(&q, &r, &scheme);
        clean.verify(&q, &r, &scheme).unwrap();
        for kind in [SilentKind::ScoreSkew, SilentKind::OpFlip, SilentKind::RunOverrun] {
            for h in 0..64u64 {
                let mut aln = clean.clone();
                corrupt_alignment(&mut aln, kind, h);
                assert_ne!(
                    (aln.score, aln.cigar.to_string()),
                    (clean.score, clean.cigar.to_string()),
                    "{kind} h={h} must change the alignment"
                );
                assert!(
                    aln.verify(&q, &r, &scheme).is_err(),
                    "{kind} h={h} must fail re-verification"
                );
            }
        }
    }

    #[test]
    fn corrupt_readout_counts_but_stays_invisible_to_detection_counters() {
        let plan = FaultPlan::new(5, 0.0).with_silent_rate(1.0);
        let mut session = FaultSession::new(plan, RecoveryPolicy::default());
        let mut aln = Alignment { score: 3, cigar: Cigar::parse("3=").unwrap() };
        let clean = aln.clone();
        assert!(session.corrupt_readout(&mut aln).is_some());
        assert_ne!((aln.score, aln.cigar.to_string()), (clean.score, clean.cigar.to_string()));
        let stats = session.stats();
        assert_eq!(stats.silent_corruptions, 1);
        assert_eq!(stats.faults_injected, 0, "silent faults bypass detection");
        assert_eq!(stats.faults_detected, 0);
        assert!(stats.invariants_hold());
        assert!(session.events().is_empty(), "the device cannot log what it cannot see");
    }

    #[test]
    fn event_log_is_capped() {
        let mut session = FaultSession::new(FaultPlan::none(), RecoveryPolicy::default());
        for i in 0..(MAX_EVENTS + 10) {
            session.push_event(FaultEvent {
                cycle: i as u64,
                epoch: 0,
                ti: 0,
                tj: 0,
                attempt: 0,
                kind: FaultKind::L2BitFlip,
                action: RecoveryAction::Retried,
            });
        }
        assert_eq!(session.events().len(), MAX_EVENTS);
        assert_eq!(session.events_dropped(), 10);
        assert_eq!(session.take_events().len(), MAX_EVENTS);
        assert!(session.events().is_empty());
    }
}
