//! The SMX-2D coprocessor façade (paper §5.1): an engine shared by
//! multiple SMX-workers, exposed through the block-offload interface the
//! core drives via memory-mapped configuration registers.

use crate::block::{compute_block_controlled, BlockMode, BlockOutput};
use crate::control::CancelToken;
use crate::engine::SmxEngine;
use crate::faults::FaultSession;
use crate::traceback::{traceback_block_controlled, RecomputeStats};
use smx_align_core::{AlignError, Cigar, ElementWidth, ScoringScheme};
use smx_diffenc::boundary::BlockBorders;

/// The SMX-2D coprocessor: one SMX-engine plus `workers` SMX-worker
/// control units.
///
/// The worker count does not change functional results — it determines
/// how many DP-blocks can be in flight, which the timing model in
/// `smx-sim` consumes.
#[derive(Debug, Clone)]
pub struct SmxCoprocessor {
    engine: SmxEngine,
    workers: usize,
    control: Option<CancelToken>,
}

impl SmxCoprocessor {
    /// Default worker count used in the paper's evaluation (§7).
    pub const DEFAULT_WORKERS: usize = 4;

    /// Builds a coprocessor for `ew` / `scheme` with `workers` workers.
    ///
    /// # Errors
    ///
    /// Propagates engine configuration errors; rejects zero workers.
    pub fn new(
        ew: ElementWidth,
        scheme: &ScoringScheme,
        workers: usize,
    ) -> Result<SmxCoprocessor, AlignError> {
        if workers == 0 {
            return Err(AlignError::Internal("coprocessor needs at least one worker".into()));
        }
        Ok(SmxCoprocessor { engine: SmxEngine::new(ew, scheme)?, workers, control: None })
    }

    /// Installs (or clears) the cooperative cancellation / deadline token
    /// checked at every tile boundary of subsequent block computations and
    /// tracebacks.
    pub fn set_control(&mut self, control: Option<CancelToken>) {
        self.control = control;
    }

    /// The installed control token, if any.
    #[must_use]
    pub fn control(&self) -> Option<&CancelToken> {
        self.control.as_ref()
    }

    /// The compute engine.
    #[must_use]
    pub fn engine(&self) -> &SmxEngine {
        &self.engine
    }

    /// Number of SMX-workers.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Offloads one DP-block computation.
    ///
    /// # Errors
    ///
    /// See [`compute_block`].
    pub fn compute_block(
        &self,
        query: &[u8],
        reference: &[u8],
        input: Option<&BlockBorders>,
        mode: BlockMode,
    ) -> Result<BlockOutput, AlignError> {
        compute_block_controlled(
            &self.engine,
            query,
            reference,
            input,
            mode,
            None,
            self.control.as_ref(),
        )
    }

    /// Offloads one DP-block computation under an active fault-injection
    /// session (tile-level detection, retry, and fallback).
    ///
    /// # Errors
    ///
    /// See [`compute_block_resilient`].
    pub fn compute_block_resilient(
        &self,
        query: &[u8],
        reference: &[u8],
        input: Option<&BlockBorders>,
        mode: BlockMode,
        session: &mut FaultSession,
    ) -> Result<BlockOutput, AlignError> {
        compute_block_controlled(
            &self.engine,
            query,
            reference,
            input,
            mode,
            Some(session),
            self.control.as_ref(),
        )
    }

    /// Traces back a block previously computed in traceback mode.
    ///
    /// # Errors
    ///
    /// See [`traceback_block`].
    pub fn traceback(
        &self,
        query: &[u8],
        reference: &[u8],
        output: &BlockOutput,
    ) -> Result<(Cigar, RecomputeStats), AlignError> {
        let store = output
            .borders
            .as_ref()
            .ok_or_else(|| AlignError::Internal("block was computed in score-only mode".into()))?;
        traceback_block_controlled(
            &self.engine,
            query,
            reference,
            store,
            None,
            self.control.as_ref(),
        )
    }

    /// Traces back under an active fault-injection session (border reads
    /// cross the faulty L2 port and are checksum-verified).
    ///
    /// # Errors
    ///
    /// See [`traceback_block_resilient`].
    pub fn traceback_resilient(
        &self,
        query: &[u8],
        reference: &[u8],
        output: &BlockOutput,
        session: &mut FaultSession,
    ) -> Result<(Cigar, RecomputeStats), AlignError> {
        let store = output
            .borders
            .as_ref()
            .ok_or_else(|| AlignError::Internal("block was computed in score-only mode".into()))?;
        traceback_block_controlled(
            &self.engine,
            query,
            reference,
            store,
            Some(session),
            self.control.as_ref(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smx_align_core::{dp, AlignmentConfig};

    #[test]
    fn full_offload_roundtrip() {
        let cfg = AlignmentConfig::DnaGap;
        let c = SmxCoprocessor::new(cfg.element_width(), &cfg.scoring(), 4).unwrap();
        let q: Vec<u8> = (0..50).map(|i| (i % 4) as u8).collect();
        let r: Vec<u8> = (0..45).map(|i| (i % 3) as u8).collect();
        let out = c.compute_block(&q, &r, None, BlockMode::Traceback).unwrap();
        let (cigar, _) = c.traceback(&q, &r, &out).unwrap();
        let scheme = cfg.scoring();
        assert_eq!(out.score, dp::score_only(&q, &r, &scheme));
        assert_eq!(cigar.score(&q, &r, &scheme).unwrap(), out.score);
    }

    #[test]
    fn score_only_block_cannot_trace() {
        let cfg = AlignmentConfig::DnaEdit;
        let c = SmxCoprocessor::new(cfg.element_width(), &cfg.scoring(), 1).unwrap();
        let q = vec![0u8; 8];
        let out = c.compute_block(&q, &q, None, BlockMode::ScoreOnly).unwrap();
        assert!(c.traceback(&q, &q, &out).is_err());
    }

    #[test]
    fn cancelled_token_aborts_block_at_tile_boundary() {
        let cfg = AlignmentConfig::DnaGap;
        let mut c = SmxCoprocessor::new(cfg.element_width(), &cfg.scoring(), 2).unwrap();
        let q: Vec<u8> = (0..64).map(|i| (i % 4) as u8).collect();
        let token = CancelToken::new();
        token.cancel();
        c.set_control(Some(token));
        let err = c.compute_block(&q, &q, None, BlockMode::Traceback).unwrap_err();
        assert!(matches!(err, AlignError::Cancelled));
        // Clearing the control restores normal operation.
        c.set_control(None);
        assert!(c.compute_block(&q, &q, None, BlockMode::Traceback).is_ok());
    }

    #[test]
    fn expired_deadline_aborts_block() {
        let cfg = AlignmentConfig::DnaEdit;
        let mut c = SmxCoprocessor::new(cfg.element_width(), &cfg.scoring(), 2).unwrap();
        let q = vec![0u8; 48];
        c.set_control(Some(CancelToken::new().fork_with_deadline(std::time::Duration::ZERO)));
        let err = c.compute_block(&q, &q, None, BlockMode::ScoreOnly).unwrap_err();
        assert!(matches!(err, AlignError::DeadlineExceeded { .. }));
    }

    #[test]
    fn zero_workers_rejected() {
        let cfg = AlignmentConfig::DnaEdit;
        assert!(SmxCoprocessor::new(cfg.element_width(), &cfg.scoring(), 0).is_err());
    }
}
