//! SMX-worker bookkeeping (paper §5.3, Fig. 7): supertile partitioning and
//! the memory-transfer ledger.
//!
//! A *supertile* groups the DP-tiles whose query and reference segments
//! share cache lines. With a 64-byte line and `EW`-bit characters a line
//! holds `512 / EW` characters, so a supertile border (one side) is
//! exactly one cache line of packed deltas — the property the worker
//! exploits to turn border traffic into whole-line transfers.

use crate::block::BlockMode;
use smx_align_core::ElementWidth;

/// Cache line size assumed throughout the SoC model (bytes).
pub const CACHE_LINE_BYTES: usize = 64;

/// Memory-transfer and work statistics for one DP-block computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransferStats {
    /// DP-tiles computed.
    pub tiles: u64,
    /// Supertiles traversed.
    pub supertiles: u64,
    /// Cache lines fetched from the L2 (sequences + input borders).
    pub lines_loaded: u64,
    /// Cache lines written back to the L2 (output borders, and interior
    /// tile borders when tracing back).
    pub lines_stored: u64,
    /// Bytes of border state retained for traceback.
    pub border_bytes_stored: u64,
    /// DP-elements computed.
    pub elements: u64,
}

impl TransferStats {
    /// Accumulates another block's statistics.
    pub fn merge(&mut self, other: &TransferStats) {
        self.tiles += other.tiles;
        self.supertiles += other.supertiles;
        self.lines_loaded += other.lines_loaded;
        self.lines_stored += other.lines_stored;
        self.border_bytes_stored += other.border_bytes_stored;
        self.elements += other.elements;
    }

    /// Total lines moved through the L2 port.
    #[must_use]
    pub fn lines_total(&self) -> u64 {
        self.lines_loaded + self.lines_stored
    }
}

/// Characters per cache line at a given element width.
#[must_use]
pub fn chars_per_line(ew: ElementWidth) -> usize {
    CACHE_LINE_BYTES * 8 / ew.bits() as usize
}

/// Computes the transfer ledger for an `m × n` DP-block.
///
/// Loads per supertile: one query line, one reference line, one top-border
/// line, one left-border line. Stores per supertile: bottom and right
/// border lines. In [`BlockMode::Traceback`] the interior tile borders
/// (2 × VL elements per tile) are additionally written back for later
/// recomputation.
#[must_use]
pub fn block_transfer_stats(
    m: usize,
    n: usize,
    ew: ElementWidth,
    mode: BlockMode,
) -> TransferStats {
    let vl = ew.vl();
    let cpl = chars_per_line(ew);
    let st_rows = m.div_ceil(cpl) as u64;
    let st_cols = n.div_ceil(cpl) as u64;
    let t_rows = m.div_ceil(vl) as u64;
    let t_cols = n.div_ceil(vl) as u64;
    let supertiles = st_rows * st_cols;
    let tiles = t_rows * t_cols;
    let lines_loaded = supertiles * 4;
    let mut lines_stored = supertiles * 2;
    let mut border_bytes_stored = 0u64;
    if mode == BlockMode::Traceback {
        // Every tile's input borders (2 × VL elements of EW bits).
        let bytes_per_tile = (2 * vl * ew.bits() as usize).div_ceil(8) as u64;
        border_bytes_stored = tiles * bytes_per_tile;
        lines_stored += border_bytes_stored.div_ceil(CACHE_LINE_BYTES as u64);
    }
    TransferStats {
        tiles,
        supertiles,
        lines_loaded,
        lines_stored,
        border_bytes_stored,
        elements: (m as u64) * (n as u64),
    }
}

/// Memory footprint (bytes) of a software implementation storing the full
/// DP-matrix at `bits` per element — the baseline the paper's 4–64×
/// footprint-reduction claims compare against.
#[must_use]
pub fn full_matrix_bytes(m: usize, n: usize, bits: usize) -> u64 {
    ((m as u64) * (n as u64) * bits as u64).div_ceil(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chars_per_line_by_width() {
        assert_eq!(chars_per_line(ElementWidth::W2), 256);
        assert_eq!(chars_per_line(ElementWidth::W4), 128);
        assert_eq!(chars_per_line(ElementWidth::W6), 85);
        assert_eq!(chars_per_line(ElementWidth::W8), 64);
    }

    #[test]
    fn score_only_stats() {
        let s = block_transfer_stats(1024, 1024, ElementWidth::W2, BlockMode::ScoreOnly);
        assert_eq!(s.supertiles, 16); // 4x4 supertiles of 256x256
        assert_eq!(s.tiles, 1024); // 32x32 tiles of 32x32
        assert_eq!(s.lines_loaded, 64);
        assert_eq!(s.lines_stored, 32);
        assert_eq!(s.border_bytes_stored, 0);
        assert_eq!(s.elements, 1024 * 1024);
    }

    #[test]
    fn traceback_mode_stores_tile_borders() {
        let s = block_transfer_stats(1024, 1024, ElementWidth::W2, BlockMode::Traceback);
        // 1024 tiles x (2*32 elements * 2 bits / 8) = 16 bytes per tile.
        assert_eq!(s.border_bytes_stored, 1024 * 16);
        assert!(s.lines_stored > 32);
    }

    #[test]
    fn footprint_reduction_vs_software() {
        // Paper §5: up to 256x reduction vs a 32-bit software matrix.
        let m = 10_000;
        let n = 10_000;
        let sw = full_matrix_bytes(m, n, 32);
        let smx =
            block_transfer_stats(m, n, ElementWidth::W2, BlockMode::Traceback).border_bytes_stored;
        let reduction = sw as f64 / smx as f64;
        assert!(reduction > 200.0, "reduction {reduction}");
    }

    #[test]
    fn merge_accumulates() {
        let mut a = block_transfer_stats(100, 100, ElementWidth::W8, BlockMode::ScoreOnly);
        let b = a;
        a.merge(&b);
        assert_eq!(a.tiles, 2 * b.tiles);
        assert_eq!(a.lines_total(), 2 * b.lines_total());
    }
}
