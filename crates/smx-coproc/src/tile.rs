//! DP-tile border types (paper §5.2).
//!
//! A DP-tile is a `rows × cols` region (at most `VL × VL`) whose inputs
//! are the Δv′ values entering from the left and the Δh′ values entering
//! from the top, and whose outputs are the Δv′ leaving on the right and
//! the Δh′ leaving at the bottom — the `ΔV′`/`ΔH′` vectors of Fig. 6.

/// Input borders of a tile in shifted differential form.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TileInput {
    /// Δv′ entering each row from the left (length = tile rows).
    pub dv_left: Vec<u8>,
    /// Δh′ entering each column from the top (length = tile cols).
    pub dh_top: Vec<u8>,
}

impl TileInput {
    /// Fresh (origin-anchored) inputs for a `rows × cols` tile.
    #[must_use]
    pub fn fresh(rows: usize, cols: usize) -> TileInput {
        TileInput { dv_left: vec![0; rows], dh_top: vec![0; cols] }
    }

    /// Tile rows implied by the left border.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.dv_left.len()
    }

    /// Tile columns implied by the top border.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.dh_top.len()
    }
}

/// Output borders of a tile.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TileOutput {
    /// Δv′ leaving each row on the right (length = tile rows).
    pub dv_right: Vec<u8>,
    /// Δh′ leaving each column at the bottom (length = tile cols).
    pub dh_bottom: Vec<u8>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_dimensions() {
        let t = TileInput::fresh(10, 7);
        assert_eq!(t.rows(), 10);
        assert_eq!(t.cols(), 7);
        assert!(t.dv_left.iter().all(|&v| v == 0));
    }
}
