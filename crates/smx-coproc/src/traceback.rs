//! Traceback with selective tile recomputation (paper §6, Fig. 8a).
//!
//! The coprocessor stores only tile borders; the traceback walks from the
//! block's bottom-right corner, recomputing the interior of exactly the
//! tiles the optimal path crosses (green tiles in Fig. 8a) and skipping
//! the rest. Each recomputed tile is converted to absolute scores using
//! its stored corner anchor, then walked with the global tie-break
//! (diagonal ≻ insert ≻ delete).

use crate::block::TileBorderStore;
use crate::control::CancelToken;
use crate::engine::SmxEngine;
use crate::faults::FaultSession;
use crate::tile::TileInput;
use smx_align_core::{AlignError, Cigar, Op};

/// Work performed by a traceback (for Fig. 2's cells-computed accounting
/// and the CPU-side timing of the SMX-2D-only implementation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecomputeStats {
    /// Tiles recomputed.
    pub tiles: u64,
    /// DP-elements recomputed.
    pub elements: u64,
    /// Traceback steps taken.
    pub steps: u64,
}

/// Traces back through a block computed in [`crate::BlockMode::Traceback`]
/// mode.
///
/// `query`/`reference` must be the same slices the block was computed
/// from. Returns the CIGAR (left-to-right) and recomputation statistics.
///
/// # Errors
///
/// Returns [`AlignError::Internal`] if the store is inconsistent with the
/// sequences or the walk breaks (both indicate a bug upstream).
pub fn traceback_block(
    engine: &SmxEngine,
    query: &[u8],
    reference: &[u8],
    store: &TileBorderStore,
) -> Result<(Cigar, RecomputeStats), AlignError> {
    traceback_block_inner(engine, query, reference, store, None, None)
}

/// [`traceback_block`] with optional fault injection and cooperative
/// control: `control` is checked before every tile recomputation.
///
/// # Errors
///
/// Same conditions as [`traceback_block_resilient`], plus
/// [`AlignError::Cancelled`] / [`AlignError::DeadlineExceeded`] when the
/// token fires.
pub fn traceback_block_controlled(
    engine: &SmxEngine,
    query: &[u8],
    reference: &[u8],
    store: &TileBorderStore,
    session: Option<&mut FaultSession>,
    control: Option<&CancelToken>,
) -> Result<(Cigar, RecomputeStats), AlignError> {
    traceback_block_inner(engine, query, reference, store, session, control)
}

/// [`traceback_block`] under an active fault-injection session: every
/// stored border the traceback re-reads crosses the (possibly faulty) L2
/// port and is verified against the checksum recorded when the worker
/// stored it (see [`crate::faults`]).
///
/// # Errors
///
/// Same conditions as [`traceback_block`], plus
/// [`AlignError::RecoveryExhausted`] when a border read cannot be
/// recovered under the session's policy.
pub fn traceback_block_resilient(
    engine: &SmxEngine,
    query: &[u8],
    reference: &[u8],
    store: &TileBorderStore,
    session: &mut FaultSession,
) -> Result<(Cigar, RecomputeStats), AlignError> {
    traceback_block_inner(engine, query, reference, store, Some(session), None)
}

fn traceback_block_inner(
    engine: &SmxEngine,
    query: &[u8],
    reference: &[u8],
    store: &TileBorderStore,
    mut session: Option<&mut FaultSession>,
    control: Option<&CancelToken>,
) -> Result<(Cigar, RecomputeStats), AlignError> {
    let (m, n) = store.block_dims();
    if query.len() != m || reference.len() != n {
        return Err(AlignError::Internal(format!(
            "sequences ({}, {}) do not match stored block ({m}, {n})",
            query.len(),
            reference.len()
        )));
    }
    let scheme = engine.scheme().clone();
    let (gi, gd) = (scheme.gap_insert(), scheme.gap_delete());
    let vl = store.vl();
    let epoch = session.as_mut().map_or(0, |s| s.begin_epoch());
    let mut stats = RecomputeStats::default();
    let mut cigar = Cigar::new();
    let mut gi_pos = m; // global row (cells consumed from query)
    let mut gj_pos = n; // global column

    while gi_pos > 0 || gj_pos > 0 {
        if gi_pos == 0 {
            cigar.push_run(Op::Delete, gj_pos as u32);
            stats.steps += gj_pos as u64;
            break;
        }
        if gj_pos == 0 {
            cigar.push_run(Op::Insert, gi_pos as u32);
            stats.steps += gi_pos as u64;
            break;
        }
        // Tile boundary: the cooperative cancellation / deadline hook.
        if let Some(token) = control {
            token.check()?;
        }
        let ti = (gi_pos - 1) / vl;
        let tj = (gj_pos - 1) / vl;
        let (rspan, cspan) = store.tile_span(ti, tj);
        let (rows, cols) = (rspan.len(), cspan.len());
        let fetched: TileInput;
        let tin: &TileInput = match session.as_mut() {
            Some(s) => {
                fetched = s.fetch_input(epoch, ti, tj, store.input(ti, tj))?;
                &fetched
            }
            None => store.input(ti, tj),
        };
        let q_seg = &query[rspan.clone()];
        let r_seg = &reference[cspan.clone()];
        let blk = engine.compute_tile_full(q_seg, r_seg, tin)?;
        stats.tiles += 1;
        stats.elements += (rows * cols) as u64;

        // Absolute tile matrix (rows+1) x (cols+1) anchored at the tile's
        // top-left corner.
        let anchor = store.anchor(ti, tj);
        let mut abs = vec![0i32; (rows + 1) * (cols + 1)];
        let at = |i: usize, j: usize| i * (cols + 1) + j;
        abs[at(0, 0)] = anchor;
        for j in 1..=cols {
            abs[at(0, j)] = abs[at(0, j - 1)] + i32::from(tin.dh_top[j - 1]) + gd;
        }
        for i in 1..=rows {
            abs[at(i, 0)] = abs[at(i - 1, 0)] + i32::from(tin.dv_left[i - 1]) + gi;
        }
        for j in 1..=cols {
            for i in 1..=rows {
                abs[at(i, j)] = abs[at(i - 1, j)] + i32::from(blk.dv(i - 1, j - 1)) + gi;
            }
        }

        // Walk within the tile until we leave through its top or left edge.
        let mut li = gi_pos - rspan.start;
        let mut lj = gj_pos - cspan.start;
        while li > 0 && lj > 0 {
            stats.steps += 1;
            let here = abs[at(li, lj)];
            let (qc, rc) = (q_seg[li - 1], r_seg[lj - 1]);
            if here == abs[at(li - 1, lj - 1)] + scheme.score(qc, rc) {
                cigar.push(if qc == rc { Op::Match } else { Op::Mismatch });
                li -= 1;
                lj -= 1;
            } else if here == abs[at(li - 1, lj)] + gi {
                cigar.push(Op::Insert);
                li -= 1;
            } else if here == abs[at(li, lj - 1)] + gd {
                cigar.push(Op::Delete);
                lj -= 1;
            } else {
                return Err(AlignError::Internal(format!(
                    "broken tile traceback at global ({gi_pos}, {gj_pos})"
                )));
            }
            gi_pos = rspan.start + li;
            gj_pos = cspan.start + lj;
        }
    }
    cigar.reverse();
    Ok((cigar, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{compute_block, BlockMode};
    use proptest::prelude::*;
    use smx_align_core::{dp, AlignmentConfig};

    fn engine(cfg: AlignmentConfig) -> SmxEngine {
        SmxEngine::new(cfg.element_width(), &cfg.scoring()).unwrap()
    }

    fn seq(cfg: AlignmentConfig, len: usize, stride: u32) -> Vec<u8> {
        let card = cfg.alphabet().cardinality() as u32;
        (0..len as u32)
            .map(|i| (i.wrapping_mul(stride).wrapping_add(i >> 3) % card) as u8)
            .collect()
    }

    fn roundtrip(cfg: AlignmentConfig, q: &[u8], r: &[u8]) {
        let e = engine(cfg);
        let scheme = cfg.scoring();
        let out = compute_block(&e, q, r, None, BlockMode::Traceback).unwrap();
        let store = out.borders.as_ref().unwrap();
        let (cigar, stats) = traceback_block(&e, q, r, store).unwrap();
        let golden = dp::align_codes(q, r, &scheme);
        assert_eq!(out.score, golden.score, "{cfg}: score");
        let rescored = cigar.score(q, r, &scheme).unwrap();
        assert_eq!(rescored, golden.score, "{cfg}: cigar score");
        assert!(stats.tiles >= 1);
        // The path can cross at most (tile_rows + tile_cols) tiles plus
        // revisits when it re-enters a tile after a detour; bound loosely.
        assert!(stats.steps as usize >= q.len().max(r.len()));
    }

    #[test]
    fn traceback_matches_golden_all_configs() {
        for cfg in AlignmentConfig::ALL {
            let q = seq(cfg, 70, 7);
            let r = seq(cfg, 61, 5);
            roundtrip(cfg, &q, &r);
        }
    }

    #[test]
    fn traceback_single_tile() {
        let cfg = AlignmentConfig::DnaEdit;
        roundtrip(cfg, &seq(cfg, 8, 3), &seq(cfg, 6, 5));
    }

    #[test]
    fn traceback_tall_and_wide_blocks() {
        let cfg = AlignmentConfig::Ascii;
        roundtrip(cfg, &seq(cfg, 40, 13), &seq(cfg, 5, 9));
        roundtrip(cfg, &seq(cfg, 5, 13), &seq(cfg, 40, 9));
    }

    #[test]
    fn recompute_is_selective() {
        // Identical sequences: the path is the main diagonal, so only the
        // diagonal tiles are recomputed.
        let cfg = AlignmentConfig::DnaEdit; // VL = 32
        let e = engine(cfg);
        let q = seq(cfg, 128, 7);
        let out = compute_block(&e, &q, &q, None, BlockMode::Traceback).unwrap();
        let store = out.borders.as_ref().unwrap();
        let (cigar, stats) = traceback_block(&e, &q, &q, store).unwrap();
        assert_eq!(cigar.to_string(), "128=");
        assert_eq!(stats.tiles, 4, "only the 4 diagonal tiles");
        // 16 tiles exist; we recomputed a quarter of the block.
        assert_eq!(stats.elements, 4 * 32 * 32);
    }

    #[test]
    fn cigar_is_byte_identical_to_golden() {
        // The shared tie-break (diagonal ≻ insert ≻ delete) makes the tile
        // traceback's CIGAR identical to the golden model's — which is
        // what lets the software fallback preserve byte-identical output.
        for cfg in AlignmentConfig::ALL {
            let e = engine(cfg);
            let q = seq(cfg, 70, 7);
            let r = seq(cfg, 61, 5);
            let out = compute_block(&e, &q, &r, None, BlockMode::Traceback).unwrap();
            let store = out.borders.as_ref().unwrap();
            let (cigar, _) = traceback_block(&e, &q, &r, store).unwrap();
            let golden = dp::align_codes(&q, &r, &cfg.scoring());
            assert_eq!(cigar.to_string(), golden.cigar.to_string(), "{cfg}");
        }
    }

    #[test]
    fn resilient_traceback_is_byte_identical_under_faults() {
        use crate::faults::{FaultPlan, FaultSession, RecoveryPolicy};
        let cfg = AlignmentConfig::DnaGap;
        let e = engine(cfg);
        let q = seq(cfg, 70, 7);
        let r = seq(cfg, 61, 5);
        let out = compute_block(&e, &q, &r, None, BlockMode::Traceback).unwrap();
        let store = out.borders.as_ref().unwrap();
        let (clean, _) = traceback_block(&e, &q, &r, store).unwrap();
        for rate in [0.01, 0.2, 1.0] {
            let mut s = FaultSession::new(FaultPlan::new(17, rate), RecoveryPolicy::default());
            let (cigar, _) = traceback_block_resilient(&e, &q, &r, store, &mut s).unwrap();
            assert_eq!(cigar.to_string(), clean.to_string(), "rate {rate}");
            assert!(s.stats().invariants_hold(), "rate {rate}: {:?}", s.stats());
        }
    }

    #[test]
    fn mismatched_sequences_rejected() {
        let cfg = AlignmentConfig::DnaEdit;
        let e = engine(cfg);
        let q = seq(cfg, 16, 3);
        let out = compute_block(&e, &q, &q, None, BlockMode::Traceback).unwrap();
        let store = out.borders.unwrap();
        assert!(traceback_block(&e, &q[..8], &q, &store).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn random_blocks_roundtrip(
            q in proptest::collection::vec(0u8..4, 1..90),
            r in proptest::collection::vec(0u8..4, 1..90),
        ) {
            let cfg = AlignmentConfig::DnaGap;
            let e = engine(cfg);
            let scheme = cfg.scoring();
            let out = compute_block(&e, &q, &r, None, BlockMode::Traceback).unwrap();
            let store = out.borders.as_ref().unwrap();
            let (cigar, _) = traceback_block(&e, &q, &r, store).unwrap();
            let golden = dp::score_only(&q, &r, &scheme);
            prop_assert_eq!(out.score, golden);
            prop_assert_eq!(cigar.score(&q, &r, &scheme).unwrap(), golden);
        }
    }
}
