//! Cooperative execution control: cancellation and wall-clock deadlines.
//!
//! A [`CancelToken`] is the service layer's handle into a running
//! alignment. The coprocessor checks the token at every tile boundary —
//! the same hook point the fault watchdog uses — so a stuck or
//! over-budget pair is abandoned within one tile's worth of work instead
//! of stalling its worker for the rest of the block. Cancellation is
//! cooperative and lossless: an abandoned pair fails with a typed
//! [`AlignError::Cancelled`] / [`AlignError::DeadlineExceeded`] error and
//! never produces a partial or corrupt alignment.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use smx_align_core::AlignError;

/// A shareable cancellation handle with an optional wall-clock deadline.
///
/// Clones (and [`fork_with_deadline`](CancelToken::fork_with_deadline)
/// children) share the cancellation flag: cancelling any handle cancels
/// them all. Deadlines are per-handle, so a batch-wide token can fork a
/// fresh per-pair deadline for every pair it dispatches.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
    deadline: Option<(Instant, u64)>,
}

impl CancelToken {
    /// A fresh token with no deadline.
    #[must_use]
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A child sharing this token's cancellation flag, with a wall-clock
    /// deadline of `budget` from now.
    #[must_use]
    pub fn fork_with_deadline(&self, budget: Duration) -> CancelToken {
        CancelToken {
            cancelled: Arc::clone(&self.cancelled),
            deadline: Some((Instant::now() + budget, budget.as_millis() as u64)),
        }
    }

    /// Signals cancellation to every handle sharing this token's flag.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether cancellation has been signalled.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// Whether this handle's deadline (if any) has expired.
    #[must_use]
    pub fn deadline_exceeded(&self) -> bool {
        self.deadline.is_some_and(|(at, _)| Instant::now() >= at)
    }

    /// The tile-boundary check: fails fast with the typed reason when the
    /// token is cancelled or past its deadline.
    ///
    /// # Errors
    ///
    /// Returns [`AlignError::Cancelled`] or
    /// [`AlignError::DeadlineExceeded`].
    pub fn check(&self) -> Result<(), AlignError> {
        if self.is_cancelled() {
            return Err(AlignError::Cancelled);
        }
        if let Some((at, budget_ms)) = self.deadline {
            if Instant::now() >= at {
                return Err(AlignError::DeadlineExceeded { budget_ms });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_passes() {
        let t = CancelToken::new();
        assert!(t.check().is_ok());
        assert!(!t.is_cancelled());
        assert!(!t.deadline_exceeded());
    }

    #[test]
    fn cancel_propagates_to_clones_and_forks() {
        let t = CancelToken::new();
        let clone = t.clone();
        let fork = t.fork_with_deadline(Duration::from_secs(3600));
        clone.cancel();
        assert!(matches!(t.check(), Err(AlignError::Cancelled)));
        assert!(matches!(fork.check(), Err(AlignError::Cancelled)));
    }

    #[test]
    fn zero_budget_deadline_fires_immediately() {
        let t = CancelToken::new().fork_with_deadline(Duration::ZERO);
        assert!(t.deadline_exceeded());
        assert!(matches!(t.check(), Err(AlignError::DeadlineExceeded { budget_ms: 0 })));
        // The parent carries no deadline.
        assert!(CancelToken::new().check().is_ok());
    }

    #[test]
    fn forked_deadline_does_not_cancel_parent() {
        let parent = CancelToken::new();
        let child = parent.fork_with_deadline(Duration::ZERO);
        assert!(child.check().is_err());
        assert!(parent.check().is_ok());
    }

    #[test]
    fn token_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CancelToken>();
    }
}
