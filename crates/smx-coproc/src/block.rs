//! DP-block computation on the coprocessor (paper §5.1): the SMX-worker
//! sweeps the tile grid, keeps only tile borders, and tracks the absolute
//! anchors needed to recompute any tile during traceback.

use crate::control::CancelToken;
use crate::engine::SmxEngine;
use crate::faults::FaultSession;
use crate::tile::{TileInput, TileOutput};
use crate::worker::{block_transfer_stats, TransferStats};
use smx_align_core::AlignError;
use smx_diffenc::boundary::BlockBorders;

/// What the coprocessor retains from a block computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockMode {
    /// Keep only the output borders (score-only use cases).
    ScoreOnly,
    /// Additionally keep every tile's input borders and corner anchors so
    /// the core can recompute tiles along the traceback path.
    Traceback,
}

/// Stored per-tile state enabling selective recomputation (paper Fig. 8a).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileBorderStore {
    vl: usize,
    m: usize,
    n: usize,
    t_rows: usize,
    t_cols: usize,
    /// Input borders, row-major over the tile grid.
    inputs: Vec<TileInput>,
    /// Absolute DP value at each tile's top-left corner `M(ti·VL, tj·VL)`,
    /// relative to the block anchor.
    anchors: Vec<i32>,
}

impl TileBorderStore {
    /// Tile grid rows.
    #[must_use]
    pub fn tile_rows(&self) -> usize {
        self.t_rows
    }

    /// Tile grid columns.
    #[must_use]
    pub fn tile_cols(&self) -> usize {
        self.t_cols
    }

    /// Tile side (`VL`).
    #[must_use]
    pub fn vl(&self) -> usize {
        self.vl
    }

    /// Block dimensions `(m, n)`.
    #[must_use]
    pub fn block_dims(&self) -> (usize, usize) {
        (self.m, self.n)
    }

    /// Input borders of tile `(ti, tj)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    #[must_use]
    pub fn input(&self, ti: usize, tj: usize) -> &TileInput {
        assert!(ti < self.t_rows && tj < self.t_cols);
        &self.inputs[ti * self.t_cols + tj]
    }

    /// Absolute anchor of tile `(ti, tj)` (relative to the block anchor).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    #[must_use]
    pub fn anchor(&self, ti: usize, tj: usize) -> i32 {
        assert!(ti < self.t_rows && tj < self.t_cols);
        self.anchors[ti * self.t_cols + tj]
    }

    /// The (row, col) ranges covered by tile `(ti, tj)`.
    #[must_use]
    pub fn tile_span(
        &self,
        ti: usize,
        tj: usize,
    ) -> (std::ops::Range<usize>, std::ops::Range<usize>) {
        let r0 = ti * self.vl;
        let c0 = tj * self.vl;
        (r0..(r0 + self.vl).min(self.m), c0..(c0 + self.vl).min(self.n))
    }
}

/// The result of a block computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockOutput {
    /// Bottom-right DP value relative to the block anchor.
    pub score: i32,
    /// Δh′ outputs of the bottom row.
    pub bottom_dh: Vec<u8>,
    /// Δv′ outputs of the rightmost column.
    pub right_dv: Vec<u8>,
    /// Tile border store ([`BlockMode::Traceback`] only).
    pub borders: Option<TileBorderStore>,
    /// Memory-transfer ledger for the timing model.
    pub stats: TransferStats,
}

/// Computes an `m × n` DP-block by sweeping the tile grid.
///
/// `input` borders of `None` mean a fresh, origin-anchored block.
///
/// # Errors
///
/// Returns [`AlignError::EmptySequence`] on empty inputs and
/// [`AlignError::Internal`] on border-length mismatches; propagates engine
/// errors.
pub fn compute_block(
    engine: &SmxEngine,
    query: &[u8],
    reference: &[u8],
    input: Option<&BlockBorders>,
    mode: BlockMode,
) -> Result<BlockOutput, AlignError> {
    compute_block_inner(engine, query, reference, input, mode, None, None)
}

/// [`compute_block`] with optional fault injection and cooperative
/// control: `control` is checked at every tile boundary, abandoning the
/// block with [`AlignError::Cancelled`] / [`AlignError::DeadlineExceeded`]
/// when the token fires.
///
/// # Errors
///
/// Same conditions as [`compute_block_resilient`], plus the control
/// errors above.
pub fn compute_block_controlled(
    engine: &SmxEngine,
    query: &[u8],
    reference: &[u8],
    input: Option<&BlockBorders>,
    mode: BlockMode,
    session: Option<&mut FaultSession>,
    control: Option<&CancelToken>,
) -> Result<BlockOutput, AlignError> {
    compute_block_inner(engine, query, reference, input, mode, session, control)
}

/// [`compute_block`] under an active fault-injection session: every tile
/// runs through the session's checksum/watchdog/retry/fallback machinery
/// (see [`crate::faults`]).
///
/// # Errors
///
/// Same conditions as [`compute_block`], plus
/// [`AlignError::RecoveryExhausted`] when a tile cannot be recovered
/// under the session's policy.
pub fn compute_block_resilient(
    engine: &SmxEngine,
    query: &[u8],
    reference: &[u8],
    input: Option<&BlockBorders>,
    mode: BlockMode,
    session: &mut FaultSession,
) -> Result<BlockOutput, AlignError> {
    compute_block_inner(engine, query, reference, input, mode, Some(session), None)
}

fn compute_block_inner(
    engine: &SmxEngine,
    query: &[u8],
    reference: &[u8],
    input: Option<&BlockBorders>,
    mode: BlockMode,
    mut session: Option<&mut FaultSession>,
    control: Option<&CancelToken>,
) -> Result<BlockOutput, AlignError> {
    let (m, n) = (query.len(), reference.len());
    if m == 0 || n == 0 {
        return Err(AlignError::EmptySequence);
    }
    let fresh = BlockBorders::fresh(m, n);
    let borders = input.unwrap_or(&fresh);
    if borders.rows() != m || borders.cols() != n {
        return Err(AlignError::Internal(format!(
            "block borders ({}, {}) do not match ({m}, {n})",
            borders.rows(),
            borders.cols()
        )));
    }
    let scheme = engine.scheme().clone();
    let (gi, gd) = (scheme.gap_insert(), scheme.gap_delete());
    let vl = engine.tile_dim();
    let t_rows = m.div_ceil(vl);
    let t_cols = n.div_ceil(vl);

    let mut dh_carry: Vec<u8> = borders.top_dh.clone();
    let mut right_dv: Vec<u8> = Vec::with_capacity(m);
    let mut inputs: Vec<TileInput> = Vec::new();
    let mut anchors: Vec<i32> = Vec::new();
    let keep = mode == BlockMode::Traceback;
    if keep {
        inputs.reserve(t_rows * t_cols);
        anchors.reserve(t_rows * t_cols);
    }
    let epoch = session.as_mut().map_or(0, |s| s.begin_epoch());

    // Absolute anchor of the current tile-row's left edge.
    let mut left_anchor: i32 = 0;
    for ti in 0..t_rows {
        let r0 = ti * vl;
        let rows = (m - r0).min(vl);
        let q_seg = &query[r0..r0 + rows];
        // Δv′ entering the leftmost tile of this row from the block border.
        let mut dv_carry: Vec<u8> = borders.left_dv[r0..r0 + rows].to_vec();
        let mut anchor = left_anchor;
        for tj in 0..t_cols {
            // Tile boundary: the cooperative cancellation / deadline hook
            // (same granularity as the fault watchdog).
            if let Some(token) = control {
                token.check()?;
            }
            let c0 = tj * vl;
            let cols = (n - c0).min(vl);
            let r_seg = &reference[c0..c0 + cols];
            let tin =
                TileInput { dv_left: dv_carry.clone(), dh_top: dh_carry[c0..c0 + cols].to_vec() };
            if keep {
                inputs.push(tin.clone());
                anchors.push(anchor);
            }
            // Advance the anchor across this tile's top edge.
            anchor += tin.dh_top.iter().map(|&d| i32::from(d) + gd).sum::<i32>();
            let TileOutput { dv_right, dh_bottom } = match session.as_mut() {
                Some(s) => s.run_tile(engine, q_seg, r_seg, &tin, epoch, ti, tj)?,
                None => engine.compute_tile(q_seg, r_seg, &tin)?,
            };
            dh_carry[c0..c0 + cols].copy_from_slice(&dh_bottom);
            dv_carry = dv_right;
        }
        right_dv.extend_from_slice(&dv_carry);
        // Advance the left anchor down this tile-row's left edge.
        left_anchor +=
            borders.left_dv[r0..r0 + rows].iter().map(|&d| i32::from(d) + gi).sum::<i32>();
    }

    let top_sum: i32 = borders.top_dh.iter().map(|&d| i32::from(d) + gd).sum();
    let right_sum: i32 = right_dv.iter().map(|&d| i32::from(d) + gi).sum();
    let stats = block_transfer_stats(m, n, engine.ew(), mode);

    Ok(BlockOutput {
        score: top_sum + right_sum,
        bottom_dh: dh_carry,
        right_dv,
        borders: keep.then_some(TileBorderStore { vl, m, n, t_rows, t_cols, inputs, anchors }),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use smx_align_core::{dp, AlignmentConfig};

    fn engine(cfg: AlignmentConfig) -> SmxEngine {
        SmxEngine::new(cfg.element_width(), &cfg.scoring()).unwrap()
    }

    fn seq(cfg: AlignmentConfig, len: usize, stride: u32) -> Vec<u8> {
        let card = cfg.alphabet().cardinality() as u32;
        (0..len as u32).map(|i| (i.wrapping_mul(stride) % card) as u8).collect()
    }

    #[test]
    fn block_score_matches_golden_all_configs() {
        for cfg in AlignmentConfig::ALL {
            let e = engine(cfg);
            let scheme = cfg.scoring();
            let q = seq(cfg, 75, 7);
            let r = seq(cfg, 90, 11);
            let out = compute_block(&e, &q, &r, None, BlockMode::ScoreOnly).unwrap();
            assert_eq!(out.score, dp::score_only(&q, &r, &scheme), "{cfg}");
            assert!(out.borders.is_none());
        }
    }

    #[test]
    fn traceback_mode_stores_all_tiles() {
        let cfg = AlignmentConfig::Ascii; // VL = 8
        let e = engine(cfg);
        let q = seq(cfg, 20, 3);
        let r = seq(cfg, 17, 5);
        let out = compute_block(&e, &q, &r, None, BlockMode::Traceback).unwrap();
        let store = out.borders.unwrap();
        assert_eq!(store.tile_rows(), 3);
        assert_eq!(store.tile_cols(), 3);
        assert_eq!(store.input(0, 0).rows(), 8);
        assert_eq!(store.input(2, 2).rows(), 4); // 20 - 16
        assert_eq!(store.input(2, 2).cols(), 1); // 17 - 16
    }

    #[test]
    fn anchors_match_golden_matrix() {
        let cfg = AlignmentConfig::DnaGap; // VL = 16
        let e = engine(cfg);
        let scheme = cfg.scoring();
        let q = seq(cfg, 40, 7);
        let r = seq(cfg, 35, 3);
        let out = compute_block(&e, &q, &r, None, BlockMode::Traceback).unwrap();
        let store = out.borders.unwrap();
        let golden = dp::full_matrix(&q, &r, &scheme);
        for ti in 0..store.tile_rows() {
            for tj in 0..store.tile_cols() {
                assert_eq!(
                    store.anchor(ti, tj),
                    golden.get(ti * 16, tj * 16),
                    "anchor ({ti}, {tj})"
                );
            }
        }
    }

    #[test]
    fn borders_chain_across_split() {
        // Splitting the reference across two block computations must agree
        // with a single block.
        let cfg = AlignmentConfig::DnaEdit;
        let e = engine(cfg);
        let q = seq(cfg, 50, 7);
        let r = seq(cfg, 64, 11);
        let whole = compute_block(&e, &q, &r, None, BlockMode::ScoreOnly).unwrap();
        let left = compute_block(&e, &q, &r[..40], None, BlockMode::ScoreOnly).unwrap();
        let bb = BlockBorders::from_neighbors(vec![0; 24], left.right_dv.clone());
        let right = compute_block(&e, &q, &r[40..], Some(&bb), BlockMode::ScoreOnly).unwrap();
        assert_eq!(right.right_dv, whole.right_dv);
        assert_eq!(right.bottom_dh, whole.bottom_dh[40..].to_vec());
    }

    #[test]
    fn empty_block_rejected() {
        let e = engine(AlignmentConfig::DnaEdit);
        assert!(compute_block(&e, &[], &[0], None, BlockMode::ScoreOnly).is_err());
    }

    #[test]
    fn wrong_borders_rejected() {
        let e = engine(AlignmentConfig::DnaEdit);
        let bb = BlockBorders::fresh(3, 3);
        assert!(compute_block(&e, &[0, 1], &[0, 1], Some(&bb), BlockMode::ScoreOnly).is_err());
    }

    #[test]
    fn resilient_block_is_bit_exact_under_faults() {
        use crate::faults::{FaultPlan, FaultSession, RecoveryPolicy};
        let cfg = AlignmentConfig::DnaGap;
        let e = engine(cfg);
        let q = seq(cfg, 75, 7);
        let r = seq(cfg, 90, 11);
        let clean = compute_block(&e, &q, &r, None, BlockMode::Traceback).unwrap();
        for rate in [0.0, 0.05, 0.5, 1.0] {
            let plan = FaultPlan::new(99, rate);
            let mut s = FaultSession::new(plan, RecoveryPolicy::default());
            let out =
                compute_block_resilient(&e, &q, &r, None, BlockMode::Traceback, &mut s).unwrap();
            assert_eq!(out.score, clean.score, "rate {rate}");
            assert_eq!(out.bottom_dh, clean.bottom_dh, "rate {rate}");
            assert_eq!(out.right_dv, clean.right_dv, "rate {rate}");
            assert_eq!(out.borders, clean.borders, "rate {rate}");
            assert!(s.stats().invariants_hold(), "rate {rate}: {:?}", s.stats());
        }
    }

    #[test]
    fn tile_span_clamps_at_edges() {
        let cfg = AlignmentConfig::Ascii;
        let e = engine(cfg);
        let q = seq(cfg, 10, 3);
        let r = seq(cfg, 9, 5);
        let out = compute_block(&e, &q, &r, None, BlockMode::Traceback).unwrap();
        let store = out.borders.unwrap();
        let (rs, cs) = store.tile_span(1, 1);
        assert_eq!(rs, 8..10);
        assert_eq!(cs, 8..9);
    }
}
