//! # smx-physical
//!
//! Analytic physical-design model of SMX (paper §10, Fig. 13, Table 3):
//! a bottom-up area model of the SMX-1D unit and SMX-2D coprocessor
//! calibrated to the paper's 22nm post-PnR results, a dynamic-power model
//! at a configurable activity factor, technology scaling for cross-node
//! comparisons, and the peak-GCUPS arithmetic behind Table 3.
//!
//! ## Example
//!
//! ```
//! use smx_physical::AreaModel;
//!
//! let model = AreaModel::new();
//! // The paper's post-PnR totals at 22nm.
//! assert!((model.smx1d_area() - 0.0152).abs() < 0.002);
//! assert!((model.smx2d_area() - 0.3280).abs() < 0.01);
//! assert!((model.power_mw(0.2) - 0.342).abs() < 0.04);
//! ```

pub mod area;
pub mod energy;
pub mod gcups;

pub use area::{scale_area, AreaModel, ModuleArea};
pub use gcups::{peak_gcups, peak_gcups_per_mm2};
