//! Peak-throughput arithmetic behind Table 3.

use crate::area::AreaModel;
use smx_align_core::AlignmentConfig;

/// Peak GCUPS of SMX for a configuration at 1 GHz: one `VL × VL` tile per
/// cycle (1024 / 256 / 100 / 64).
#[must_use]
pub fn peak_gcups(config: AlignmentConfig) -> f64 {
    let vl = config.element_width().vl() as f64;
    vl * vl
}

/// Peak GCUPS per mm² of added silicon (the Table-3 efficiency metric).
#[must_use]
pub fn peak_gcups_per_mm2(config: AlignmentConfig) -> f64 {
    peak_gcups(config) / AreaModel::new().total_area()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peaks_match_paper() {
        assert_eq!(peak_gcups(AlignmentConfig::DnaEdit), 1024.0);
        assert_eq!(peak_gcups(AlignmentConfig::DnaGap), 256.0);
        assert_eq!(peak_gcups(AlignmentConfig::Protein), 100.0);
        assert_eq!(peak_gcups(AlignmentConfig::Ascii), 64.0);
    }

    #[test]
    fn efficiency_beats_dsas() {
        // Paper abstract: up to 18.5x more peak performance per area than
        // standalone DSAs. GenASM: 64 GCUPS / 0.33 mm² = 194; SMX
        // DNA-edit: 1024 / ~0.34 ≈ 3000 -> ~15.5x; Darwin 54.2/1.34 = 40.
        let smx = peak_gcups_per_mm2(AlignmentConfig::DnaEdit);
        let genasm = 64.0 / 0.33;
        let ratio = smx / genasm;
        assert!((12.0..20.0).contains(&ratio), "vs GenASM {ratio}");
    }
}
