//! Energy model: an extension of the paper's §10 power figure into
//! per-alignment energy, enabling efficiency comparisons between SMX and
//! the general-purpose core.
//!
//! Both models are area-proportional dynamic-power estimates at the 22nm
//! design point: `P = area · density · activity` (the calibration that
//! reproduces the paper's 0.342 mW for SMX at 20% activity), integrated
//! over the simulated cycles of a workload.

use crate::area::{AreaModel, POWER_MW_PER_MM2, PROCESSOR_AREA_MM2};
use smx_align_core::AlignmentConfig;

/// Activity factor assumed for a busy general-purpose core.
pub const CPU_ACTIVITY: f64 = 0.35;
/// Activity factor of SMX while streaming tiles (paper's reporting point).
pub const SMX_ACTIVITY: f64 = 0.20;

/// Energy in nanojoules for `cycles` at 1 GHz on the general-purpose core
/// (the whole Table-2-class processor, SIMD unit included).
#[must_use]
pub fn cpu_energy_nj(cycles: f64) -> f64 {
    // mW = mJ/s; at 1 GHz one cycle is 1 ns, so mW × cycles × 1e-9 s = mJ·1e-9 → nJ = pW·ns…
    // Simplify: P[mW] × t[ns] = pJ; /1000 → nJ.
    PROCESSOR_AREA_MM2 * POWER_MW_PER_MM2 * CPU_ACTIVITY * cycles * 1e-3
}

/// Energy in nanojoules for `cycles` of SMX activity (SMX-1D + SMX-2D),
/// plus the host core at light activity for orchestration.
#[must_use]
pub fn smx_energy_nj(cycles: f64, core_busy_frac: f64) -> f64 {
    let smx = AreaModel::new().total_area() * POWER_MW_PER_MM2 * SMX_ACTIVITY;
    let host =
        PROCESSOR_AREA_MM2 * POWER_MW_PER_MM2 * CPU_ACTIVITY * core_busy_frac.clamp(0.0, 1.0);
    (smx + host) * cycles * 1e-3
}

/// Energy per DP-element (picojoules) at SMX's peak rate for a
/// configuration — the efficiency headline a DSA comparison reports.
#[must_use]
pub fn smx_pj_per_cell(config: AlignmentConfig) -> f64 {
    let cells_per_cycle = crate::gcups::peak_gcups(config);
    let power_mw = AreaModel::new().total_area() * POWER_MW_PER_MM2 * SMX_ACTIVITY;
    // mW at 1 GHz = pJ per cycle.
    power_mw / cells_per_cycle
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_energy_scales_linearly() {
        let e1 = cpu_energy_nj(1000.0);
        let e2 = cpu_energy_nj(2000.0);
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
        assert!(e1 > 0.0);
    }

    #[test]
    fn smx_adds_host_share() {
        let idle_host = smx_energy_nj(1000.0, 0.0);
        let busy_host = smx_energy_nj(1000.0, 1.0);
        assert!(busy_host > idle_host);
        // A fully busy host dominates the small SMX block.
        assert!(busy_host / idle_host > 5.0);
    }

    #[test]
    fn pj_per_cell_ordering() {
        // Narrower elements compute more cells per cycle in the same
        // silicon: DNA-edit is the most energy-efficient per cell.
        let edit = smx_pj_per_cell(AlignmentConfig::DnaEdit);
        let ascii = smx_pj_per_cell(AlignmentConfig::Ascii);
        assert!(edit < ascii / 10.0, "{edit} vs {ascii}");
        assert!(edit < 0.01, "DNA-edit pJ/cell {edit}");
    }

    #[test]
    fn smx_beats_cpu_per_cycle_when_host_idle() {
        // The SMX add-on is ~31% of the processor area at a lower
        // activity factor: cheaper per cycle than the busy core.
        assert!(smx_energy_nj(1.0, 0.05) < cpu_energy_nj(1.0));
    }
}
