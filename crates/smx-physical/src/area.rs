//! Bottom-up area model (paper §10, Fig. 13b).
//!
//! The model prices each structural element — SMX-PEs (cost proportional
//! to their `EW+1`-bit datapath), the substitution-matrix storage (SRAM
//! in SMX-1D, registers in the SMX-engine), comparator arrays, pipeline
//! registers, worker SRAM + control, and the memory controller — with
//! per-element coefficients calibrated so the totals land on the paper's
//! post-PnR numbers at 22nm: SMX-1D 0.0152 mm² (1.37% of the processor),
//! SMX-2D 0.3280 mm² (29.66%), of which the engine is 0.1136 mm² and each
//! worker 0.0369 mm².

use smx_align_core::ElementWidth;

/// Total processor area at 22nm implied by the paper's percentages (mm²).
pub const PROCESSOR_AREA_MM2: f64 = 1.106;
/// 32 KB L1 data cache area (SMX-2D is reported as 2.13× this).
pub const L1D_AREA_MM2: f64 = 0.154;
/// Power density coefficient (mW per mm² at full activity, 1 GHz, 22nm),
/// calibrated to the paper's 0.342 mW at a 20% activity factor.
pub const POWER_MW_PER_MM2: f64 = 4.98;

/// mm² per (EW+1)-bit processing element (four subtractors + muxes).
const PE_UNIT_MM2: f64 = 1.42e-5;
/// mm² per bit of register storage (submat copy, pipeline registers).
const REG_BIT_MM2: f64 = 2.9e-6;
/// mm² per bit of SRAM storage (submat SRAM, worker buffers).
const SRAM_BIT_MM2: f64 = 0.75e-6;
/// mm² per comparator in the match/mismatch arrays.
const COMPARATOR_MM2: f64 = 2.4e-6;
/// Fixed control overhead of the SMX-1D unit (decode, operand routing).
const SMX1D_CONTROL_MM2: f64 = 0.00747;
/// Fixed control logic per SMX-worker.
const WORKER_CONTROL_MM2: f64 = 0.0123;
/// Memory controller and L2-port arbiter of SMX-2D.
const MEMCTRL_MM2: f64 = 0.0668;
/// Engine-level wiring/segmentation overhead factor.
const ENGINE_WIRING_FACTOR: f64 = 0.206;

/// A named module with its area.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleArea {
    /// Module name.
    pub name: String,
    /// Area in mm² at 22nm.
    pub mm2: f64,
}

/// The SMX area model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AreaModel {
    /// Number of SMX-workers in SMX-2D.
    pub workers: usize,
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel { workers: 4 }
    }
}

impl AreaModel {
    /// The evaluation configuration (4 workers).
    #[must_use]
    pub fn new() -> AreaModel {
        AreaModel::default()
    }

    /// PE-array area for a 1D array of `n` PEs at width `ew`.
    fn pe_array(n: usize, ew: ElementWidth) -> f64 {
        n as f64 * f64::from(ew.bits() + 1) * PE_UNIT_MM2
    }

    /// SMX-1D unit area: four 1D PE arrays (32/16/10/8 lanes), the
    /// comparator array, the 26×26×6-bit submat SRAM, and control.
    #[must_use]
    pub fn smx1d_area(&self) -> f64 {
        let pes: f64 = ElementWidth::ALL.iter().map(|&ew| AreaModel::pe_array(ew.vl(), ew)).sum();
        let comparators = 32.0 * COMPARATOR_MM2;
        let submat_sram = 26.0 * 26.0 * 6.0 * SRAM_BIT_MM2;
        pes + comparators + submat_sram + SMX1D_CONTROL_MM2
    }

    /// SMX-engine area: four 2D PE arrays, the register-file submat copy
    /// (10 columns readable per cycle), 2D comparator arrays, and
    /// antidiagonal segmentation registers / wiring.
    #[must_use]
    pub fn engine_area(&self) -> f64 {
        let pes: f64 =
            ElementWidth::ALL.iter().map(|&ew| AreaModel::pe_array(ew.vl() * ew.vl(), ew)).sum();
        let submat_regs = 26.0 * 26.0 * 6.0 * REG_BIT_MM2;
        let comparators = (32.0 * 32.0) * COMPARATOR_MM2;
        let base = pes + submat_regs + comparators;
        base * (1.0 + ENGINE_WIRING_FACTOR)
    }

    /// One SMX-worker: border SRAM (a supertile side of deltas per EW,
    /// double-buffered) plus its control FSM.
    #[must_use]
    pub fn worker_area(&self) -> f64 {
        // 2 borders x 256 elements x 8 bits, double-buffered.
        let sram_bits = 2.0 * 256.0 * 8.0 * 2.0 * 4.0; // per-EW copies
        sram_bits * SRAM_BIT_MM2 + WORKER_CONTROL_MM2
    }

    /// Area of a hypothetical gap-affine SMX-engine ("SMX-A"): each PE
    /// carries two values per direction (two extra adders and a second
    /// mux pair, ~2.3× the linear PE) and the datapath widens by 2 bits;
    /// comparator arrays, submat registers, and wiring are unchanged.
    #[must_use]
    pub fn affine_engine_area(&self) -> f64 {
        let pes: f64 = ElementWidth::ALL
            .iter()
            .map(|&ew| {
                let n = (ew.vl() * ew.vl()) as f64;
                n * f64::from(ew.bits() + 3) * PE_UNIT_MM2 * 2.3
            })
            .sum();
        let submat_regs = 26.0 * 26.0 * 6.0 * REG_BIT_MM2;
        let comparators = (32.0 * 32.0) * COMPARATOR_MM2;
        (pes + submat_regs + comparators) * (1.0 + ENGINE_WIRING_FACTOR)
    }

    /// SMX-2D total: engine + workers + memory controller.
    #[must_use]
    pub fn smx2d_area(&self) -> f64 {
        self.engine_area() + self.workers as f64 * self.worker_area() + MEMCTRL_MM2
    }

    /// SMX total (1D + 2D).
    #[must_use]
    pub fn total_area(&self) -> f64 {
        self.smx1d_area() + self.smx2d_area()
    }

    /// Dynamic power (mW) at 1 GHz for a given activity factor.
    #[must_use]
    pub fn power_mw(&self, activity: f64) -> f64 {
        self.total_area() * POWER_MW_PER_MM2 * activity
    }

    /// The Fig. 13b-style breakdown.
    #[must_use]
    pub fn breakdown(&self) -> Vec<ModuleArea> {
        let mut rows = vec![
            ModuleArea { name: "SMX-1D".into(), mm2: self.smx1d_area() },
            ModuleArea { name: "SMX-Engine".into(), mm2: self.engine_area() },
        ];
        for w in 0..self.workers {
            rows.push(ModuleArea { name: format!("SMX-Worker{w}"), mm2: self.worker_area() });
        }
        rows.push(ModuleArea { name: "SMX-2D memctrl".into(), mm2: MEMCTRL_MM2 });
        rows
    }
}

/// Technology scaling for cross-node area comparisons.
///
/// Fitted to the conversion the paper applies (GACT: 1.34 mm² at 40nm ≈
/// 0.3 mm² at 22nm, per the Stillmaker scaling equations): an exponent of
/// 2.5 on the feature-size ratio.
#[must_use]
pub fn scale_area(area_mm2: f64, from_nm: f64, to_nm: f64) -> f64 {
    area_mm2 * (to_nm / from_nm).powf(2.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smx1d_matches_paper() {
        let a = AreaModel::new().smx1d_area();
        assert!((a - 0.0152).abs() / 0.0152 < 0.10, "SMX-1D {a}");
    }

    #[test]
    fn engine_matches_paper() {
        let a = AreaModel::new().engine_area();
        assert!((a - 0.1136).abs() / 0.1136 < 0.10, "engine {a}");
    }

    #[test]
    fn worker_matches_paper() {
        let a = AreaModel::new().worker_area();
        assert!((a - 0.0369).abs() / 0.0369 < 0.10, "worker {a}");
    }

    #[test]
    fn smx2d_matches_paper() {
        let a = AreaModel::new().smx2d_area();
        assert!((a - 0.328).abs() / 0.328 < 0.10, "SMX-2D {a}");
    }

    #[test]
    fn totals_and_percentages() {
        let m = AreaModel::new();
        let total = m.total_area();
        assert!((total - 0.343).abs() < 0.03, "total {total}");
        let pct_1d = m.smx1d_area() / PROCESSOR_AREA_MM2 * 100.0;
        let pct_2d = m.smx2d_area() / PROCESSOR_AREA_MM2 * 100.0;
        assert!((pct_1d - 1.37).abs() < 0.3, "1D% {pct_1d}");
        assert!((pct_2d - 29.66).abs() < 3.0, "2D% {pct_2d}");
        // SMX-2D ≈ 2.13x the 32KB L1D.
        let ratio = m.smx2d_area() / L1D_AREA_MM2;
        assert!((ratio - 2.13).abs() < 0.3, "L1 ratio {ratio}");
    }

    #[test]
    fn power_matches_paper() {
        let p = AreaModel::new().power_mw(0.2);
        assert!((p - 0.342).abs() / 0.342 < 0.10, "power {p}");
    }

    #[test]
    fn affine_engine_costs_two_to_three_x() {
        let m = AreaModel::new();
        let ratio = m.affine_engine_area() / m.engine_area();
        assert!((2.0..3.5).contains(&ratio), "affine/linear {ratio}");
    }

    #[test]
    fn gact_scaling_matches_paper_conversion() {
        let scaled = scale_area(1.34, 40.0, 22.0);
        assert!((0.25..0.35).contains(&scaled), "GACT at 22nm: {scaled}");
    }

    #[test]
    fn breakdown_sums_to_total() {
        let m = AreaModel::new();
        let sum: f64 = m.breakdown().iter().map(|r| r.mm2).sum();
        assert!((sum - m.total_area()).abs() < 1e-9);
    }
}
