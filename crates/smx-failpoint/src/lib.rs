//! Deterministic failpoints for the SMX host-side stack (DESIGN.md §10).
//!
//! A *failpoint* is a named site compiled into a hot host path —
//! checkpoint write/fsync, the framed-TCP codec, pool dispatch, the
//! session ack — that can be told to misbehave on demand. Sites are
//! controlled by a seeded [`FailSchedule`]: every hit of every site is
//! mapped through SplitMix64 over `(seed, site, lane, hit-count)` to an
//! [`Action`], so a chaos run is replayed exactly from its schedule
//! string alone. In the spirit of tikv's `fail-rs`, but std-only and
//! dependency-free like the rest of this tree.
//!
//! With the `failpoints` cargo feature off (the default), [`hit`] is an
//! inlined `None` and no registry exists — instrumented paths compile to
//! their production form with zero overhead. The schedule *types* are
//! always available, so harnesses can build and print schedules
//! regardless of how the target binary was compiled.
//!
//! ## Schedule strings
//!
//! ```text
//! seed=42;ckpt.fsync=error@0.2;proto.write_frame=partial@0.1x5;kill=session.ack:17
//! ```
//!
//! Clause grammar: `seed=<u64>`, `kill=<site>[#lane]:<hit>` (kill the
//! process at exactly that hit), or `<site>[#lane]=<action>@<rate>[x<limit>]`
//! where action is `error`, `partial`, `delay:<ms>`, or `kill`, rate is
//! the per-hit firing probability, and `x<limit>` stops the rule after
//! its site's first `limit` hits (how a storm "ends" so recovery can be
//! observed). A lane distinguishes instances of one site (for example
//! pool devices); a rule without a lane matches every lane.
//!
//! ```
//! use smx_failpoint::FailSchedule;
//! let s = FailSchedule::parse("seed=7;ckpt.fsync=error@0.25;kill=session.ack:3").unwrap();
//! assert_eq!(s.seed, 7);
//! assert_eq!(FailSchedule::parse(&s.to_string()).unwrap(), s, "display round-trips");
//! ```

use std::fmt;

/// Environment variable a process reads its schedule from (see
/// [`install_from_env`]); the `smx-cli serve` subcommand installs it at
/// startup so a *spawned* server can be killed at an exact failpoint hit.
pub const ENV_VAR: &str = "SMX_FAILPOINTS";

/// What a schedule does to a site hit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Action {
    /// Surface an injected error from the site.
    Error,
    /// A torn half-effect: short write, truncated frame.
    Partial,
    /// Stall the hit for this many milliseconds, then proceed normally.
    Delay(u64),
    /// Kill the process on the spot (`abort`, as `kill -9` would).
    Kill,
}

/// What an instrumented site must materialize. [`Action::Delay`] is
/// slept and [`Action::Kill`] aborts inside the registry, so sites only
/// ever see the two effects they have to fake themselves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Injected {
    /// Return the site's typed error without performing the operation.
    Error,
    /// Perform a torn half-operation, then return the typed error.
    Partial,
}

/// One probabilistic rule: at each hit of `site` (on `lane`, or any
/// lane when `None`), fire `action` with probability `rate`, but only
/// while the site's hit-count is below `limit` (unbounded when `None`).
#[derive(Clone, Debug, PartialEq)]
pub struct Rule {
    /// Site name, e.g. `ckpt.fsync`.
    pub site: String,
    /// Lane filter (`None` matches every lane).
    pub lane: Option<u32>,
    /// Action to fire.
    pub action: Action,
    /// Per-hit firing probability in `[0, 1]`.
    pub rate: f64,
    /// Stop firing once the hit-count reaches this (faults "end").
    pub limit: Option<u64>,
}

/// A pinned process kill: abort at exactly hit `hit` of `site`/`lane`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KillSpec {
    /// Site name.
    pub site: String,
    /// Lane filter (`None` matches every lane).
    pub lane: Option<u32>,
    /// Zero-based hit-count to die at.
    pub hit: u64,
}

/// A complete, replayable chaos schedule: a seed, probabilistic rules,
/// and pinned kills. Its `Display` form is the replay string.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FailSchedule {
    /// Seed feeding the per-hit SplitMix64 decision.
    pub seed: u64,
    /// Probabilistic rules, first match wins.
    pub rules: Vec<Rule>,
    /// Pinned kills, checked before the rules.
    pub kills: Vec<KillSpec>,
}

impl FailSchedule {
    /// An empty schedule with `seed`.
    #[must_use]
    pub fn new(seed: u64) -> FailSchedule {
        FailSchedule { seed, rules: Vec::new(), kills: Vec::new() }
    }

    /// Builder: appends a rule.
    #[must_use]
    pub fn rule(
        mut self,
        site: &str,
        lane: Option<u32>,
        action: Action,
        rate: f64,
        limit: Option<u64>,
    ) -> FailSchedule {
        self.rules.push(Rule { site: site.to_string(), lane, action, rate, limit });
        self
    }

    /// Builder: appends a pinned kill.
    #[must_use]
    pub fn kill_at(mut self, site: &str, lane: Option<u32>, hit: u64) -> FailSchedule {
        self.kills.push(KillSpec { site: site.to_string(), lane, hit });
        self
    }

    /// The deterministic decision for hit number `hit` (zero-based) of
    /// `site` on `lane`. Pure: the registry calls this, and harnesses
    /// can call it directly to predict where a schedule will fire.
    #[must_use]
    pub fn decide(&self, site: &str, lane: u32, hit: u64) -> Option<Action> {
        for k in &self.kills {
            if k.site == site && k.lane.is_none_or(|l| l == lane) && k.hit == hit {
                return Some(Action::Kill);
            }
        }
        for (idx, r) in self.rules.iter().enumerate() {
            if r.site != site || r.lane.is_some_and(|l| l != lane) {
                continue;
            }
            if r.limit.is_some_and(|lim| hit >= lim) {
                continue;
            }
            if fires(self.seed, idx as u64, site, lane, hit, r.rate) {
                return Some(r.action);
            }
        }
        None
    }

    /// Parses a schedule string (see the module docs for the grammar).
    ///
    /// # Errors
    ///
    /// A message naming the malformed clause.
    pub fn parse(text: &str) -> Result<FailSchedule, String> {
        let mut s = FailSchedule::default();
        for clause in text.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            if let Some(v) = clause.strip_prefix("seed=") {
                s.seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?;
            } else if let Some(v) = clause.strip_prefix("kill=") {
                let (target, hit) =
                    v.split_once(':').ok_or_else(|| format!("kill clause {v:?} needs site:hit"))?;
                let (site, lane) = parse_target(target)?;
                let hit = hit.parse().map_err(|_| format!("bad kill hit {hit:?}"))?;
                s.kills.push(KillSpec { site, lane, hit });
            } else {
                let (target, spec) = clause
                    .split_once('=')
                    .ok_or_else(|| format!("clause {clause:?} is not site=action@rate"))?;
                let (site, lane) = parse_target(target)?;
                let (action, rest) = spec
                    .split_once('@')
                    .ok_or_else(|| format!("rule {spec:?} is missing @rate"))?;
                let action = parse_action(action)?;
                let (rate, limit) = match rest.split_once('x') {
                    Some((rate, lim)) => {
                        (rate, Some(lim.parse().map_err(|_| format!("bad limit {lim:?}"))?))
                    }
                    None => (rest, None),
                };
                let rate: f64 = rate.parse().map_err(|_| format!("bad rate {rate:?}"))?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(format!("rate {rate} is outside [0, 1]"));
                }
                s.rules.push(Rule { site, lane, action, rate, limit });
            }
        }
        Ok(s)
    }
}

fn parse_target(target: &str) -> Result<(String, Option<u32>), String> {
    let (site, lane) = match target.split_once('#') {
        Some((site, lane)) => (site, Some(lane.parse().map_err(|_| format!("bad lane {lane:?}"))?)),
        None => (target, None),
    };
    if site.is_empty()
        || !site.bytes().all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
    {
        return Err(format!("site {site:?} must match [A-Za-z0-9._-]+"));
    }
    Ok((site.to_string(), lane))
}

fn parse_action(name: &str) -> Result<Action, String> {
    if let Some(ms) = name.strip_prefix("delay:") {
        return Ok(Action::Delay(ms.parse().map_err(|_| format!("bad delay {ms:?}"))?));
    }
    match name {
        "error" => Ok(Action::Error),
        "partial" => Ok(Action::Partial),
        "kill" => Ok(Action::Kill),
        other => Err(format!("unknown action {other:?} (error|partial|delay:<ms>|kill)")),
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Error => f.write_str("error"),
            Action::Partial => f.write_str("partial"),
            Action::Delay(ms) => write!(f, "delay:{ms}"),
            Action::Kill => f.write_str("kill"),
        }
    }
}

impl fmt::Display for FailSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={}", self.seed)?;
        for r in &self.rules {
            write!(f, ";{}", r.site)?;
            if let Some(lane) = r.lane {
                write!(f, "#{lane}")?;
            }
            write!(f, "={}@{}", r.action, r.rate)?;
            if let Some(lim) = r.limit {
                write!(f, "x{lim}")?;
            }
        }
        for k in &self.kills {
            write!(f, ";kill={}", k.site)?;
            if let Some(lane) = k.lane {
                write!(f, "#{lane}")?;
            }
            write!(f, ":{}", k.hit)?;
        }
        Ok(())
    }
}

/// FNV-1a over the site name, feeding the per-hit mix.
fn site_hash(site: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in site.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer over `(seed, site, lane, hit)` — the same
/// construction the audit sampler uses, so one replayable decision
/// stream per (schedule, site, lane).
fn mix(seed: u64, site: &str, lane: u32, hit: u64) -> u64 {
    let mut x =
        seed ^ site_hash(site) ^ (u64::from(lane) << 32) ^ hit.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Whether rule `idx` fires at this hit: the mixed value, salted by the
/// rule index so stacked rules on one site decide independently, lands
/// below `rate`.
fn fires(seed: u64, idx: u64, site: &str, lane: u32, hit: u64, rate: f64) -> bool {
    if rate >= 1.0 {
        return true;
    }
    if rate <= 0.0 {
        return false;
    }
    let x = mix(seed ^ idx.wrapping_mul(0xA076_1D64_78BD_642F), site, lane, hit);
    ((x >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < rate
}

/// The error an [`Injected::Error`] site surfaces, recognizable in logs
/// and assertions by its message.
#[must_use]
pub fn injected_io_error() -> std::io::Error {
    std::io::Error::other("failpoint: injected i/o fault")
}

/// Why [`install_from_env`] could not install a schedule.
#[derive(Debug)]
pub enum InstallError {
    /// The schedule string did not parse.
    Parse(String),
    /// The env var is set but this binary was compiled without the
    /// `failpoints` feature — running on silently would make a chaos
    /// harness pass vacuously, so the caller must fail loudly.
    NotCompiled,
}

impl fmt::Display for InstallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstallError::Parse(m) => write!(f, "{ENV_VAR}: {m}"),
            InstallError::NotCompiled => write!(
                f,
                "{ENV_VAR} is set but failpoints are not compiled into this binary \
                 (rebuild with --features failpoints)"
            ),
        }
    }
}

impl std::error::Error for InstallError {}

#[cfg(feature = "failpoints")]
mod registry {
    use super::{Action, FailSchedule, Injected, InstallError, ENV_VAR};
    use std::collections::BTreeMap;
    use std::sync::{Mutex, PoisonError};

    struct State {
        schedule: FailSchedule,
        hits: BTreeMap<(&'static str, u32), u64>,
    }

    /// Test override for [`Action::Kill`]; the default aborts.
    type KillHook = fn(&'static str, u32, u64);

    static STATE: Mutex<Option<State>> = Mutex::new(None);
    static KILL_HOOK: Mutex<Option<KillHook>> = Mutex::new(None);

    /// Installs `schedule`, resetting every hit-counter.
    pub fn install(schedule: FailSchedule) {
        *STATE.lock().unwrap_or_else(PoisonError::into_inner) =
            Some(State { schedule, hits: BTreeMap::new() });
    }

    /// Uninstalls the schedule; sites become no-ops again.
    pub fn clear() {
        *STATE.lock().unwrap_or_else(PoisonError::into_inner) = None;
    }

    /// Installs the schedule named by `SMX_FAILPOINTS`, if set.
    ///
    /// # Errors
    ///
    /// [`InstallError::Parse`] for a malformed schedule string.
    pub fn install_from_env() -> Result<Option<FailSchedule>, InstallError> {
        let text = match std::env::var(ENV_VAR) {
            Ok(t) if !t.trim().is_empty() => t,
            _ => return Ok(None),
        };
        let schedule = FailSchedule::parse(&text).map_err(InstallError::Parse)?;
        install(schedule.clone());
        Ok(Some(schedule))
    }

    /// Replaces the kill handler (tests only); `None` restores `abort`.
    pub fn set_kill_hook(hook: Option<KillHook>) {
        *KILL_HOOK.lock().unwrap_or_else(PoisonError::into_inner) = hook;
    }

    /// Hits `site` on `lane`: bumps the counter, applies the schedule.
    /// Delays are slept here (after releasing the registry lock) and
    /// kills abort here; sites only see [`Injected`] effects.
    pub fn hit_lane(site: &'static str, lane: u32) -> Option<Injected> {
        let decision = {
            let mut guard = STATE.lock().unwrap_or_else(PoisonError::into_inner);
            let state = guard.as_mut()?;
            let count = state.hits.entry((site, lane)).or_insert(0);
            let hit = *count;
            *count += 1;
            state.schedule.decide(site, lane, hit).map(|a| (a, hit))
        };
        let (action, hit) = decision?;
        match action {
            Action::Error => Some(Injected::Error),
            Action::Partial => Some(Injected::Partial),
            Action::Delay(ms) => {
                // LINT: allow(determinism) the Delay action is an explicitly scheduled, seed-replayable stall
                std::thread::sleep(std::time::Duration::from_millis(ms));
                None
            }
            Action::Kill => {
                let hook = *KILL_HOOK.lock().unwrap_or_else(PoisonError::into_inner);
                match hook {
                    Some(f) => {
                        f(site, lane, hit);
                        None
                    }
                    None => {
                        // The whole point: die exactly like kill -9 at
                        // this instant, with the site on stderr so a
                        // harness can confirm where the process fell.
                        eprintln!("# failpoint: kill at {site}#{lane} hit {hit}");
                        std::process::abort()
                    }
                }
            }
        }
    }

    /// How many times `site`/`lane` has been hit under the current
    /// schedule (0 when none is installed).
    pub fn hits(site: &'static str, lane: u32) -> u64 {
        STATE
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
            .and_then(|s| s.hits.get(&(site, lane)).copied())
            .unwrap_or(0)
    }
}

#[cfg(feature = "failpoints")]
pub use registry::{clear, hit_lane, hits, install, install_from_env, set_kill_hook};

/// No-op stubs when failpoints are compiled out: sites inline to `None`
/// and the optimizer erases the instrumentation entirely.
#[cfg(not(feature = "failpoints"))]
mod stubs {
    use super::{FailSchedule, Injected, InstallError, ENV_VAR};

    /// Compiled-out registry: never fires.
    #[inline(always)]
    pub fn hit_lane(_site: &'static str, _lane: u32) -> Option<Injected> {
        None
    }

    /// Compiled-out registry: nothing to install into.
    pub fn install(_schedule: FailSchedule) {}

    /// Compiled-out registry: nothing to clear.
    pub fn clear() {}

    /// Compiled-out registry: no counters.
    #[inline(always)]
    pub fn hits(_site: &'static str, _lane: u32) -> u64 {
        0
    }

    /// Refuses loudly when a schedule is requested of a binary that
    /// cannot honor it (a chaos run against such a binary would pass
    /// vacuously).
    ///
    /// # Errors
    ///
    /// [`InstallError::NotCompiled`] when `SMX_FAILPOINTS` is set.
    pub fn install_from_env() -> Result<Option<FailSchedule>, InstallError> {
        match std::env::var(ENV_VAR) {
            Ok(t) if !t.trim().is_empty() => Err(InstallError::NotCompiled),
            _ => Ok(None),
        }
    }
}

#[cfg(not(feature = "failpoints"))]
pub use stubs::{clear, hit_lane, hits, install, install_from_env};

/// Hits `site` on lane 0 — the common single-instance site form.
#[inline(always)]
pub fn hit(site: &'static str) -> Option<Injected> {
    hit_lane(site, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_display_round_trips() {
        let s = FailSchedule::new(42)
            .rule("ckpt.fsync", None, Action::Error, 0.25, None)
            .rule("proto.write_frame", Some(3), Action::Partial, 0.1, Some(5))
            .rule("pool.dispatch", Some(1), Action::Delay(7), 1.0, Some(40))
            .kill_at("session.ack", None, 17);
        let text = s.to_string();
        assert_eq!(FailSchedule::parse(&text).unwrap(), s, "{text}");
        // And the documented example form parses.
        let doc = "seed=42;ckpt.fsync=error@0.2;proto.write_frame=partial@0.1x5;\
                   kill=session.ack:17";
        let parsed = FailSchedule::parse(doc).unwrap();
        assert_eq!(parsed.seed, 42);
        assert_eq!(parsed.rules.len(), 2);
        assert_eq!(parsed.kills.len(), 1);
    }

    #[test]
    fn malformed_schedules_are_typed_errors() {
        for bad in [
            "seed=abc",
            "ckpt.fsync=error",
            "ckpt.fsync=explode@0.5",
            "ckpt.fsync=error@1.5",
            "ckpt.fsync=error@-0.1",
            "bad site=error@0.5",
            "kill=site.only",
            "kill=site:xyz",
            "site#lane=error@0.5",
        ] {
            assert!(FailSchedule::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn decide_is_deterministic_and_respects_limits() {
        let s = FailSchedule::new(7)
            .rule("a.b", None, Action::Error, 0.5, Some(100))
            .kill_at("a.b", None, 999);
        let first: Vec<Option<Action>> = (0..200).map(|h| s.decide("a.b", 0, h)).collect();
        let second: Vec<Option<Action>> = (0..200).map(|h| s.decide("a.b", 0, h)).collect();
        assert_eq!(first, second, "decisions replay exactly");
        let fired = first.iter().filter(|d| d.is_some()).count();
        assert!(fired > 20 && fired < 80, "rate 0.5 over 100 eligible hits, got {fired}");
        assert!(
            first.iter().skip(100).all(Option::is_none),
            "nothing fires past the limit (hits 100..200)"
        );
        assert_eq!(s.decide("a.b", 0, 999), Some(Action::Kill), "pinned kill wins");
        assert_eq!(s.decide("other", 0, 3), None, "unrelated sites never fire");
    }

    #[test]
    fn lanes_decide_independently_and_lane_rules_filter() {
        let all = FailSchedule::new(9).rule("p.d", None, Action::Error, 0.5, None);
        let lane0: Vec<bool> = (0..64).map(|h| all.decide("p.d", 0, h).is_some()).collect();
        let lane1: Vec<bool> = (0..64).map(|h| all.decide("p.d", 1, h).is_some()).collect();
        assert_ne!(lane0, lane1, "lanes have distinct decision streams");
        let only1 = FailSchedule::new(9).rule("p.d", Some(1), Action::Error, 1.0, None);
        assert!(only1.decide("p.d", 0, 0).is_none());
        assert_eq!(only1.decide("p.d", 1, 0), Some(Action::Error));
    }

    #[test]
    fn rate_extremes_are_exact() {
        let s = FailSchedule::new(1).rule("always", None, Action::Error, 1.0, None).rule(
            "never",
            None,
            Action::Error,
            0.0,
            None,
        );
        assert!((0..100).all(|h| s.decide("always", 0, h) == Some(Action::Error)));
        assert!((0..100).all(|h| s.decide("never", 0, h).is_none()));
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn registry_counts_hits_and_fires_injections() {
        // Serialized with any other registry-touching test by dint of
        // being the only one in this crate.
        install(FailSchedule::new(3).rule("test.site", None, Action::Error, 1.0, Some(2)));
        assert_eq!(hit("test.site"), Some(Injected::Error));
        assert_eq!(hit("test.site"), Some(Injected::Error));
        assert_eq!(hit("test.site"), None, "limit 2 exhausted");
        assert_eq!(hits("test.site", 0), 3);
        clear();
        assert_eq!(hit("test.site"), None);
        assert_eq!(hits("test.site", 0), 0);
    }
}
