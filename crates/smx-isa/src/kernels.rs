//! Software kernels driving the SMX-1D unit (paper §4, Fig. 4b): the
//! column-strip DP-block computation, its score-only variant, the
//! delta-based traceback, and `smx.pack` sequence packing.
//!
//! Each kernel records the dynamic instructions it would execute on the
//! core (SMX ops, CSR writes, loads/stores, scalar overhead); the timing
//! model turns those into cycles.

use crate::insn::rs2_operand;
use crate::unit::{InsnCounts, Smx1dUnit};
use smx_align_core::{AlignError, Cigar, ScoringScheme};
use smx_diffenc::boundary::BlockBorders;
use smx_diffenc::pack::{PackedSeq, PackedVec};

/// The outcome of a block computation on the SMX-1D path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockResult {
    /// Score of the bottom-right DP-element **relative to the block
    /// anchor** `M(i0, j0)` (equal to the global score for an
    /// origin-anchored block with fresh borders).
    pub score: i32,
    /// Δh′ outputs of the bottom row.
    pub bottom_dh: Vec<u8>,
    /// Δv′ outputs of the rightmost column.
    pub right_dv: Vec<u8>,
    /// Interior Δv′ values, one `Vec` per column (present when the caller
    /// asked to keep the interior for traceback).
    pub dv_columns: Option<Vec<Vec<u8>>>,
    /// Dynamic instructions executed by this call.
    pub counts: InsnCounts,
}

/// Computes a DP-block, keeping the interior Δv′ columns for traceback.
///
/// `borders` of `None` means fresh (origin-anchored) borders.
///
/// # Errors
///
/// Returns [`AlignError::EmptySequence`] for empty inputs and propagates
/// configuration errors from the unit.
pub fn compute_block(
    unit: &mut Smx1dUnit,
    query: &[u8],
    reference: &[u8],
    borders: Option<&BlockBorders>,
) -> Result<BlockResult, AlignError> {
    run_block(unit, query, reference, borders, true, false)
}

/// Computes a DP-block keeping only its output borders (score-only path).
///
/// # Errors
///
/// Same conditions as [`compute_block`].
pub fn score_block(
    unit: &mut Smx1dUnit,
    query: &[u8],
    reference: &[u8],
    borders: Option<&BlockBorders>,
) -> Result<BlockResult, AlignError> {
    run_block(unit, query, reference, borders, false, false)
}

/// Score-only block computation using the merged `smx.vh` instruction
/// (paper §4.2's dual-destination-port variant): one SMX instruction per
/// column instead of two.
///
/// # Errors
///
/// Same conditions as [`compute_block`].
pub fn score_block_dualport(
    unit: &mut Smx1dUnit,
    query: &[u8],
    reference: &[u8],
    borders: Option<&BlockBorders>,
) -> Result<BlockResult, AlignError> {
    run_block(unit, query, reference, borders, false, true)
}

fn run_block(
    unit: &mut Smx1dUnit,
    query: &[u8],
    reference: &[u8],
    borders: Option<&BlockBorders>,
    keep_interior: bool,
    dual_port: bool,
) -> Result<BlockResult, AlignError> {
    let (m, n) = (query.len(), reference.len());
    if m == 0 || n == 0 {
        return Err(AlignError::EmptySequence);
    }
    let cfg = unit.config();
    let ew = cfg.ew;
    let vl = ew.vl();
    let (gi, gd) = (i32::from(cfg.gap_insert), i32::from(cfg.gap_delete));
    let fresh = BlockBorders::fresh(m, n);
    let borders = borders.unwrap_or(&fresh);
    if borders.rows() != m || borders.cols() != n {
        return Err(AlignError::Internal(format!(
            "borders ({}, {}) do not match block ({m}, {n})",
            borders.rows(),
            borders.cols()
        )));
    }
    let before = unit.counts();

    // Δh′ carried from strip to strip, one per column.
    let mut dh_carry: Vec<u8> = borders.top_dh.clone();
    // Border-words loaded once (EW-bit packed).
    let border_words = (n * ew.bits() as usize).div_ceil(64) as u64;
    unit.charge(border_words, 0, 0);

    let mut dv_columns: Option<Vec<Vec<u8>>> =
        if keep_interior { Some(vec![Vec::with_capacity(m); n]) } else { None };
    let mut right_dv: Vec<u8> = Vec::with_capacity(m);
    let mut right_sum: i64 = 0;

    let strips = m.div_ceil(vl);
    for s in 0..strips {
        let row0 = s * vl;
        let len = (m - row0).min(vl);
        unit.set_query(&query[row0..row0 + len])?;
        unit.charge(1, 0, 1); // query word load + address update

        // Initial rs1: left-border lanes for this strip.
        let mut rs1 = PackedVec::from_lanes(ew, &borders.left_dv[row0..row0 + len])?.word();
        // Per-strip Δh′ row load/store (EW-bit packed words).
        let dh_words = (n * ew.bits() as usize).div_ceil(64) as u64;
        unit.charge(dh_words, dh_words, 0);

        let mut last_col_word = 0u64;
        for j in 0..n {
            if j % vl == 0 {
                let seg_end = (j + vl).min(n);
                unit.set_reference(&reference[j..seg_end])?;
                unit.charge(1, 0, 1);
            }
            let rs2 = rs2_operand(dh_carry[j], (j % vl) as u8, len as u8);
            let (new_dv, dh_out) = if dual_port {
                let (v, h) = unit.exec_vh(rs1, rs2);
                (v, h as u8)
            } else {
                let v = unit.exec_v(rs1, rs2);
                let h = unit.exec_h(rs1, rs2) as u8;
                (v, h)
            };
            unit.charge(0, 0, 2); // loop control + rs2 composition
            dh_carry[j] = dh_out;
            rs1 = new_dv;
            if let Some(cols) = dv_columns.as_mut() {
                cols[j].extend(PackedVec::from_word(ew, new_dv).to_lanes(len));
                unit.charge(0, 1, 0);
            }
            if j + 1 == n {
                last_col_word = new_dv;
            }
        }
        // Right-column contribution via smx.redsum (inactive lanes are 0).
        right_sum += unit.exec_redsum(last_col_word) as i64 + (len as i64) * i64::from(gi);
        unit.charge(0, 0, 2);
        right_dv.extend(PackedVec::from_word(ew, last_col_word).to_lanes(len));
    }

    // Top-border contribution, summed in software.
    let top_sum: i64 = borders.top_dh.iter().map(|&d| i64::from(d) + i64::from(gd)).sum();
    unit.charge(0, 0, n as u64);

    let after = unit.counts();
    let mut counts = after;
    counts.smx_v -= before.smx_v;
    counts.smx_h -= before.smx_h;
    counts.smx_redsum -= before.smx_redsum;
    counts.smx_pack -= before.smx_pack;
    counts.smx_vh -= before.smx_vh;
    counts.csr_write -= before.csr_write;
    counts.load_words -= before.load_words;
    counts.store_words -= before.store_words;
    counts.scalar_ops -= before.scalar_ops;

    Ok(BlockResult {
        score: (top_sum + right_sum) as i32,
        bottom_dh: dh_carry,
        right_dv,
        dv_columns,
        counts,
    })
}

/// Traces back through stored Δv′ columns, reconstructing absolute values
/// lazily one column at a time.
///
/// `top_abs` holds the absolute DP values of the row above the block
/// (`n + 1` values, starting at the anchor) and `left_abs` the column left
/// of the block (`m + 1` values, same anchor first).
///
/// Returns the CIGAR and the scalar-operation count charged for the
/// sequential, branch-heavy walk.
///
/// # Errors
///
/// Returns [`AlignError::Internal`] on inconsistent inputs.
pub fn traceback_from_columns(
    query: &[u8],
    reference: &[u8],
    scheme: &ScoringScheme,
    dv_columns: &[Vec<u8>],
    top_abs: &[i32],
    left_abs: &[i32],
) -> Result<(Cigar, u64), AlignError> {
    let (m, n) = (query.len(), reference.len());
    if dv_columns.len() != n || top_abs.len() != n + 1 || left_abs.len() != m + 1 {
        return Err(AlignError::Internal(format!(
            "traceback inputs inconsistent: {} columns for n={n}, top {} for n+1={}, left {} for m+1={}",
            dv_columns.len(),
            top_abs.len(),
            n + 1,
            left_abs.len(),
            m + 1
        )));
    }
    if top_abs[0] != left_abs[0] {
        return Err(AlignError::Internal("top/left anchors disagree".into()));
    }
    let gi = scheme.gap_insert();
    let mut ops_cost: u64 = 0;

    // Absolute column j (0..=n), values for rows 0..=m.
    let abs_col = |j: usize, cost: &mut u64| -> Vec<i32> {
        if j == 0 {
            return left_abs.to_vec();
        }
        let mut col = Vec::with_capacity(m + 1);
        let mut acc = top_abs[j];
        col.push(acc);
        for &d in &dv_columns[j - 1] {
            acc += i32::from(d) + gi;
            col.push(acc);
        }
        *cost += m as u64;
        col
    };

    let mut j = n;
    let mut i = m;
    let mut cur = abs_col(j, &mut ops_cost);
    if cur.len() != m + 1 {
        return Err(AlignError::Internal(format!(
            "column {j} has {} values, expected {}",
            cur.len(),
            m + 1
        )));
    }
    let mut prev = if j > 0 { abs_col(j - 1, &mut ops_cost) } else { Vec::new() };
    let mut cigar = Cigar::new();
    while i > 0 || j > 0 {
        ops_cost += 4; // compare/branch/update per step
        let here = cur[i];
        if i > 0 && j > 0 && here == prev[i - 1] + scheme.score(query[i - 1], reference[j - 1]) {
            cigar.push(if query[i - 1] == reference[j - 1] {
                smx_align_core::Op::Match
            } else {
                smx_align_core::Op::Mismatch
            });
            i -= 1;
            j -= 1;
            cur = prev;
            prev = if j > 0 { abs_col(j - 1, &mut ops_cost) } else { Vec::new() };
        } else if i > 0 && here == cur[i - 1] + gi {
            cigar.push(smx_align_core::Op::Insert);
            i -= 1;
        } else if j > 0 && here == prev[i] + scheme.gap_delete() {
            cigar.push(smx_align_core::Op::Delete);
            j -= 1;
            cur = prev;
            prev = if j > 0 { abs_col(j - 1, &mut ops_cost) } else { Vec::new() };
        } else {
            return Err(AlignError::Internal(format!("broken delta traceback at ({i}, {j})")));
        }
    }
    cigar.reverse();
    Ok((cigar, ops_cost))
}

/// Convenience: origin-anchored absolute borders for an `m × n` block.
#[must_use]
pub fn origin_absolute_borders(m: usize, n: usize, scheme: &ScoringScheme) -> (Vec<i32>, Vec<i32>) {
    let top = (0..=n as i32).map(|j| j * scheme.gap_delete()).collect();
    let left = (0..=m as i32).map(|i| i * scheme.gap_insert()).collect();
    (top, left)
}

/// Full SMX-1D alignment of a block: compute with interior, then trace
/// back. Returns `(alignment, counts)`.
///
/// # Errors
///
/// Propagates block-computation and traceback errors.
pub fn align_block(
    unit: &mut Smx1dUnit,
    query: &[u8],
    reference: &[u8],
    scheme: &ScoringScheme,
) -> Result<(smx_align_core::Alignment, InsnCounts), AlignError> {
    let res = compute_block(unit, query, reference, None)?;
    let (top, left) = origin_absolute_borders(query.len(), reference.len(), scheme);
    let cols = res.dv_columns.as_ref().expect("compute_block keeps interior");
    let (cigar, tb_cost) = traceback_from_columns(query, reference, scheme, cols, &top, &left)?;
    unit.charge(0, 0, tb_cost);
    let mut counts = res.counts;
    counts.scalar_ops += tb_cost;
    Ok((smx_align_core::Alignment { score: res.score, cigar }, counts))
}

/// Packs an ASCII byte string into the configured EW representation using
/// `smx.pack`, eight characters per instruction.
///
/// # Errors
///
/// Propagates packing errors (codes always fit EW by construction).
pub fn pack_ascii_sequence(unit: &mut Smx1dUnit, ascii: &[u8]) -> Result<PackedSeq, AlignError> {
    let ew = unit.config().ew;
    let mut codes = Vec::with_capacity(ascii.len());
    for chunk in ascii.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        let packed = unit.exec_pack(u64::from_le_bytes(word));
        unit.charge(1, 0, 2);
        let v = PackedVec::from_word(ew, packed);
        codes.extend(v.to_lanes(chunk.len()));
    }
    PackedSeq::from_codes(ew, &codes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smx_align_core::{dp, AlignmentConfig, ElementWidth};
    use smx_diffenc::boundary;
    use smx_diffenc::delta::DeltaBlock;

    fn unit_for(cfg: AlignmentConfig) -> Smx1dUnit {
        Smx1dUnit::configure(cfg.element_width(), &cfg.scoring()).unwrap()
    }

    #[test]
    fn block_score_matches_golden_dna_edit() {
        let mut u = unit_for(AlignmentConfig::DnaEdit);
        let q = [0u8, 1, 2, 3, 0, 1, 2, 3, 1, 1, 0];
        let r = [0u8, 1, 2, 2, 0, 1, 3, 3, 1];
        let res = compute_block(&mut u, &q, &r, None).unwrap();
        let expect = dp::score_only(&q, &r, &ScoringScheme::edit());
        assert_eq!(res.score, expect);
    }

    #[test]
    fn block_score_matches_golden_over_strips() {
        // Query longer than VL to exercise multi-strip carry.
        let cfg = AlignmentConfig::Protein; // VL = 10
        let scheme = cfg.scoring();
        let mut u = unit_for(cfg);
        let q: Vec<u8> = (0..37).map(|i| (i * 7 % 26) as u8).collect();
        let r: Vec<u8> = (0..23).map(|i| (i * 11 % 26) as u8).collect();
        let res = compute_block(&mut u, &q, &r, None).unwrap();
        assert_eq!(res.score, dp::score_only(&q, &r, &scheme));
    }

    #[test]
    fn borders_match_deltablock() {
        let cfg = AlignmentConfig::DnaGap;
        let scheme = cfg.scoring();
        let mut u = unit_for(cfg);
        let q: Vec<u8> = (0..20).map(|i| (i % 4) as u8).collect();
        let r: Vec<u8> = (0..30).map(|i| (i % 3) as u8).collect();
        let res = compute_block(&mut u, &q, &r, None).unwrap();
        let (top, left) = DeltaBlock::fresh_borders(q.len(), r.len());
        let blk = DeltaBlock::compute(ElementWidth::W4, &q, &r, &scheme, &top, &left).unwrap();
        assert_eq!(res.bottom_dh, blk.bottom_dh());
        assert_eq!(res.right_dv, blk.right_dv());
    }

    #[test]
    fn nonfresh_borders_flow_through() {
        let cfg = AlignmentConfig::DnaEdit;
        let mut u = unit_for(cfg);
        let q = [0u8, 1, 2, 3, 2, 1];
        let r = [3u8, 1, 0, 2, 2];
        // Compute the left half then feed its borders into the right half.
        let full = compute_block(&mut u, &q, &r, None).unwrap();
        let left_part = compute_block(&mut u, &q, &r[..2], None).unwrap();
        let borders = BlockBorders::from_neighbors(vec![0; 3], left_part.right_dv.clone());
        let right_part = compute_block(&mut u, &q, &r[2..], Some(&borders)).unwrap();
        assert_eq!(right_part.bottom_dh, full.bottom_dh[2..].to_vec());
        assert_eq!(right_part.right_dv, full.right_dv);
    }

    #[test]
    fn score_block_skips_interior() {
        let mut u = unit_for(AlignmentConfig::DnaEdit);
        let res = score_block(&mut u, &[0, 1, 2], &[0, 1, 2], None).unwrap();
        assert!(res.dv_columns.is_none());
        assert_eq!(res.score, 0);
    }

    #[test]
    fn align_block_matches_golden_alignment() {
        for cfg in [AlignmentConfig::DnaEdit, AlignmentConfig::DnaGap, AlignmentConfig::Ascii] {
            let scheme = cfg.scoring();
            let mut u = unit_for(cfg);
            let card = cfg.alphabet().cardinality() as u32;
            let q: Vec<u8> = (0..33u32).map(|i| (i.wrapping_mul(7) % card) as u8).collect();
            let r: Vec<u8> = (0..29u32).map(|i| (i.wrapping_mul(5) % card) as u8).collect();
            let (aln, _) = align_block(&mut u, &q, &r, &scheme).unwrap();
            let golden = dp::align_codes(&q, &r, &scheme);
            assert_eq!(aln.score, golden.score, "{cfg}");
            aln.verify(&q, &r, &scheme).unwrap();
        }
    }

    #[test]
    fn align_block_protein_matches_golden() {
        let cfg = AlignmentConfig::Protein;
        let scheme = cfg.scoring();
        let mut u = unit_for(cfg);
        let q: Vec<u8> = b"HEAGAWGHEEMKVLAAWWYV".iter().map(|c| c - b'A').collect();
        let r: Vec<u8> = b"PAWHEAEMKWLSAYV".iter().map(|c| c - b'A').collect();
        let (aln, _) = align_block(&mut u, &q, &r, &scheme).unwrap();
        let golden = dp::align_codes(&q, &r, &scheme);
        assert_eq!(aln.score, golden.score);
        aln.verify(&q, &r, &scheme).unwrap();
    }

    #[test]
    fn instruction_counts_scale_with_block() {
        let mut u = unit_for(AlignmentConfig::DnaEdit);
        let q = vec![0u8; 64]; // 2 strips of 32
        let r = vec![1u8; 10];
        let res = score_block(&mut u, &q, &r, None).unwrap();
        // 2 strips x 10 columns, one smx.v + smx.h each.
        assert_eq!(res.counts.smx_v, 20);
        assert_eq!(res.counts.smx_h, 20);
        assert_eq!(res.counts.smx_redsum, 2);
        assert!(res.counts.csr_write >= 4); // 2 query words + ref loads
    }

    #[test]
    fn dualport_matches_two_instruction_variant() {
        let cfg = AlignmentConfig::DnaGap;
        let mut u1 = unit_for(cfg);
        let mut u2 = unit_for(cfg);
        let q: Vec<u8> = (0..45).map(|i| (i % 4) as u8).collect();
        let r: Vec<u8> = (0..38).map(|i| (i % 3) as u8).collect();
        let two = score_block(&mut u1, &q, &r, None).unwrap();
        let merged = score_block_dualport(&mut u2, &q, &r, None).unwrap();
        assert_eq!(two.score, merged.score);
        assert_eq!(two.bottom_dh, merged.bottom_dh);
        assert_eq!(two.right_dv, merged.right_dv);
        // Half the SMX column instructions.
        assert_eq!(merged.counts.smx_vh * 2, two.counts.smx_v + two.counts.smx_h);
        assert_eq!(merged.counts.smx_v, 0);
    }

    #[test]
    fn empty_block_rejected() {
        let mut u = unit_for(AlignmentConfig::DnaEdit);
        assert!(compute_block(&mut u, &[], &[0], None).is_err());
    }

    #[test]
    fn pack_sequence_roundtrip() {
        let mut u = unit_for(AlignmentConfig::DnaEdit);
        let packed = pack_ascii_sequence(&mut u, b"ACGTACGTACG").unwrap();
        assert_eq!(packed.unpack(), vec![0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2]);
        assert_eq!(u.counts().smx_pack, 2);
    }

    #[test]
    fn block_score_helper_consistent_with_boundary_math() {
        let cfg = AlignmentConfig::DnaGap;
        let scheme = cfg.scoring();
        let mut u = unit_for(cfg);
        let q: Vec<u8> = (0..9).map(|i| (i % 4) as u8).collect();
        let r: Vec<u8> = (0..7).map(|i| (i % 4) as u8).collect();
        let res = compute_block(&mut u, &q, &r, None).unwrap();
        let borders = BlockBorders::fresh(q.len(), r.len());
        let blk = DeltaBlock::compute(
            ElementWidth::W4,
            &q,
            &r,
            &scheme,
            &borders.top_dh,
            &borders.left_dv,
        )
        .unwrap();
        assert_eq!(res.score, boundary::block_score(0, &borders, &blk, &scheme));
    }
}
