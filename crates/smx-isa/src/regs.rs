//! SMX-1D architectural state (paper §4.2): the `smx_query`,
//! `smx_reference`, and `smx_config` CSRs plus the 78×64-bit `smx_submat`
//! memory holding a 26×26×6-bit substitution matrix (three words per
//! reference-character row).

use crate::config::SmxConfig;
use smx_align_core::{AlignError, ScoringScheme};

/// CSR address of `smx_query` (custom read/write CSR space).
pub const CSR_SMX_QUERY: u16 = 0x7C0;
/// CSR address of `smx_reference`.
pub const CSR_SMX_REFERENCE: u16 = 0x7C1;
/// CSR address of `smx_config`.
pub const CSR_SMX_CONFIG: u16 = 0x7C2;
/// Base CSR address of the `smx_submat` window (78 consecutive words).
pub const CSR_SMX_SUBMAT_BASE: u16 = 0x7D0;

/// Number of 64-bit words in the `smx_submat` memory.
pub const SUBMAT_WORDS: usize = 78;
/// Words allocated per reference-character row (26 entries × 6 bits
/// rounded up to whole words).
pub const SUBMAT_WORDS_PER_ROW: usize = 3;
/// 6-bit entries packed per submat word.
const ENTRIES_PER_WORD: usize = 10;

/// The SMX-1D architectural register file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchState {
    /// Packed query subsequence (VL symbols).
    pub smx_query: u64,
    /// Packed reference subsequence (VL symbols).
    pub smx_reference: u64,
    /// Encoded [`SmxConfig`].
    pub smx_config: u64,
    submat: [u64; SUBMAT_WORDS],
}

impl Default for ArchState {
    fn default() -> Self {
        ArchState { smx_query: 0, smx_reference: 0, smx_config: 0, submat: [0; SUBMAT_WORDS] }
    }
}

impl ArchState {
    /// Fresh, zeroed state.
    #[must_use]
    pub fn new() -> ArchState {
        ArchState::default()
    }

    /// Reads a CSR by address.
    ///
    /// # Errors
    ///
    /// Returns [`AlignError::Internal`] for an unmapped address.
    pub fn read_csr(&self, addr: u16) -> Result<u64, AlignError> {
        match addr {
            CSR_SMX_QUERY => Ok(self.smx_query),
            CSR_SMX_REFERENCE => Ok(self.smx_reference),
            CSR_SMX_CONFIG => Ok(self.smx_config),
            a if (CSR_SMX_SUBMAT_BASE..CSR_SMX_SUBMAT_BASE + SUBMAT_WORDS as u16).contains(&a) => {
                Ok(self.submat[(a - CSR_SMX_SUBMAT_BASE) as usize])
            }
            _ => Err(AlignError::Internal(format!("unmapped SMX CSR {addr:#x}"))),
        }
    }

    /// Writes a CSR by address.
    ///
    /// # Errors
    ///
    /// Returns [`AlignError::Internal`] for an unmapped address.
    pub fn write_csr(&mut self, addr: u16, value: u64) -> Result<(), AlignError> {
        match addr {
            CSR_SMX_QUERY => self.smx_query = value,
            CSR_SMX_REFERENCE => self.smx_reference = value,
            CSR_SMX_CONFIG => self.smx_config = value,
            a if (CSR_SMX_SUBMAT_BASE..CSR_SMX_SUBMAT_BASE + SUBMAT_WORDS as u16).contains(&a) => {
                self.submat[(a - CSR_SMX_SUBMAT_BASE) as usize] = value;
            }
            _ => return Err(AlignError::Internal(format!("unmapped SMX CSR {addr:#x}"))),
        }
        Ok(())
    }

    /// The decoded configuration register.
    #[must_use]
    pub fn config(&self) -> SmxConfig {
        SmxConfig::decode(self.smx_config)
    }

    /// Serializes the *shifted* substitution scores of `scheme` into the
    /// submat memory: entry `(r, q)` holds `S′(q, r) = S(q, r) − I − D` as
    /// an unsigned 6-bit value; row `r` occupies words `3r .. 3r+3` with
    /// ten entries per word.
    ///
    /// # Errors
    ///
    /// Returns [`AlignError::InvalidScoring`] if a shifted score does not
    /// fit 6 bits or the scheme is not matrix-based / not encodable.
    pub fn load_submat(&mut self, scheme: &ScoringScheme) -> Result<(), AlignError> {
        if !scheme.uses_matrix() {
            return Err(AlignError::InvalidScoring(
                "submat load requires a substitution-matrix scheme".into(),
            ));
        }
        scheme.check_encodable()?;
        let mut words = [0u64; SUBMAT_WORDS];
        for r in 0..26u8 {
            for q in 0..26u8 {
                let s = scheme.shifted_score(q, r);
                if !(0..=63).contains(&s) {
                    return Err(AlignError::InvalidScoring(format!(
                        "shifted score {s} for ({q}, {r}) does not fit 6 bits"
                    )));
                }
                let entry = q as usize;
                let word = r as usize * SUBMAT_WORDS_PER_ROW + entry / ENTRIES_PER_WORD;
                let lane = entry % ENTRIES_PER_WORD;
                words[word] |= (s as u64) << (lane * 6);
            }
        }
        self.submat = words;
        Ok(())
    }

    /// Reads the shifted score `S′(q, r)` from the submat memory.
    ///
    /// Models the SRAM access pattern: select row `r`, then extract the
    /// entry for query character `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` or `r` ≥ 26 (codes are validated upstream).
    #[must_use]
    pub fn submat_lookup(&self, q: u8, r: u8) -> u8 {
        assert!(q < 26 && r < 26, "submat codes out of range ({q}, {r})");
        let entry = q as usize;
        let word = r as usize * SUBMAT_WORDS_PER_ROW + entry / ENTRIES_PER_WORD;
        let lane = entry % ENTRIES_PER_WORD;
        ((self.submat[word] >> (lane * 6)) & 0x3F) as u8
    }

    /// Raw view of the submat words (for the coprocessor's register copy).
    #[must_use]
    pub fn submat_words(&self) -> &[u64; SUBMAT_WORDS] {
        &self.submat
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smx_align_core::SubstMatrix;

    #[test]
    fn csr_read_write_roundtrip() {
        let mut st = ArchState::new();
        st.write_csr(CSR_SMX_QUERY, 0xDEAD).unwrap();
        st.write_csr(CSR_SMX_REFERENCE, 0xBEEF).unwrap();
        st.write_csr(CSR_SMX_CONFIG, 0x42).unwrap();
        st.write_csr(CSR_SMX_SUBMAT_BASE + 77, 0x1234).unwrap();
        assert_eq!(st.read_csr(CSR_SMX_QUERY).unwrap(), 0xDEAD);
        assert_eq!(st.read_csr(CSR_SMX_REFERENCE).unwrap(), 0xBEEF);
        assert_eq!(st.read_csr(CSR_SMX_CONFIG).unwrap(), 0x42);
        assert_eq!(st.read_csr(CSR_SMX_SUBMAT_BASE + 77).unwrap(), 0x1234);
    }

    #[test]
    fn unmapped_csr_rejected() {
        let mut st = ArchState::new();
        assert!(st.read_csr(0x100).is_err());
        assert!(st.write_csr(CSR_SMX_SUBMAT_BASE + 78, 0).is_err());
    }

    #[test]
    fn submat_serialization_matches_scheme() {
        let scheme = ScoringScheme::matrix(SubstMatrix::blosum50(), -5).unwrap();
        let mut st = ArchState::new();
        st.load_submat(&scheme).unwrap();
        for q in 0..26u8 {
            for r in 0..26u8 {
                assert_eq!(st.submat_lookup(q, r) as i32, scheme.shifted_score(q, r), "({q}, {r})");
            }
        }
    }

    #[test]
    fn submat_rejects_non_matrix_scheme() {
        let mut st = ArchState::new();
        assert!(st.load_submat(&ScoringScheme::edit()).is_err());
    }

    #[test]
    fn submat_uses_three_words_per_row() {
        // 26 six-bit entries = 156 bits -> words 3r..3r+2, never beyond.
        let scheme = ScoringScheme::matrix(SubstMatrix::blosum62(), -6).unwrap();
        let mut st = ArchState::new();
        st.load_submat(&scheme).unwrap();
        // Word 3r+2 holds entries 20..25 (36 bits); its top 28 bits are 0.
        for r in 0..26 {
            let w = st.submat_words()[r * SUBMAT_WORDS_PER_ROW + 2];
            assert_eq!(w >> 36, 0, "row {r}");
        }
    }
}
