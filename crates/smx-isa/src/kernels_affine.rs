//! SMX-A column kernels: the ISA-side of the gap-affine extension.
//!
//! The affine column operation carries two values per lane, so on a
//! single-destination core it decomposes into four instructions per
//! column (`smxa.u`, `smxa.x` for the right-flow pair and `smxa.v`,
//! `smxa.y` for the bottom pair), or two on a dual-destination core —
//! the same encoding trade as `smx.v`/`smx.h` vs `smx.vh` (§4.2). This
//! module models the kernel functionally with instruction accounting;
//! the per-lane datapath is `smx_diffenc::affine`.

use crate::unit::InsnCounts;
use smx_align_core::dp_affine::AffineScheme;
use smx_align_core::AlignError;
use smx_diffenc::affine::{
    affine_column_step, fresh_borders, AffinePenalties, DownFlow, RightFlow,
};

/// Result of an affine column-strip block computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffineBlockResult {
    /// Bottom-right score relative to the block anchor.
    pub score: i32,
    /// Dynamic instructions executed.
    pub counts: InsnCounts,
}

/// Computes the gap-affine score of a block by column strips of `vl`
/// lanes, the way an SMX-A-extended core would drive it.
///
/// `dual_port` selects the merged two-instruction-per-column encoding.
///
/// # Errors
///
/// Returns [`AlignError::EmptySequence`] for empty inputs and propagates
/// penalty-validation errors.
pub fn affine_score_block(
    scheme: &AffineScheme,
    vl: usize,
    query: &[u8],
    reference: &[u8],
    dual_port: bool,
) -> Result<AffineBlockResult, AlignError> {
    let (m, n) = (query.len(), reference.len());
    if m == 0 || n == 0 {
        return Err(AlignError::EmptySequence);
    }
    if vl == 0 {
        return Err(AlignError::InvalidScoring("vl must be positive".into()));
    }
    let pen = AffinePenalties::from_scheme(scheme)?;
    let (top0, left0) = fresh_borders(&pen, m, n);
    let mut counts = InsnCounts::default();
    // (v, y) flows carried from strip to strip, one per column.
    let mut down_carry: Vec<DownFlow> = top0.clone();
    let mut right_sum: i64 = 0;

    for (s_idx, strip) in query.chunks(vl).enumerate() {
        let row0 = s_idx * vl;
        let mut left: Vec<RightFlow> = left0[row0..row0 + strip.len()].to_vec();
        counts.csr_write += 1; // query register load
        counts.load_words += 1;
        for (j, &rc) in reference.iter().enumerate() {
            if j % vl == 0 {
                counts.csr_write += 1; // reference register reload
                counts.load_words += 1;
            }
            let (next_left, bottom) = affine_column_step(&pen, strip, rc, &left, down_carry[j]);
            left = next_left;
            down_carry[j] = bottom;
            // Instruction accounting: two value-pairs per column.
            if dual_port {
                counts.smx_vh += 2;
            } else {
                counts.smx_v += 2;
                counts.smx_h += 2;
            }
            counts.scalar_ops += 2;
        }
        counts.smx_redsum += 1;
        counts.scalar_ops += 2;
        right_sum += left.iter().map(|f| i64::from(f.u)).sum::<i64>();
    }
    let top_sum: i64 = top0.iter().map(|d| i64::from(d.v)).sum();
    counts.scalar_ops += n as u64;
    Ok(AffineBlockResult { score: (top_sum + right_sum) as i32, counts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use smx_align_core::dp_affine::affine_score;

    fn scheme() -> AffineScheme {
        AffineScheme::minimap2()
    }

    fn dna(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % 4) as u8
            })
            .collect()
    }

    #[test]
    fn matches_gotoh_across_strips() {
        let q = dna(45, 3); // 3 strips of 16
        let r = dna(37, 9);
        let res = affine_score_block(&scheme(), 16, &q, &r, false).unwrap();
        assert_eq!(res.score, affine_score(&q, &r, &scheme()));
    }

    #[test]
    fn dual_port_halves_smx_ops() {
        let q = dna(32, 5);
        let r = dna(32, 7);
        let single = affine_score_block(&scheme(), 16, &q, &r, false).unwrap();
        let dual = affine_score_block(&scheme(), 16, &q, &r, true).unwrap();
        assert_eq!(single.score, dual.score);
        assert_eq!(dual.counts.smx_vh * 2, single.counts.smx_v + single.counts.smx_h);
    }

    #[test]
    fn four_ops_per_column() {
        let q = dna(16, 5);
        let r = dna(10, 7);
        let res = affine_score_block(&scheme(), 16, &q, &r, false).unwrap();
        // One strip, 10 columns, 4 SMX-A ops each.
        assert_eq!(res.counts.smx_v + res.counts.smx_h, 40);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(affine_score_block(&scheme(), 16, &[], &[0], false).is_err());
        assert!(affine_score_block(&scheme(), 0, &[0], &[0], false).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn random_strips_match_gotoh(
            q in proptest::collection::vec(0u8..4, 1..70),
            r in proptest::collection::vec(0u8..4, 1..70),
            vl in 1usize..24,
        ) {
            let res = affine_score_block(&scheme(), vl, &q, &r, false).unwrap();
            prop_assert_eq!(res.score, affine_score(&q, &r, &scheme()));
        }
    }
}
