//! SMX-1D instruction encoding (paper §4.2): standard RISC-V R-type with
//! a reserved custom opcode.
//!
//! | instruction  | funct3 | semantics                                   |
//! |--------------|--------|---------------------------------------------|
//! | `smx.v`      | 0      | column-vector ΔV′ computation               |
//! | `smx.h`      | 1      | bottom Δh′ of the same column               |
//! | `smx.redsum` | 2      | lane-sum of packed shifted deltas           |
//! | `smx.pack`   | 3      | pack 8 ASCII chars to the configured EW     |
//! | `smx.vh`     | 4      | merged ΔV′+Δh′ (dual-destination cores)     |

use smx_align_core::AlignError;

/// RISC-V *custom-0* major opcode used by SMX-1D.
pub const SMX_OPCODE: u32 = 0b000_1011;

/// A decoded SMX-1D instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Insn {
    /// `smx.v rd, rs1, rs2` — compute a column vector of VL DP-elements.
    SmxV {
        /// Destination register.
        rd: u8,
        /// Source: packed ΔV′ inputs.
        rs1: u8,
        /// Source: Δh′ input (bits 7:0) and reference lane (bits 13:8).
        rs2: u8,
    },
    /// `smx.h rd, rs1, rs2` — compute the column's bottom Δh′.
    SmxH {
        /// Destination register.
        rd: u8,
        /// Source: packed ΔV′ inputs.
        rs1: u8,
        /// Source: Δh′ input and reference lane.
        rs2: u8,
    },
    /// `smx.redsum rd, rs1` — sum the VL packed lanes of `rs1`.
    SmxRedsum {
        /// Destination register.
        rd: u8,
        /// Source: packed shifted deltas.
        rs1: u8,
    },
    /// `smx.pack rd, rs1` — pack 8 ASCII characters into EW-width codes.
    SmxPack {
        /// Destination register.
        rd: u8,
        /// Source: 8 ASCII bytes.
        rs1: u8,
    },
    /// `smx.vh rd, rs1, rs2` — the merged column instruction for cores
    /// with two destination register ports (paper §4.2): writes ΔV′ to
    /// `rd` and the bottom Δh′ to `rd + 1`.
    SmxVh {
        /// First destination register (ΔV′); `rd + 1` receives Δh′.
        rd: u8,
        /// Source: packed ΔV′ inputs.
        rs1: u8,
        /// Source: Δh′ input, reference lane, active lanes.
        rs2: u8,
    },
}

impl Insn {
    fn funct3(self) -> u32 {
        match self {
            Insn::SmxV { .. } => 0,
            Insn::SmxH { .. } => 1,
            Insn::SmxRedsum { .. } => 2,
            Insn::SmxPack { .. } => 3,
            Insn::SmxVh { .. } => 4,
        }
    }

    /// Encodes to a 32-bit R-type instruction word.
    #[must_use]
    pub fn encode(self) -> u32 {
        let (rd, rs1, rs2) = match self {
            Insn::SmxV { rd, rs1, rs2 }
            | Insn::SmxH { rd, rs1, rs2 }
            | Insn::SmxVh { rd, rs1, rs2 } => (rd, rs1, rs2),
            Insn::SmxRedsum { rd, rs1 } | Insn::SmxPack { rd, rs1 } => (rd, rs1, 0),
        };
        SMX_OPCODE
            | (u32::from(rd & 0x1F) << 7)
            | (self.funct3() << 12)
            | (u32::from(rs1 & 0x1F) << 15)
            | (u32::from(rs2 & 0x1F) << 20)
    }

    /// Decodes a 32-bit instruction word.
    ///
    /// # Errors
    ///
    /// Returns [`AlignError::Internal`] if the opcode or funct7 is not an
    /// SMX-1D encoding.
    pub fn decode(word: u32) -> Result<Insn, AlignError> {
        if word & 0x7F != SMX_OPCODE {
            return Err(AlignError::Internal(format!(
                "opcode {:#04x} is not SMX custom-0",
                word & 0x7F
            )));
        }
        if word >> 25 != 0 {
            return Err(AlignError::Internal("non-zero funct7 in SMX encoding".into()));
        }
        let rd = ((word >> 7) & 0x1F) as u8;
        let funct3 = (word >> 12) & 0x7;
        let rs1 = ((word >> 15) & 0x1F) as u8;
        let rs2 = ((word >> 20) & 0x1F) as u8;
        match funct3 {
            0 => Ok(Insn::SmxV { rd, rs1, rs2 }),
            1 => Ok(Insn::SmxH { rd, rs1, rs2 }),
            2 => Ok(Insn::SmxRedsum { rd, rs1 }),
            3 => Ok(Insn::SmxPack { rd, rs1 }),
            4 => Ok(Insn::SmxVh { rd, rs1, rs2 }),
            f => Err(AlignError::Internal(format!("unknown SMX funct3 {f}"))),
        }
    }
}

/// Packs an `smx.v`/`smx.h` `rs2` operand value from a Δh′ input, a
/// reference lane index, and an active-lane count (`0` means "all VL
/// lanes"; partial counts serve the last row strip of a block).
#[must_use]
pub fn rs2_operand(dh_in: u8, ref_lane: u8, active_lanes: u8) -> u64 {
    u64::from(dh_in) | (u64::from(ref_lane & 0x3F) << 8) | (u64::from(active_lanes & 0x3F) << 16)
}

/// Splits an `rs2` operand into (Δh′ input, reference lane, active lanes).
#[must_use]
pub fn split_rs2(value: u64) -> (u8, u8, u8) {
    ((value & 0xFF) as u8, ((value >> 8) & 0x3F) as u8, ((value >> 16) & 0x3F) as u8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let insns = [
            Insn::SmxV { rd: 5, rs1: 10, rs2: 11 },
            Insn::SmxH { rd: 31, rs1: 0, rs2: 1 },
            Insn::SmxRedsum { rd: 7, rs1: 8 },
            Insn::SmxPack { rd: 1, rs1: 2 },
            Insn::SmxVh { rd: 12, rs1: 13, rs2: 14 },
        ];
        for i in insns {
            assert_eq!(Insn::decode(i.encode()).unwrap(), i);
        }
    }

    #[test]
    fn wrong_opcode_rejected() {
        assert!(Insn::decode(0x33).is_err()); // standard OP opcode
    }

    #[test]
    fn nonzero_funct7_rejected() {
        let w = Insn::SmxV { rd: 1, rs1: 2, rs2: 3 }.encode() | (1 << 25);
        assert!(Insn::decode(w).is_err());
    }

    #[test]
    fn rs2_operand_roundtrip() {
        let v = rs2_operand(0xAB, 17, 32);
        assert_eq!(split_rs2(v), (0xAB, 17, 32));
    }

    #[test]
    fn opcode_is_custom0() {
        // custom-0 is 0001011 per the RISC-V spec's reserved space.
        assert_eq!(SMX_OPCODE, 0x0B);
    }
}
