//! The SMX-1D functional unit (paper §4.3): per-EW PE arrays, the
//! match/mismatch comparator array, and the substitution-matrix access
//! path, exposed as instruction-execution methods with instruction-count
//! accounting for the timing model.

use crate::config::{ScoreMode, SmxConfig};
use crate::insn::{split_rs2, Insn};
use crate::regs::ArchState;
use smx_align_core::{AlignError, Alphabet, ElementWidth, ScoringScheme};
use smx_diffenc::pack::PackedVec;
use smx_diffenc::pe;

/// Dynamic instruction counts accumulated by a unit and the kernels built
/// on it. These feed the loop-level CPU timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InsnCounts {
    /// `smx.v` executions.
    pub smx_v: u64,
    /// `smx.h` executions.
    pub smx_h: u64,
    /// `smx.redsum` executions.
    pub smx_redsum: u64,
    /// `smx.pack` executions.
    pub smx_pack: u64,
    /// Merged `smx.vh` executions (dual-destination cores).
    pub smx_vh: u64,
    /// CSR writes (query/reference/config loads).
    pub csr_write: u64,
    /// 64-bit words loaded from memory by the driving software.
    pub load_words: u64,
    /// 64-bit words stored to memory by the driving software.
    pub store_words: u64,
    /// Scalar ALU/branch operations executed by the driving software
    /// (loop control, address generation, traceback decisions).
    pub scalar_ops: u64,
}

impl InsnCounts {
    /// Total dynamic instructions (all classes).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.smx_v
            + self.smx_h
            + self.smx_redsum
            + self.smx_pack
            + self.smx_vh
            + self.csr_write
            + self.load_words
            + self.store_words
            + self.scalar_ops
    }

    /// SMX custom instructions only.
    #[must_use]
    pub fn smx_total(&self) -> u64 {
        self.smx_v + self.smx_h + self.smx_redsum + self.smx_pack + self.smx_vh
    }

    /// Accumulates another count set.
    pub fn merge(&mut self, other: &InsnCounts) {
        self.smx_v += other.smx_v;
        self.smx_h += other.smx_h;
        self.smx_redsum += other.smx_redsum;
        self.smx_pack += other.smx_pack;
        self.smx_vh += other.smx_vh;
        self.csr_write += other.csr_write;
        self.load_words += other.load_words;
        self.store_words += other.store_words;
        self.scalar_ops += other.scalar_ops;
    }
}

/// The SMX-1D functional unit with its architectural state.
#[derive(Debug, Clone)]
pub struct Smx1dUnit {
    state: ArchState,
    counts: InsnCounts,
}

impl Smx1dUnit {
    /// Creates a unit configured for `ew` and `scheme`, loading the submat
    /// memory when the scheme is matrix-based.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors ([`AlignError::InvalidScoring`],
    /// [`AlignError::ElementWidthOverflow`]).
    pub fn configure(ew: ElementWidth, scheme: &ScoringScheme) -> Result<Smx1dUnit, AlignError> {
        let cfg = SmxConfig::from_scheme(ew, scheme)?;
        let mut state = ArchState::new();
        state.smx_config = cfg.encode();
        if scheme.uses_matrix() {
            state.load_submat(scheme)?;
        }
        Ok(Smx1dUnit { state, counts: InsnCounts::default() })
    }

    /// The architectural state (read-only).
    #[must_use]
    pub fn state(&self) -> &ArchState {
        &self.state
    }

    /// Accumulated instruction counts.
    #[must_use]
    pub fn counts(&self) -> InsnCounts {
        self.counts
    }

    /// Resets the instruction counters (state is preserved).
    pub fn reset_counts(&mut self) {
        self.counts = InsnCounts::default();
    }

    /// Adds software-side costs (loads/stores/scalar ops) recorded by a
    /// kernel driving this unit.
    pub fn charge(&mut self, loads: u64, stores: u64, scalar: u64) {
        self.counts.load_words += loads;
        self.counts.store_words += stores;
        self.counts.scalar_ops += scalar;
    }

    /// The decoded configuration.
    #[must_use]
    pub fn config(&self) -> SmxConfig {
        SmxConfig::decode(self.state.smx_config)
    }

    /// Writes the packed query register from lane codes (a CSR write).
    ///
    /// # Errors
    ///
    /// Returns an error if the lanes overflow the configured EW.
    pub fn set_query(&mut self, lanes: &[u8]) -> Result<(), AlignError> {
        let ew = self.config().ew;
        self.state.smx_query = PackedVec::from_lanes(ew, lanes)?.word();
        self.counts.csr_write += 1;
        Ok(())
    }

    /// Writes the packed reference register from lane codes (a CSR write).
    ///
    /// # Errors
    ///
    /// Returns an error if the lanes overflow the configured EW.
    pub fn set_reference(&mut self, lanes: &[u8]) -> Result<(), AlignError> {
        let ew = self.config().ew;
        self.state.smx_reference = PackedVec::from_lanes(ew, lanes)?.word();
        self.counts.csr_write += 1;
        Ok(())
    }

    /// Generates the shifted score S′ for one (query-lane, reference-char)
    /// pair, through either the comparator array or the submat memory.
    fn s_prime(&self, cfg: &SmxConfig, q: u8, r: u8) -> u8 {
        match cfg.mode {
            ScoreMode::MatchMismatch => {
                let base = if q == r { cfg.match_score } else { cfg.mismatch };
                (base as i32 - cfg.gap_insert as i32 - cfg.gap_delete as i32) as u8
            }
            ScoreMode::SubstMatrix => self.state.submat_lookup(q % 26, r % 26),
        }
    }

    fn column_chain(&self, rs1: u64, rs2: u64) -> (u64, u8) {
        let cfg = self.config();
        let ew = cfg.ew;
        let vl = ew.vl();
        let (dh_in, ref_lane, active) = split_rs2(rs2);
        let active = if active == 0 { vl } else { (active as usize).min(vl) };
        let qvec = PackedVec::from_word(ew, self.state.smx_query);
        let rchar = PackedVec::from_word(ew, self.state.smx_reference).lane(ref_lane as usize % vl);
        let dv_in = PackedVec::from_word(ew, rs1);
        let mut out = PackedVec::from_word(ew, 0);
        let mut dh = dh_in & (ew.max_value() as u8);
        for k in 0..active {
            let s = self.s_prime(&cfg, qvec.lane(k), rchar);
            let (v, h) = pe::pe_exact(ew, dv_in.lane(k), dh, s);
            out = out.with_lane(k, v);
            dh = h;
        }
        (out.word(), dh)
    }

    /// Executes `smx.v`: returns the packed ΔV′ output column.
    #[must_use]
    pub fn exec_v(&mut self, rs1: u64, rs2: u64) -> u64 {
        self.counts.smx_v += 1;
        self.column_chain(rs1, rs2).0
    }

    /// Executes `smx.h`: returns the bottom Δh′ of the column.
    #[must_use]
    pub fn exec_h(&mut self, rs1: u64, rs2: u64) -> u64 {
        self.counts.smx_h += 1;
        u64::from(self.column_chain(rs1, rs2).1)
    }

    /// Executes the merged `smx.vh` (dual-destination cores, paper §4.2):
    /// returns `(ΔV′ word, bottom Δh′)` in one instruction.
    #[must_use]
    pub fn exec_vh(&mut self, rs1: u64, rs2: u64) -> (u64, u64) {
        self.counts.smx_vh += 1;
        let (v, h) = self.column_chain(rs1, rs2);
        (v, u64::from(h))
    }

    /// Executes `smx.redsum`: the sum of all VL packed lanes of `rs1`.
    #[must_use]
    pub fn exec_redsum(&mut self, rs1: u64) -> u64 {
        self.counts.smx_redsum += 1;
        let ew = self.config().ew;
        PackedVec::from_word(ew, rs1).lane_sum(ew.vl())
    }

    /// Executes `smx.pack`: packs 8 ASCII bytes from `rs1` into EW-width
    /// codes (lane 0 = least-significant byte).
    #[must_use]
    pub fn exec_pack(&mut self, rs1: u64) -> u64 {
        self.counts.smx_pack += 1;
        let ew = self.config().ew;
        let mut out = 0u64;
        for k in 0..8 {
            let ascii = ((rs1 >> (k * 8)) & 0xFF) as u8;
            let code = pack_ascii(ew, ascii);
            out |= u64::from(code) << (k as u32 * u32::from(ew.bits()));
        }
        out
    }

    /// Dispatches a decoded instruction against explicit operand values.
    #[must_use]
    pub fn execute(&mut self, insn: Insn, rs1_val: u64, rs2_val: u64) -> u64 {
        match insn {
            Insn::SmxV { .. } => self.exec_v(rs1_val, rs2_val),
            Insn::SmxH { .. } => self.exec_h(rs1_val, rs2_val),
            Insn::SmxRedsum { .. } => self.exec_redsum(rs1_val),
            Insn::SmxPack { .. } => self.exec_pack(rs1_val),
            Insn::SmxVh { .. } => self.exec_vh(rs1_val, rs2_val).0,
        }
    }
}

/// ASCII → EW-width code conversion used by `smx.pack`.
fn pack_ascii(ew: ElementWidth, ascii: u8) -> u8 {
    let c = ascii as char;
    match ew {
        ElementWidth::W2 => Alphabet::Dna2.encode(c).unwrap_or(0),
        ElementWidth::W4 => Alphabet::Dna4.encode(c).unwrap_or(4), // unknown -> N
        ElementWidth::W6 => Alphabet::Protein.encode(c).unwrap_or(23), // unknown -> X
        ElementWidth::W8 => ascii,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smx_align_core::SubstMatrix;

    fn edit_unit() -> Smx1dUnit {
        Smx1dUnit::configure(ElementWidth::W2, &ScoringScheme::edit()).unwrap()
    }

    #[test]
    fn exec_v_matches_pe_chain() {
        let mut u = edit_unit();
        let q: Vec<u8> = (0..32).map(|k| (k % 4) as u8).collect();
        u.set_query(&q).unwrap();
        u.set_reference(&[1u8; 32]).unwrap();
        let scheme = ScoringScheme::edit();
        let dv_in = vec![0u8; 32];
        let rs1 = PackedVec::from_lanes(ElementWidth::W2, &dv_in).unwrap().word();
        let rs2 = crate::insn::rs2_operand(0, 0, 0);
        let out = u.exec_v(rs1, rs2);
        let s_col: Vec<u8> = q.iter().map(|&qc| scheme.shifted_score(qc, 1) as u8).collect();
        let (expect, _) = pe::pe_chain(ElementWidth::W2, &dv_in, 0, &s_col);
        assert_eq!(PackedVec::from_word(ElementWidth::W2, out).to_lanes(32), expect);
    }

    #[test]
    fn exec_h_returns_chain_bottom() {
        let mut u = edit_unit();
        u.set_query(&[0u8; 32]).unwrap();
        u.set_reference(&[0u8; 32]).unwrap();
        let rs2 = crate::insn::rs2_operand(1, 0, 0);
        let h = u.exec_h(0, rs2);
        // All matches: S' = 2 each; chain behaviour checked vs pe_chain.
        let s_col = vec![2u8; 32];
        let (_, expect) = pe::pe_chain(ElementWidth::W2, &[0u8; 32], 1, &s_col);
        assert_eq!(h, u64::from(expect));
    }

    #[test]
    fn partial_active_lanes() {
        let mut u = edit_unit();
        u.set_query(&[0, 1, 2]).unwrap();
        u.set_reference(&[2u8]).unwrap();
        let scheme = ScoringScheme::edit();
        let rs2 = crate::insn::rs2_operand(0, 0, 3);
        let h = u.exec_h(0, rs2);
        let s_col: Vec<u8> =
            [0u8, 1, 2].iter().map(|&qc| scheme.shifted_score(qc, 2) as u8).collect();
        let (_, expect) = pe::pe_chain(ElementWidth::W2, &[0, 0, 0], 0, &s_col);
        assert_eq!(h, u64::from(expect));
    }

    #[test]
    fn submat_mode_uses_matrix() {
        let scheme = ScoringScheme::matrix(SubstMatrix::blosum50(), -5).unwrap();
        let mut u = Smx1dUnit::configure(ElementWidth::W6, &scheme).unwrap();
        u.set_query(&[22u8; 10]).unwrap(); // 'W'
        u.set_reference(&[22u8; 10]).unwrap();
        let rs2 = crate::insn::rs2_operand(0, 0, 1);
        let v = u.exec_v(0, rs2);
        // S'(W, W) = 15 + 10 = 25; PE with dv=dh=0 gives max(25, 0, 0) = 25.
        assert_eq!(PackedVec::from_word(ElementWidth::W6, v).lane(0), 25);
    }

    #[test]
    fn redsum_sums_lanes() {
        let mut u = edit_unit();
        let lanes = vec![1u8; 32];
        let rs1 = PackedVec::from_lanes(ElementWidth::W2, &lanes).unwrap().word();
        assert_eq!(u.exec_redsum(rs1), 32);
    }

    #[test]
    fn pack_dna2() {
        let mut u = edit_unit();
        let text = u64::from_le_bytes(*b"ACGTACGT");
        let packed = u.exec_pack(text);
        let v = PackedVec::from_word(ElementWidth::W2, packed);
        assert_eq!(v.to_lanes(8), vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn pack_protein() {
        let scheme = ScoringScheme::matrix(SubstMatrix::blosum50(), -5).unwrap();
        let mut u = Smx1dUnit::configure(ElementWidth::W6, &scheme).unwrap();
        let text = u64::from_le_bytes(*b"HEAGAWG*");
        let packed = u.exec_pack(text);
        let v = PackedVec::from_word(ElementWidth::W6, packed);
        assert_eq!(v.to_lanes(8), vec![7, 4, 0, 6, 0, 22, 6, 23]); // '*' -> X
    }

    #[test]
    fn counts_accumulate() {
        let mut u = edit_unit();
        u.set_query(&[0u8; 32]).unwrap();
        u.set_reference(&[0u8; 32]).unwrap();
        let _ = u.exec_v(0, 0);
        let _ = u.exec_h(0, 0);
        let _ = u.exec_redsum(0);
        let _ = u.exec_pack(0);
        u.charge(3, 2, 10);
        let c = u.counts();
        assert_eq!(c.smx_v, 1);
        assert_eq!(c.smx_h, 1);
        assert_eq!(c.smx_redsum, 1);
        assert_eq!(c.smx_pack, 1);
        assert_eq!(c.csr_write, 2);
        assert_eq!(c.total(), 1 + 1 + 1 + 1 + 2 + 3 + 2 + 10);
        assert_eq!(c.smx_total(), 4);
    }

    #[test]
    fn execute_dispatches() {
        let mut u = edit_unit();
        let insn = Insn::SmxRedsum { rd: 1, rs1: 2 };
        let rs1 = PackedVec::from_lanes(ElementWidth::W2, &[3, 3]).unwrap().word();
        assert_eq!(u.execute(insn, rs1, 0), 6);
    }
}
