//! # smx-isa
//!
//! Functional model of the **SMX-1D ISA extension** (paper §4): the
//! `smx.v`, `smx.h`, `smx.redsum`, and `smx.pack` instructions, the
//! architectural state (`smx_query`, `smx_reference`, `smx_config`, and
//! the 78×64-bit `smx_submat` memory), and software kernels built on the
//! ISA — column-strip DP-block computation, score-only reduction, and the
//! tile-recompute traceback that the heterogeneous SMX architecture runs
//! on the core.
//!
//! ## ISA elaboration
//!
//! The paper leaves the reference-lane selection of `smx.v`/`smx.h`
//! implicit (the `smx_reference` register holds `VL` packed characters but
//! each column computation consumes exactly one). We encode the reference
//! lane index in bits `[13:8]` of `rs2`, alongside the `Δh′` input in bits
//! `[7:0]` — a micro-architectural detail that does not change the
//! instruction count or data movement the paper reasons about.
//!
//! ## Example
//!
//! ```
//! use smx_align_core::AlignmentConfig;
//! use smx_isa::{kernels, Smx1dUnit};
//!
//! # fn main() -> Result<(), smx_align_core::AlignError> {
//! let cfg = AlignmentConfig::DnaEdit;
//! let mut unit = Smx1dUnit::configure(cfg.element_width(), &cfg.scoring())?;
//! let q = [0u8, 1, 2, 3, 0, 1];
//! let r = [0u8, 1, 2, 2, 0, 1];
//! let result = kernels::compute_block(&mut unit, &q, &r, None)?;
//! assert_eq!(result.score, -1); // one mismatch under the edit model
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod config;
pub mod insn;
pub mod kernels;
pub mod kernels_affine;
pub mod machine;
pub mod regs;
pub mod unit;

pub use config::{ScoreMode, SmxConfig};
pub use insn::Insn;
pub use machine::Machine;
pub use regs::ArchState;
pub use unit::{InsnCounts, Smx1dUnit};
