//! The `smx_config` architectural register (paper §4.2).
//!
//! Holds the element width, the score-generation mode (match/mismatch
//! comparator array vs. substitution-matrix memory), and the M/X/I/D
//! penalties. Rarely written — it is reused across all alignments of an
//! application, which is why the hardware can update it at commit without
//! recovery machinery.

use smx_align_core::{AlignError, ElementWidth, ScoringScheme};

/// How the S′ inputs of the PE array are generated (paper §4.3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScoreMode {
    /// Comparator array: match → `M − I − D`, mismatch → `X − I − D`.
    MatchMismatch,
    /// Lookup in the `smx_submat` memory (protein alignment).
    SubstMatrix,
}

/// Decoded contents of the `smx_config` CSR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SmxConfig {
    /// Element width (selects the PE array and VL).
    pub ew: ElementWidth,
    /// S′ generation mode.
    pub mode: ScoreMode,
    /// Match score `M` (match/mismatch mode only).
    pub match_score: i8,
    /// Mismatch score `X` (match/mismatch mode only).
    pub mismatch: i8,
    /// Insertion penalty `I`.
    pub gap_insert: i8,
    /// Deletion penalty `D`.
    pub gap_delete: i8,
}

impl SmxConfig {
    /// Builds the configuration for a scoring scheme at a given width.
    ///
    /// # Errors
    ///
    /// Returns an error if the scheme is not encodable, its theta exceeds
    /// `ew`, or any penalty is outside the 8-bit CSR fields.
    pub fn from_scheme(ew: ElementWidth, scheme: &ScoringScheme) -> Result<SmxConfig, AlignError> {
        scheme.check_encodable()?;
        let theta = scheme.theta();
        if !ew.fits_theta(theta) {
            return Err(AlignError::ElementWidthOverflow { theta, ew_bits: ew.bits() });
        }
        let field = |v: i32, what: &str| -> Result<i8, AlignError> {
            i8::try_from(v).map_err(|_| {
                AlignError::InvalidScoring(format!("{what} {v} does not fit an 8-bit CSR field"))
            })
        };
        let (mode, match_score, mismatch) = match scheme {
            ScoringScheme::Matrix { .. } => (ScoreMode::SubstMatrix, 0, 0),
            _ => (
                ScoreMode::MatchMismatch,
                field(scheme.s_max(), "match score")?,
                field(scheme.s_min(), "mismatch score")?,
            ),
        };
        Ok(SmxConfig {
            ew,
            mode,
            match_score,
            mismatch,
            gap_insert: field(scheme.gap_insert(), "insertion penalty")?,
            gap_delete: field(scheme.gap_delete(), "deletion penalty")?,
        })
    }

    /// Shifted score range bound `theta = S_max − I − D`.
    ///
    /// In substitution-matrix mode this uses the 6-bit submat ceiling
    /// (the hardware bound); the precise value comes from the matrix.
    #[must_use]
    pub fn theta_bound(&self) -> i32 {
        match self.mode {
            ScoreMode::MatchMismatch => {
                self.match_score as i32 - self.gap_insert as i32 - self.gap_delete as i32
            }
            ScoreMode::SubstMatrix => 63,
        }
    }

    /// Encodes into the 64-bit CSR image.
    ///
    /// Layout: `[1:0]` EW selector, `[2]` mode, `[15:8]` M, `[23:16]` X,
    /// `[31:24]` I, `[39:32]` D (all two's complement bytes).
    #[must_use]
    pub fn encode(&self) -> u64 {
        let ew_sel = match self.ew {
            ElementWidth::W2 => 0u64,
            ElementWidth::W4 => 1,
            ElementWidth::W6 => 2,
            ElementWidth::W8 => 3,
        };
        let mode = match self.mode {
            ScoreMode::MatchMismatch => 0u64,
            ScoreMode::SubstMatrix => 1,
        };
        ew_sel
            | (mode << 2)
            | ((self.match_score as u8 as u64) << 8)
            | ((self.mismatch as u8 as u64) << 16)
            | ((self.gap_insert as u8 as u64) << 24)
            | ((self.gap_delete as u8 as u64) << 32)
    }

    /// Decodes a CSR image written by software.
    #[must_use]
    pub fn decode(csr: u64) -> SmxConfig {
        let ew = match csr & 0b11 {
            0 => ElementWidth::W2,
            1 => ElementWidth::W4,
            2 => ElementWidth::W6,
            _ => ElementWidth::W8,
        };
        let mode = if csr & 0b100 != 0 { ScoreMode::SubstMatrix } else { ScoreMode::MatchMismatch };
        SmxConfig {
            ew,
            mode,
            match_score: (csr >> 8) as u8 as i8,
            mismatch: (csr >> 16) as u8 as i8,
            gap_insert: (csr >> 24) as u8 as i8,
            gap_delete: (csr >> 32) as u8 as i8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smx_align_core::SubstMatrix;

    #[test]
    fn encode_decode_roundtrip() {
        for cfg in [
            SmxConfig::from_scheme(ElementWidth::W2, &ScoringScheme::edit()).unwrap(),
            SmxConfig::from_scheme(ElementWidth::W4, &ScoringScheme::linear(2, -4, -4).unwrap())
                .unwrap(),
            SmxConfig::from_scheme(
                ElementWidth::W6,
                &ScoringScheme::matrix(SubstMatrix::blosum50(), -5).unwrap(),
            )
            .unwrap(),
            SmxConfig::from_scheme(ElementWidth::W8, &ScoringScheme::edit()).unwrap(),
        ] {
            assert_eq!(SmxConfig::decode(cfg.encode()), cfg);
        }
    }

    #[test]
    fn matrix_scheme_sets_submat_mode() {
        let scheme = ScoringScheme::matrix(SubstMatrix::blosum50(), -5).unwrap();
        let cfg = SmxConfig::from_scheme(ElementWidth::W6, &scheme).unwrap();
        assert_eq!(cfg.mode, ScoreMode::SubstMatrix);
        assert_eq!(cfg.gap_insert, -5);
    }

    #[test]
    fn theta_overflow_rejected() {
        let scheme = ScoringScheme::linear(2, -4, -4).unwrap(); // theta 10
        assert!(SmxConfig::from_scheme(ElementWidth::W2, &scheme).is_err());
    }

    #[test]
    fn negative_penalties_survive_roundtrip() {
        let scheme = ScoringScheme::linear_asym(3, -2, -5, -7).unwrap();
        let cfg = SmxConfig::from_scheme(ElementWidth::W4, &scheme).unwrap();
        let back = SmxConfig::decode(cfg.encode());
        assert_eq!(back.gap_insert, -5);
        assert_eq!(back.gap_delete, -7);
        assert_eq!(back.mismatch, -2);
    }

    #[test]
    fn theta_bound_match_mismatch() {
        let cfg = SmxConfig::from_scheme(ElementWidth::W2, &ScoringScheme::edit()).unwrap();
        assert_eq!(cfg.theta_bound(), 2);
    }
}
