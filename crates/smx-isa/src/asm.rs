//! Assembler / disassembler for the SMX-1D instructions, using standard
//! RISC-V register syntax (`x0`–`x31` or ABI names). Useful for tests,
//! debugging dumps, and documenting kernel listings.

use crate::insn::Insn;
use smx_align_core::AlignError;

const ABI_NAMES: [&str; 32] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
    "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
    "t5", "t6",
];

/// Formats a register as its ABI name.
#[must_use]
pub fn reg_name(reg: u8) -> &'static str {
    ABI_NAMES[(reg & 0x1F) as usize]
}

/// Parses `x7`, `a0`, `s3`, … into a register number.
///
/// # Errors
///
/// Returns [`AlignError::Internal`] on an unknown register token.
pub fn parse_reg(token: &str) -> Result<u8, AlignError> {
    let t = token.trim().trim_end_matches(',');
    if let Some(num) = t.strip_prefix('x') {
        if let Ok(n) = num.parse::<u8>() {
            if n < 32 {
                return Ok(n);
            }
        }
    }
    if let Some(pos) = ABI_NAMES.iter().position(|&n| n == t) {
        return Ok(pos as u8);
    }
    Err(AlignError::Internal(format!("unknown register {token:?}")))
}

/// Disassembles one instruction.
#[must_use]
pub fn disassemble(insn: Insn) -> String {
    match insn {
        Insn::SmxV { rd, rs1, rs2 } => {
            format!("smx.v {}, {}, {}", reg_name(rd), reg_name(rs1), reg_name(rs2))
        }
        Insn::SmxH { rd, rs1, rs2 } => {
            format!("smx.h {}, {}, {}", reg_name(rd), reg_name(rs1), reg_name(rs2))
        }
        Insn::SmxRedsum { rd, rs1 } => {
            format!("smx.redsum {}, {}", reg_name(rd), reg_name(rs1))
        }
        Insn::SmxPack { rd, rs1 } => {
            format!("smx.pack {}, {}", reg_name(rd), reg_name(rs1))
        }
        Insn::SmxVh { rd, rs1, rs2 } => {
            format!("smx.vh {}, {}, {}", reg_name(rd), reg_name(rs1), reg_name(rs2))
        }
    }
}

/// Assembles one line (`mnemonic rd, rs1[, rs2]`, `#` comments allowed).
///
/// # Errors
///
/// Returns [`AlignError::Internal`] naming the malformed token.
pub fn assemble_line(line: &str) -> Result<Option<Insn>, AlignError> {
    let code = line.split('#').next().unwrap_or("").trim();
    if code.is_empty() {
        return Ok(None);
    }
    let mut parts = code.split_whitespace();
    let mnemonic = parts.next().expect("non-empty line has a token");
    let operands: Vec<&str> = parts.collect();
    let expect = |n: usize| -> Result<(), AlignError> {
        if operands.len() == n {
            Ok(())
        } else {
            Err(AlignError::Internal(format!(
                "{mnemonic} expects {n} operands, got {}",
                operands.len()
            )))
        }
    };
    let insn = match mnemonic {
        "smx.v" => {
            expect(3)?;
            Insn::SmxV {
                rd: parse_reg(operands[0])?,
                rs1: parse_reg(operands[1])?,
                rs2: parse_reg(operands[2])?,
            }
        }
        "smx.h" => {
            expect(3)?;
            Insn::SmxH {
                rd: parse_reg(operands[0])?,
                rs1: parse_reg(operands[1])?,
                rs2: parse_reg(operands[2])?,
            }
        }
        "smx.redsum" => {
            expect(2)?;
            Insn::SmxRedsum { rd: parse_reg(operands[0])?, rs1: parse_reg(operands[1])? }
        }
        "smx.pack" => {
            expect(2)?;
            Insn::SmxPack { rd: parse_reg(operands[0])?, rs1: parse_reg(operands[1])? }
        }
        "smx.vh" => {
            expect(3)?;
            Insn::SmxVh {
                rd: parse_reg(operands[0])?,
                rs1: parse_reg(operands[1])?,
                rs2: parse_reg(operands[2])?,
            }
        }
        other => return Err(AlignError::Internal(format!("unknown mnemonic {other:?}"))),
    };
    Ok(Some(insn))
}

/// Assembles a multi-line program into encoded instruction words.
///
/// # Errors
///
/// Returns the first line's error, annotated with its line number.
pub fn assemble(program: &str) -> Result<Vec<u32>, AlignError> {
    let mut words = Vec::new();
    for (i, line) in program.lines().enumerate() {
        match assemble_line(line) {
            Ok(Some(insn)) => words.push(insn.encode()),
            Ok(None) => {}
            Err(AlignError::Internal(msg)) => {
                return Err(AlignError::Internal(format!("line {}: {msg}", i + 1)))
            }
            Err(e) => return Err(e),
        }
    }
    Ok(words)
}

/// Disassembles encoded words into listing lines.
///
/// # Errors
///
/// Propagates decode errors.
pub fn disassemble_words(words: &[u32]) -> Result<Vec<String>, AlignError> {
    words.iter().map(|&w| Insn::decode(w).map(disassemble)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_mnemonics() {
        let program = "\
            # compute one column pair\n\
            smx.v a0, a1, a2\n\
            smx.h a3, a1, a2   # bottom delta\n\
            smx.redsum t0, a0\n\
            smx.pack t1, t2\n";
        let words = assemble(program).unwrap();
        assert_eq!(words.len(), 4);
        let listing = disassemble_words(&words).unwrap();
        assert_eq!(listing[0], "smx.v a0, a1, a2");
        assert_eq!(listing[2], "smx.redsum t0, a0");
        // Reassembling the listing yields identical words.
        let again = assemble(&listing.join("\n")).unwrap();
        assert_eq!(again, words);
    }

    #[test]
    fn numeric_registers_accepted() {
        let insn = assemble_line("smx.v x5, x10, x11").unwrap().unwrap();
        assert_eq!(insn, Insn::SmxV { rd: 5, rs1: 10, rs2: 11 });
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble("smx.v a0, a1, a2\nsmx.bogus a0, a1\n").unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn operand_count_checked() {
        assert!(assemble_line("smx.redsum a0, a1, a2").is_err());
        assert!(assemble_line("smx.v a0, a1").is_err());
    }

    #[test]
    fn bad_register_rejected() {
        assert!(parse_reg("x32").is_err());
        assert!(parse_reg("q7").is_err());
        assert_eq!(parse_reg("zero").unwrap(), 0);
        assert_eq!(parse_reg("t6").unwrap(), 31);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let words = assemble("# nothing\n\n   \n").unwrap();
        assert!(words.is_empty());
    }
}
