//! A minimal instruction-stream interpreter: executes assembled SMX-1D
//! programs against a 32-register file and an [`Smx1dUnit`]. Host code
//! seeds registers and reads results — the pattern of an ISS unit test or
//! a bring-up vector, and the repository's executable ISA specification.

use crate::insn::Insn;
use crate::unit::Smx1dUnit;
use smx_align_core::{AlignError, ElementWidth, ScoringScheme};

/// The interpreter: register file + SMX-1D unit.
#[derive(Debug, Clone)]
pub struct Machine {
    regs: [u64; 32],
    unit: Smx1dUnit,
}

impl Machine {
    /// Builds a machine configured like [`Smx1dUnit::configure`].
    ///
    /// # Errors
    ///
    /// Propagates unit configuration errors.
    pub fn new(ew: ElementWidth, scheme: &ScoringScheme) -> Result<Machine, AlignError> {
        Ok(Machine { regs: [0; 32], unit: Smx1dUnit::configure(ew, scheme)? })
    }

    /// Reads register `x<r>` (`x0` is hardwired to zero).
    ///
    /// # Panics
    ///
    /// Panics if `r >= 32`.
    #[must_use]
    pub fn reg(&self, r: u8) -> u64 {
        assert!(r < 32);
        if r == 0 {
            0
        } else {
            self.regs[r as usize]
        }
    }

    /// Writes register `x<r>` (writes to `x0` are ignored).
    ///
    /// # Panics
    ///
    /// Panics if `r >= 32`.
    pub fn set_reg(&mut self, r: u8, value: u64) {
        assert!(r < 32);
        if r != 0 {
            self.regs[r as usize] = value;
        }
    }

    /// The underlying SMX unit (for CSR setup and instruction counts).
    pub fn unit_mut(&mut self) -> &mut Smx1dUnit {
        &mut self.unit
    }

    /// Executes one decoded instruction.
    pub fn step(&mut self, insn: Insn) {
        match insn {
            Insn::SmxV { rd, rs1, rs2 } => {
                let v = self.unit.exec_v(self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, v);
            }
            Insn::SmxH { rd, rs1, rs2 } => {
                let h = self.unit.exec_h(self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, h);
            }
            Insn::SmxVh { rd, rs1, rs2 } => {
                let (v, h) = self.unit.exec_vh(self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, v);
                self.set_reg(rd.wrapping_add(1) & 0x1F, h);
            }
            Insn::SmxRedsum { rd, rs1 } => {
                let s = self.unit.exec_redsum(self.reg(rs1));
                self.set_reg(rd, s);
            }
            Insn::SmxPack { rd, rs1 } => {
                let p = self.unit.exec_pack(self.reg(rs1));
                self.set_reg(rd, p);
            }
        }
    }

    /// Executes a sequence of encoded instruction words.
    ///
    /// # Errors
    ///
    /// Returns the first decode error (annotated with the word index).
    pub fn run(&mut self, words: &[u32]) -> Result<(), AlignError> {
        for (i, &w) in words.iter().enumerate() {
            let insn = Insn::decode(w)
                .map_err(|e| AlignError::Internal(format!("instruction {i}: {e}")))?;
            self.step(insn);
        }
        Ok(())
    }

    /// Assembles and executes a program in one call.
    ///
    /// # Errors
    ///
    /// Propagates assembler and decode errors.
    pub fn run_asm(&mut self, program: &str) -> Result<(), AlignError> {
        let words = crate::asm::assemble(program)?;
        self.run(&words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::rs2_operand;
    use smx_align_core::AlignmentConfig;
    use smx_diffenc::pack::PackedVec;

    fn machine() -> Machine {
        let cfg = AlignmentConfig::DnaEdit;
        Machine::new(cfg.element_width(), &cfg.scoring()).unwrap()
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let mut m = machine();
        m.set_reg(0, 42);
        assert_eq!(m.reg(0), 0);
    }

    #[test]
    fn program_matches_direct_unit_calls() {
        // Execute one column through an assembled program and compare to
        // calling the unit directly.
        let cfg = AlignmentConfig::DnaEdit;
        let mut m = machine();
        m.unit_mut().set_query(&[0, 1, 2, 3]).unwrap();
        m.unit_mut().set_reference(&[2u8]).unwrap();
        let dv_in = PackedVec::from_lanes(cfg.element_width(), &[0, 1, 2, 0]).unwrap().word();
        m.set_reg(10, dv_in); // a0
        m.set_reg(11, rs2_operand(1, 0, 4)); // a1
        m.run_asm("smx.v a2, a0, a1\nsmx.h a3, a0, a1\nsmx.redsum a4, a2\n").unwrap();

        let mut direct = Smx1dUnit::configure(cfg.element_width(), &cfg.scoring()).unwrap();
        direct.set_query(&[0, 1, 2, 3]).unwrap();
        direct.set_reference(&[2u8]).unwrap();
        let rs2 = rs2_operand(1, 0, 4);
        assert_eq!(m.reg(12), direct.exec_v(dv_in, rs2));
        assert_eq!(m.reg(13), direct.exec_h(dv_in, rs2));
        assert_eq!(m.reg(14), direct.exec_redsum(m.reg(12)));
    }

    #[test]
    fn merged_vh_writes_two_registers() {
        let mut m = machine();
        m.unit_mut().set_query(&[0u8; 32]).unwrap();
        m.unit_mut().set_reference(&[0u8; 32]).unwrap();
        m.set_reg(11, rs2_operand(0, 0, 0));
        m.run_asm("smx.vh a2, a0, a1\n").unwrap();
        // a2 = ΔV', a3 = bottom Δh'; all-match column gives nonzero Δv'.
        assert_ne!(m.reg(12), 0);
        assert!(m.reg(13) <= 3);
    }

    #[test]
    fn pack_through_program() {
        let mut m = machine();
        m.set_reg(5, u64::from_le_bytes(*b"ACGTACGT"));
        m.run_asm("smx.pack t1, t0\n").unwrap();
        let v = PackedVec::from_word(smx_align_core::ElementWidth::W2, m.reg(6));
        assert_eq!(v.to_lanes(8), vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn bad_word_reports_index() {
        let mut m = machine();
        let err = m.run(&[0x33]).unwrap_err();
        assert!(err.to_string().contains("instruction 0"));
    }
}
