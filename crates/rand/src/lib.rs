//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *deterministic subset* of the `rand 0.8` API it actually
//! uses: [`rngs::StdRng`] seeded through [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] methods `gen_range` / `gen_bool`. The generator is
//! xoshiro256++ seeded by SplitMix64 — high-quality, reproducible, and
//! stable across platforms, which is all the datagen and bench harnesses
//! require. It is **not** the upstream `StdRng` stream: datasets are
//! reproducible within this workspace, not bit-compatible with upstream
//! `rand`.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Sampling ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64 + 1;
                (lo as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let p = p.clamp(0.0, 1.0);
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step used for seeding and hashing.
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state is invalid for xoshiro; splitmix64 cannot
            // produce four zero words from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_frequency_is_plausible() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
    }
}
