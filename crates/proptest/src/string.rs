//! Regex-driven string strategies (`proptest::string::string_regex`).
//!
//! Supports the subset the workspace uses: sequences of atoms, where an
//! atom is a literal character, an escape (`\n`, `\t`, `\\`, `\-`, …), or
//! a character class `[...]` with ranges and escapes, each optionally
//! followed by a `{n}` / `{min,max}` repetition. Anything else (groups,
//! alternation, `*`/`+`/`?` quantifiers) is rejected with an error so an
//! unsupported pattern fails loudly instead of generating wrong data.

use crate::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::fmt;

/// Pattern rejected by the supported regex subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

fn err<T>(message: impl Into<String>) -> Result<T, Error> {
    Err(Error { message: message.into() })
}

#[derive(Debug, Clone)]
struct Atom {
    /// The characters this atom can produce (singleton for literals).
    choices: Vec<char>,
    min: usize,
    max: usize,
}

/// A compiled string strategy.
#[derive(Debug, Clone)]
pub struct RegexGeneratorStrategy {
    atoms: Vec<Atom>,
}

impl Strategy for RegexGeneratorStrategy {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        let mut out = String::new();
        for atom in &self.atoms {
            let n = rng.gen_range(atom.min..=atom.max);
            for _ in 0..n {
                out.push(atom.choices[rng.gen_range(0..atom.choices.len())]);
            }
        }
        out
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<Vec<char>, Error> {
    let mut set: Vec<char> = Vec::new();
    let mut pending: Option<char> = None;
    loop {
        let Some(c) = chars.next() else {
            return err("unterminated character class");
        };
        match c {
            ']' => {
                if let Some(p) = pending {
                    set.push(p);
                }
                if set.is_empty() {
                    return err("empty character class");
                }
                set.dedup();
                return Ok(set);
            }
            '-' => match (pending.take(), chars.peek().copied()) {
                // A range like `a-z` (the `-` cannot end the class here;
                // a trailing `-` is treated as a literal).
                (Some(lo), Some(hi)) if hi != ']' => {
                    let hi = if hi == '\\' {
                        chars.next();
                        match chars.next() {
                            Some(e) => unescape(e),
                            None => return err("dangling escape in class"),
                        }
                    } else {
                        chars.next();
                        hi
                    };
                    if lo > hi {
                        return err(format!("inverted class range {lo:?}-{hi:?}"));
                    }
                    set.extend(lo..=hi);
                }
                (prev, _) => {
                    if let Some(p) = prev {
                        set.push(p);
                    }
                    pending = Some('-');
                }
            },
            '\\' => {
                if let Some(p) = pending.take() {
                    set.push(p);
                }
                match chars.next() {
                    Some(e) => pending = Some(unescape(e)),
                    None => return err("dangling escape in class"),
                }
            }
            other => {
                if let Some(p) = pending.take() {
                    set.push(p);
                }
                pending = Some(other);
            }
        }
    }
}

fn parse_repetition(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Result<(usize, usize), Error> {
    if chars.peek() != Some(&'{') {
        return Ok((1, 1));
    }
    chars.next();
    let mut body = String::new();
    loop {
        match chars.next() {
            Some('}') => break,
            Some(c) => body.push(c),
            None => return err("unterminated repetition"),
        }
    }
    let parse_n = |s: &str| -> Result<usize, Error> {
        s.trim().parse().map_err(|_| Error { message: format!("bad repetition count {s:?}") })
    };
    let (min, max) = match body.split_once(',') {
        None => {
            let n = parse_n(&body)?;
            (n, n)
        }
        Some((lo, hi)) => (parse_n(lo)?, parse_n(hi)?),
    };
    if min > max {
        return err(format!("inverted repetition {{{min},{max}}}"));
    }
    Ok((min, max))
}

/// Compiles `pattern` into a string strategy.
///
/// # Errors
///
/// Returns [`Error`] when the pattern falls outside the supported subset.
pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let choices = match c {
            '[' => parse_class(&mut chars)?,
            '\\' => match chars.next() {
                Some(e) => vec![unescape(e)],
                None => return err("dangling escape"),
            },
            '(' | ')' | '|' | '*' | '+' | '?' | '.' | '^' | '$' => {
                return err(format!("unsupported regex construct {c:?} in {pattern:?}"))
            }
            literal => vec![literal],
        };
        let (min, max) = parse_repetition(&mut chars)?;
        atoms.push(Atom { choices, min, max });
    }
    Ok(RegexGeneratorStrategy { atoms })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn class_with_ranges_and_escapes() {
        let s = string_regex("[ -~\\n]{0,200}").unwrap();
        let mut r = rng();
        for _ in 0..50 {
            let v = s.sample(&mut r);
            assert!(v.len() <= 200);
            assert!(v.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn literal_atoms_and_counts() {
        let s = string_regex("AB{3}").unwrap();
        assert_eq!(s.sample(&mut rng()), "ABBB");
    }

    #[test]
    fn fixed_class_lengths() {
        let s = string_regex("[ACGT]{1,120}").unwrap();
        let mut r = rng();
        for _ in 0..50 {
            let v = s.sample(&mut r);
            assert!((1..=120).contains(&v.len()));
            assert!(v.chars().all(|c| "ACGT".contains(c)));
        }
    }

    #[test]
    fn unsupported_constructs_rejected() {
        assert!(string_regex("(ab)+").is_err());
        assert!(string_regex("a|b").is_err());
        assert!(string_regex("[z-a]").is_err());
        assert!(string_regex("[abc").is_err());
        assert!(string_regex("a{2,1}").is_err());
    }
}
