//! Collection strategies (`proptest::collection::vec`).

use crate::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// An accepted size specification for [`vec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// Strategy producing `Vec<S::Value>` with a length drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Vector strategy over an element strategy and a size range.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
