//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of the `proptest 1.x` surface it uses: the
//! [`proptest!`] macro with `#![proptest_config(...)]`, integer-range and
//! regex-string strategies, [`collection::vec`], and the `prop_assert*`
//! macros. Generation is deterministic — each test function derives its
//! seed from its module path and case index — so failures reproduce
//! exactly. There is no shrinking: a failing case panics with the
//! standard assertion message (the generated values are part of normal
//! Rust panic output when asserted on).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

pub mod collection;
pub mod string;

/// Run configuration for a [`proptest!`] block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// String literals act as regex strategies, mirroring upstream proptest.
///
/// # Panics
///
/// Panics at sample time if the pattern is outside the supported regex
/// subset (see [`string::string_regex`]).
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        string::string_regex(self)
            .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e}"))
            .sample(rng)
    }
}

/// Deterministic per-test-case generator: seeded from the test's
/// identifier and the case index.
#[must_use]
pub fn test_rng(test_id: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_id.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case) << 32 | u64::from(case)))
}

/// Declares property tests: each `fn name(binding in strategy, ...)`
/// becomes a `#[test]` running `cases` deterministic draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr); ) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_fns!{ cfg = ($cfg); $($rest)* }
    };
}

/// `assert!` under the upstream proptest spelling.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under the upstream proptest spelling.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under the upstream proptest spelling.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// The items tests conventionally glob-import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_in_bounds(x in 3u8..9, y in 0..=4i32, n in 1usize..50) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0..=4).contains(&y));
            prop_assert!((1..50).contains(&n));
        }

        #[test]
        fn vectors_have_requested_sizes(v in collection::vec(0u8..4, 2..10)) {
            prop_assert!(v.len() >= 2 && v.len() < 10);
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn string_regex_strategies(s in string::string_regex("[a-c]{2,5}").unwrap()) {
            prop_assert!(s.len() >= 2 && s.len() <= 5);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn str_literal_is_a_strategy(words in collection::vec("[xy]{1,3}", 1..4)) {
            prop_assert!(!words.is_empty());
            for w in &words {
                prop_assert!(w.chars().all(|c| c == 'x' || c == 'y'));
            }
        }
    }

    #[test]
    fn determinism_across_invocations() {
        let mut a = test_rng("t", 3);
        let mut b = test_rng("t", 3);
        let s = collection::vec(0u8..100, 5..6);
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }
}
