//! The high-level SMX aligner API: pick a configuration, an algorithm,
//! and an engine; get functional results plus simulated performance.

use smx_algos::{adaptive, banded, full, hirschberg, metrics, timing, window, xdrop};
use smx_algos::{AlgoOutcome, BatchWork, EngineKind, TimingReport};
use smx_align_core::{AlignError, AlignmentConfig, ScoringScheme, Sequence};
use smx_datagen::SeqPair;

/// The alignment algorithm to run (paper §2.3, §9).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Algorithm {
    /// Full DP-matrix.
    Full,
    /// Banded heuristic with a half-band width.
    Banded {
        /// Half-band width (diagonals each side of the scaled diagonal).
        band: usize,
    },
    /// Adaptive banded (Suzuki-Kasahara style): a fixed-width band over
    /// antidiagonals that re-centers itself to follow path drift.
    AdaptiveBanded {
        /// Band width in cells per antidiagonal.
        width: usize,
    },
    /// Banded with X-drop termination.
    Xdrop {
        /// Half-band width.
        band: usize,
        /// Drop threshold as a fraction of the perfect score (Fig. 14: 0.08).
        fraction: f64,
    },
    /// Hirschberg's linear-memory algorithm.
    Hirschberg,
    /// GACT-style window heuristic.
    Window {
        /// Window size.
        w: usize,
        /// Window overlap.
        o: usize,
    },
}

impl Algorithm {
    /// Short name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Full => "full",
            Algorithm::Banded { .. } => "banded",
            Algorithm::AdaptiveBanded { .. } => "adaptive-banded",
            Algorithm::Xdrop { .. } => "xdrop",
            Algorithm::Hirschberg => "hirschberg",
            Algorithm::Window { .. } => "window",
        }
    }
}

/// Result for one pair: the functional outcome plus simulated timing.
#[derive(Debug, Clone, PartialEq)]
pub struct PairReport {
    /// Functional outcome (score, optional alignment, work profile).
    pub outcome: AlgoOutcome,
    /// Simulated timing on the selected engine.
    pub timing: TimingReport,
}

/// Result for a batch of pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Per-pair outcomes.
    pub outcomes: Vec<AlgoOutcome>,
    /// The aggregated work profile.
    pub work: BatchWork,
    /// Simulated timing of the whole batch.
    pub timing: TimingReport,
}

impl BatchReport {
    /// Throughput in alignments per second at 1 GHz.
    #[must_use]
    pub fn alignments_per_second(&self) -> f64 {
        self.outcomes.len() as f64 / (self.timing.cycles / 1e9)
    }

    /// Effective GCUPS over the cells the algorithm computed.
    #[must_use]
    pub fn gcups(&self) -> f64 {
        self.timing.gcups(self.work.cells)
    }

    /// Recall against a list of known optimal scores.
    #[must_use]
    pub fn recall(&self, optimal: &[i32]) -> f64 {
        metrics::recall(&self.outcomes, optimal)
    }
}

/// Builder-style aligner façade.
#[derive(Debug, Clone, PartialEq)]
pub struct SmxAligner {
    config: AlignmentConfig,
    scheme: ScoringScheme,
    algorithm: Algorithm,
    engine: EngineKind,
    workers: usize,
    score_only: bool,
}

impl SmxAligner {
    /// An aligner for `config` with the paper's defaults: full alignment
    /// on the heterogeneous SMX engine with 4 workers.
    #[must_use]
    pub fn new(config: AlignmentConfig) -> SmxAligner {
        SmxAligner {
            config,
            scheme: config.scoring(),
            algorithm: Algorithm::Full,
            engine: EngineKind::Smx,
            workers: 4,
            score_only: false,
        }
    }

    /// Selects the algorithm.
    pub fn algorithm(&mut self, algorithm: Algorithm) -> &mut SmxAligner {
        self.algorithm = algorithm;
        self
    }

    /// Selects the engine (architecture) to estimate timing for.
    pub fn engine(&mut self, engine: EngineKind) -> &mut SmxAligner {
        self.engine = engine;
        self
    }

    /// Sets the SMX-worker count used by coprocessor engines.
    pub fn workers(&mut self, workers: usize) -> &mut SmxAligner {
        self.workers = workers.max(1);
        self
    }

    /// Requests score-only execution (no traceback).
    pub fn score_only(&mut self, yes: bool) -> &mut SmxAligner {
        self.score_only = yes;
        self
    }

    /// Overrides the scoring scheme (defaults to the configuration's).
    pub fn scheme(&mut self, scheme: ScoringScheme) -> &mut SmxAligner {
        self.scheme = scheme;
        self
    }

    /// Runs one pair.
    ///
    /// # Errors
    ///
    /// Returns [`AlignError::AlphabetMismatch`] if the sequences do not
    /// match the configuration and [`AlignError::EmptySequence`] for
    /// empty inputs.
    pub fn run_pair(
        &self,
        query: &Sequence,
        reference: &Sequence,
    ) -> Result<PairReport, AlignError> {
        let outcome = self.run_functional(query, reference)?;
        let work =
            BatchWork::from_outcomes(self.config, self.score_only, std::slice::from_ref(&outcome));
        let timing = timing::estimate(self.engine, &work, self.workers);
        Ok(PairReport { outcome, timing })
    }

    /// Runs a batch of pairs, aggregating the work for batch-level timing
    /// (coprocessor workers overlap across pairs, Fig. 8b).
    ///
    /// # Errors
    ///
    /// Same conditions as [`SmxAligner::run_pair`], on the first failing
    /// pair.
    pub fn run_batch(&self, pairs: &[SeqPair]) -> Result<BatchReport, AlignError> {
        let outcomes = pairs
            .iter()
            .map(|p| self.run_functional(&p.query, &p.reference))
            .collect::<Result<Vec<AlgoOutcome>, AlignError>>()?;
        let work = BatchWork::from_outcomes(self.config, self.score_only, &outcomes);
        let timing = timing::estimate(self.engine, &work, self.workers);
        Ok(BatchReport { outcomes, work, timing })
    }

    fn run_functional(
        &self,
        query: &Sequence,
        reference: &Sequence,
    ) -> Result<AlgoOutcome, AlignError> {
        if query.alphabet() != self.config.alphabet()
            || reference.alphabet() != self.config.alphabet()
        {
            return Err(AlignError::AlphabetMismatch);
        }
        if query.is_empty() || reference.is_empty() {
            return Err(AlignError::EmptySequence);
        }
        let (q, r) = (query.codes(), reference.codes());
        let want_alignment = !self.score_only;
        Ok(match self.algorithm {
            Algorithm::Full => full::full_align(q, r, &self.scheme, want_alignment),
            Algorithm::Banded { band } => {
                banded::banded_align(q, r, &self.scheme, band, None, want_alignment)
            }
            Algorithm::AdaptiveBanded { width } => {
                adaptive::adaptive_banded_align(q, r, &self.scheme, width, want_alignment)
            }
            Algorithm::Xdrop { band, fraction } => {
                xdrop::xdrop_align_relative(q, r, &self.scheme, band, fraction, want_alignment)
            }
            Algorithm::Hirschberg => hirschberg::hirschberg_align(q, r, &self.scheme),
            Algorithm::Window { w, o } => {
                window::window_align(q, r, &self.scheme, w, o, want_alignment)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smx_align_core::{dp, Alphabet};
    use smx_datagen::{Dataset, ErrorProfile};

    fn pair() -> (Sequence, Sequence) {
        let q = Sequence::from_text(Alphabet::Dna2, "GATTACAGATTACAGATTACA").unwrap();
        let r = Sequence::from_text(Alphabet::Dna2, "GATTACACATTACAGATTGCA").unwrap();
        (q, r)
    }

    #[test]
    fn full_pair_report() {
        let (q, r) = pair();
        let rep = SmxAligner::new(AlignmentConfig::DnaEdit).run_pair(&q, &r).unwrap();
        let golden = dp::score_only(q.codes(), r.codes(), &ScoringScheme::edit());
        assert_eq!(rep.outcome.score, Some(golden));
        assert!(rep.timing.cycles > 0.0);
    }

    #[test]
    fn all_algorithms_run() {
        let (q, r) = pair();
        for algo in [
            Algorithm::Full,
            Algorithm::Banded { band: 8 },
            Algorithm::AdaptiveBanded { width: 16 },
            Algorithm::Xdrop { band: 8, fraction: 0.5 },
            Algorithm::Hirschberg,
            Algorithm::Window { w: 16, o: 4 },
        ] {
            let rep =
                SmxAligner::new(AlignmentConfig::DnaEdit).algorithm(algo).run_pair(&q, &r).unwrap();
            assert!(rep.outcome.score.is_some(), "{}", algo.name());
        }
    }

    #[test]
    fn batch_report_metrics() {
        let ds = Dataset::synthetic(AlignmentConfig::DnaGap, 256, 4, ErrorProfile::moderate(), 9);
        let rep = SmxAligner::new(AlignmentConfig::DnaGap)
            .algorithm(Algorithm::Hirschberg)
            .run_batch(&ds.pairs)
            .unwrap();
        assert_eq!(rep.outcomes.len(), 4);
        assert!(rep.gcups() > 0.0);
        assert!(rep.alignments_per_second() > 0.0);
        let optimal: Vec<i32> = ds
            .pairs
            .iter()
            .map(|p| dp::score_only(p.query.codes(), p.reference.codes(), &ds.config.scoring()))
            .collect();
        assert_eq!(rep.recall(&optimal), 1.0);
    }

    #[test]
    fn dropped_outcomes_lower_recall() {
        // X-drop with a tiny threshold on dissimilar pairs: outcomes drop
        // and recall counts them as misses.
        let q = Sequence::from_text(Alphabet::Dna2, &"ACGT".repeat(50)).unwrap();
        let r = Sequence::from_text(Alphabet::Dna2, &"TTCA".repeat(50)).unwrap();
        let pair = SeqPair { query: q, reference: r };
        let rep = SmxAligner::new(AlignmentConfig::DnaEdit)
            .algorithm(Algorithm::Xdrop { band: 16, fraction: 0.01 })
            .run_batch(std::slice::from_ref(&pair))
            .unwrap();
        assert!(rep.outcomes[0].dropped);
        assert_eq!(rep.recall(&[0]), 0.0);
    }

    #[test]
    fn engine_choice_changes_timing() {
        let (q, r) = pair();
        let mut a = SmxAligner::new(AlignmentConfig::DnaEdit);
        let simd = a.engine(EngineKind::Simd).run_pair(&q, &r).unwrap().timing.cycles;
        let smx = a.engine(EngineKind::Smx).run_pair(&q, &r).unwrap().timing.cycles;
        assert_ne!(simd, smx);
    }

    #[test]
    fn wrong_alphabet_rejected() {
        let q = Sequence::from_text(Alphabet::Protein, "WYV").unwrap();
        assert!(SmxAligner::new(AlignmentConfig::DnaEdit).run_pair(&q, &q).is_err());
    }
}
