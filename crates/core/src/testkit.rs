//! Assertion helpers shared by unit tests, integration tests, and the
//! bench harnesses.
//!
//! Service reports are positional; a failed lookup should say *which*
//! pair failed and *why the batch thinks it failed*, not just panic on
//! a bare `unwrap`. Centralizing the checks keeps the panic messages
//! descriptive and identical everywhere the byte-identity invariant is
//! asserted — the unit tests, the proptest harnesses, and the
//! `integrity_storm` bench all call the same code.

use smx_align_core::Alignment;

use crate::service::{PairOutcome, ServiceBatchReport};

/// The alignment for pair `index`, or a panic that names the pair and
/// dumps the report's failure summary.
///
/// # Panics
///
/// When the pair failed, was shed, or is out of range.
#[must_use]
pub fn expect_aligned(report: &ServiceBatchReport, index: usize) -> &Alignment {
    match report.outcomes.get(index) {
        Some(PairOutcome::Aligned(a)) => a,
        Some(PairOutcome::Failed(e)) => {
            panic!("pair {index} failed: {e}\n{}", report.failure_summary())
        }
        Some(PairOutcome::Shed) => {
            panic!("pair {index} was shed by admission\n{}", report.failure_summary())
        }
        None => {
            panic!("pair {index} out of range: the report has {} outcomes", report.outcomes.len())
        }
    }
}

/// Asserts every pair in the batch aligned.
///
/// # Panics
///
/// With the report's failure summary when any pair failed or was shed.
pub fn assert_all_aligned(report: &ServiceBatchReport) {
    assert!(report.all_succeeded(), "batch had failures:\n{}", report.failure_summary());
}

/// Asserts the report's alignments are byte-identical to `golden`
/// (score and CIGAR string), pair by pair — the workspace's core
/// invariant: no fault pattern, pool width, breaker state, audit rate,
/// or hedge setting may change alignment content.
///
/// # Panics
///
/// Naming the first diverging pair and what diverged.
pub fn assert_byte_identical(report: &ServiceBatchReport, golden: &[Alignment]) {
    assert_eq!(report.outcomes.len(), golden.len(), "pair count mismatch");
    for (i, g) in golden.iter().enumerate() {
        let a = expect_aligned(report, i);
        assert_eq!(a.score, g.score, "pair {i}: score diverged from the clean baseline");
        assert_eq!(
            a.cigar.to_string(),
            g.cigar.to_string(),
            "pair {i}: CIGAR diverged from the clean baseline"
        );
    }
}
