//! Assertion helpers shared by unit tests, integration tests, and the
//! bench harnesses.
//!
//! Service reports are positional; a failed lookup should say *which*
//! pair failed and *why the batch thinks it failed*, not just panic on
//! a bare `unwrap`. Centralizing the checks keeps the panic messages
//! descriptive and identical everywhere the byte-identity invariant is
//! asserted — the unit tests, the proptest harnesses, and the
//! `integrity_storm` bench all call the same code.

use std::sync::{Condvar, Mutex};
use std::time::Duration;

use smx_align_core::Alignment;

use crate::service::{PairOutcome, ServiceBatchReport};

/// A monotone rendezvous counter for deterministic cross-thread
/// interleavings in tests: threads [`Gate::arrive`] at numbered steps
/// and [`Gate::wait_for`] the steps of others, turning a racy schedule
/// into an explicit happens-before chain.
///
/// Waits are bounded (10 s) so a wrong schedule fails the test with a
/// panic naming the step it was stuck on instead of hanging CI.
#[derive(Debug, Default)]
pub struct Gate {
    step: Mutex<u64>,
    advanced: Condvar,
}

impl Gate {
    /// A gate at step 0.
    #[must_use]
    pub fn new() -> Gate {
        Gate::default()
    }

    /// Marks `step` reached (steps are monotone: arriving at a lower
    /// step than the current one is a no-op) and wakes all waiters.
    pub fn arrive(&self, step: u64) {
        let mut cur = self.step.lock().expect("gate lock poisoned");
        if step > *cur {
            *cur = step;
        }
        drop(cur);
        self.advanced.notify_all();
    }

    /// Blocks until some thread has arrived at `step` (or beyond).
    ///
    /// # Panics
    ///
    /// After 10 seconds — a deadlocked schedule is a test bug.
    pub fn wait_for(&self, step: u64) {
        let deadline = Duration::from_secs(10);
        let guard = self.step.lock().expect("gate lock poisoned");
        let (guard, timeout) = self
            .advanced
            .wait_timeout_while(guard, deadline, |cur| *cur < step)
            .expect("gate lock poisoned");
        assert!(!timeout.timed_out(), "gate stuck waiting for step {step} (at {})", *guard);
    }
}

/// The alignment for pair `index`, or a panic that names the pair and
/// dumps the report's failure summary.
///
/// # Panics
///
/// When the pair failed, was shed, or is out of range.
#[must_use]
pub fn expect_aligned(report: &ServiceBatchReport, index: usize) -> &Alignment {
    match report.outcomes.get(index) {
        Some(PairOutcome::Aligned(a)) => a,
        Some(PairOutcome::Failed(e)) => {
            panic!("pair {index} failed: {e}\n{}", report.failure_summary())
        }
        Some(PairOutcome::Shed) => {
            panic!("pair {index} was shed by admission\n{}", report.failure_summary())
        }
        None => {
            panic!("pair {index} out of range: the report has {} outcomes", report.outcomes.len())
        }
    }
}

/// Asserts every pair in the batch aligned.
///
/// # Panics
///
/// With the report's failure summary when any pair failed or was shed.
pub fn assert_all_aligned(report: &ServiceBatchReport) {
    assert!(report.all_succeeded(), "batch had failures:\n{}", report.failure_summary());
}

/// Asserts the report's alignments are byte-identical to `golden`
/// (score and CIGAR string), pair by pair — the workspace's core
/// invariant: no fault pattern, pool width, breaker state, audit rate,
/// or hedge setting may change alignment content.
///
/// # Panics
///
/// Naming the first diverging pair and what diverged.
pub fn assert_byte_identical(report: &ServiceBatchReport, golden: &[Alignment]) {
    assert_eq!(report.outcomes.len(), golden.len(), "pair count mismatch");
    for (i, g) in golden.iter().enumerate() {
        let a = expect_aligned(report, i);
        assert_eq!(a.score, g.score, "pair {i}: score diverged from the clean baseline");
        assert_eq!(
            a.cigar.to_string(),
            g.cigar.to_string(),
            "pair {i}: CIGAR diverged from the clean baseline"
        );
    }
}
