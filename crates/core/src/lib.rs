//! # SMX — heterogeneous sequence-alignment acceleration
//!
//! A from-scratch reproduction of *SMX: Heterogeneous Architecture for
//! Universal Sequence Alignment Acceleration* (MICRO 2025): the SMX-1D
//! ISA extension, the SMX-2D coprocessor, the heterogeneous orchestration
//! between a general-purpose core and both accelerators, and the full
//! evaluation substrate (cycle-level simulator, software baselines,
//! datasets, physical-design model).
//!
//! ## Quick start
//!
//! ```
//! use smx::prelude::*;
//!
//! # fn main() -> Result<(), smx::align::AlignError> {
//! // Functional heterogeneous device: pack on the core, offload the
//! // DP-block to SMX-2D, trace back with SMX-1D tile recomputation.
//! let mut dev = SmxDevice::new(AlignmentConfig::DnaEdit, 4)?;
//! let q = Sequence::from_text(Alphabet::Dna2, "GATTACAGATTACA")?;
//! let r = Sequence::from_text(Alphabet::Dna2, "GATTACACATTACA")?;
//! let aln = dev.align(&q, &r)?;
//! assert_eq!(aln.score, -1); // one substitution under the edit model
//!
//! // Performance estimation through the cycle-level models.
//! let report = SmxAligner::new(AlignmentConfig::DnaEdit)
//!     .algorithm(Algorithm::Full)
//!     .engine(EngineKind::Smx)
//!     .run_pair(&q, &r)?;
//! assert!(report.timing.cycles > 0.0);
//! # Ok(())
//! # }
//! ```
//!
//! ## Crate map
//!
//! * [`align`] — alphabets, scoring, golden-model DP, CIGARs.
//! * [`diffenc`] — differential encoding and the bit-exact SMX-PE.
//! * [`isa`] — the SMX-1D instruction set and kernels.
//! * [`coproc`] — the SMX-2D engine/workers/border-store model.
//! * [`sim`] — cycle-level timing (CPU loop model + coprocessor sim).
//! * [`algos`] — full/banded/X-drop/Hirschberg/window + SotA baselines.
//! * [`datagen`] — synthetic datasets (PacBio/ONT/UniProt stand-ins).
//! * [`physical`] — area, power, and peak-GCUPS models.
//! * [`service`] — resilient batch executor: worker pool, deadlines,
//!   breaker, checkpoint/resume.
//! * [`pool`] — multi-device pool: audits, quarantine, hedging.
//! * [`server`] — framed-TCP front door: tenant QoS, brownout ladder,
//!   graceful drain, crash-consistent sessions.
//! * [`failpoint`] — deterministic chaos: seeded failpoint schedules
//!   over the host-side sites (no-op unless built with `failpoints`).

pub use smx_algos as algos;
pub use smx_align_core as align;
pub use smx_coproc as coproc;
pub use smx_datagen as datagen;
pub use smx_diffenc as diffenc;
pub use smx_failpoint as failpoint;
pub use smx_isa as isa;
pub use smx_physical as physical;
pub use smx_sim as sim;

pub mod aligner;
pub mod orchestrator;
pub mod pool;
pub mod server;
pub mod service;
pub mod testkit;

pub use aligner::{Algorithm, BatchReport, PairReport, SmxAligner};
pub use orchestrator::{AffineDevice, BatchFailure, DeviceBatchReport, SmxDevice};
pub use pool::{AuditConfig, DeviceStats, HedgeConfig, HedgeTrigger, QuarantineConfig};
pub use server::{
    Client, DrainReport, RetryConfig, Server, ServerConfig, ServerCounters, ServerHandle,
};
pub use service::{
    AdmissionPolicy, BatchExecutor, BreakerConfig, BreakerSnapshot, BreakerState,
    BreakerTransitions, ExecutorConfig, PairOutcome, RunOptions, ServiceBatchReport, ServiceStats,
};
pub use smx_algos::simd::Baseline;

/// Commonly used items in one import.
pub mod prelude {
    pub use crate::aligner::{Algorithm, SmxAligner};
    pub use crate::orchestrator::SmxDevice;
    pub use crate::pool::{AuditConfig, HedgeConfig, QuarantineConfig};
    pub use crate::service::{AdmissionPolicy, BatchExecutor, BreakerConfig, ExecutorConfig};
    pub use smx_algos::simd::Baseline;
    pub use smx_algos::EngineKind;
    pub use smx_align_core::{
        Alignment, AlignmentConfig, Alphabet, Cigar, ElementWidth, ScoringScheme, Sequence,
    };
    pub use smx_coproc::control::CancelToken;
    pub use smx_coproc::faults::{FaultPlan, RecoveryPolicy, RecoveryStats};
    pub use smx_datagen::{Dataset, SeqPair};
}
