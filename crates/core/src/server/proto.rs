//! Framed wire protocol for the alignment service front door.
//!
//! Every message is one frame: a 4-byte big-endian payload length
//! followed by a UTF-8 payload of at most [`MAX_FRAME`] bytes. Inside a
//! frame the payload is a single logical message whose fields are
//! tab-separated (sequences never contain tabs); only `STATS` responses
//! carry embedded newlines. Length-prefixed framing keeps the reader
//! state machine trivial — a slow or malicious client can stall only its
//! own connection, and an oversized or malformed frame produces a typed
//! [`ProtoError`] (the server answers `ERR` and closes) instead of
//! desynchronizing the stream.
//!
//! The same encode/parse pairs serve both directions, so the load
//! generator, the CLI tests, and the server itself speak through one
//! implementation and cannot drift apart.

use std::io::{self, Read, Write};

use crate::server::tenant::Priority;

/// Hard cap on one frame's payload, defending the server against a
/// client that announces a multi-gigabyte frame.
pub const MAX_FRAME: usize = 1 << 20;

/// Framing / message-shape errors. I/O errors pass through as
/// [`ProtoError::Io`]; everything else names what the peer got wrong.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying socket failed.
    Io(io::Error),
    /// The peer announced a frame larger than [`MAX_FRAME`].
    Oversized(usize),
    /// The payload was not valid UTF-8.
    NotUtf8,
    /// The payload did not parse as a message.
    Malformed(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "i/o: {e}"),
            ProtoError::Oversized(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            ProtoError::NotUtf8 => f.write_str("frame payload is not valid UTF-8"),
            ProtoError::Malformed(m) => write!(f, "malformed message: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> ProtoError {
        ProtoError::Io(e)
    }
}

/// Writes one frame (length prefix + payload) and flushes.
///
/// # Errors
///
/// [`ProtoError::Oversized`] for payloads past [`MAX_FRAME`]; I/O errors
/// pass through.
pub fn write_frame<W: Write>(w: &mut W, payload: &str) -> Result<(), ProtoError> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME {
        return Err(ProtoError::Oversized(bytes.len()));
    }
    // Failpoint `proto.write_frame`: Error drops the frame before any
    // byte leaves (connection-level failure); Partial puts the header
    // and half the payload on the wire — the torn frame a peer sees
    // when a sender dies mid-write — then fails. Either way the caller
    // must treat the stream as dead.
    match smx_failpoint::hit("proto.write_frame") {
        Some(smx_failpoint::Injected::Error) => {
            return Err(ProtoError::Io(smx_failpoint::injected_io_error()));
        }
        Some(smx_failpoint::Injected::Partial) => {
            w.write_all(&(bytes.len() as u32).to_be_bytes())?;
            w.write_all(bytes.get(..bytes.len() / 2).unwrap_or(bytes))?;
            w.flush()?;
            return Err(ProtoError::Io(smx_failpoint::injected_io_error()));
        }
        None => {}
    }
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame payload. `Ok(None)` is a clean EOF *between* frames;
/// an EOF mid-frame is an error (the peer died mid-message).
///
/// # Errors
///
/// [`ProtoError::Oversized`] / [`ProtoError::NotUtf8`] for protocol
/// violations; I/O errors (including read timeouts) pass through.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<String>, ProtoError> {
    // Failpoint `proto.read_frame`: Error surfaces a connection-level
    // read failure; Partial is the peer dying mid-frame — exactly the
    // typed UnexpectedEof a torn sender (see `proto.write_frame`)
    // produces on this side of the wire.
    match smx_failpoint::hit("proto.read_frame") {
        Some(smx_failpoint::Injected::Error) => {
            return Err(ProtoError::Io(smx_failpoint::injected_io_error()));
        }
        Some(smx_failpoint::Injected::Partial) => {
            return Err(ProtoError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "failpoint: peer died mid-frame",
            )));
        }
        None => {}
    }
    let mut len = [0u8; 4];
    match r.read(&mut len) {
        Ok(0) => return Ok(None),
        // LINT: allow(panic) n <= 4 because read() filled at most the 4-byte buffer
        Ok(n) => r.read_exact(&mut len[n..])?,
        Err(e) => return Err(ProtoError::Io(e)),
    }
    let n = u32::from_be_bytes(len) as usize;
    if n > MAX_FRAME {
        return Err(ProtoError::Oversized(n));
    }
    let mut payload = vec![0u8; n];
    r.read_exact(&mut payload)?;
    String::from_utf8(payload).map(Some).map_err(|_| ProtoError::NotUtf8)
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Opens a session: `HELLO <session> <tenant> <priority> <deadline_ms>`.
    /// A session of `-` is ephemeral (no checkpoint manifest, no resume);
    /// a deadline of 0 means "no per-pair deadline".
    Hello {
        /// Session ID (`[A-Za-z0-9._-]+`, or `-` for ephemeral).
        session: String,
        /// Tenant name for admission accounting.
        tenant: String,
        /// Priority class for queueing and brownout.
        priority: Priority,
        /// Default per-pair deadline in milliseconds (0 = none).
        deadline_ms: u64,
    },
    /// Submits one pair: `PAIR <id> <query> <reference>`.
    Pair {
        /// Client-chosen pair index; doubles as the checkpoint key.
        id: usize,
        /// Query sequence text.
        query: String,
        /// Reference sequence text.
        reference: String,
    },
    /// Requests the stats dump: `STATS`.
    Stats,
    /// Ends the session after flushing in-flight pairs: `BYE`.
    Bye,
}

impl Request {
    /// Encodes to a frame payload.
    #[must_use]
    pub fn encode(&self) -> String {
        match self {
            Request::Hello { session, tenant, priority, deadline_ms } => {
                format!("HELLO\t{session}\t{tenant}\t{priority}\t{deadline_ms}")
            }
            Request::Pair { id, query, reference } => format!("PAIR\t{id}\t{query}\t{reference}"),
            Request::Stats => "STATS".to_string(),
            Request::Bye => "BYE".to_string(),
        }
    }

    /// Parses a frame payload.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Malformed`] naming the defect.
    pub fn parse(payload: &str) -> Result<Request, ProtoError> {
        let mut fields = payload.split('\t');
        let verb = fields.next().unwrap_or("");
        let rest: Vec<&str> = fields.collect();
        match (verb, rest.as_slice()) {
            ("HELLO", [session, tenant, priority, deadline]) => {
                if session.is_empty() || tenant.is_empty() {
                    return Err(ProtoError::Malformed("empty session or tenant".into()));
                }
                if *session != "-"
                    && !session
                        .bytes()
                        .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
                {
                    return Err(ProtoError::Malformed(format!(
                        "session {session:?} must match [A-Za-z0-9._-]+"
                    )));
                }
                Ok(Request::Hello {
                    session: (*session).to_string(),
                    tenant: (*tenant).to_string(),
                    priority: Priority::parse(priority).ok_or_else(|| {
                        ProtoError::Malformed(format!("unknown priority {priority:?}"))
                    })?,
                    deadline_ms: deadline
                        .parse()
                        .map_err(|_| ProtoError::Malformed(format!("bad deadline {deadline:?}")))?,
                })
            }
            ("PAIR", [id, query, reference]) => Ok(Request::Pair {
                id: id.parse().map_err(|_| ProtoError::Malformed(format!("bad pair id {id:?}")))?,
                query: (*query).to_string(),
                reference: (*reference).to_string(),
            }),
            ("STATS", []) => Ok(Request::Stats),
            ("BYE", []) => Ok(Request::Bye),
            _ => Err(ProtoError::Malformed(format!("unrecognized request {payload:?}"))),
        }
    }
}

/// Why the server refused a pair without running it. Every reject is
/// typed and carries a retry-after hint — a client never sees a silent
/// drop or an unexplained hang.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The tenant's token bucket is empty.
    RateLimit,
    /// The bounded work queue is full.
    QueueFull,
    /// Brownout is refusing low-priority work.
    Brownout,
    /// The server is draining and accepts no new work.
    Draining,
    /// The connection has too many pairs in flight (slow reader).
    Overloaded,
}

impl RejectReason {
    /// Wire token.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RejectReason::RateLimit => "rate-limit",
            RejectReason::QueueFull => "queue-full",
            RejectReason::Brownout => "brownout",
            RejectReason::Draining => "draining",
            RejectReason::Overloaded => "overloaded",
        }
    }

    /// Parses a wire token.
    #[must_use]
    pub fn parse(s: &str) -> Option<RejectReason> {
        Some(match s {
            "rate-limit" => RejectReason::RateLimit,
            "queue-full" => RejectReason::QueueFull,
            "brownout" => RejectReason::Brownout,
            "draining" => RejectReason::Draining,
            "overloaded" => RejectReason::Overloaded,
            _ => return None,
        })
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How a pair failed after admission (as opposed to being rejected
/// before it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailKind {
    /// The pair's deadline expired (in queue or at a tile boundary).
    Deadline,
    /// The batch token was cancelled (crash or shutdown).
    Cancelled,
    /// An unrecovered integrity violation (fail-closed audit).
    Integrity,
    /// Any other typed alignment error.
    Error,
}

impl FailKind {
    /// Wire token.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FailKind::Deadline => "deadline",
            FailKind::Cancelled => "cancelled",
            FailKind::Integrity => "integrity",
            FailKind::Error => "error",
        }
    }

    /// Parses a wire token.
    #[must_use]
    pub fn parse(s: &str) -> Option<FailKind> {
        Some(match s {
            "deadline" => FailKind::Deadline,
            "cancelled" => FailKind::Cancelled,
            "integrity" => FailKind::Integrity,
            "error" => FailKind::Error,
            _ => return None,
        })
    }
}

impl std::fmt::Display for FailKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Session accepted: `OK <session> <resumed_count>`.
    Ok {
        /// Echoed session ID.
        session: String,
        /// Pairs already completed in the session's manifest.
        resumed: u64,
    },
    /// A completed pair, acked only after its checkpoint record is
    /// durable: `RESULT <id> <score> <cigar> <resumed>`.
    Result {
        /// Echoed pair ID.
        id: usize,
        /// Alignment score.
        score: i32,
        /// CIGAR string.
        cigar: String,
        /// Whether the result was replayed from the manifest.
        resumed: bool,
    },
    /// A typed refusal: `REJECT <id> <reason> <retry_after_ms>`.
    Reject {
        /// Echoed pair ID.
        id: usize,
        /// Why the pair was refused.
        reason: RejectReason,
        /// Suggested client backoff before retrying.
        retry_after_ms: u64,
    },
    /// A typed post-admission failure: `FAIL <id> <kind> <detail>`.
    Fail {
        /// Echoed pair ID.
        id: usize,
        /// Failure class.
        kind: FailKind,
        /// Human-readable detail (tabs/newlines stripped).
        detail: String,
    },
    /// Stats dump: `STATS\n<text>`.
    Stats(String),
    /// Session summary on BYE or drain:
    /// `DONE <completed> <failed> <rejected> <resumed>`.
    Done {
        /// Pairs that aligned this session.
        completed: u64,
        /// Pairs that failed after admission.
        failed: u64,
        /// Pairs rejected at admission.
        rejected: u64,
        /// Pairs replayed from the manifest.
        resumed: u64,
    },
    /// Fatal protocol error; the server closes after sending it.
    Err(String),
}

/// Strips characters that would corrupt the tab-separated framing.
fn clean(detail: &str) -> String {
    detail.replace(['\t', '\n', '\r'], " ")
}

impl Response {
    /// Encodes to a frame payload.
    #[must_use]
    pub fn encode(&self) -> String {
        match self {
            Response::Ok { session, resumed } => format!("OK\t{session}\t{resumed}"),
            Response::Result { id, score, cigar, resumed } => {
                format!("RESULT\t{id}\t{score}\t{cigar}\t{}", u8::from(*resumed))
            }
            Response::Reject { id, reason, retry_after_ms } => {
                format!("REJECT\t{id}\t{reason}\t{retry_after_ms}")
            }
            Response::Fail { id, kind, detail } => {
                format!("FAIL\t{id}\t{kind}\t{}", clean(detail))
            }
            Response::Stats(text) => format!("STATS\n{text}"),
            Response::Done { completed, failed, rejected, resumed } => {
                format!("DONE\t{completed}\t{failed}\t{rejected}\t{resumed}")
            }
            Response::Err(m) => format!("ERR\t{}", clean(m)),
        }
    }

    /// Parses a frame payload.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Malformed`] naming the defect.
    pub fn parse(payload: &str) -> Result<Response, ProtoError> {
        if let Some(text) = payload.strip_prefix("STATS\n") {
            return Ok(Response::Stats(text.to_string()));
        }
        let mut fields = payload.split('\t');
        let verb = fields.next().unwrap_or("");
        let rest: Vec<&str> = fields.collect();
        let num = |s: &str| -> Result<u64, ProtoError> {
            s.parse().map_err(|_| ProtoError::Malformed(format!("bad number {s:?}")))
        };
        match (verb, rest.as_slice()) {
            ("OK", [session, resumed]) => {
                Ok(Response::Ok { session: (*session).to_string(), resumed: num(resumed)? })
            }
            ("RESULT", [id, score, cigar, resumed]) => Ok(Response::Result {
                id: num(id)? as usize,
                score: score
                    .parse()
                    .map_err(|_| ProtoError::Malformed(format!("bad score {score:?}")))?,
                cigar: (*cigar).to_string(),
                resumed: *resumed == "1",
            }),
            ("REJECT", [id, reason, retry]) => Ok(Response::Reject {
                id: num(id)? as usize,
                reason: RejectReason::parse(reason).ok_or_else(|| {
                    ProtoError::Malformed(format!("unknown reject reason {reason:?}"))
                })?,
                retry_after_ms: num(retry)?,
            }),
            ("FAIL", [id, kind, detail]) => Ok(Response::Fail {
                id: num(id)? as usize,
                kind: FailKind::parse(kind)
                    .ok_or_else(|| ProtoError::Malformed(format!("unknown fail kind {kind:?}")))?,
                detail: (*detail).to_string(),
            }),
            ("STATS", []) => Ok(Response::Stats(String::new())),
            ("DONE", [completed, failed, rejected, resumed]) => Ok(Response::Done {
                completed: num(completed)?,
                failed: num(failed)?,
                rejected: num(rejected)?,
                resumed: num(resumed)?,
            }),
            ("ERR", [m]) => Ok(Response::Err((*m).to_string())),
            _ => Err(ProtoError::Malformed(format!("unrecognized response {payload:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "PAIR\t0\tACGT\tACGA").unwrap();
        write_frame(&mut buf, "BYE").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "PAIR\t0\tACGT\tACGA");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "BYE");
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF between frames");
    }

    #[test]
    fn eof_mid_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "STATS").unwrap();
        let mut r = &buf[..buf.len() - 2];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn oversized_frame_rejected_on_both_sides() {
        let huge = "x".repeat(MAX_FRAME + 1);
        let mut buf = Vec::new();
        assert!(matches!(write_frame(&mut buf, &huge), Err(ProtoError::Oversized(_))));
        // A hostile length prefix is refused before allocation.
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_be_bytes());
        let mut r = &wire[..];
        assert!(matches!(read_frame(&mut r), Err(ProtoError::Oversized(_))));
    }

    #[test]
    fn request_roundtrip() {
        let reqs = [
            Request::Hello {
                session: "s1".into(),
                tenant: "acme".into(),
                priority: Priority::High,
                deadline_ms: 250,
            },
            Request::Pair { id: 7, query: "ACGT".into(), reference: "ACGA".into() },
            Request::Stats,
            Request::Bye,
        ];
        for r in reqs {
            assert_eq!(Request::parse(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn response_roundtrip() {
        let resps = [
            Response::Ok { session: "s1".into(), resumed: 3 },
            Response::Result { id: 7, score: -4, cigar: "3=1X".into(), resumed: true },
            Response::Reject { id: 9, reason: RejectReason::RateLimit, retry_after_ms: 40 },
            Response::Fail { id: 2, kind: FailKind::Deadline, detail: "budget 10ms".into() },
            Response::Stats("queue-depth=3\nbrownout=1".into()),
            Response::Done { completed: 5, failed: 1, rejected: 2, resumed: 3 },
            Response::Err("oversized frame".into()),
        ];
        for r in resps {
            assert_eq!(Response::parse(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn malformed_messages_are_typed_errors() {
        for bad in
            ["HELLO\ts1\tacme", "HELLO\ts/1\tacme\thigh\t0", "PAIR\tx\tACGT\tACGA", "NOPE", ""]
        {
            assert!(Request::parse(bad).is_err(), "{bad:?}");
        }
        for bad in ["RESULT\t1\tzz\t3=\t0", "REJECT\t1\tbecause\t0", "FAIL\t1\toops\td", "HM"] {
            assert!(Response::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn fail_detail_with_tabs_survives_framing() {
        let f = Response::Fail { id: 0, kind: FailKind::Error, detail: "a\tb\nc".into() };
        match Response::parse(&f.encode()).unwrap() {
            Response::Fail { detail, .. } => assert_eq!(detail, "a b c"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
