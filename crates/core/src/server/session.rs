//! Crash-consistent server sessions.
//!
//! A persistent session is a checkpoint manifest on disk, one per
//! session ID, written through [`smx_io::checkpoint::CheckpointWriter`]
//! — append-only, checksummed, flushed *and fsynced* per record. The
//! server acks a pair (`RESULT`) only after its record is durable, so
//! the invariant the storm harness asserts — *no pair acked to a client
//! but absent after a crash* — holds across `kill -9` at any byte: a
//! record is either fully on disk (and will be replayed on resume) or
//! was never acked (and the client re-submits it).
//!
//! Resume is idempotent by construction: re-submitting a completed pair
//! replays the recorded alignment byte-identically without recomputing,
//! and a torn final record (the line the crash interrupted) is truncated
//! away on reopen, with a one-line warning naming the byte offset.

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};

use smx_align_core::Alignment;
use smx_io::checkpoint::{CheckpointWriter, Manifest, SyncFile};
use smx_io::IoError;

/// One open session: the pairs already completed (for replay) and the
/// durable writer for new completions.
#[derive(Debug)]
pub struct Session {
    /// Session ID (`-` for ephemeral).
    pub id: String,
    /// Completed pairs by client pair ID, replayed on re-submission.
    pub completed: HashMap<usize, Alignment>,
    writer: Option<CheckpointWriter<SyncFile>>,
}

impl Session {
    /// Records a completed pair durably (write + flush + fsync), then
    /// remembers it for replay. Ephemeral sessions only remember.
    ///
    /// # Errors
    ///
    /// Propagates manifest write failures — the caller must *not* ack
    /// the pair when this fails.
    pub fn record(&mut self, id: usize, alignment: &Alignment) -> Result<(), IoError> {
        if let Some(w) = self.writer.as_mut() {
            w.record(id, alignment)?;
        }
        self.completed.insert(id, alignment.clone());
        Ok(())
    }

    /// Whether completions are written to a durable manifest.
    #[must_use]
    pub fn durable(&self) -> bool {
        self.writer.is_some()
    }
}

/// The session registry: maps session IDs to manifest files under one
/// directory and enforces single-connection exclusivity.
#[derive(Debug)]
pub struct SessionStore {
    dir: Option<PathBuf>,
    resume: bool,
    /// Sessions opened during this process lifetime: reopening one of
    /// these always resumes (same-process reconnect), regardless of the
    /// cross-restart `resume` flag.
    seen: HashSet<String>,
    /// Sessions currently held by a live connection.
    active: HashSet<String>,
}

/// Why a session could not be opened.
#[derive(Debug)]
pub enum SessionError {
    /// Another live connection holds this session.
    Busy,
    /// The manifest failed to load or open.
    Io(IoError),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Busy => f.write_str("session is held by another connection"),
            SessionError::Io(e) => write!(f, "session manifest: {e}"),
        }
    }
}

impl SessionStore {
    /// A store over `dir` (`None` = every session is ephemeral).
    /// `resume` honors manifests left by a previous process; without it
    /// a fresh process truncates them on first open.
    #[must_use]
    pub fn new(dir: Option<PathBuf>, resume: bool) -> SessionStore {
        SessionStore { dir, resume, seen: HashSet::new(), active: HashSet::new() }
    }

    /// The manifest path for `session`, when the store is durable.
    #[must_use]
    pub fn manifest_path(&self, session: &str) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("{session}.ckpt")))
    }

    /// Opens (or resumes) `session`. `-` and store-less servers get an
    /// ephemeral in-memory session. A torn final record found on resume
    /// is truncated away and reported with `warn(byte_offset)`.
    ///
    /// # Errors
    ///
    /// [`SessionError::Busy`] when a live connection holds the session;
    /// [`SessionError::Io`] for manifest load/open failures.
    pub fn open(
        &mut self,
        session: &str,
        warn: &mut dyn FnMut(u64),
    ) -> Result<Session, SessionError> {
        if session == "-" || self.dir.is_none() {
            return Ok(Session {
                id: session.to_string(),
                completed: HashMap::new(),
                writer: None,
            });
        }
        if !self.active.insert(session.to_string()) {
            return Err(SessionError::Busy);
        }
        // LINT: allow(panic) the in-memory early return above guarantees dir is Some here
        let path = self.manifest_path(session).expect("durable store has a dir");
        let resume = self.resume || self.seen.contains(session);
        self.seen.insert(session.to_string());
        match self.open_durable(&path, resume, warn) {
            Ok(s) => Ok(Session { id: session.to_string(), completed: s.0, writer: Some(s.1) }),
            Err(e) => {
                self.active.remove(session);
                Err(SessionError::Io(e))
            }
        }
    }

    #[allow(clippy::type_complexity)]
    fn open_durable(
        &self,
        path: &Path,
        resume: bool,
        warn: &mut dyn FnMut(u64),
    ) -> Result<(HashMap<usize, Alignment>, CheckpointWriter<SyncFile>), IoError> {
        if resume {
            let manifest = Manifest::load(path)?;
            if let Some(offset) = manifest.torn_offset {
                warn(offset);
            }
            // `append` truncates the torn tail before writing.
            let writer = CheckpointWriter::append(path)?;
            Ok((manifest.completed, writer))
        } else {
            Ok((HashMap::new(), CheckpointWriter::create(path)?))
        }
    }

    /// Releases a session when its connection closes, making it
    /// reopenable (and same-process resumable).
    pub fn release(&mut self, session: &str) {
        self.active.remove(session);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smx_align_core::Cigar;

    fn aln(score: i32, cigar: &str) -> Alignment {
        Alignment { score, cigar: Cigar::parse(cigar).unwrap() }
    }

    fn temp_store(name: &str, resume: bool) -> SessionStore {
        let dir = std::env::temp_dir().join(format!("smx-session-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        SessionStore::new(Some(dir), resume)
    }

    #[test]
    fn ephemeral_sessions_never_touch_disk() {
        let mut store = SessionStore::new(None, true);
        let mut s = store.open("anything", &mut |_| panic!("no manifest, no tear")).unwrap();
        assert!(!s.durable());
        s.record(3, &aln(5, "5=")).unwrap();
        assert_eq!(s.completed[&3], aln(5, "5="));
        // `-` is ephemeral even on a durable store.
        let mut durable = temp_store("eph", true);
        assert!(!durable.open("-", &mut |_| ()).unwrap().durable());
    }

    #[test]
    fn same_process_reconnect_resumes_without_resume_flag() {
        let mut store = temp_store("reconnect", false);
        let mut s = store.open("s1", &mut |_| ()).unwrap();
        s.record(0, &aln(5, "5=")).unwrap();
        s.record(1, &aln(2, "1=1X")).unwrap();
        drop(s);
        store.release("s1");
        let s = store.open("s1", &mut |_| ()).unwrap();
        assert_eq!(s.completed.len(), 2, "same-process reopen replays the manifest");
        assert_eq!(s.completed[&1], aln(2, "1=1X"));
    }

    #[test]
    fn fresh_process_without_resume_truncates_but_with_resume_replays() {
        let dir;
        {
            let mut store = temp_store("restart", false);
            dir = store.dir.clone().unwrap();
            let mut s = store.open("s1", &mut |_| ()).unwrap();
            s.record(0, &aln(5, "5=")).unwrap();
        }
        // "New process" with resume: prior records replay.
        let mut resumed = SessionStore::new(Some(dir.clone()), true);
        let s = resumed.open("s1", &mut |_| ()).unwrap();
        assert_eq!(s.completed.len(), 1);
        drop(s);
        // "New process" without resume: manifest is truncated.
        let mut fresh = SessionStore::new(Some(dir), false);
        let s = fresh.open("s1", &mut |_| ()).unwrap();
        assert!(s.completed.is_empty());
    }

    #[test]
    fn torn_tail_on_resume_warns_with_byte_offset() {
        let mut store = temp_store("torn", true);
        let path = store.manifest_path("s1").unwrap();
        {
            let mut s = store.open("s1", &mut |_| ()).unwrap();
            s.record(0, &aln(5, "5=")).unwrap();
            s.record(1, &aln(2, "1=1X")).unwrap();
        }
        store.release("s1");
        // Tear the final record mid-line, as kill -9 would.
        let bytes = std::fs::read(&path).unwrap();
        let second_line = bytes.iter().position(|&b| b == b'\n').unwrap() as u64 + 1;
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let mut warned = Vec::new();
        let s = store.open("s1", &mut |off| warned.push(off)).unwrap();
        assert_eq!(warned, vec![second_line], "the warning names the truncation offset");
        assert_eq!(s.completed.len(), 1, "the torn record is gone, the intact one replays");
    }

    #[test]
    fn concurrent_open_of_one_session_is_refused() {
        let mut store = temp_store("busy", true);
        let _held = store.open("s1", &mut |_| ()).unwrap();
        assert!(matches!(store.open("s1", &mut |_| ()), Err(SessionError::Busy)));
        store.release("s1");
        assert!(store.open("s1", &mut |_| ()).is_ok());
    }
}
