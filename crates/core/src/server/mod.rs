//! Hardened alignment-as-a-service front door (DESIGN.md §8).
//!
//! [`Server`] turns the batch-oriented resilience stack — device pool,
//! per-device breakers, audit scoreboard, hedging, quarantine — into a
//! long-running framed-TCP service. Every defense the batch executor has
//! is reused through the same per-pair seam ([`crate::service`]); the
//! server adds the concerns that only exist once the work arrives over a
//! socket from parties that do not coordinate:
//!
//! * **Admission control** — per-tenant token buckets and priority
//!   classes in front of the bounded work queue. Every refusal is a
//!   typed `REJECT` with a retry-after hint; a client never hangs
//!   without an answer.
//! * **Deadline propagation** — the client's per-pair deadline is fixed
//!   at admission as an absolute instant, re-checked at dequeue (a pair
//!   that expired while queued never touches a device), and forked into
//!   the [`CancelToken`] the coprocessor checks at tile boundaries.
//! * **Brownout** — overload degrades service in a ladder rather than
//!   collapsing it: first audit sampling and hedging are shed, then
//!   low-priority pairs run on the SIMD software baseline directly, and
//!   only near saturation is low-priority work refused outright.
//! * **Graceful drain** — on drain the listener closes, in-flight pairs
//!   flush through their (fsync-per-record) checkpoint manifests, every
//!   session gets a `DONE` summary, and the caller receives per-tenant
//!   counts.
//! * **Crash consistency** — a `RESULT` is written only *after* the
//!   pair's manifest record is durable, so `kill -9` at any instant
//!   leaves no pair acked-but-lost: resuming the session replays every
//!   acked pair byte-identically and recomputes nothing else.
//!
//! The byte-identity invariant carries over verbatim: admission,
//! brownout, retries, and routing decide *where* and *whether* a pair
//! runs — never *what* it computes.

pub mod proto;
pub mod session;
pub mod tenant;

use std::collections::VecDeque;
use std::io::{BufReader, BufWriter, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use smx_align_core::{AlignError, Alignment, Alphabet, Sequence};
use smx_coproc::control::CancelToken;

use crate::orchestrator::SmxDevice;
use crate::pool::{DevicePool, DeviceStats};
use crate::service::{self, ExecutorConfig};

use proto::{read_frame, write_frame, FailKind, ProtoError, RejectReason, Request, Response};
use session::{Session, SessionStore};
use tenant::{BrownoutConfig, BrownoutLevel, Priority, TenantCounters, TenantPolicy, TenantTable};

/// Bounded server-side retry budget for recoverable device faults.
/// Retries go back through the normal dispatch seam, so the breaker and
/// quarantine see every attempt — the budget bounds persistence, it does
/// not bypass the defenses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryConfig {
    /// Extra attempts after the first (0 disables retrying).
    pub attempts: u32,
    /// Base backoff between attempts; attempt `k` sleeps `k * backoff`,
    /// clipped to the pair's remaining deadline.
    pub backoff: Duration,
}

impl Default for RetryConfig {
    fn default() -> RetryConfig {
        RetryConfig { attempts: 2, backoff: Duration::from_millis(2) }
    }
}

/// Server tuning on top of the executor configuration it fronts.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The resilience stack: jobs, queue capacity, breaker, audit,
    /// hedging, quarantine, and the *default* per-pair deadline (used
    /// when a session's `HELLO` carries deadline 0).
    pub exec: ExecutorConfig,
    /// Token-bucket policy handed to every tenant.
    pub policy: TenantPolicy,
    /// Brownout ladder thresholds over queue occupancy.
    pub brownout: BrownoutConfig,
    /// Bounded retry/backoff budget for recoverable faults.
    pub retry: RetryConfig,
    /// Maximum simultaneous connections; excess connects get a typed
    /// `ERR` and are closed.
    pub max_conns: usize,
    /// Per-connection in-flight cap: a slow reader that lets this many
    /// pairs pile up gets `REJECT overloaded` instead of unbounded
    /// server-side buffering.
    pub max_outstanding: usize,
    /// Directory for per-session checkpoint manifests (`None` = all
    /// sessions ephemeral).
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume manifests left by a previous process (the post-crash
    /// restart path). Without it, a fresh process truncates them.
    pub resume_sessions: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            exec: ExecutorConfig::default(),
            policy: TenantPolicy::default(),
            brownout: BrownoutConfig::default(),
            retry: RetryConfig::default(),
            max_conns: 64,
            max_outstanding: 256,
            checkpoint_dir: None,
            resume_sessions: false,
        }
    }
}

/// Global service counters, mirroring the batch `ServiceStats` for the
/// open-ended server case.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerCounters {
    /// Pairs admitted to the work queue.
    pub admitted: u64,
    /// Pairs that aligned.
    pub completed: u64,
    /// Pairs that failed after admission.
    pub failed: u64,
    /// Typed rejections of every flavor.
    pub rejected: u64,
    /// Pairs replayed from session manifests.
    pub resumed: u64,
    /// Failures from an expired deadline (queued or at tile boundary).
    pub deadline_exceeded: u64,
    /// Failures from cancellation (crash/shutdown).
    pub cancelled: u64,
    /// Pairs served on the software baseline because brownout degraded
    /// their priority class.
    pub degraded_software: u64,
    /// Retry attempts spent on recoverable faults.
    pub retries: u64,
    /// Pairs that took the device path (incl. probes).
    pub device_pairs: u64,
    /// Pairs the breaker/pool routed to the software baseline.
    pub software_pairs: u64,
    /// High-water mark of the work queue.
    pub max_queue_depth: usize,
}

/// Per-tenant counts handed back when the server drains.
#[derive(Debug, Clone)]
pub struct DrainReport {
    /// Tenants in name order with their final counters.
    pub per_tenant: Vec<(String, TenantCounters)>,
    /// Global counters at drain.
    pub totals: ServerCounters,
}

const STATE_RUNNING: u8 = 0;
const STATE_DRAINING: u8 = 1;
const STATE_CRASHED: u8 = 2;

/// One admitted pair flowing to the workers.
struct Job {
    id: usize,
    priority: Priority,
    query: Sequence,
    reference: Sequence,
    /// Absolute deadline fixed at admission, plus the original budget in
    /// ms (for the typed error when it expires in the queue).
    deadline: Option<(Instant, u64)>,
    reply: mpsc::Sender<WriterMsg>,
}

/// One pair's outcome flowing from a worker to its connection's writer.
struct Completion {
    id: usize,
    result: Result<Alignment, AlignError>,
    degraded: bool,
}

/// Everything the per-connection writer thread serializes to the socket.
enum WriterMsg {
    /// A pre-built response (OK / REJECT / STATS / ERR / FAIL-at-admission).
    Frame(Response),
    /// Replay pair `id` from the session manifest (already durable).
    Replay(usize),
    /// A worker completion: record durably, then ack.
    Done(Completion),
    /// Flush outstanding pairs, send `DONE`, and hang up.
    Bye,
}

/// Re-locks a mutex whose critical sections only mutate self-contained
/// counter/registry state (queue depths, stats counters, tenant tables,
/// join-handle lists). A panicking holder cannot leave these in a state
/// worth failing other connections over — every update is a single
/// field write or push — so poison is stripped rather than propagated.
/// The session store is deliberately NOT accessed through this helper:
/// its poison is handled as a typed connection teardown (see
/// [`Shared::sessions`]).
fn relock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Three-class strict-priority bounded queue. Admission never blocks —
/// a full queue is a typed reject, so backpressure is always visible to
/// the client instead of stalling its connection.
struct ServerQueue {
    cap: usize,
    inner: Mutex<QueueInner>,
    ready: Condvar,
}

struct QueueInner {
    classes: [VecDeque<Job>; 3],
    len: usize,
    max_depth: usize,
}

impl ServerQueue {
    fn new(cap: usize) -> ServerQueue {
        ServerQueue {
            cap,
            inner: Mutex::new(QueueInner {
                classes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                len: 0,
                max_depth: 0,
            }),
            ready: Condvar::new(),
        }
    }

    fn try_push(&self, job: Job) -> Result<(), Job> {
        let mut inner = relock(&self.inner);
        if inner.len >= self.cap {
            return Err(job);
        }
        let class = job.priority.class();
        // LINT: allow(panic) Priority::class() returns 0..3 and classes has exactly 3 entries
        inner.classes[class].push_back(job);
        inner.len += 1;
        inner.max_depth = inner.max_depth.max(inner.len);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Highest-priority job, waiting for work. `None` once the server is
    /// draining with an empty queue, or crashed (queue abandoned).
    fn pop(&self, state: &AtomicU8) -> Option<Job> {
        let mut inner = relock(&self.inner);
        loop {
            if state.load(Ordering::SeqCst) == STATE_CRASHED {
                return None;
            }
            if let Some(job) = inner.classes.iter_mut().find_map(VecDeque::pop_front) {
                inner.len -= 1;
                return Some(job);
            }
            if state.load(Ordering::SeqCst) == STATE_DRAINING {
                return None;
            }
            let (guard, _) = self
                .ready
                .wait_timeout(inner, Duration::from_millis(50))
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            inner = guard;
        }
    }

    fn depth(&self) -> usize {
        relock(&self.inner).len
    }

    fn max_depth(&self) -> usize {
        relock(&self.inner).max_depth
    }

    fn wake_all(&self) {
        self.ready.notify_all();
    }
}

/// State shared by the accept loop, workers, and connection threads.
struct Shared {
    cfg: ServerConfig,
    alphabet: Alphabet,
    queue: ServerQueue,
    state: AtomicU8,
    /// Batch-wide token: cancelled on crash so in-flight pairs abort at
    /// the next tile boundary instead of finishing into the void.
    token: CancelToken,
    pool: DevicePool,
    tenants: Mutex<TenantTable>,
    sessions: Mutex<SessionStore>,
    counters: Mutex<ServerCounters>,
    /// Monotone pair sequence for deterministic audit sampling.
    pair_seq: AtomicUsize,
    conns: AtomicUsize,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    /// Worst brownout level observed, as its rank (for `/stats`).
    brownout_peak: AtomicUsize,
}

impl Shared {
    fn state(&self) -> u8 {
        self.state.load(Ordering::SeqCst)
    }

    fn brownout(&self) -> BrownoutLevel {
        let level = BrownoutLevel::from_occupancy(
            &self.cfg.brownout,
            self.queue.depth(),
            self.cfg.exec.queue_cap,
        );
        self.brownout_peak.fetch_max(level.rank(), Ordering::Relaxed);
        level
    }

    /// The `/stats` text: global counters, brownout, pool devices, and
    /// one line per tenant — everything an operator needs to see which
    /// rung of the degradation ladder the service is standing on.
    fn stats_text(&self) -> String {
        use std::fmt::Write as _;
        let c = *relock(&self.counters);
        let state = match self.state() {
            STATE_RUNNING => "running",
            STATE_DRAINING => "draining",
            _ => "crashed",
        };
        let level = self.brownout();
        let peak = self.brownout_peak.load(Ordering::Relaxed);
        let (devices, pool_counters) = self.pool.snapshot();
        let mut s = String::new();
        let _ = writeln!(s, "state: {state}");
        let _ = writeln!(s, "connections: {}", self.conns.load(Ordering::SeqCst));
        let _ = writeln!(
            s,
            "queue_depth: {}/{} (max {})",
            self.queue.depth(),
            self.cfg.exec.queue_cap,
            self.queue.max_depth()
        );
        let _ = writeln!(s, "brownout: {level} (peak rank {peak})");
        let _ = writeln!(
            s,
            "pairs: admitted={} completed={} failed={} rejected={} resumed={}",
            c.admitted, c.completed, c.failed, c.rejected, c.resumed
        );
        let _ = writeln!(
            s,
            "failures: deadline_exceeded={} cancelled={}",
            c.deadline_exceeded, c.cancelled
        );
        let _ = writeln!(
            s,
            "routing: device_pairs={} software_pairs={} degraded_software={} retries={}",
            c.device_pairs, c.software_pairs, c.degraded_software, c.retries
        );
        let _ = writeln!(
            s,
            "defenses: audits_run={} integrity_recomputed={} hedges_launched={} hedges_won={}",
            pool_counters.audits_run,
            pool_counters.integrity_recomputed,
            pool_counters.hedges_launched,
            pool_counters.hedges_won
        );
        for (id, d) in devices.iter().enumerate() {
            let _ = writeln!(s, "device {id}: {}", device_line(d));
        }
        for (name, t) in relock(&self.tenants).sorted() {
            let _ =
                writeln!(s, "tenant {name}: priority={} {}", t.priority, tenant_line(&t.counters));
        }
        s
    }

    fn bump<F: FnOnce(&mut ServerCounters)>(&self, f: F) {
        f(&mut relock(&self.counters));
    }

    fn tenant_bump<F: FnOnce(&mut TenantCounters)>(&self, tenant: &str, f: F) {
        if let Some(c) = relock(&self.tenants).counters_mut(tenant) {
            f(c);
        }
    }

    /// The session store, with poison surfaced as a typed error.
    ///
    /// Unlike the counter/registry locks (see [`relock`]), the session
    /// store backs the crash-consistency guarantee: a holder that
    /// panicked mid-`open`/`release` may have left an `active` entry or
    /// a manifest writer half-registered, and silently recovering could
    /// hand two connections the same session manifest. Callers turn
    /// this error into an `ERR` frame and tear the connection down.
    fn sessions(&self) -> Result<std::sync::MutexGuard<'_, SessionStore>, AlignError> {
        self.sessions.lock().map_err(|_| AlignError::Internal("session store lock poisoned".into()))
    }
}

fn device_line(d: &DeviceStats) -> String {
    let breaker = d.breaker.map_or_else(|| "none".to_string(), |b| b.state.to_string());
    format!(
        "pairs={} faulted={} integrity={} deadline_events={} health={:.3} quarantined={} breaker={breaker}",
        d.pairs, d.faulted_pairs, d.integrity_violations, d.deadline_events, d.health, d.quarantined
    )
}

fn tenant_line(c: &TenantCounters) -> String {
    format!(
        "admitted={} completed={} failed={} resumed={} rejected={} \
         (rate={} queue={} brownout={} draining={} overloaded={}) \
         deadline_exceeded={} degraded={}",
        c.admitted,
        c.completed,
        c.failed,
        c.resumed,
        c.rejected(),
        c.rejected_rate,
        c.rejected_queue,
        c.rejected_brownout,
        c.rejected_draining,
        c.rejected_overloaded,
        c.deadline_exceeded,
        c.degraded_software
    )
}

fn fail_kind(e: &AlignError) -> FailKind {
    match e {
        AlignError::DeadlineExceeded { .. } => FailKind::Deadline,
        AlignError::Cancelled => FailKind::Cancelled,
        AlignError::IntegrityViolation { .. } => FailKind::Integrity,
        _ => FailKind::Error,
    }
}

/// The front-door server factory.
pub struct Server;

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts the accept loop
    /// and `cfg.exec.jobs` worker threads over a pool built from
    /// `device`.
    ///
    /// # Errors
    ///
    /// Invalid executor configuration (validated exactly as
    /// [`crate::service::BatchExecutor::new`] does), pool construction
    /// failures, and bind failures, all as typed [`AlignError`]s.
    pub fn bind(
        device: SmxDevice,
        cfg: ServerConfig,
        addr: &str,
    ) -> Result<ServerHandle, AlignError> {
        // Reuse the executor's validation so serve and batch agree on
        // what a legal configuration is.
        let _ = service::BatchExecutor::new(device.clone(), cfg.exec.clone())?;
        let n_devices = if cfg.exec.devices == 0 { cfg.exec.jobs } else { cfg.exec.devices };
        let pool = DevicePool::new(&device, n_devices, cfg.exec.breaker, cfg.exec.quarantine)?;
        let listener = TcpListener::bind(addr)
            .map_err(|e| AlignError::Internal(format!("bind {addr}: {e}")))?;
        let local =
            listener.local_addr().map_err(|e| AlignError::Internal(format!("local addr: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| AlignError::Internal(format!("nonblocking listener: {e}")))?;
        if let Some(dir) = &cfg.checkpoint_dir {
            std::fs::create_dir_all(dir)
                .map_err(|e| AlignError::Internal(format!("checkpoint dir: {e}")))?;
        }
        let sessions = SessionStore::new(cfg.checkpoint_dir.clone(), cfg.resume_sessions);
        let jobs = cfg.exec.jobs;
        let policy = cfg.policy;
        let queue_cap = cfg.exec.queue_cap;
        let shared = Arc::new(Shared {
            alphabet: device.config().alphabet(),
            queue: ServerQueue::new(queue_cap),
            state: AtomicU8::new(STATE_RUNNING),
            token: CancelToken::new(),
            pool,
            tenants: Mutex::new(TenantTable::new(policy)),
            sessions: Mutex::new(sessions),
            counters: Mutex::new(ServerCounters::default()),
            pair_seq: AtomicUsize::new(0),
            conns: AtomicUsize::new(0),
            conn_threads: Mutex::new(Vec::new()),
            brownout_peak: AtomicUsize::new(0),
            cfg,
        });

        let workers = (0..jobs)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let mut sw = device.clone();
                sw.disable_fault_injection();
                std::thread::spawn(move || worker_loop(&shared, &mut sw))
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        Ok(ServerHandle { shared, addr: local, accept: Some(accept), workers })
    }
}

/// A running server: its address, live stats, and the two ways down —
/// graceful [`ServerHandle::drain`] or simulated [`ServerHandle::crash`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the OS-assigned port when bound to `:0`).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The `/stats` text, identical to what a `STATS` frame returns.
    #[must_use]
    pub fn stats_text(&self) -> String {
        self.shared.stats_text()
    }

    /// Graceful drain: stop accepting, flush every in-flight and queued
    /// pair through its durable manifest, `DONE` every session, and
    /// report per-tenant counts.
    pub fn drain(mut self) -> DrainReport {
        self.wind_down(STATE_DRAINING);
        let shared = &self.shared;
        let per_tenant = relock(&shared.tenants)
            .sorted()
            .into_iter()
            .map(|(name, t)| (name.to_string(), t.counters))
            .collect();
        let mut totals = *relock(&shared.counters);
        totals.max_queue_depth = shared.queue.max_depth();
        DrainReport { per_tenant, totals }
    }

    /// Simulated `kill -9` for in-process crash testing: no flush, no
    /// `DONE`, no further acks — connections just die. Acked pairs are
    /// already durable (the ack ordering guarantees it), so a restart
    /// over the same checkpoint directory with resume enabled replays
    /// exactly the acked set.
    pub fn crash(mut self) {
        self.shared.token.cancel();
        self.wind_down(STATE_CRASHED);
    }

    fn wind_down(&mut self, state: u8) {
        self.shared.state.store(state, Ordering::SeqCst);
        self.shared.queue.wake_all();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Connection threads exit on their own once they observe the
        // state flip (bounded by their read/recv timeouts).
        loop {
            let handles: Vec<JoinHandle<()>> =
                std::mem::take(&mut *relock(&self.shared.conn_threads));
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while shared.state() == STATE_RUNNING {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                if shared.conns.load(Ordering::SeqCst) >= shared.cfg.max_conns {
                    let mut w = BufWriter::new(&stream);
                    let _ = write_frame(
                        &mut w,
                        &Response::Err("connection capacity reached; retry later".into()).encode(),
                    );
                    continue;
                }
                shared.conns.fetch_add(1, Ordering::SeqCst);
                let shared2 = Arc::clone(shared);
                let handle = std::thread::spawn(move || {
                    conn_loop(stream, &shared2);
                    shared2.conns.fetch_sub(1, Ordering::SeqCst);
                });
                relock(&shared.conn_threads).push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// One worker: pops jobs in priority order, enforces the deadline at
/// dequeue, applies the brownout ladder, and runs the pair through the
/// same dispatch seam the batch executor uses — breaker, audit, hedge,
/// quarantine and all — with a bounded retry budget on top.
fn worker_loop(shared: &Shared, sw: &mut SmxDevice) {
    while let Some(job) = shared.queue.pop(&shared.state) {
        let level = shared.brownout();
        // A pair that expired while queued must not burn device time.
        if let Some((at, budget_ms)) = job.deadline {
            if Instant::now() >= at {
                finish(
                    shared,
                    &job,
                    Completion {
                        id: job.id,
                        result: Err(AlignError::DeadlineExceeded { budget_ms }),
                        degraded: false,
                    },
                    None,
                    0,
                );
                continue;
            }
        }
        let degraded = level >= BrownoutLevel::DegradingLow && job.priority == Priority::Low;
        let mut cfg = shared.cfg.exec.clone();
        if level >= BrownoutLevel::SheddingExtras {
            // Shed the server's own luxuries before touching anyone's
            // traffic: audits and hedges cost device/host time.
            cfg.audit = None;
            cfg.hedge = None;
        }
        let index = shared.pair_seq.fetch_add(1, Ordering::SeqCst);
        let mut retries = 0u32;
        let mut meta_route = None;
        let result = loop {
            let remaining =
                job.deadline.map(|(at, _)| at.saturating_duration_since(Instant::now()));
            cfg.deadline = remaining;
            let attempt = if degraded {
                let token = match remaining {
                    Some(d) => shared.token.fork_with_deadline(d),
                    None => shared.token.clone(),
                };
                service::attempt_on_software(sw, &job.query, &job.reference, token)
            } else {
                let (r, meta) = service::run_pair(
                    &shared.pool,
                    sw,
                    index,
                    &job.query,
                    &job.reference,
                    &cfg,
                    &shared.token,
                );
                meta_route = Some(meta.route);
                r
            };
            let retryable = attempt.as_ref().err().is_some_and(AlignError::is_recoverable_fault);
            let expired = job.deadline.is_some_and(|(at, _)| Instant::now() >= at);
            if retryable
                && retries < shared.cfg.retry.attempts
                && !expired
                && shared.state() != STATE_CRASHED
            {
                retries += 1;
                let backoff = shared.cfg.retry.backoff * retries;
                let nap = match job.deadline {
                    Some((at, _)) => backoff.min(at.saturating_duration_since(Instant::now())),
                    None => backoff,
                };
                std::thread::sleep(nap);
                continue;
            }
            break attempt;
        };
        finish(shared, &job, Completion { id: job.id, result, degraded }, meta_route, retries);
    }
}

/// Books a completion into the global counters and hands it to the
/// connection's writer (which does the durable ack).
fn finish(
    shared: &Shared,
    job: &Job,
    completion: Completion,
    route: Option<service::Route>,
    retries: u32,
) {
    shared.bump(|c| {
        c.retries += u64::from(retries);
        if completion.degraded {
            c.degraded_software += 1;
            c.software_pairs += 1;
        }
        match route {
            Some(service::Route::Software) => c.software_pairs += 1,
            Some(_) => c.device_pairs += 1,
            None => {}
        }
        match &completion.result {
            Ok(_) => c.completed += 1,
            Err(AlignError::DeadlineExceeded { .. }) => {
                c.failed += 1;
                c.deadline_exceeded += 1;
            }
            Err(AlignError::Cancelled) => {
                c.failed += 1;
                c.cancelled += 1;
            }
            Err(_) => c.failed += 1,
        }
    });
    // A send failure means the connection is gone; the pair's outcome is
    // simply unacked (and therefore recomputable on resume).
    let _ = job.reply.send(WriterMsg::Done(completion));
}

/// Per-connection reader: the protocol state machine and the admission
/// ladder. All socket *writes* go through the writer thread so frames
/// never interleave.
fn conn_loop(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);

    // Phase 1: HELLO. Tolerate read timeouts while waiting, but give up
    // if the server stops running.
    let hello = loop {
        match read_frame(&mut reader) {
            Ok(Some(payload)) => break payload,
            Ok(None) => return,
            Err(ProtoError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shared.state() != STATE_RUNNING {
                    return;
                }
            }
            Err(_) => return,
        }
    };
    let (session_id, tenant, priority, deadline_ms) = match Request::parse(&hello) {
        Ok(Request::Hello { session, tenant, priority, deadline_ms }) => {
            (session, tenant, priority, deadline_ms)
        }
        Ok(_) | Err(_) => {
            let mut w = BufWriter::new(write_half);
            let _ = write_frame(
                &mut w,
                &Response::Err("expected HELLO as the first frame".into()).encode(),
            );
            return;
        }
    };
    let opened = {
        let mut warn = |offset: u64| {
            eprintln!(
                "# resume: session {session_id}: discarded a torn final record; \
                 manifest truncated to byte offset {offset}"
            );
        };
        // The open result is hoisted out of the match so the store
        // guard dies at this statement — an Err arm that wrote to the
        // socket while still holding the lock would stall every other
        // connection's open/release behind one slow client.
        shared
            .sessions()
            .map_err(|e| e.to_string())
            .and_then(|mut s| s.open(&session_id, &mut warn).map_err(|e| e.to_string()))
    };
    let session = match opened {
        Ok(s) => s,
        Err(detail) => {
            let mut w = BufWriter::new(write_half);
            let _ = write_frame(&mut w, &Response::Err(detail).encode());
            return;
        }
    };
    let resume_ids: std::collections::HashSet<usize> = session.completed.keys().copied().collect();
    let resumed_count = resume_ids.len() as u64;
    relock(&shared.tenants).entry(&tenant, priority);

    let outstanding = Arc::new(AtomicUsize::new(0));
    let (tx, rx) = mpsc::channel::<WriterMsg>();
    let writer = {
        let shared = Arc::clone(shared);
        let tenant = tenant.clone();
        let outstanding = Arc::clone(&outstanding);
        let _ = write_half.set_write_timeout(Some(Duration::from_secs(5)));
        std::thread::spawn(move || {
            writer_loop(write_half, rx, session, &shared, &tenant, &outstanding)
        })
    };
    let _ = tx.send(WriterMsg::Frame(Response::Ok {
        session: session_id.clone(),
        resumed: resumed_count,
    }));

    // The deadline each PAIR gets: the HELLO's, or the server default.
    let deadline = if deadline_ms == 0 {
        shared.cfg.exec.deadline
    } else {
        Some(Duration::from_millis(deadline_ms))
    };

    // Phase 2: the request loop.
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) => break, // client hung up without BYE
            Err(ProtoError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                match shared.state() {
                    STATE_RUNNING => continue,
                    STATE_DRAINING => break, // flush + DONE below
                    _ => {
                        // Crashed: vanish without a goodbye.
                        drop(tx);
                        let _ = writer.join();
                        if let Ok(mut s) = shared.sessions() {
                            s.release(&session_id);
                        }
                        return;
                    }
                }
            }
            Err(e) => {
                let _ = tx.send(WriterMsg::Frame(Response::Err(e.to_string())));
                break;
            }
        };
        match Request::parse(&payload) {
            Ok(Request::Pair { id, query, reference }) => {
                admit(
                    shared,
                    &tx,
                    &tenant,
                    priority,
                    deadline,
                    id,
                    &query,
                    &reference,
                    &resume_ids,
                    &outstanding,
                );
            }
            Ok(Request::Stats) => {
                let _ = tx.send(WriterMsg::Frame(Response::Stats(shared.stats_text())));
            }
            Ok(Request::Bye) => break,
            Ok(Request::Hello { .. }) => {
                let _ = tx.send(WriterMsg::Frame(Response::Err(
                    "HELLO is only valid as the first frame".into(),
                )));
                break;
            }
            Err(e) => {
                let _ = tx.send(WriterMsg::Frame(Response::Err(e.to_string())));
                break;
            }
        }
    }
    let _ = tx.send(WriterMsg::Bye);
    drop(tx);
    let _ = writer.join();
    // A poisoned store here has nothing left worth tearing down — the
    // connection is already ending; just skip the release.
    if let Ok(mut s) = shared.sessions() {
        s.release(&session_id);
    }
}

/// The admission ladder, in order: drain, replay, rate limit, slow-reader
/// cap, brownout refusal, queue capacity. Every exit is a typed frame.
#[allow(clippy::too_many_arguments)]
fn admit(
    shared: &Shared,
    tx: &mpsc::Sender<WriterMsg>,
    tenant: &str,
    priority: Priority,
    deadline: Option<Duration>,
    id: usize,
    query: &str,
    reference: &str,
    resume_ids: &std::collections::HashSet<usize>,
    outstanding: &Arc<AtomicUsize>,
) {
    let reject = |reason: RejectReason, retry_after_ms: u64| {
        shared.bump(|c| c.rejected += 1);
        shared.tenant_bump(tenant, |c| match reason {
            RejectReason::RateLimit => c.rejected_rate += 1,
            RejectReason::QueueFull => c.rejected_queue += 1,
            RejectReason::Brownout => c.rejected_brownout += 1,
            RejectReason::Draining => c.rejected_draining += 1,
            RejectReason::Overloaded => c.rejected_overloaded += 1,
        });
        let _ = tx.send(WriterMsg::Frame(Response::Reject { id, reason, retry_after_ms }));
    };
    if shared.state() != STATE_RUNNING {
        reject(RejectReason::Draining, 1000);
        return;
    }
    if resume_ids.contains(&id) {
        // Already durable from a previous run of this session: replay
        // without consuming any admission budget.
        let _ = tx.send(WriterMsg::Replay(id));
        return;
    }
    let wait = {
        let mut tenants = relock(&shared.tenants);
        tenants.entry(tenant, priority).bucket.try_take(Instant::now())
    };
    if let Err(wait) = wait {
        reject(RejectReason::RateLimit, wait.as_millis().max(1) as u64);
        return;
    }
    if outstanding.load(Ordering::SeqCst) >= shared.cfg.max_outstanding {
        reject(RejectReason::Overloaded, 50);
        return;
    }
    let level = shared.brownout();
    if level >= BrownoutLevel::RefusingLow && priority == Priority::Low {
        reject(RejectReason::Brownout, 200);
        return;
    }
    let (q, r) = match (
        Sequence::from_text(shared.alphabet, query),
        Sequence::from_text(shared.alphabet, reference),
    ) {
        (Ok(q), Ok(r)) => (q, r),
        (Err(e), _) | (_, Err(e)) => {
            // A malformed sequence is the client's own failure, typed,
            // without burning a queue slot.
            let _ = tx.send(WriterMsg::Frame(Response::Fail {
                id,
                kind: FailKind::Error,
                detail: e.to_string(),
            }));
            return;
        }
    };
    let job = Job {
        id,
        priority,
        query: q,
        reference: r,
        deadline: deadline.map(|d| (Instant::now() + d, d.as_millis() as u64)),
        reply: tx.clone(),
    };
    // Count the pair as outstanding *before* it becomes visible to the
    // workers: a fast completion must never decrement past zero.
    outstanding.fetch_add(1, Ordering::SeqCst);
    match shared.queue.try_push(job) {
        Ok(()) => {
            shared.bump(|c| c.admitted += 1);
            shared.tenant_bump(tenant, |c| c.admitted += 1);
        }
        Err(_) => {
            outstanding.fetch_sub(1, Ordering::SeqCst);
            reject(RejectReason::QueueFull, 25);
        }
    }
}

/// Per-connection writer: the only thread that touches this socket's
/// write half, and the owner of the session manifest. The crash-safety
/// ordering lives here: `record` (write + flush + fsync), *then* the
/// `RESULT` frame.
fn writer_loop(
    stream: TcpStream,
    rx: mpsc::Receiver<WriterMsg>,
    mut session: Session,
    shared: &Shared,
    tenant: &str,
    outstanding: &AtomicUsize,
) {
    let mut out = BufWriter::new(stream);
    // Abandoning the connection mid-stream (dead socket, injected torn
    // write, ack failpoint) must close the *socket*, not just this
    // clone: the reader thread holds another clone, and the peer should
    // observe a hard drop — the same thing a process death looks like.
    let kill_socket = |out: &BufWriter<TcpStream>| {
        let _ = out.get_ref().shutdown(std::net::Shutdown::Both);
    };
    let mut local = (0u64, 0u64, 0u64, 0u64); // completed, failed, rejected, resumed
    let mut byeing = false;
    loop {
        if shared.state() == STATE_CRASHED {
            return; // no further acks, exactly like a dead process
        }
        if byeing && outstanding.load(Ordering::SeqCst) == 0 {
            let (completed, failed, rejected, resumed) = local;
            let _ = write_frame(
                &mut out,
                &Response::Done { completed, failed, rejected, resumed }.encode(),
            );
            let _ = out.flush();
            return;
        }
        let msg = match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(m) => m,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => {
                // Every sender (reader + all in-flight jobs) is gone.
                byeing = true;
                continue;
            }
        };
        match msg {
            WriterMsg::Frame(resp) => {
                if matches!(resp, Response::Reject { .. }) {
                    local.2 += 1;
                }
                if write_frame(&mut out, &resp.encode()).is_err() {
                    // Dead socket (peer gone, or an injected torn
                    // write): stop acking. Anything recorded but not
                    // framed is replayed on resume.
                    kill_socket(&out);
                    return;
                }
            }
            WriterMsg::Replay(id) => {
                if let Some(a) = session.completed.get(&id) {
                    let frame = Response::Result {
                        id,
                        score: a.score,
                        cigar: a.cigar.to_string(),
                        resumed: true,
                    };
                    local.3 += 1;
                    shared.bump(|c| c.resumed += 1);
                    shared.tenant_bump(tenant, |c| c.resumed += 1);
                    if write_frame(&mut out, &frame.encode()).is_err() {
                        kill_socket(&out);
                        return;
                    }
                }
            }
            WriterMsg::Done(c) => {
                outstanding.fetch_sub(1, Ordering::SeqCst);
                match c.result {
                    Ok(a) => match session.record(c.id, &a) {
                        Ok(()) => {
                            local.0 += 1;
                            shared.tenant_bump(tenant, |t| t.completed += 1);
                            if c.degraded {
                                shared.tenant_bump(tenant, |t| t.degraded_software += 1);
                            }
                            // Failpoint `session.ack`: die between the
                            // fsynced record and the RESULT frame — the
                            // recorded-but-unacked window. Dropping the
                            // connection here must never lose the pair:
                            // resume replays it (at-least-once), which
                            // is exactly what chaos_storm asserts.
                            if smx_failpoint::hit("session.ack").is_some() {
                                kill_socket(&out);
                                return;
                            }
                            if write_frame(
                                &mut out,
                                &Response::Result {
                                    id: c.id,
                                    score: a.score,
                                    cigar: a.cigar.to_string(),
                                    resumed: false,
                                }
                                .encode(),
                            )
                            .is_err()
                            {
                                // Recorded but the ack never reached the
                                // wire: same recoverable window as above.
                                kill_socket(&out);
                                return;
                            }
                        }
                        Err(e) => {
                            // The manifest write failed: the pair is NOT
                            // acked (the client must treat it as lost).
                            local.1 += 1;
                            shared.tenant_bump(tenant, |t| t.failed += 1);
                            let _ = write_frame(
                                &mut out,
                                &Response::Fail {
                                    id: c.id,
                                    kind: FailKind::Error,
                                    detail: format!("checkpoint write failed: {e}"),
                                }
                                .encode(),
                            );
                        }
                    },
                    Err(e) => {
                        local.1 += 1;
                        shared.tenant_bump(tenant, |t| {
                            t.failed += 1;
                            if matches!(e, AlignError::DeadlineExceeded { .. }) {
                                t.deadline_exceeded += 1;
                            }
                        });
                        let _ = write_frame(
                            &mut out,
                            &Response::Fail {
                                id: c.id,
                                kind: fail_kind(&e),
                                detail: e.to_string(),
                            }
                            .encode(),
                        );
                    }
                }
            }
            WriterMsg::Bye => byeing = true,
        }
    }
}

/// A minimal blocking client for the framed protocol — shared by the
/// server's own tests, the CLI integration tests, and the load
/// generator, so every consumer speaks through the same encoder.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to `addr`.
    ///
    /// # Errors
    ///
    /// Connection failures as `std::io::Error`.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Sends one request frame.
    ///
    /// # Errors
    ///
    /// Framing/socket errors as [`ProtoError`].
    pub fn send(&mut self, req: &Request) -> Result<(), ProtoError> {
        write_frame(&mut self.stream, &req.encode())
    }

    /// Receives one response frame (`None` on clean EOF).
    ///
    /// # Errors
    ///
    /// Framing/socket errors as [`ProtoError`].
    pub fn recv(&mut self) -> Result<Option<Response>, ProtoError> {
        match read_frame(&mut self.stream)? {
            Some(payload) => Response::parse(&payload).map(Some),
            None => Ok(None),
        }
    }

    /// Sets the socket read timeout (for storm clients that must not
    /// block forever on a crashed server).
    ///
    /// # Errors
    ///
    /// Socket option failures as `std::io::Error`.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smx_align_core::AlignmentConfig;
    use std::collections::HashMap;

    fn server(cfg: ServerConfig) -> ServerHandle {
        let dev = SmxDevice::new(AlignmentConfig::DnaEdit, 4).unwrap();
        Server::bind(dev, cfg, "127.0.0.1:0").unwrap()
    }

    fn hello(c: &mut Client, session: &str, tenant: &str, pri: Priority, dl: u64) -> u64 {
        c.send(&Request::Hello {
            session: session.into(),
            tenant: tenant.into(),
            priority: pri,
            deadline_ms: dl,
        })
        .unwrap();
        match c.recv().unwrap().unwrap() {
            Response::Ok { resumed, .. } => resumed,
            other => panic!("expected OK, got {other:?}"),
        }
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("smx-server-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_is_byte_identical_to_the_software_baseline() {
        let h = server(ServerConfig {
            exec: ExecutorConfig { jobs: 2, ..ExecutorConfig::default() },
            ..ServerConfig::default()
        });
        let mut c = Client::connect(h.addr()).unwrap();
        assert_eq!(hello(&mut c, "-", "acme", Priority::Normal, 0), 0);
        let pairs = [("GATTACAGATTACA", "GATTACACATTACA"), ("ACGTACGT", "ACGTACGA")];
        for (i, (q, r)) in pairs.iter().enumerate() {
            c.send(&Request::Pair { id: i, query: (*q).into(), reference: (*r).into() }).unwrap();
        }
        let mut got = HashMap::new();
        for _ in 0..pairs.len() {
            match c.recv().unwrap().unwrap() {
                Response::Result { id, score, cigar, resumed } => {
                    assert!(!resumed);
                    got.insert(id, (score, cigar));
                }
                other => panic!("expected RESULT, got {other:?}"),
            }
        }
        let mut dev = SmxDevice::new(AlignmentConfig::DnaEdit, 4).unwrap();
        for (i, (q, r)) in pairs.iter().enumerate() {
            let golden = dev
                .align(
                    &Sequence::from_text(Alphabet::Dna2, q).unwrap(),
                    &Sequence::from_text(Alphabet::Dna2, r).unwrap(),
                )
                .unwrap();
            assert_eq!(got[&i], (golden.score, golden.cigar.to_string()), "pair {i}");
        }
        c.send(&Request::Bye).unwrap();
        match c.recv().unwrap().unwrap() {
            Response::Done { completed, failed, rejected, resumed } => {
                assert_eq!((completed, failed, rejected, resumed), (2, 0, 0, 0));
            }
            other => panic!("expected DONE, got {other:?}"),
        }
        let report = h.drain();
        assert_eq!(report.totals.completed, 2);
        assert_eq!(report.per_tenant.len(), 1);
        assert_eq!(report.per_tenant[0].0, "acme");
        assert_eq!(report.per_tenant[0].1.completed, 2);
    }

    #[test]
    fn exhausted_token_bucket_rejects_with_retry_hint() {
        let h = server(ServerConfig {
            policy: TenantPolicy { rate: 0.001, burst: 1.0 },
            ..ServerConfig::default()
        });
        let mut c = Client::connect(h.addr()).unwrap();
        hello(&mut c, "-", "hot", Priority::Normal, 0);
        c.send(&Request::Pair { id: 0, query: "ACGT".into(), reference: "ACGT".into() }).unwrap();
        c.send(&Request::Pair { id: 1, query: "ACGT".into(), reference: "ACGT".into() }).unwrap();
        let mut rejected = None;
        for _ in 0..2 {
            match c.recv().unwrap().unwrap() {
                Response::Result { id, .. } => assert_eq!(id, 0),
                Response::Reject { id, reason, retry_after_ms } => {
                    assert_eq!(id, 1);
                    assert_eq!(reason, RejectReason::RateLimit);
                    assert!(retry_after_ms > 0, "hint must be actionable");
                    rejected = Some(retry_after_ms);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(rejected.is_some());
        let report = h.drain();
        assert_eq!(report.per_tenant[0].1.rejected_rate, 1);
    }

    #[test]
    fn brownout_refuses_low_priority_but_serves_high() {
        // Thresholds at zero put the server permanently at the deepest
        // brownout rung: low is refused, high still runs (degraded
        // extras, but served).
        let h = server(ServerConfig {
            brownout: BrownoutConfig {
                shed_extras_at: 0.0,
                degrade_low_at: 0.0,
                refuse_low_at: 0.0,
            },
            ..ServerConfig::default()
        });
        let mut low = Client::connect(h.addr()).unwrap();
        hello(&mut low, "-", "batch", Priority::Low, 0);
        low.send(&Request::Pair { id: 0, query: "ACGT".into(), reference: "ACGT".into() }).unwrap();
        match low.recv().unwrap().unwrap() {
            Response::Reject { reason, .. } => assert_eq!(reason, RejectReason::Brownout),
            other => panic!("expected brownout reject, got {other:?}"),
        }
        let mut high = Client::connect(h.addr()).unwrap();
        hello(&mut high, "-", "urgent", Priority::High, 0);
        high.send(&Request::Pair { id: 0, query: "ACGT".into(), reference: "ACGT".into() })
            .unwrap();
        assert!(matches!(high.recv().unwrap().unwrap(), Response::Result { .. }));
        let stats = h.stats_text();
        assert!(stats.contains("brownout: refusing-low"), "{stats}");
        let report = h.drain();
        assert_eq!(report.per_tenant[0].1.rejected_brownout, 1, "{report:?}");
    }

    #[test]
    fn per_pair_deadline_fails_typed_not_hanging() {
        let h = server(ServerConfig::default());
        let mut c = Client::connect(h.addr()).unwrap();
        hello(&mut c, "-", "t", Priority::Normal, 1);
        // A pair large enough that 1 ms cannot possibly cover it.
        let q: String = "ACGTTGCA".repeat(800);
        let r: String = "ACGATGCA".repeat(800);
        c.send(&Request::Pair { id: 0, query: q, reference: r }).unwrap();
        match c.recv().unwrap().unwrap() {
            Response::Fail { id, kind, .. } => {
                assert_eq!(id, 0);
                assert_eq!(kind, FailKind::Deadline);
            }
            other => panic!("expected deadline FAIL, got {other:?}"),
        }
        let report = h.drain();
        assert_eq!(report.totals.deadline_exceeded, 1);
        assert_eq!(report.per_tenant[0].1.deadline_exceeded, 1);
    }

    #[test]
    fn stats_frame_reports_the_ladder() {
        let h = server(ServerConfig::default());
        let mut c = Client::connect(h.addr()).unwrap();
        hello(&mut c, "-", "obs", Priority::Normal, 0);
        c.send(&Request::Stats).unwrap();
        match c.recv().unwrap().unwrap() {
            Response::Stats(text) => {
                for key in
                    ["state: running", "queue_depth:", "brownout:", "device 0:", "tenant obs:"]
                {
                    assert!(text.contains(key), "missing {key:?} in:\n{text}");
                }
            }
            other => panic!("expected STATS, got {other:?}"),
        }
        h.drain();
    }

    #[test]
    fn crash_then_resume_replays_exactly_the_acked_pairs() {
        let dir = temp_dir("crash-resume");
        let mk = |resume: bool| {
            server(ServerConfig {
                checkpoint_dir: Some(dir.clone()),
                resume_sessions: resume,
                ..ServerConfig::default()
            })
        };
        let h = mk(false);
        let addr = h.addr();
        let mut c = Client::connect(addr).unwrap();
        assert_eq!(hello(&mut c, "s1", "acme", Priority::Normal, 0), 0);
        let pairs: Vec<(String, String)> = (0..6)
            .map(|i| {
                (
                    format!("GATTACA{}", "ACGT".repeat(i + 1)),
                    format!("GATTACA{}", "AGGT".repeat(i + 1)),
                )
            })
            .collect();
        for (i, (q, r)) in pairs.iter().enumerate() {
            c.send(&Request::Pair { id: i, query: q.clone(), reference: r.clone() }).unwrap();
        }
        // Collect a few acks, then crash mid-stream.
        let mut acked = HashMap::new();
        for _ in 0..3 {
            if let Response::Result { id, score, cigar, .. } = c.recv().unwrap().unwrap() {
                acked.insert(id, (score, cigar));
            }
        }
        h.crash();
        // Restart over the same manifests, resume, resubmit everything.
        let h2 = mk(true);
        let mut c2 = Client::connect(h2.addr()).unwrap();
        let resumed = hello(&mut c2, "s1", "acme", Priority::Normal, 0);
        assert!(
            resumed >= acked.len() as u64,
            "every ack must be durable: {resumed} acked={}",
            acked.len()
        );
        for (i, (q, r)) in pairs.iter().enumerate() {
            c2.send(&Request::Pair { id: i, query: q.clone(), reference: r.clone() }).unwrap();
        }
        let mut results = HashMap::new();
        let mut replayed = 0u64;
        for _ in 0..pairs.len() {
            match c2.recv().unwrap().unwrap() {
                Response::Result { id, score, cigar, resumed } => {
                    if resumed {
                        replayed += 1;
                    }
                    results.insert(id, (score, cigar));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(replayed, resumed, "manifest pairs replay without recompute");
        // Replayed results are byte-identical to the pre-crash acks.
        for (id, pre) in &acked {
            assert_eq!(&results[id], pre, "pair {id} must survive the crash");
        }
        h2.drain();
    }

    #[test]
    fn drain_sends_done_to_connected_sessions() {
        let h = server(ServerConfig::default());
        let mut c = Client::connect(h.addr()).unwrap();
        hello(&mut c, "-", "t", Priority::Normal, 0);
        let drainer = std::thread::spawn(move || h.drain());
        // The reader notices the drain on its next timeout and flushes.
        match c.recv().unwrap() {
            Some(Response::Done { .. }) => {}
            other => panic!("expected DONE on drain, got {other:?}"),
        }
        let report = drainer.join().unwrap();
        assert_eq!(report.totals.failed, 0);
    }

    #[test]
    fn pairs_submitted_while_draining_are_rejected_typed() {
        // Submitting against a draining server cannot be raced reliably
        // from outside, so drive the admission ladder directly.
        let h = server(ServerConfig::default());
        let shared = Arc::clone(&h.shared);
        let (tx, rx) = mpsc::channel();
        shared.state.store(STATE_DRAINING, Ordering::SeqCst);
        shared.tenants.lock().unwrap().entry("t", Priority::Normal);
        admit(
            &shared,
            &tx,
            "t",
            Priority::Normal,
            None,
            7,
            "ACGT",
            "ACGT",
            &std::collections::HashSet::new(),
            &Arc::new(AtomicUsize::new(0)),
        );
        match rx.recv().unwrap() {
            WriterMsg::Frame(Response::Reject { id, reason, .. }) => {
                assert_eq!((id, reason), (7, RejectReason::Draining));
            }
            _ => panic!("expected a draining reject"),
        }
        shared.state.store(STATE_RUNNING, Ordering::SeqCst);
        h.drain();
    }
}
