//! Tenant quality-of-service: priority classes, token-bucket admission,
//! and the brownout ladder.
//!
//! Admission is decided per tenant *before* a pair touches the shared
//! work queue, so one hot tenant exhausts its own token bucket instead
//! of the fleet. Brownout converts overload into graduated degradation:
//! as queue occupancy climbs, the server first sheds its own luxuries
//! (audit sampling, hedging), then degrades low-priority tenants to the
//! SIMD software baseline, and only then starts refusing low-priority
//! work — high-priority traffic keeps its full service until the queue
//! is truly saturated.

use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Priority class carried in `HELLO`. Order matters: the work queue
/// serves `High` before `Normal` before `Low`, and brownout degrades in
/// the opposite order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Latency-sensitive traffic; degraded last.
    High,
    /// The default class.
    #[default]
    Normal,
    /// Batch/backfill traffic; degraded and refused first.
    Low,
}

impl Priority {
    /// Parses a wire/CLI token.
    #[must_use]
    pub fn parse(s: &str) -> Option<Priority> {
        Some(match s {
            "high" => Priority::High,
            "normal" => Priority::Normal,
            "low" => Priority::Low,
            _ => return None,
        })
    }

    /// Wire/CLI token.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }

    /// Queue-class index (0 = served first).
    #[must_use]
    pub fn class(self) -> usize {
        self as usize
    }
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-tenant token-bucket tuning: a sustained rate plus a burst
/// allowance. The default is deliberately generous — admission control
/// is opt-in pressure relief, not a default throttle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantPolicy {
    /// Sustained admission rate, pairs per second.
    pub rate: f64,
    /// Bucket capacity, pairs (burst allowance).
    pub burst: f64,
}

impl Default for TenantPolicy {
    fn default() -> TenantPolicy {
        TenantPolicy { rate: 10_000.0, burst: 10_000.0 }
    }
}

/// The classic token bucket, refilled lazily on each take.
#[derive(Debug)]
pub struct TokenBucket {
    policy: TenantPolicy,
    tokens: f64,
    refilled: Instant,
}

impl TokenBucket {
    /// A full bucket under `policy`.
    #[must_use]
    pub fn new(policy: TenantPolicy) -> TokenBucket {
        TokenBucket { policy, tokens: policy.burst, refilled: Instant::now() }
    }

    /// Takes one token, or reports how long until one accrues — the
    /// typed reject's retry-after hint.
    ///
    /// # Errors
    ///
    /// The `Duration` until the bucket will hold a full token again.
    pub fn try_take(&mut self, now: Instant) -> Result<(), Duration> {
        let dt = now.saturating_duration_since(self.refilled).as_secs_f64();
        self.tokens = (self.tokens + dt * self.policy.rate).min(self.policy.burst);
        self.refilled = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else if self.policy.rate > 0.0 {
            Err(Duration::from_secs_f64((1.0 - self.tokens) / self.policy.rate))
        } else {
            Err(Duration::from_secs(1))
        }
    }
}

/// Per-tenant admission/outcome counters, surfaced in `/stats` and the
/// drain report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantCounters {
    /// Pairs admitted to the work queue.
    pub admitted: u64,
    /// Pairs that aligned.
    pub completed: u64,
    /// Pairs that failed after admission.
    pub failed: u64,
    /// Pairs replayed from the session manifest.
    pub resumed: u64,
    /// Rejections: empty token bucket.
    pub rejected_rate: u64,
    /// Rejections: work queue full.
    pub rejected_queue: u64,
    /// Rejections: brownout refusing low-priority work.
    pub rejected_brownout: u64,
    /// Rejections: server draining.
    pub rejected_draining: u64,
    /// Rejections: per-connection in-flight cap (slow reader).
    pub rejected_overloaded: u64,
    /// Failures caused by an expired deadline.
    pub deadline_exceeded: u64,
    /// Pairs served on the software baseline because of brownout.
    pub degraded_software: u64,
}

impl TenantCounters {
    /// Total typed rejections of every flavor.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected_rate
            + self.rejected_queue
            + self.rejected_brownout
            + self.rejected_draining
            + self.rejected_overloaded
    }
}

/// One tenant's admission state: bucket, priority (latest HELLO wins),
/// and counters.
#[derive(Debug)]
pub struct TenantState {
    /// Token bucket guarding this tenant's admissions.
    pub bucket: TokenBucket,
    /// Priority class from the most recent HELLO.
    pub priority: Priority,
    /// Admission/outcome counters.
    pub counters: TenantCounters,
}

/// The tenant table: lazily created per-tenant state under one default
/// policy.
#[derive(Debug, Default)]
pub struct TenantTable {
    policy: TenantPolicy,
    tenants: HashMap<String, TenantState>,
}

impl TenantTable {
    /// An empty table handing `policy` to every new tenant.
    #[must_use]
    pub fn new(policy: TenantPolicy) -> TenantTable {
        TenantTable { policy, tenants: HashMap::new() }
    }

    /// The tenant's state, created on first sight.
    pub fn entry(&mut self, tenant: &str, priority: Priority) -> &mut TenantState {
        let state = self.tenants.entry(tenant.to_string()).or_insert_with(|| TenantState {
            bucket: TokenBucket::new(self.policy),
            priority,
            counters: TenantCounters::default(),
        });
        state.priority = priority;
        state
    }

    /// Mutable counters for a known tenant (no-op target for unknown
    /// names, which cannot happen for admitted jobs).
    pub fn counters_mut(&mut self, tenant: &str) -> Option<&mut TenantCounters> {
        self.tenants.get_mut(tenant).map(|t| &mut t.counters)
    }

    /// Tenants in name order, for deterministic reports.
    #[must_use]
    pub fn sorted(&self) -> Vec<(&str, &TenantState)> {
        let mut v: Vec<(&str, &TenantState)> =
            self.tenants.iter().map(|(k, s)| (k.as_str(), s)).collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }
}

/// Brownout thresholds as queue-occupancy fractions. Each level implies
/// the ones before it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrownoutConfig {
    /// Occupancy at which audit sampling and hedging are shed.
    pub shed_extras_at: f64,
    /// Occupancy at which low-priority pairs run on the software
    /// baseline directly (device capacity reserved for higher classes).
    pub degrade_low_at: f64,
    /// Occupancy at which low-priority admissions are refused outright.
    pub refuse_low_at: f64,
}

impl Default for BrownoutConfig {
    fn default() -> BrownoutConfig {
        BrownoutConfig { shed_extras_at: 0.5, degrade_low_at: 0.75, refuse_low_at: 0.9 }
    }
}

/// The brownout ladder, worst first so `Ord` comparisons read naturally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum BrownoutLevel {
    /// Full service.
    #[default]
    Normal,
    /// Audit sampling and hedging shed.
    SheddingExtras,
    /// Low-priority pairs degraded to the software baseline.
    DegradingLow,
    /// Low-priority admissions refused.
    RefusingLow,
}

impl BrownoutLevel {
    /// The level implied by `depth / cap` under `cfg`.
    #[must_use]
    pub fn from_occupancy(cfg: &BrownoutConfig, depth: usize, cap: usize) -> BrownoutLevel {
        let occupancy = depth as f64 / cap.max(1) as f64;
        if occupancy >= cfg.refuse_low_at {
            BrownoutLevel::RefusingLow
        } else if occupancy >= cfg.degrade_low_at {
            BrownoutLevel::DegradingLow
        } else if occupancy >= cfg.shed_extras_at {
            BrownoutLevel::SheddingExtras
        } else {
            BrownoutLevel::Normal
        }
    }

    /// Numeric level for counters and `/stats` (0 = full service).
    #[must_use]
    pub fn rank(self) -> usize {
        self as usize
    }
}

impl std::fmt::Display for BrownoutLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BrownoutLevel::Normal => "normal",
            BrownoutLevel::SheddingExtras => "shedding-extras",
            BrownoutLevel::DegradingLow => "degrading-low",
            BrownoutLevel::RefusingLow => "refusing-low",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_parse_and_order() {
        assert_eq!(Priority::parse("high"), Some(Priority::High));
        assert_eq!(Priority::parse("normal"), Some(Priority::Normal));
        assert_eq!(Priority::parse("low"), Some(Priority::Low));
        assert_eq!(Priority::parse("urgent"), None);
        assert!(Priority::High < Priority::Low);
        assert_eq!(Priority::High.class(), 0);
        assert_eq!(Priority::Low.class(), 2);
    }

    #[test]
    fn token_bucket_burst_then_throttle() {
        let mut b = TokenBucket::new(TenantPolicy { rate: 10.0, burst: 3.0 });
        let t0 = Instant::now();
        for _ in 0..3 {
            assert!(b.try_take(t0).is_ok());
        }
        let wait = b.try_take(t0).unwrap_err();
        // One token accrues in 1/rate seconds.
        assert!(wait > Duration::from_millis(50) && wait <= Duration::from_millis(100), "{wait:?}");
        // After enough simulated time, tokens are back (capped at burst).
        assert!(b.try_take(t0 + Duration::from_secs(10)).is_ok());
    }

    #[test]
    fn zero_rate_bucket_always_refuses_after_burst() {
        let mut b = TokenBucket::new(TenantPolicy { rate: 0.0, burst: 1.0 });
        let t0 = Instant::now();
        assert!(b.try_take(t0).is_ok());
        assert_eq!(b.try_take(t0 + Duration::from_secs(60)).unwrap_err(), Duration::from_secs(1));
    }

    #[test]
    fn brownout_ladder_from_occupancy() {
        let cfg = BrownoutConfig::default();
        assert_eq!(BrownoutLevel::from_occupancy(&cfg, 0, 100), BrownoutLevel::Normal);
        assert_eq!(BrownoutLevel::from_occupancy(&cfg, 50, 100), BrownoutLevel::SheddingExtras);
        assert_eq!(BrownoutLevel::from_occupancy(&cfg, 75, 100), BrownoutLevel::DegradingLow);
        assert_eq!(BrownoutLevel::from_occupancy(&cfg, 95, 100), BrownoutLevel::RefusingLow);
        // A zero-cap queue is saturated by definition, not a div-by-zero.
        assert_eq!(BrownoutLevel::from_occupancy(&cfg, 1, 0), BrownoutLevel::RefusingLow);
        assert!(BrownoutLevel::Normal < BrownoutLevel::RefusingLow);
    }

    #[test]
    fn tenant_table_is_lazy_and_sorted() {
        let mut t = TenantTable::new(TenantPolicy::default());
        t.entry("zed", Priority::Low).counters.admitted += 1;
        t.entry("abe", Priority::High).counters.admitted += 2;
        // A later HELLO updates the priority in place.
        t.entry("zed", Priority::Normal);
        let names: Vec<&str> = t.sorted().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["abe", "zed"]);
        assert_eq!(t.sorted()[1].1.priority, Priority::Normal);
        assert_eq!(t.counters_mut("abe").unwrap().admitted, 2);
        assert!(t.counters_mut("nobody").is_none());
    }
}
