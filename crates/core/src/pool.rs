//! Multi-device pool with result auditing, health scoring, quarantine,
//! and canary requalification (DESIGN.md §6).
//!
//! The service layer of PR 2 supervised exactly one [`SmxDevice`]. This
//! module generalizes it to a pool of N simulated devices, each with its
//! own independently seeded fault plan and its own circuit breaker, and
//! adds the two defenses a lone breaker cannot provide:
//!
//! * **A result scoreboard** — every device-produced alignment can be
//!   re-verified on the host ([`Alignment::verify`]: CIGAR
//!   well-formedness, operation/symbol agreement, score recomputation)
//!   at a configurable sampling rate. The audit is the only defense
//!   against *silent* readout corruption, which by construction passes
//!   every device-side checksum.
//! * **Health quarantine** — each device carries an EWMA health score
//!   over fault/integrity/deadline events. A device whose score crosses
//!   the quarantine threshold is removed from dispatch and periodically
//!   re-probed with canary pairs (known-answer alignments); only a
//!   streak of clean canaries readmits it.
//!
//! The pool decides *where* a pair runs, never *what* it computes: every
//! path (any device, with or without recovery, or the software baseline)
//! produces byte-identical alignments, so routing, quarantine, and
//! hedging are invisible in the output.

use std::sync::Mutex;
use std::time::Duration;

use smx_algos::simd::{self, Baseline, SimdWorkspace};
use smx_align_core::{AlignError, Alignment, ScoringScheme, Sequence};

use crate::orchestrator::SmxDevice;
use crate::service::{Breaker, BreakerConfig, BreakerSnapshot, Route};

/// Result-audit (scoreboard) tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditConfig {
    /// Fraction of device-produced alignments audited, in `[0, 1]`.
    /// `1.0` audits everything (full scoreboard).
    pub rate: f64,
    /// Seed for the per-pair sampling hash, so which pairs are audited
    /// is a pure function of `(seed, pair index)` — independent of
    /// scheduling, reproducible across runs.
    pub seed: u64,
}

impl AuditConfig {
    /// Audit every device-produced alignment.
    #[must_use]
    pub fn full() -> AuditConfig {
        AuditConfig { rate: 1.0, seed: 0 }
    }

    /// Whether pair `index` is sampled for audit.
    #[must_use]
    pub(crate) fn samples(&self, index: usize) -> bool {
        if self.rate >= 1.0 {
            return true;
        }
        if self.rate <= 0.0 {
            return false;
        }
        // SplitMix64 finalization over (seed, index).
        let mut x = self.seed.wrapping_add(0x9E37_79B9_7F4A_7C15).wrapping_add(index as u64);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        ((x >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < self.rate
    }
}

/// Health-scoring and quarantine tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuarantineConfig {
    /// EWMA smoothing factor in `(0, 1]`: the weight of the newest
    /// pair's outcome in the health score.
    pub alpha: f64,
    /// Health score (EWMA of the failure indicator, in `[0, 1]`) at
    /// which a device is quarantined.
    pub threshold: f64,
    /// Minimum device pairs observed before quarantine may trigger.
    pub min_samples: u64,
    /// Pool dispatches between canary probes of a quarantined device.
    pub canary_period: u64,
    /// Consecutive clean canaries required for readmission.
    pub canary_probes: u64,
}

impl Default for QuarantineConfig {
    fn default() -> QuarantineConfig {
        QuarantineConfig {
            alpha: 0.25,
            threshold: 0.5,
            min_samples: 8,
            canary_period: 16,
            canary_probes: 2,
        }
    }
}

/// When a pair is considered "stuck" and hedged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HedgeTrigger {
    /// Hedge any pair still running after this fixed budget.
    After(Duration),
    /// Hedge past an observed latency quantile: once `min_samples`
    /// primary completions have been recorded, the threshold is the p95
    /// completion latency times `multiplier`. Before that, no hedging.
    P95 {
        /// Completions required before the quantile is trusted.
        min_samples: usize,
        /// Safety factor applied to the observed p95.
        multiplier: f64,
    },
}

/// Hedged-execution tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgeConfig {
    /// The latency trigger past which a pair is hedged.
    pub trigger: HedgeTrigger,
}

impl HedgeConfig {
    /// Hedge after a fixed per-pair budget.
    #[must_use]
    pub fn after(budget: Duration) -> HedgeConfig {
        HedgeConfig { trigger: HedgeTrigger::After(budget) }
    }

    /// Hedge past 2× the observed p95 completion latency (engages after
    /// 32 completions).
    #[must_use]
    pub fn p95() -> HedgeConfig {
        HedgeConfig { trigger: HedgeTrigger::P95 { min_samples: 32, multiplier: 2.0 } }
    }
}

/// Per-device counters and final state, reported in `ServiceStats`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceStats {
    /// Pairs that ran on this device (primary attempts and probes).
    pub pairs: u64,
    /// Pairs during which the device injected at least one detectable
    /// fault, or that failed with a recoverable device fault.
    pub faulted_pairs: u64,
    /// Audit failures attributed to this device (primary and retry
    /// attempts counted separately).
    pub integrity_violations: u64,
    /// Pairs on this device that hit a deadline or hedge trigger.
    pub deadline_events: u64,
    /// Times this device was quarantined.
    pub quarantines: u64,
    /// Times this device was readmitted after clean canaries.
    pub readmissions: u64,
    /// Canary probes run against this device while quarantined.
    pub canary_runs: u64,
    /// Canary probes that failed (fault, error, or wrong answer).
    pub canary_failures: u64,
    /// Final EWMA health score (0 = healthy, 1 = every recent pair bad).
    pub health: f64,
    /// Whether the device ended the batch quarantined.
    pub quarantined: bool,
    /// Final state of this device's breaker, when one was configured.
    pub breaker: Option<BreakerSnapshot>,
}

/// Where the pool routed one pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Dispatch {
    /// A device was selected; `route` is its breaker's verdict (device,
    /// half-open probe, or software while the breaker is open).
    Device {
        /// Pool index of the selected device.
        id: usize,
        /// The selected device's breaker route for this pair.
        route: Route,
    },
    /// Every device is quarantined: the pair runs on the software
    /// baseline unconditionally.
    Software,
}

/// Everything that happened to one pair on its device, fed back into the
/// breaker, the health score, and the counters in one lock acquisition.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct OutcomeEvents {
    /// The device injected a detectable fault or failed with a
    /// recoverable device fault.
    pub faulted: bool,
    /// Audit failures during this pair (0, 1, or 2 with the retry).
    pub integrity: u32,
    /// The pair hit its deadline or hedge trigger on this device.
    pub deadline: bool,
    /// Audits run for this pair.
    pub audits: u32,
    /// The pair was recomputed on the software baseline after the audit
    /// retry also failed.
    pub recomputed: bool,
    /// A hedge backup was launched for this pair.
    pub hedge_launched: bool,
    /// The hedge backup produced the pair's result.
    pub hedge_won: bool,
}

/// Pool-level counters not attributable to a single device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct PoolCounters {
    pub audits_run: u64,
    pub integrity_recomputed: u64,
    pub hedges_launched: u64,
    pub hedges_won: u64,
}

/// The routing/health state machine, separated from the devices so it is
/// unit-testable with scripted outcomes. All methods take `&mut self`;
/// [`DevicePool`] serializes access behind one mutex.
#[derive(Debug)]
pub(crate) struct PoolHealth {
    slots: Vec<Slot>,
    breaker_cfg: Option<BreakerConfig>,
    quarantine: Option<QuarantineConfig>,
    rr: usize,
    dispatches: u64,
    counters: PoolCounters,
    latencies: Vec<Duration>,
    lat_next: usize,
}

#[derive(Debug)]
struct Slot {
    breaker: Option<Breaker>,
    health: f64,
    samples: u64,
    quarantined: bool,
    canary_streak: u64,
    next_canary_at: u64,
    stats: DeviceStats,
}

/// Completion latencies retained for the p95 hedge trigger.
const LATENCY_WINDOW: usize = 128;

impl PoolHealth {
    pub(crate) fn new(
        devices: usize,
        breaker_cfg: Option<BreakerConfig>,
        quarantine: Option<QuarantineConfig>,
    ) -> PoolHealth {
        let slots = (0..devices)
            .map(|_| Slot {
                breaker: breaker_cfg.map(Breaker::new),
                health: 0.0,
                samples: 0,
                quarantined: false,
                canary_streak: 0,
                next_canary_at: 0,
                stats: DeviceStats::default(),
            })
            .collect();
        PoolHealth {
            slots,
            breaker_cfg,
            quarantine,
            rr: 0,
            dispatches: 0,
            counters: PoolCounters::default(),
            latencies: Vec::new(),
            lat_next: 0,
        }
    }

    /// Picks the next pair's device round-robin over non-quarantined
    /// devices, and lets its breaker choose the route.
    pub(crate) fn dispatch(&mut self) -> Dispatch {
        self.dispatches += 1;
        let n = self.slots.len();
        for k in 0..n {
            let id = (self.rr + k) % n;
            // LINT: allow(panic) id = (rr + k) % slots.len() is always in bounds
            if self.slots[id].quarantined {
                continue;
            }
            self.rr = (id + 1) % n;
            // LINT: allow(panic) id = (rr + k) % slots.len() is always in bounds
            let route = match &mut self.slots[id].breaker {
                Some(b) => b.route(),
                None => Route::Device,
            };
            return Dispatch::Device { id, route };
        }
        Dispatch::Software
    }

    /// Feeds one pair's outcome back: breaker window, EWMA health,
    /// per-device and pool counters, and the quarantine decision.
    pub(crate) fn record(&mut self, id: usize, route: Route, ev: OutcomeEvents) {
        self.counters.audits_run += u64::from(ev.audits);
        self.counters.integrity_recomputed += u64::from(ev.recomputed);
        self.counters.hedges_launched += u64::from(ev.hedge_launched);
        self.counters.hedges_won += u64::from(ev.hedge_won);
        if route == Route::Software {
            // The pair never touched the device; its outcome says
            // nothing about device health.
            return;
        }
        let q = self.quarantine;
        // LINT: allow(panic) id comes from Dispatch::Device, produced by dispatch() from slots indices
        let slot = &mut self.slots[id];
        slot.stats.pairs += 1;
        if ev.faulted {
            slot.stats.faulted_pairs += 1;
        }
        slot.stats.integrity_violations += u64::from(ev.integrity);
        if ev.deadline {
            slot.stats.deadline_events += 1;
        }
        if let Some(b) = &mut slot.breaker {
            // Integrity violations are device sickness; deadlines are
            // not (breaking on overload would mask it as device failure,
            // the documented invariant from PR 2).
            b.record(route, ev.faulted || ev.integrity > 0);
        }
        let q = match q {
            Some(q) => q,
            None => return,
        };
        let bad = ev.faulted || ev.integrity > 0 || ev.deadline;
        slot.health = q.alpha * f64::from(u8::from(bad)) + (1.0 - q.alpha) * slot.health;
        slot.samples += 1;
        if !slot.quarantined && slot.samples >= q.min_samples && slot.health >= q.threshold {
            slot.quarantined = true;
            slot.stats.quarantines += 1;
            slot.canary_streak = 0;
            slot.next_canary_at = self.dispatches + q.canary_period;
        }
    }

    /// Claims a quarantined device that is due for a canary probe,
    /// advancing its next-probe clock so concurrent workers cannot claim
    /// it twice. Returns `(device, canary rotation index)`.
    pub(crate) fn claim_canary(&mut self) -> Option<(usize, u64)> {
        let q = self.quarantine?;
        let now = self.dispatches;
        for (id, slot) in self.slots.iter_mut().enumerate() {
            if slot.quarantined && now >= slot.next_canary_at {
                slot.next_canary_at = now + q.canary_period;
                let rotation = slot.stats.canary_runs;
                slot.stats.canary_runs += 1;
                return Some((id, rotation));
            }
        }
        None
    }

    /// Feeds back one canary verdict; a streak of clean canaries
    /// readmits the device with fresh health and a fresh breaker.
    pub(crate) fn record_canary(&mut self, id: usize, passed: bool) {
        let q = match self.quarantine {
            Some(q) => q,
            None => return,
        };
        let breaker_cfg = self.breaker_cfg;
        // LINT: allow(panic) id comes from claim_canary's enumerate over slots
        let slot = &mut self.slots[id];
        if !passed {
            slot.stats.canary_failures += 1;
            slot.canary_streak = 0;
            return;
        }
        slot.canary_streak += 1;
        if slot.canary_streak >= q.canary_probes {
            slot.quarantined = false;
            slot.health = 0.0;
            slot.samples = 0;
            slot.stats.readmissions += 1;
            // A stale pre-quarantine fault window must not instantly
            // re-trip the breaker on readmission.
            slot.breaker = breaker_cfg.map(Breaker::new);
        }
    }

    /// Records one successful primary completion latency (the p95 hedge
    /// trigger's sample stream).
    pub(crate) fn record_latency(&mut self, latency: Duration) {
        if self.latencies.len() < LATENCY_WINDOW {
            self.latencies.push(latency);
        } else {
            // LINT: allow(panic) lat_next < LATENCY_WINDOW == latencies.len() once the window is full
            self.latencies[self.lat_next] = latency;
            self.lat_next = (self.lat_next + 1) % LATENCY_WINDOW;
        }
    }

    /// The current hedge budget, if the trigger is armed.
    pub(crate) fn hedge_threshold(&self, cfg: &HedgeConfig) -> Option<Duration> {
        match cfg.trigger {
            HedgeTrigger::After(budget) => Some(budget),
            HedgeTrigger::P95 { min_samples, multiplier } => {
                if self.latencies.len() < min_samples.max(1) {
                    return None;
                }
                let mut sorted = self.latencies.clone();
                sorted.sort_unstable();
                let idx = (sorted.len() * 95 / 100).min(sorted.len() - 1);
                // LINT: allow(panic) idx = min(len*95/100, len-1) and len >= 1 is checked above
                Some(sorted[idx].mul_f64(multiplier))
            }
        }
    }

    /// Whether device `id` is currently quarantined.
    #[cfg(test)]
    pub(crate) fn is_quarantined(&self, id: usize) -> bool {
        self.slots[id].quarantined
    }

    /// Final per-device stats and pool counters.
    pub(crate) fn finish(self) -> (Vec<DeviceStats>, PoolCounters) {
        let stats = self
            .slots
            .into_iter()
            .map(|slot| DeviceStats {
                health: slot.health,
                quarantined: slot.quarantined,
                breaker: slot
                    .breaker
                    .as_ref()
                    .map(|b| BreakerSnapshot { state: b.state(), transitions: b.transitions() }),
                ..slot.stats
            })
            .collect();
        (stats, self.counters)
    }

    /// A non-consuming [`PoolHealth::finish`]: the same per-device stats
    /// and counters, for live observability (the server's `/stats`)
    /// while the pool keeps running.
    pub(crate) fn snapshot(&self) -> (Vec<DeviceStats>, PoolCounters) {
        let stats = self
            .slots
            .iter()
            .map(|slot| DeviceStats {
                health: slot.health,
                quarantined: slot.quarantined,
                breaker: slot
                    .breaker
                    .as_ref()
                    .map(|b| BreakerSnapshot { state: b.state(), transitions: b.transitions() }),
                ..slot.stats.clone()
            })
            .collect();
        (stats, self.counters)
    }
}

/// A known-answer canary pair: the two sequences plus the golden
/// alignment the device must reproduce byte-identically.
#[derive(Debug, Clone)]
struct Canary {
    query: Sequence,
    reference: Sequence,
    golden: Alignment,
}

/// The supervised device pool: N independently seeded devices behind
/// per-device mutexes, the routing/health state machine behind one more,
/// and the canary set computed once on the software baseline.
#[derive(Debug)]
pub(crate) struct DevicePool {
    devices: Vec<Mutex<SmxDevice>>,
    health: Mutex<PoolHealth>,
    canaries: Vec<Canary>,
    scheme: ScoringScheme,
    /// Baseline kernel the audit's score pass runs on (inherited from the
    /// template device, like everything else pool-wide).
    baseline: Baseline,
    /// Shared audit workspace; audits that would contend on it fall back
    /// to a fresh local workspace instead of serializing workers.
    simd_ws: Mutex<SimdWorkspace>,
}

/// Lengths of the generated canary pairs (distinct, so a device sick in
/// only one tile-grid shape cannot pass every probe).
const CANARY_LENS: [usize; 2] = [40, 56];

impl DevicePool {
    /// Builds a pool of `devices` clones of `template`. Device 0 keeps
    /// the template's fault plan verbatim (a pool of one reproduces the
    /// single-device service exactly); devices `i > 0` get the same plan
    /// re-seeded so they fault independently but reproducibly.
    pub(crate) fn new(
        template: &SmxDevice,
        devices: usize,
        breaker_cfg: Option<BreakerConfig>,
        quarantine: Option<QuarantineConfig>,
    ) -> Result<DevicePool, AlignError> {
        let fault_setup = template.fault_plan().zip(template.fault_policy());
        let pool_devices = (0..devices)
            .map(|i| {
                let mut dev = template.clone();
                if let Some((plan, policy)) = fault_setup {
                    if i > 0 {
                        let derived = plan
                            .seed()
                            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64));
                        dev.enable_fault_injection(plan.with_seed(derived), policy);
                    }
                }
                Mutex::new(dev)
            })
            .collect();
        let config = template.config();
        let scheme = config.scoring();
        let mut baseline = template.clone();
        baseline.disable_fault_injection();
        let card = config.alphabet().cardinality() as u32;
        let canaries = CANARY_LENS
            .iter()
            .map(|&len| {
                let seq = |stride: u32, off: u32| {
                    let codes: Vec<u8> = (0..len as u32)
                        .map(|i| ((i * stride + off + (i >> 3)) % card) as u8)
                        .collect();
                    Sequence::from_codes(config.alphabet(), codes)
                };
                let query = seq(7, 1)?;
                let reference = seq(5, 2)?;
                let golden = baseline.align_software(&query, &reference)?;
                Ok(Canary { query, reference, golden })
            })
            .collect::<Result<Vec<Canary>, AlignError>>()?;
        Ok(DevicePool {
            devices: pool_devices,
            health: Mutex::new(PoolHealth::new(devices, breaker_cfg, quarantine)),
            canaries,
            scheme,
            baseline: template.baseline(),
            simd_ws: Mutex::new(SimdWorkspace::new()),
        })
    }

    /// The routing/health state machine (one lock for all of it), with
    /// poison surfaced as a typed error: the dispatch path must fail a
    /// pair typed rather than panic the worker that inherited the
    /// poison (a panicking worker here would cascade — every other
    /// worker shares this lock).
    pub(crate) fn health(&self) -> Result<std::sync::MutexGuard<'_, PoolHealth>, AlignError> {
        self.health.lock().map_err(|_| AlignError::Internal("pool health lock poisoned".into()))
    }

    /// The health lock for feedback writers (outcome/latency records):
    /// these must not be lost to poison — the state is per-field counter
    /// updates, safe to keep using after a holder panicked — so the
    /// poison flag is stripped instead of propagated.
    fn health_feedback(&self) -> std::sync::MutexGuard<'_, PoolHealth> {
        self.health.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Exclusive access to device `id`, typed: an out-of-range id or a
    /// poisoned device mutex (a worker panicked mid-alignment on that
    /// device) is an internal error on this pair, never a panic.
    pub(crate) fn device(
        &self,
        id: usize,
    ) -> Result<std::sync::MutexGuard<'_, SmxDevice>, AlignError> {
        self.devices
            .get(id)
            .ok_or_else(|| AlignError::Internal(format!("device id {id} out of range")))?
            .lock()
            .map_err(|_| AlignError::Internal(format!("device {id} lock poisoned")))
    }

    /// One routing decision, with the health guard confined to this
    /// call. Callers must NOT hold the returned guard across the pair —
    /// this wrapper exists because a `match pool.health().dispatch()`
    /// scrutinee would keep the pool-wide health lock alive through
    /// every match arm (Rust's temporary-lifetime rule), serializing
    /// all workers behind one pair's DP.
    pub(crate) fn dispatch_pair(&self) -> Result<Dispatch, AlignError> {
        Ok(self.health()?.dispatch())
    }

    /// Feeds one pair's outcome back into breaker/health/quarantine.
    pub(crate) fn record_outcome(&self, id: usize, route: Route, ev: OutcomeEvents) {
        self.health_feedback().record(id, route, ev);
    }

    /// Records one successful primary completion latency.
    pub(crate) fn record_latency(&self, latency: Duration) {
        self.health_feedback().record_latency(latency);
    }

    /// The current hedge budget, if armed (`None` also when the health
    /// state is unreadable — a missing hedge is strictly less wrong
    /// than a panicked worker).
    pub(crate) fn hedge_threshold(&self, cfg: &HedgeConfig) -> Option<Duration> {
        self.health().ok()?.hedge_threshold(cfg)
    }

    /// Audits one device-produced alignment on the host, in two phases:
    ///
    /// 1. **Consistency** — CIGAR well-formedness, operation/symbol
    ///    agreement against the actual sequences, and score recomputation
    ///    ([`Alignment::verify`]). Catches corrupted results.
    /// 2. **Optimality** — the streaming score kernel independently
    ///    recomputes the *optimal* score (no matrix, no traceback) and
    ///    compares it to the claimed one. Catches valid-but-suboptimal
    ///    results, which phase 1 by construction cannot: a consistent
    ///    CIGAR that scores itself correctly can still be the wrong path.
    ///
    /// Only on a mismatch does the caller escalate to a full CIGAR
    /// recompute (the service's audit-recovery ladder) — the two-phase
    /// contract that keeps the common all-clean case cheap.
    ///
    /// # Errors
    ///
    /// Any inconsistency surfaces as the typed
    /// [`AlignError::IntegrityViolation`] naming the device — never a
    /// panic, whatever shape the corruption took.
    pub(crate) fn audit(
        &self,
        device: usize,
        alignment: &Alignment,
        query: &Sequence,
        reference: &Sequence,
    ) -> Result<(), AlignError> {
        alignment
            .verify(query.codes(), reference.codes(), &self.scheme)
            .map_err(|e| AlignError::IntegrityViolation { device, detail: e.to_string() })?;
        let optimal = match self.simd_ws.try_lock() {
            Ok(mut ws) => {
                simd::score_profile(
                    query.codes(),
                    reference.codes(),
                    &self.scheme,
                    self.baseline,
                    &mut ws,
                )
                .score
            }
            Err(_) => {
                simd::score_profile(
                    query.codes(),
                    reference.codes(),
                    &self.scheme,
                    self.baseline,
                    &mut SimdWorkspace::new(),
                )
                .score
            }
        };
        if optimal != alignment.score {
            return Err(AlignError::IntegrityViolation {
                device,
                detail: format!(
                    "alignment is consistent but suboptimal: claimed score {}, optimal {optimal}",
                    alignment.score
                ),
            });
        }
        Ok(())
    }

    /// Runs every due canary probe (there may be none). Called by
    /// workers between pairs, so quarantined devices keep getting
    /// re-probed as long as the batch makes progress.
    pub(crate) fn run_due_canaries(&self) {
        loop {
            // NB: claim under its own statement so the health guard is
            // dropped before the probe runs (a `while let` scrutinee
            // guard would live across the body and self-deadlock).
            let due = self.health_feedback().claim_canary();
            let Some((id, rotation)) = due else { return };
            // LINT: allow(panic) index is reduced mod canaries.len(), and canaries is non-empty by construction
            let canary = &self.canaries[(rotation as usize) % self.canaries.len()];
            let passed = self.run_canary(id, canary);
            self.health_feedback().record_canary(id, passed);
        }
    }

    /// One canary probe: the device must align the known pair with no
    /// injected fault (detectable or silent) and reproduce the golden
    /// answer byte-identically.
    fn run_canary(&self, id: usize, canary: &Canary) -> bool {
        // Failpoint `pool.canary` (lane = device id): the probe itself
        // fails — a schedule can hold a device in quarantine past its
        // cooldown and then release it, exercising readmission timing.
        if smx_failpoint::hit_lane("pool.canary", id as u32).is_some() {
            return false;
        }
        // An unreachable device (poisoned by a panicked worker) cannot
        // pass a probe; it simply stays quarantined.
        let Ok(mut dev) = self.device(id) else { return false };
        let before = dev.recovery_stats();
        let result = dev.align(&canary.query, &canary.reference);
        let after = dev.recovery_stats();
        let clean_run = after.faults_injected == before.faults_injected
            && after.silent_corruptions == before.silent_corruptions;
        match result {
            Ok(a) => clean_run && a == canary.golden,
            Err(_) => false,
        }
    }

    /// Tears the pool down: per-device stats, pool counters, and the
    /// recovery counters merged across every device.
    pub(crate) fn finish(
        self,
    ) -> (Vec<DeviceStats>, PoolCounters, smx_coproc::faults::RecoveryStats) {
        let mut recovery = smx_coproc::faults::RecoveryStats::default();
        for dev in &self.devices {
            // Teardown is read-only over the counters; poison left by a
            // panicked worker must not hide the stats of the others.
            let dev = dev.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            recovery.merge(&dev.recovery_stats());
        }
        let (stats, counters) =
            self.health.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner).finish();
        (stats, counters, recovery)
    }

    /// Live per-device stats and pool counters without consuming the
    /// pool (recovery stats are left to [`DevicePool::finish`]).
    pub(crate) fn snapshot(&self) -> (Vec<DeviceStats>, PoolCounters) {
        self.health_feedback().snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::BreakerState;
    use smx_align_core::{AlignmentConfig, Cigar, Op};

    /// Every plausible-but-wrong result shape the silent fault model can
    /// produce — a skewed score, a flipped operation (CIGAR/sequence
    /// disagreement), and an inflated run length that walks off the
    /// reference end — must surface from the audit as the typed
    /// [`AlignError::IntegrityViolation`], never as a panic.
    #[test]
    fn every_corruption_shape_surfaces_as_integrity_violation() {
        let config = AlignmentConfig::DnaGap;
        let mut dev = SmxDevice::new(config, 2).unwrap();
        let pool = DevicePool::new(&dev, 1, None, None).unwrap();
        let card = config.alphabet().cardinality() as u32;
        let seq = |stride: u32, off: u32| {
            let codes: Vec<u8> = (0..48u32).map(|i| ((i * stride + off) % card) as u8).collect();
            Sequence::from_codes(config.alphabet(), codes).unwrap()
        };
        let (q, r) = (seq(7, 1), seq(5, 2));
        let good = dev.align(&q, &r).unwrap();
        pool.audit(3, &good, &q, &r).expect("honest result passes");

        // Score skew: CIGAR no longer re-scores to the claimed score.
        let mut skewed = good.clone();
        skewed.score = skewed.score.wrapping_add(1);
        // Op flip: first run's label disagrees with the symbols (or the
        // gap direction desynchronizes consumption).
        let mut flipped = good.clone();
        let mut flipped_cigar = Cigar::new();
        for (k, &(op, n)) in good.cigar.runs().iter().enumerate() {
            let op = if k == 0 {
                match op {
                    Op::Match => Op::Mismatch,
                    Op::Mismatch => Op::Match,
                    Op::Insert => Op::Delete,
                    Op::Delete => Op::Insert,
                }
            } else {
                op
            };
            flipped_cigar.push_run(op, n);
        }
        flipped.cigar = flipped_cigar;
        // Run overrun: the last run is inflated, so the walk runs off
        // the end of the sequences.
        let mut overrun = good.clone();
        let mut overrun_cigar = Cigar::new();
        let runs = good.cigar.runs();
        for (k, &(op, n)) in runs.iter().enumerate() {
            let n = if k + 1 == runs.len() { n.saturating_add(4) } else { n };
            overrun_cigar.push_run(op, n);
        }
        overrun.cigar = overrun_cigar;

        for (label, bad) in [("score-skew", skewed), ("op-flip", flipped), ("run-overrun", overrun)]
        {
            match pool.audit(3, &bad, &q, &r) {
                Err(AlignError::IntegrityViolation { device: 3, detail }) => {
                    assert!(!detail.is_empty(), "{label}: detail must describe the defect");
                }
                other => panic!("{label}: expected IntegrityViolation, got {other:?}"),
            }
        }
    }

    /// A *consistent* wrong answer — well-formed CIGAR, correct
    /// self-score, but a suboptimal path — passes the phase-1 walk by
    /// construction; only the streaming kernel's independent
    /// optimal-score pass (phase 2) can catch it.
    #[test]
    fn suboptimal_but_consistent_result_fails_the_score_audit() {
        let config = AlignmentConfig::DnaGap;
        let dev = SmxDevice::new(config, 2).unwrap();
        let pool = DevicePool::new(&dev, 1, None, None).unwrap();
        let scheme = config.scoring();
        let codes: Vec<u8> = (0..32u32).map(|i| (i % 4) as u8).collect();
        let q = Sequence::from_codes(config.alphabet(), codes.clone()).unwrap();
        let r = Sequence::from_codes(config.alphabet(), codes).unwrap();
        // Insert the whole query, then delete the whole reference:
        // perfectly self-consistent, wildly suboptimal for identical
        // sequences.
        let mut cigar = Cigar::new();
        cigar.push_run(Op::Insert, 32);
        cigar.push_run(Op::Delete, 32);
        let score = 32 * (scheme.gap_insert() + scheme.gap_delete());
        let sneaky = Alignment { score, cigar };
        sneaky.verify(q.codes(), r.codes(), &scheme).expect("the phase-1 walk cannot catch this");
        match pool.audit(0, &sneaky, &q, &r) {
            Err(AlignError::IntegrityViolation { device: 0, detail }) => {
                assert!(detail.contains("suboptimal"), "{detail}");
            }
            other => panic!("expected IntegrityViolation, got {other:?}"),
        }
    }

    fn quarantine_cfg() -> QuarantineConfig {
        QuarantineConfig {
            alpha: 0.5,
            threshold: 0.5,
            min_samples: 2,
            canary_period: 4,
            canary_probes: 2,
        }
    }

    fn bad() -> OutcomeEvents {
        OutcomeEvents { faulted: true, ..OutcomeEvents::default() }
    }

    #[test]
    fn round_robin_skips_quarantined_devices() {
        let mut h = PoolHealth::new(3, None, Some(quarantine_cfg()));
        // Sicken device 1 until it quarantines.
        for _ in 0..4 {
            h.record(1, Route::Device, bad());
        }
        assert!(h.is_quarantined(1));
        let mut seen = Vec::new();
        for _ in 0..4 {
            match h.dispatch() {
                Dispatch::Device { id, route } => {
                    assert_eq!(route, Route::Device);
                    seen.push(id);
                }
                Dispatch::Software => panic!("healthy devices remain"),
            }
        }
        assert!(!seen.contains(&1), "{seen:?}");
        assert_eq!(seen, vec![0, 2, 0, 2], "round-robin over the healthy pair");
    }

    #[test]
    fn all_quarantined_routes_to_software() {
        let mut h = PoolHealth::new(2, None, Some(quarantine_cfg()));
        for id in 0..2 {
            for _ in 0..4 {
                h.record(id, Route::Device, bad());
            }
        }
        assert_eq!(h.dispatch(), Dispatch::Software);
    }

    #[test]
    fn clean_outcomes_decay_health_below_threshold() {
        let mut h = PoolHealth::new(1, None, Some(quarantine_cfg()));
        // One bad pair then a run of clean ones: EWMA decays, no
        // quarantine at min_samples.
        h.record(0, Route::Device, bad());
        for _ in 0..6 {
            h.record(0, Route::Device, OutcomeEvents::default());
        }
        assert!(!h.is_quarantined(0));
        let (stats, _) = h.finish();
        assert!(stats[0].health < 0.05, "health {:.4}", stats[0].health);
    }

    #[test]
    fn canary_streak_readmits_and_resets_breaker() {
        let cfg = quarantine_cfg();
        let breaker = BreakerConfig { window: 4, min_samples: 2, ..BreakerConfig::default() };
        let mut h = PoolHealth::new(2, Some(breaker), Some(cfg));
        for _ in 0..4 {
            h.record(0, Route::Device, bad());
        }
        assert!(h.is_quarantined(0));
        // Not due yet: the canary clock is measured in dispatches.
        assert_eq!(h.claim_canary(), None);
        for _ in 0..cfg.canary_period {
            h.dispatch();
        }
        let (id, rotation) = h.claim_canary().expect("canary due");
        assert_eq!((id, rotation), (0, 0));
        // Claiming again immediately is a no-op (clock advanced).
        assert_eq!(h.claim_canary(), None);
        // A failed canary resets the streak.
        h.record_canary(0, false);
        for _ in 0..cfg.canary_period {
            h.dispatch();
        }
        let due = h.claim_canary().unwrap().0;
        h.record_canary(due, true);
        assert!(h.is_quarantined(0), "one clean canary is not enough");
        for _ in 0..cfg.canary_period {
            h.dispatch();
        }
        let due = h.claim_canary().unwrap().0;
        h.record_canary(due, true);
        assert!(!h.is_quarantined(0), "streak of {} readmits", cfg.canary_probes);
        let (stats, _) = h.finish();
        assert_eq!(stats[0].quarantines, 1);
        assert_eq!(stats[0].readmissions, 1);
        assert_eq!(stats[0].canary_runs, 3);
        assert_eq!(stats[0].canary_failures, 1);
        assert_eq!(stats[0].health, 0.0, "readmission resets health");
        let snap = stats[0].breaker.expect("breaker configured");
        assert_eq!(snap.state, BreakerState::Closed, "readmission resets the breaker");
    }

    #[test]
    fn software_outcomes_do_not_touch_device_health() {
        let mut h = PoolHealth::new(1, None, Some(quarantine_cfg()));
        for _ in 0..16 {
            h.record(0, Route::Software, bad());
        }
        assert!(!h.is_quarantined(0));
        let (stats, _) = h.finish();
        assert_eq!(stats[0].pairs, 0);
        assert_eq!(stats[0].health, 0.0);
    }

    #[test]
    fn deadline_events_feed_health_but_not_the_breaker() {
        let breaker = BreakerConfig { window: 4, min_samples: 2, ..BreakerConfig::default() };
        let mut h = PoolHealth::new(1, Some(breaker), Some(quarantine_cfg()));
        let deadline_only = OutcomeEvents { deadline: true, ..OutcomeEvents::default() };
        for _ in 0..4 {
            h.record(0, Route::Device, deadline_only);
        }
        assert!(h.is_quarantined(0), "deadline storms quarantine the device");
        let (stats, _) = h.finish();
        let snap = stats[0].breaker.expect("breaker configured");
        assert_eq!(snap.state, BreakerState::Closed, "deadlines never trip the breaker");
        assert_eq!(stats[0].deadline_events, 4);
    }

    #[test]
    fn audit_sampling_is_deterministic_and_tracks_rate() {
        let audit = AuditConfig { rate: 0.25, seed: 9 };
        let first: Vec<bool> = (0..4000).map(|i| audit.samples(i)).collect();
        let second: Vec<bool> = (0..4000).map(|i| audit.samples(i)).collect();
        assert_eq!(first, second);
        let hits = first.iter().filter(|&&b| b).count();
        assert!((700..1300).contains(&hits), "hits {hits}");
        assert!((0..100).all(|i| AuditConfig::full().samples(i)));
        assert!((0..100).all(|i| !AuditConfig { rate: 0.0, seed: 0 }.samples(i)));
    }

    #[test]
    fn p95_hedge_trigger_arms_after_min_samples() {
        let mut h = PoolHealth::new(1, None, None);
        let cfg = HedgeConfig { trigger: HedgeTrigger::P95 { min_samples: 10, multiplier: 2.0 } };
        assert_eq!(h.hedge_threshold(&cfg), None, "unarmed before min_samples");
        for ms in 1..=10u64 {
            h.record_latency(Duration::from_millis(ms));
        }
        let thr = h.hedge_threshold(&cfg).expect("armed");
        // p95 of 1..=10 ms is the highest retained sample (10 ms) x2.
        assert_eq!(thr, Duration::from_millis(20));
        let fixed = HedgeConfig::after(Duration::from_millis(7));
        assert_eq!(h.hedge_threshold(&fixed), Some(Duration::from_millis(7)));
    }
}
