//! The heterogeneous orchestration of paper §6 (Fig. 8a), functionally:
//! the core packs sequences with `smx.pack`, offloads the DP-block to the
//! SMX-2D coprocessor (which keeps only tile borders), and reconstructs
//! the alignment by tracing back with selective tile recomputation —
//! the role SMX-1D plays on the core.

use smx_algos::simd::{self, Baseline, SimdWorkspace};
use smx_align_core::{
    dp, AlignError, Alignment, AlignmentConfig, Cigar, Op, ScoringScheme, Sequence,
};
use smx_coproc::block::BlockMode;
use smx_coproc::control::CancelToken;
use smx_coproc::faults::{FaultEvent, FaultPlan, FaultSession, RecoveryPolicy, RecoveryStats};
use smx_coproc::traceback::RecomputeStats;
use smx_coproc::SmxCoprocessor;
use smx_isa::{kernels, InsnCounts, Smx1dUnit};

/// A functional SMX device: one SMX-1D-extended core plus one SMX-2D
/// coprocessor, sharing a configuration.
#[derive(Debug, Clone)]
pub struct SmxDevice {
    config: AlignmentConfig,
    scheme: ScoringScheme,
    unit: Smx1dUnit,
    coproc: SmxCoprocessor,
    recompute: RecomputeStats,
    faults: Option<FaultSession>,
    degrade: bool,
    baseline: Baseline,
    simd_ws: SimdWorkspace,
}

impl SmxDevice {
    /// Creates a device for `config` with `workers` SMX-workers.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the ISA unit and coprocessor.
    pub fn new(config: AlignmentConfig, workers: usize) -> Result<SmxDevice, AlignError> {
        let scheme = config.scoring();
        let ew = config.element_width();
        Ok(SmxDevice {
            config,
            scheme: scheme.clone(),
            unit: Smx1dUnit::configure(ew, &scheme)?,
            coproc: SmxCoprocessor::new(ew, &scheme, workers)?,
            recompute: RecomputeStats::default(),
            faults: None,
            degrade: true,
            baseline: Baseline::default(),
            simd_ws: SimdWorkspace::new(),
        })
    }

    /// Selects the software-baseline kernel (`scalar`, `simd`, or `auto`)
    /// that score-only fallbacks and the service audit's score pass route
    /// through. All kernels are byte-identical; this only picks *how* the
    /// score is computed. The pool template propagates the choice to
    /// every pooled device.
    pub fn set_baseline(&mut self, baseline: Baseline) {
        self.baseline = baseline;
    }

    /// The configured software-baseline kernel.
    #[must_use]
    pub fn baseline(&self) -> Baseline {
        self.baseline
    }

    /// Streaming software score via the configured baseline kernel: no
    /// pack, no offload, no matrix, no traceback — the cheap first phase
    /// of the two-phase contract (full CIGARs are recomputed separately,
    /// and only when needed).
    ///
    /// # Errors
    ///
    /// Same input validation as [`SmxDevice::align`].
    pub fn score_streaming(
        &mut self,
        query: &Sequence,
        reference: &Sequence,
    ) -> Result<i32, AlignError> {
        self.check(query, reference)?;
        if let Some(token) = self.coproc.control() {
            token.check()?;
        }
        let profile = simd::score_profile(
            query.codes(),
            reference.codes(),
            &self.scheme,
            self.baseline,
            &mut self.simd_ws,
        );
        Ok(profile.score)
    }

    /// Enables deterministic fault injection on the coprocessor paths,
    /// recovered under `policy` (tile retry, then software fallback or
    /// escalation). Replaces any previous session and resets its
    /// statistics.
    pub fn enable_fault_injection(&mut self, plan: FaultPlan, policy: RecoveryPolicy) {
        self.faults = Some(FaultSession::new(plan, policy));
    }

    /// Disables fault injection, discarding the session and its state.
    pub fn disable_fault_injection(&mut self) {
        self.faults = None;
    }

    /// Whether an unrecoverable device fault degrades the whole alignment
    /// to the core's software path (default `true`). With degradation off
    /// the structured fault error escalates to the caller — the
    /// fail-closed batch mode records it per pair.
    pub fn set_graceful_degradation(&mut self, yes: bool) {
        self.degrade = yes;
    }

    /// Installs (or clears) a cooperative cancellation / deadline token.
    /// The token is checked at every tile boundary of device block
    /// computations and tracebacks, and at the entry of each alignment
    /// stage, so a cancelled or expired pair aborts within one tile's
    /// worth of work.
    pub fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        self.coproc.set_control(token);
    }

    /// The installed cancellation token, if any.
    #[must_use]
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.coproc.control()
    }

    /// Recovery counters accumulated since fault injection was enabled
    /// (all zero when it never was).
    #[must_use]
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.faults.as_ref().map(FaultSession::stats).unwrap_or_default()
    }

    /// The active fault plan, when injection is enabled. The device pool
    /// reads this off its template device to derive per-device plans.
    #[must_use]
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.faults.as_ref().map(FaultSession::plan)
    }

    /// The active recovery policy, when injection is enabled.
    #[must_use]
    pub fn fault_policy(&self) -> Option<RecoveryPolicy> {
        self.faults.as_ref().map(FaultSession::policy)
    }

    /// Drains the cycle-stamped fault event log.
    pub fn take_fault_events(&mut self) -> Vec<FaultEvent> {
        self.faults.as_mut().map(FaultSession::take_events).unwrap_or_default()
    }

    /// The device configuration.
    #[must_use]
    pub fn config(&self) -> AlignmentConfig {
        self.config
    }

    /// Dynamic SMX-1D instruction counts accumulated so far.
    #[must_use]
    pub fn insn_counts(&self) -> InsnCounts {
        self.unit.counts()
    }

    /// Tile-recomputation statistics accumulated by tracebacks.
    #[must_use]
    pub fn recompute_stats(&self) -> RecomputeStats {
        self.recompute
    }

    fn check(&self, q: &Sequence, r: &Sequence) -> Result<(), AlignError> {
        if q.alphabet() != self.config.alphabet() || r.alphabet() != self.config.alphabet() {
            return Err(AlignError::AlphabetMismatch);
        }
        if q.is_empty() || r.is_empty() {
            return Err(AlignError::EmptySequence);
        }
        Ok(())
    }

    /// Packs a sequence through `smx.pack` (eight ASCII characters per
    /// instruction) and cross-checks the codes.
    fn pack(&mut self, s: &Sequence) -> Result<Vec<u8>, AlignError> {
        let packed = kernels::pack_ascii_sequence(&mut self.unit, s.to_text().as_bytes())?;
        let codes = packed.unpack();
        if codes != s.codes() {
            let position = codes
                .iter()
                .zip(s.codes())
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| codes.len().min(s.codes().len()));
            return Err(AlignError::PackDivergence { position });
        }
        Ok(codes)
    }

    /// Full heterogeneous alignment: pack → offload → traceback with tile
    /// recomputation.
    ///
    /// # Errors
    ///
    /// Returns [`AlignError::AlphabetMismatch`] / [`AlignError::EmptySequence`]
    /// on invalid inputs; internal errors indicate a model bug.
    pub fn align(
        &mut self,
        query: &Sequence,
        reference: &Sequence,
    ) -> Result<Alignment, AlignError> {
        self.check(query, reference)?;
        if let Some(token) = self.coproc.control() {
            token.check()?;
        }
        let q = self.pack(query)?;
        let r = self.pack(reference)?;
        match self.align_device(&q, &r) {
            // The result readout is the one hop past every checksum and
            // the device's internal re-verification: a plan with a
            // silent rate corrupts the finished alignment here, and only
            // the service layer's audit can catch it.
            Ok(mut alignment) => {
                if let Some(s) = self.faults.as_mut() {
                    s.corrupt_readout(&mut alignment);
                }
                Ok(alignment)
            }
            // Graceful degradation: when tile-level recovery is exhausted,
            // the core recomputes the whole alignment on the SMX-1D /
            // software path. The software path shares the global tie-break
            // with the tiled traceback, so the degraded result is
            // byte-identical (score and CIGAR) to the fault-free one.
            Err(e) if e.is_recoverable_fault() && self.faults.is_some() && self.degrade => {
                if let Some(s) = self.faults.as_mut() {
                    s.record_software_alignment();
                }
                let alignment = dp::align_codes(&q, &r, &self.scheme);
                alignment.verify(&q, &r, &self.scheme)?;
                Ok(alignment)
            }
            Err(e) => Err(e),
        }
    }

    /// The device-side alignment flow (offload + traceback), routed
    /// through the fault session when one is active.
    fn align_device(&mut self, q: &[u8], r: &[u8]) -> Result<Alignment, AlignError> {
        let out = match self.faults.as_mut() {
            Some(s) => self.coproc.compute_block_resilient(q, r, None, BlockMode::Traceback, s)?,
            None => self.coproc.compute_block(q, r, None, BlockMode::Traceback)?,
        };
        let (cigar, stats) = match self.faults.as_mut() {
            Some(s) => self.coproc.traceback_resilient(q, r, &out, s)?,
            None => self.coproc.traceback(q, r, &out)?,
        };
        self.recompute.tiles += stats.tiles;
        self.recompute.elements += stats.elements;
        self.recompute.steps += stats.steps;
        // Charge the recomputation to the SMX-1D unit, which performs it
        // on the core (2 instructions per recomputed column).
        let vl = self.config.element_width().vl() as u64;
        self.unit.charge(0, 0, stats.steps * 4);
        let cols = stats.elements / vl.max(1);
        self.unit.charge(cols / 4, 0, cols * 2);
        let alignment = Alignment { score: out.score, cigar };
        alignment.verify(q, r, &self.scheme)?;
        Ok(alignment)
    }

    /// Pure software baseline on the core (no pack, no offload): the path
    /// the service layer's circuit breaker routes pairs to while it is
    /// open. Shares the global tie-break with the tiled device traceback,
    /// so its output is byte-identical to a fault-free device run.
    ///
    /// # Errors
    ///
    /// Same input validation as [`SmxDevice::align`]. An installed
    /// cancellation token is honoured at entry only — the software kernel
    /// has no tile boundaries to poll.
    pub fn align_software(
        &mut self,
        query: &Sequence,
        reference: &Sequence,
    ) -> Result<Alignment, AlignError> {
        self.check(query, reference)?;
        if let Some(token) = self.coproc.control() {
            token.check()?;
        }
        let (q, r) = (query.codes(), reference.codes());
        // Perfect-match fast path: for identical sequences under uniform
        // match scoring the all-diagonal path is optimal and is exactly
        // what the golden tie-break (diagonal ≻ up ≻ left) walks, so the
        // O(m·n) DP collapses to a memcmp plus a score fold. Matrix
        // schemes skip this (a substitution matrix need not be
        // diagonally dominant).
        if !self.scheme.uses_matrix() && q == r {
            let score = q.iter().fold(0i32, |acc, &c| acc.saturating_add(self.scheme.score(c, c)));
            let mut cigar = Cigar::new();
            cigar.push_run(Op::Match, q.len() as u32);
            let alignment = Alignment { score, cigar };
            alignment.verify(q, r, &self.scheme)?;
            return Ok(alignment);
        }
        // With a token installed the host DP gets the same cooperative
        // abort granularity as the coprocessor's tile boundaries, so a
        // deadline caps software recomputation too (hedge backups, audit
        // recomputes, degraded-mode service) instead of only the
        // accelerated paths.
        let alignment = match self.coproc.control() {
            Some(token) => dp::align_codes_checked(q, r, &self.scheme, &mut || token.check())?,
            None => dp::align_codes(q, r, &self.scheme),
        };
        alignment.verify(q, r, &self.scheme)?;
        Ok(alignment)
    }

    /// Score-only heterogeneous alignment: pack → offload → Δ-summation.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SmxDevice::align`].
    pub fn score(&mut self, query: &Sequence, reference: &Sequence) -> Result<i32, AlignError> {
        self.check(query, reference)?;
        if let Some(token) = self.coproc.control() {
            token.check()?;
        }
        let q = self.pack(query)?;
        let r = self.pack(reference)?;
        let device = match self.faults.as_mut() {
            Some(s) => self
                .coproc
                .compute_block_resilient(&q, &r, None, BlockMode::ScoreOnly, s)
                .map(|out| out.score),
            None => self.coproc.compute_block(&q, &r, None, BlockMode::ScoreOnly).map(|o| o.score),
        };
        match device {
            Ok(score) => Ok(score),
            Err(e) if e.is_recoverable_fault() && self.faults.is_some() && self.degrade => {
                if let Some(s) = self.faults.as_mut() {
                    s.record_software_alignment();
                }
                // Degraded score-only work routes through the streaming
                // kernel (byte-identical to dp::score_only, minus the
                // matrix and traceback the device path never needed).
                let profile =
                    simd::score_profile(&q, &r, &self.scheme, self.baseline, &mut self.simd_ws);
                Ok(profile.score)
            }
            Err(e) => Err(e),
        }
    }

    /// Aligns every pair in a batch, failing closed: a pair that cannot
    /// be aligned (poisoned input, unrecoverable fault under a strict
    /// policy, an expired deadline) is recorded as a structured per-pair
    /// failure and the batch continues with the remaining pairs.
    ///
    /// This is the single-device entry into the batch service layer; the
    /// multi-worker pool with backpressure, deadlines, and the circuit
    /// breaker lives in [`crate::service::BatchExecutor`].
    pub fn align_batch(&mut self, pairs: &[(Sequence, Sequence)]) -> DeviceBatchReport {
        crate::service::device_batch(self, pairs)
    }
}

/// One pair's structured failure inside a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchFailure {
    /// Index of the failing pair within the batch.
    pub index: usize,
    /// The structured error that poisoned it.
    pub error: AlignError,
}

/// Outcome of [`SmxDevice::align_batch`]: per-pair results (aligned
/// positionally with the input), the failures, and the device's recovery
/// counters after the batch.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceBatchReport {
    /// One entry per input pair; `None` where the pair failed.
    pub alignments: Vec<Option<Alignment>>,
    /// Structured per-pair failures, in input order.
    pub failures: Vec<BatchFailure>,
    /// Recovery counters accumulated on the device (zero when fault
    /// injection is disabled).
    pub recovery: RecoveryStats,
}

impl DeviceBatchReport {
    /// Number of pairs that aligned successfully.
    #[must_use]
    pub fn succeeded(&self) -> usize {
        self.alignments.iter().filter(|a| a.is_some()).count()
    }

    /// Whether every pair aligned.
    #[must_use]
    pub fn all_succeeded(&self) -> bool {
        self.failures.is_empty()
    }

    /// One-line-per-failure summary for logs and the CLI, with an
    /// aggregate cause breakdown (deadlines and cancellations called out
    /// so operators can tell overload from bad input).
    #[must_use]
    pub fn failure_summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!(
            "{}/{} pairs aligned, {} failed",
            self.succeeded(),
            self.alignments.len(),
            self.failures.len()
        );
        let deadline = self
            .failures
            .iter()
            .filter(|f| matches!(f.error, AlignError::DeadlineExceeded { .. }))
            .count();
        let cancelled =
            self.failures.iter().filter(|f| matches!(f.error, AlignError::Cancelled)).count();
        if deadline + cancelled > 0 {
            let _ = write!(s, " ({deadline} deadline-exceeded, {cancelled} cancelled)");
        }
        for f in &self.failures {
            let _ = write!(s, "\n  pair {}: {}", f.index, f.error);
        }
        s
    }
}

/// The gap-affine heterogeneous device ("SMX-A"): the extension
/// counterpart of [`SmxDevice`], wiring the affine engine and its
/// tile-recompute traceback behind the same pack → offload → traceback
/// flow.
#[derive(Debug, Clone)]
pub struct AffineDevice {
    scheme: smx_align_core::dp_affine::AffineScheme,
    engine: smx_coproc::affine::AffineEngine,
    alphabet: smx_align_core::Alphabet,
}

impl AffineDevice {
    /// Creates an affine device for a DNA alphabet and scheme.
    ///
    /// # Errors
    ///
    /// Propagates datapath-width validation errors.
    pub fn new(
        alphabet: smx_align_core::Alphabet,
        scheme: smx_align_core::dp_affine::AffineScheme,
    ) -> Result<AffineDevice, AlignError> {
        let pen = smx_diffenc::affine::AffinePenalties::from_scheme(&scheme)?;
        let ew = match alphabet {
            smx_align_core::Alphabet::Dna2 => smx_align_core::ElementWidth::W4,
            smx_align_core::Alphabet::Dna4 => smx_align_core::ElementWidth::W4,
            smx_align_core::Alphabet::Protein => smx_align_core::ElementWidth::W6,
            smx_align_core::Alphabet::Ascii => smx_align_core::ElementWidth::W8,
        };
        Ok(AffineDevice {
            scheme,
            engine: smx_coproc::affine::AffineEngine::new(ew, pen)?,
            alphabet,
        })
    }

    /// Score-only affine alignment on the tiled engine.
    ///
    /// # Errors
    ///
    /// Returns [`AlignError::AlphabetMismatch`] / [`AlignError::EmptySequence`]
    /// on invalid inputs.
    pub fn score(&self, query: &Sequence, reference: &Sequence) -> Result<i32, AlignError> {
        self.check(query, reference)?;
        self.engine.score_block(query.codes(), reference.codes())
    }

    /// Full affine alignment: border-stored block + layered traceback.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AffineDevice::score`].
    pub fn align(&self, query: &Sequence, reference: &Sequence) -> Result<Alignment, AlignError> {
        self.check(query, reference)?;
        let res = self.engine.compute_block_traceback(query.codes(), reference.codes())?;
        let cigar = self.engine.traceback(query.codes(), reference.codes(), &res)?;
        let rescored = smx_align_core::dp_affine::affine_rescore(
            &cigar,
            query.codes(),
            reference.codes(),
            &self.scheme,
        )?;
        if rescored != res.score {
            return Err(AlignError::Internal(format!(
                "affine cigar re-scores to {rescored}, block claims {}",
                res.score
            )));
        }
        Ok(Alignment { score: res.score, cigar })
    }

    fn check(&self, q: &Sequence, r: &Sequence) -> Result<(), AlignError> {
        if q.alphabet() != self.alphabet || r.alphabet() != self.alphabet {
            return Err(AlignError::AlphabetMismatch);
        }
        if q.is_empty() || r.is_empty() {
            return Err(AlignError::EmptySequence);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smx_align_core::dp;

    fn seqs(config: AlignmentConfig, len: usize) -> (Sequence, Sequence) {
        let card = config.alphabet().cardinality() as u32;
        // ASCII codes below 32 are valid bytes; keep them printable for
        // the pack path by staying within the alphabet anyway.
        let take = |stride: u32, off: u32| -> Sequence {
            let codes: Vec<u8> = (0..len as u32)
                .map(|i| {
                    let c = (i * stride + off + (i >> 4)) % card;
                    if config == AlignmentConfig::Ascii {
                        (32 + c % 95) as u8
                    } else {
                        c as u8
                    }
                })
                .collect();
            Sequence::from_codes(config.alphabet(), codes).unwrap()
        };
        (take(7, 1), take(5, 0))
    }

    #[test]
    fn heterogeneous_align_matches_golden() {
        for config in AlignmentConfig::ALL {
            let (q, r) = seqs(config, 90);
            let mut dev = SmxDevice::new(config, 4).unwrap();
            let aln = dev.align(&q, &r).unwrap();
            let golden = dp::align_codes(q.codes(), r.codes(), &config.scoring());
            assert_eq!(aln.score, golden.score, "{config}");
        }
    }

    #[test]
    fn score_matches_align() {
        let config = AlignmentConfig::DnaGap;
        let (q, r) = seqs(config, 70);
        let mut dev = SmxDevice::new(config, 2).unwrap();
        let s = dev.score(&q, &r).unwrap();
        let a = dev.align(&q, &r).unwrap();
        assert_eq!(s, a.score);
    }

    #[test]
    fn counts_accumulate_across_calls() {
        let config = AlignmentConfig::DnaEdit;
        let (q, r) = seqs(config, 64);
        let mut dev = SmxDevice::new(config, 1).unwrap();
        let _ = dev.align(&q, &r).unwrap();
        let c1 = dev.insn_counts().smx_pack;
        let _ = dev.align(&q, &r).unwrap();
        assert!(dev.insn_counts().smx_pack > c1);
        assert!(dev.recompute_stats().tiles >= 2);
    }

    #[test]
    fn score_streaming_matches_device_score_and_golden() {
        for config in AlignmentConfig::ALL {
            let (q, r) = seqs(config, 90);
            let mut dev = SmxDevice::new(config, 2).unwrap();
            let golden = dp::score_only(q.codes(), r.codes(), &config.scoring());
            assert_eq!(dev.score(&q, &r).unwrap(), golden, "{config} device");
            for b in Baseline::ALL {
                dev.set_baseline(b);
                assert_eq!(dev.baseline(), b);
                assert_eq!(dev.score_streaming(&q, &r).unwrap(), golden, "{config} {b}");
            }
        }
    }

    #[test]
    fn perfect_match_fast_path_is_byte_identical() {
        // Identical sequences hit the memcmp fast path on uniform schemes
        // and the full DP on matrix schemes; both must reproduce the
        // golden model byte-for-byte.
        for config in AlignmentConfig::ALL {
            let (q, _) = seqs(config, 120);
            let mut dev = SmxDevice::new(config, 2).unwrap();
            let fast = dev.align_software(&q, &q).unwrap();
            let golden = dp::align_codes(q.codes(), q.codes(), &config.scoring());
            assert_eq!(fast.score, golden.score, "{config}");
            assert_eq!(fast.cigar.to_string(), golden.cigar.to_string(), "{config}");
        }
    }

    #[test]
    fn degraded_score_fallback_routes_through_the_kernel() {
        let config = AlignmentConfig::DnaGap;
        let (q, r) = seqs(config, 90);
        let clean = SmxDevice::new(config, 2).unwrap().score(&q, &r).unwrap();
        for b in Baseline::ALL {
            let mut dev = SmxDevice::new(config, 2).unwrap();
            dev.set_baseline(b);
            // Every tile faults persistently under a strict policy: the
            // score-only path degrades to the streaming kernel.
            dev.enable_fault_injection(
                FaultPlan::new(7, 1.0).with_persistence(1.0),
                RecoveryPolicy::strict(),
            );
            assert_eq!(dev.score(&q, &r).unwrap(), clean, "{b}");
            assert_eq!(dev.recovery_stats().software_alignments, 1, "{b}");
        }
    }

    #[test]
    fn affine_device_matches_gotoh() {
        use smx_align_core::dp_affine::{affine_score, AffineScheme};
        let scheme = AffineScheme::minimap2();
        let dev = AffineDevice::new(smx_align_core::Alphabet::Dna2, scheme).unwrap();
        let r = Sequence::from_codes(
            smx_align_core::Alphabet::Dna2,
            (0..90u32).map(|i| ((i * 7 + (i >> 4)) % 4) as u8).collect(),
        )
        .unwrap();
        let mut q_codes = r.codes().to_vec();
        q_codes.drain(30..55);
        let q = Sequence::from_codes(smx_align_core::Alphabet::Dna2, q_codes).unwrap();
        let golden = affine_score(q.codes(), r.codes(), &scheme);
        assert_eq!(dev.score(&q, &r).unwrap(), golden);
        let aln = dev.align(&q, &r).unwrap();
        assert_eq!(aln.score, golden);
        // One consolidated 25-base deletion.
        assert!(aln
            .cigar
            .runs()
            .iter()
            .any(|&(op, n)| op == smx_align_core::Op::Delete && n == 25));
    }

    #[test]
    fn affine_device_rejects_mismatched_alphabet() {
        let dev = AffineDevice::new(
            smx_align_core::Alphabet::Dna2,
            smx_align_core::dp_affine::AffineScheme::minimap2(),
        )
        .unwrap();
        let p = Sequence::from_text(smx_align_core::Alphabet::Protein, "WYV").unwrap();
        assert!(matches!(dev.score(&p, &p), Err(AlignError::AlphabetMismatch)));
    }

    #[test]
    fn wrong_alphabet_rejected() {
        let mut dev = SmxDevice::new(AlignmentConfig::DnaEdit, 1).unwrap();
        let q = Sequence::from_text(smx_align_core::Alphabet::Protein, "WYV").unwrap();
        assert!(matches!(dev.align(&q, &q), Err(AlignError::AlphabetMismatch)));
    }

    #[test]
    fn faulty_align_is_byte_identical_to_clean() {
        for config in AlignmentConfig::ALL {
            let (q, r) = seqs(config, 90);
            let mut clean_dev = SmxDevice::new(config, 4).unwrap();
            let clean = clean_dev.align(&q, &r).unwrap();
            for rate in [1e-4, 1e-3, 1e-2, 0.5] {
                let mut dev = SmxDevice::new(config, 4).unwrap();
                dev.enable_fault_injection(FaultPlan::new(42, rate), RecoveryPolicy::default());
                let aln = dev.align(&q, &r).unwrap();
                assert_eq!(aln.score, clean.score, "{config} rate {rate}");
                assert_eq!(aln.cigar.to_string(), clean.cigar.to_string(), "{config} rate {rate}");
                assert!(dev.recovery_stats().invariants_hold(), "{config} rate {rate}");
            }
        }
    }

    #[test]
    fn strict_policy_degrades_to_software() {
        let config = AlignmentConfig::DnaGap;
        let (q, r) = seqs(config, 90);
        let clean = SmxDevice::new(config, 4).unwrap().align(&q, &r).unwrap();
        let mut dev = SmxDevice::new(config, 4).unwrap();
        // Every tile faults persistently and nothing retries or falls
        // back at tile level: the whole alignment degrades to software.
        dev.enable_fault_injection(
            FaultPlan::new(7, 1.0).with_persistence(1.0),
            RecoveryPolicy::strict(),
        );
        let aln = dev.align(&q, &r).unwrap();
        assert_eq!(aln.score, clean.score);
        assert_eq!(aln.cigar.to_string(), clean.cigar.to_string());
        let stats = dev.recovery_stats();
        assert_eq!(stats.software_alignments, 1);
        assert!(!dev.take_fault_events().is_empty());
    }

    #[test]
    fn degradation_off_escalates_structured_error() {
        let config = AlignmentConfig::DnaGap;
        let (q, r) = seqs(config, 90);
        let mut dev = SmxDevice::new(config, 4).unwrap();
        dev.enable_fault_injection(
            FaultPlan::new(7, 1.0).with_persistence(1.0),
            RecoveryPolicy::strict(),
        );
        dev.set_graceful_degradation(false);
        let err = dev.align(&q, &r).unwrap_err();
        assert!(matches!(err, AlignError::RecoveryExhausted { .. }), "{err}");
    }

    #[test]
    fn faulty_score_matches_clean() {
        let config = AlignmentConfig::DnaEdit;
        let (q, r) = seqs(config, 80);
        let clean = SmxDevice::new(config, 2).unwrap().score(&q, &r).unwrap();
        let mut dev = SmxDevice::new(config, 2).unwrap();
        dev.enable_fault_injection(FaultPlan::new(3, 0.3), RecoveryPolicy::default());
        assert_eq!(dev.score(&q, &r).unwrap(), clean);
    }

    #[test]
    fn batch_fails_closed_on_poisoned_pair() {
        let config = AlignmentConfig::DnaGap;
        let (q, r) = seqs(config, 60);
        let poisoned = Sequence::from_text(smx_align_core::Alphabet::Protein, "WYVAC").unwrap();
        let mut dev = SmxDevice::new(config, 2).unwrap();
        dev.enable_fault_injection(FaultPlan::new(1, 1e-2), RecoveryPolicy::default());
        let pairs =
            vec![(q.clone(), r.clone()), (poisoned.clone(), r.clone()), (r.clone(), q.clone())];
        let report = dev.align_batch(&pairs);
        assert_eq!(report.succeeded(), 2);
        assert!(!report.all_succeeded());
        assert!(report.alignments[0].is_some());
        assert!(report.alignments[1].is_none());
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].index, 1);
        assert!(matches!(report.failures[0].error, AlignError::AlphabetMismatch));
        let summary = report.failure_summary();
        assert!(summary.contains("2/3 pairs aligned"), "{summary}");
        assert!(summary.contains("pair 1:"), "{summary}");
    }

    #[test]
    fn degenerate_inputs_are_typed_errors_or_defined_results() {
        let config = AlignmentConfig::DnaGap;
        let mut dev = SmxDevice::new(config, 2).unwrap();
        let empty = Sequence::from_codes(config.alphabet(), vec![]).unwrap();
        let one = Sequence::from_codes(config.alphabet(), vec![2]).unwrap();
        // Empty inputs surface as typed errors from every entry point.
        assert!(matches!(dev.align(&empty, &one), Err(AlignError::EmptySequence)));
        assert!(matches!(dev.align(&one, &empty), Err(AlignError::EmptySequence)));
        assert!(matches!(dev.score(&empty, &one), Err(AlignError::EmptySequence)));
        assert!(matches!(dev.align_software(&empty, &one), Err(AlignError::EmptySequence)));
        // Single symbols align.
        let a = dev.align(&one, &one).unwrap();
        assert_eq!(a.cigar.to_string(), "1=");
        // query == reference: perfect diagonal, device and software agree.
        let (q, _) = seqs(config, 75);
        let a = dev.align(&q, &q).unwrap();
        let sw = dev.align_software(&q, &q).unwrap();
        assert_eq!(a.score, sw.score);
        assert_eq!(a.cigar.to_string(), sw.cigar.to_string());
        assert_eq!(a.cigar.query_len(), q.len());
        // Affine device too.
        let adev = AffineDevice::new(
            smx_align_core::Alphabet::Dna2,
            smx_align_core::dp_affine::AffineScheme::minimap2(),
        )
        .unwrap();
        let e2 = Sequence::from_codes(smx_align_core::Alphabet::Dna2, vec![]).unwrap();
        let o2 = Sequence::from_codes(smx_align_core::Alphabet::Dna2, vec![1]).unwrap();
        assert!(matches!(adev.align(&e2, &o2), Err(AlignError::EmptySequence)));
        assert_eq!(adev.align(&o2, &o2).unwrap().cigar.to_string(), "1=");
    }

    #[test]
    fn software_path_is_byte_identical_to_device_path() {
        for config in AlignmentConfig::ALL {
            let (q, r) = seqs(config, 80);
            let mut dev = SmxDevice::new(config, 2).unwrap();
            let device = dev.align(&q, &r).unwrap();
            let software = dev.align_software(&q, &r).unwrap();
            assert_eq!(device.score, software.score, "{config}");
            assert_eq!(device.cigar.to_string(), software.cigar.to_string(), "{config}");
        }
    }

    #[test]
    fn cancel_token_aborts_align_and_deadline_is_typed() {
        let config = AlignmentConfig::DnaGap;
        let (q, r) = seqs(config, 80);
        let mut dev = SmxDevice::new(config, 2).unwrap();
        let token = CancelToken::new();
        dev.set_cancel_token(Some(token.clone()));
        assert!(dev.align(&q, &r).is_ok());
        token.cancel();
        assert!(matches!(dev.align(&q, &r), Err(AlignError::Cancelled)));
        assert!(matches!(dev.align_software(&q, &r), Err(AlignError::Cancelled)));
        dev.set_cancel_token(Some(
            CancelToken::new().fork_with_deadline(std::time::Duration::ZERO),
        ));
        assert!(matches!(dev.align(&q, &r), Err(AlignError::DeadlineExceeded { .. })));
        dev.set_cancel_token(None);
        assert!(dev.align(&q, &r).is_ok());
    }

    #[test]
    fn silent_corruption_escapes_the_device_undetected() {
        let config = AlignmentConfig::DnaGap;
        let (q, r) = seqs(config, 80);
        let clean = SmxDevice::new(config, 2).unwrap().align(&q, &r).unwrap();
        let mut dev = SmxDevice::new(config, 2).unwrap();
        dev.enable_fault_injection(
            FaultPlan::new(11, 0.0).with_silent_rate(1.0),
            RecoveryPolicy::default(),
        );
        // The device "succeeds" — that is the whole problem: the result
        // is plausible-but-wrong and nothing device-side flags it.
        let aln = dev.align(&q, &r).unwrap();
        assert_ne!(
            (aln.score, aln.cigar.to_string()),
            (clean.score, clean.cigar.to_string()),
            "silent corruption must damage the readout"
        );
        let stats = dev.recovery_stats();
        assert_eq!(stats.silent_corruptions, 1);
        assert_eq!(stats.faults_detected, 0);
        // The independent audit oracle catches it.
        let scheme = config.scoring();
        assert!(aln.verify(q.codes(), r.codes(), &scheme).is_err());
        // Accessors used by the pool to derive per-device plans.
        assert_eq!(dev.fault_plan().unwrap().silent_rate(), 1.0);
        assert!(dev.fault_policy().unwrap().software_fallback);
    }

    #[test]
    fn disable_fault_injection_resets_stats() {
        let config = AlignmentConfig::DnaGap;
        let (q, r) = seqs(config, 60);
        let mut dev = SmxDevice::new(config, 2).unwrap();
        dev.enable_fault_injection(FaultPlan::new(5, 1.0), RecoveryPolicy::default());
        let _ = dev.align(&q, &r).unwrap();
        assert!(dev.recovery_stats().faults_injected > 0);
        dev.disable_fault_injection();
        assert_eq!(dev.recovery_stats(), RecoveryStats::default());
    }
}
