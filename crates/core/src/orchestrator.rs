//! The heterogeneous orchestration of paper §6 (Fig. 8a), functionally:
//! the core packs sequences with `smx.pack`, offloads the DP-block to the
//! SMX-2D coprocessor (which keeps only tile borders), and reconstructs
//! the alignment by tracing back with selective tile recomputation —
//! the role SMX-1D plays on the core.

use smx_align_core::{AlignError, Alignment, AlignmentConfig, ScoringScheme, Sequence};
use smx_coproc::block::BlockMode;
use smx_coproc::traceback::RecomputeStats;
use smx_coproc::SmxCoprocessor;
use smx_isa::{kernels, InsnCounts, Smx1dUnit};

/// A functional SMX device: one SMX-1D-extended core plus one SMX-2D
/// coprocessor, sharing a configuration.
#[derive(Debug, Clone)]
pub struct SmxDevice {
    config: AlignmentConfig,
    scheme: ScoringScheme,
    unit: Smx1dUnit,
    coproc: SmxCoprocessor,
    recompute: RecomputeStats,
}

impl SmxDevice {
    /// Creates a device for `config` with `workers` SMX-workers.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the ISA unit and coprocessor.
    pub fn new(config: AlignmentConfig, workers: usize) -> Result<SmxDevice, AlignError> {
        let scheme = config.scoring();
        let ew = config.element_width();
        Ok(SmxDevice {
            config,
            scheme: scheme.clone(),
            unit: Smx1dUnit::configure(ew, &scheme)?,
            coproc: SmxCoprocessor::new(ew, &scheme, workers)?,
            recompute: RecomputeStats::default(),
        })
    }

    /// The device configuration.
    #[must_use]
    pub fn config(&self) -> AlignmentConfig {
        self.config
    }

    /// Dynamic SMX-1D instruction counts accumulated so far.
    #[must_use]
    pub fn insn_counts(&self) -> InsnCounts {
        self.unit.counts()
    }

    /// Tile-recomputation statistics accumulated by tracebacks.
    #[must_use]
    pub fn recompute_stats(&self) -> RecomputeStats {
        self.recompute
    }

    fn check(&self, q: &Sequence, r: &Sequence) -> Result<(), AlignError> {
        if q.alphabet() != self.config.alphabet() || r.alphabet() != self.config.alphabet() {
            return Err(AlignError::AlphabetMismatch);
        }
        if q.is_empty() || r.is_empty() {
            return Err(AlignError::EmptySequence);
        }
        Ok(())
    }

    /// Packs a sequence through `smx.pack` (eight ASCII characters per
    /// instruction) and cross-checks the codes.
    fn pack(&mut self, s: &Sequence) -> Result<Vec<u8>, AlignError> {
        let packed = kernels::pack_ascii_sequence(&mut self.unit, s.to_text().as_bytes())?;
        let codes = packed.unpack();
        if codes != s.codes() {
            return Err(AlignError::Internal("smx.pack produced diverging codes".into()));
        }
        Ok(codes)
    }

    /// Full heterogeneous alignment: pack → offload → traceback with tile
    /// recomputation.
    ///
    /// # Errors
    ///
    /// Returns [`AlignError::AlphabetMismatch`] / [`AlignError::EmptySequence`]
    /// on invalid inputs; internal errors indicate a model bug.
    pub fn align(&mut self, query: &Sequence, reference: &Sequence) -> Result<Alignment, AlignError> {
        self.check(query, reference)?;
        let q = self.pack(query)?;
        let r = self.pack(reference)?;
        let out = self.coproc.compute_block(&q, &r, None, BlockMode::Traceback)?;
        let (cigar, stats) = self.coproc.traceback(&q, &r, &out)?;
        self.recompute.tiles += stats.tiles;
        self.recompute.elements += stats.elements;
        self.recompute.steps += stats.steps;
        // Charge the recomputation to the SMX-1D unit, which performs it
        // on the core (2 instructions per recomputed column).
        let vl = self.config.element_width().vl() as u64;
        self.unit.charge(0, 0, stats.steps * 4);
        let cols = stats.elements / vl.max(1);
        self.unit.charge(cols / 4, 0, cols * 2);
        let alignment = Alignment { score: out.score, cigar };
        alignment.verify(&q, &r, &self.scheme)?;
        Ok(alignment)
    }

    /// Score-only heterogeneous alignment: pack → offload → Δ-summation.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SmxDevice::align`].
    pub fn score(&mut self, query: &Sequence, reference: &Sequence) -> Result<i32, AlignError> {
        self.check(query, reference)?;
        let q = self.pack(query)?;
        let r = self.pack(reference)?;
        let out = self.coproc.compute_block(&q, &r, None, BlockMode::ScoreOnly)?;
        Ok(out.score)
    }
}

/// The gap-affine heterogeneous device ("SMX-A"): the extension
/// counterpart of [`SmxDevice`], wiring the affine engine and its
/// tile-recompute traceback behind the same pack → offload → traceback
/// flow.
#[derive(Debug, Clone)]
pub struct AffineDevice {
    scheme: smx_align_core::dp_affine::AffineScheme,
    engine: smx_coproc::affine::AffineEngine,
    alphabet: smx_align_core::Alphabet,
}

impl AffineDevice {
    /// Creates an affine device for a DNA alphabet and scheme.
    ///
    /// # Errors
    ///
    /// Propagates datapath-width validation errors.
    pub fn new(
        alphabet: smx_align_core::Alphabet,
        scheme: smx_align_core::dp_affine::AffineScheme,
    ) -> Result<AffineDevice, AlignError> {
        let pen = smx_diffenc::affine::AffinePenalties::from_scheme(&scheme)?;
        let ew = match alphabet {
            smx_align_core::Alphabet::Dna2 => smx_align_core::ElementWidth::W4,
            smx_align_core::Alphabet::Dna4 => smx_align_core::ElementWidth::W4,
            smx_align_core::Alphabet::Protein => smx_align_core::ElementWidth::W6,
            smx_align_core::Alphabet::Ascii => smx_align_core::ElementWidth::W8,
        };
        Ok(AffineDevice {
            scheme,
            engine: smx_coproc::affine::AffineEngine::new(ew, pen)?,
            alphabet,
        })
    }

    /// Score-only affine alignment on the tiled engine.
    ///
    /// # Errors
    ///
    /// Returns [`AlignError::AlphabetMismatch`] / [`AlignError::EmptySequence`]
    /// on invalid inputs.
    pub fn score(&self, query: &Sequence, reference: &Sequence) -> Result<i32, AlignError> {
        self.check(query, reference)?;
        self.engine.score_block(query.codes(), reference.codes())
    }

    /// Full affine alignment: border-stored block + layered traceback.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AffineDevice::score`].
    pub fn align(&self, query: &Sequence, reference: &Sequence) -> Result<Alignment, AlignError> {
        self.check(query, reference)?;
        let res = self.engine.compute_block_traceback(query.codes(), reference.codes())?;
        let cigar = self.engine.traceback(query.codes(), reference.codes(), &res)?;
        let rescored = smx_align_core::dp_affine::affine_rescore(
            &cigar,
            query.codes(),
            reference.codes(),
            &self.scheme,
        )?;
        if rescored != res.score {
            return Err(AlignError::Internal(format!(
                "affine cigar re-scores to {rescored}, block claims {}",
                res.score
            )));
        }
        Ok(Alignment { score: res.score, cigar })
    }

    fn check(&self, q: &Sequence, r: &Sequence) -> Result<(), AlignError> {
        if q.alphabet() != self.alphabet || r.alphabet() != self.alphabet {
            return Err(AlignError::AlphabetMismatch);
        }
        if q.is_empty() || r.is_empty() {
            return Err(AlignError::EmptySequence);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smx_align_core::dp;

    fn seqs(config: AlignmentConfig, len: usize) -> (Sequence, Sequence) {
        let card = config.alphabet().cardinality() as u32;
        // ASCII codes below 32 are valid bytes; keep them printable for
        // the pack path by staying within the alphabet anyway.
        let take = |stride: u32, off: u32| -> Sequence {
            let codes: Vec<u8> = (0..len as u32)
                .map(|i| {
                    let c = (i * stride + off + (i >> 4)) % card;
                    if config == AlignmentConfig::Ascii {
                        (32 + c % 95) as u8
                    } else {
                        c as u8
                    }
                })
                .collect();
            Sequence::from_codes(config.alphabet(), codes).unwrap()
        };
        (take(7, 1), take(5, 0))
    }

    #[test]
    fn heterogeneous_align_matches_golden() {
        for config in AlignmentConfig::ALL {
            let (q, r) = seqs(config, 90);
            let mut dev = SmxDevice::new(config, 4).unwrap();
            let aln = dev.align(&q, &r).unwrap();
            let golden = dp::align_codes(q.codes(), r.codes(), &config.scoring());
            assert_eq!(aln.score, golden.score, "{config}");
        }
    }

    #[test]
    fn score_matches_align() {
        let config = AlignmentConfig::DnaGap;
        let (q, r) = seqs(config, 70);
        let mut dev = SmxDevice::new(config, 2).unwrap();
        let s = dev.score(&q, &r).unwrap();
        let a = dev.align(&q, &r).unwrap();
        assert_eq!(s, a.score);
    }

    #[test]
    fn counts_accumulate_across_calls() {
        let config = AlignmentConfig::DnaEdit;
        let (q, r) = seqs(config, 64);
        let mut dev = SmxDevice::new(config, 1).unwrap();
        let _ = dev.align(&q, &r).unwrap();
        let c1 = dev.insn_counts().smx_pack;
        let _ = dev.align(&q, &r).unwrap();
        assert!(dev.insn_counts().smx_pack > c1);
        assert!(dev.recompute_stats().tiles >= 2);
    }

    #[test]
    fn affine_device_matches_gotoh() {
        use smx_align_core::dp_affine::{affine_score, AffineScheme};
        let scheme = AffineScheme::minimap2();
        let dev = AffineDevice::new(smx_align_core::Alphabet::Dna2, scheme).unwrap();
        let r = Sequence::from_codes(
            smx_align_core::Alphabet::Dna2,
            (0..90u32).map(|i| ((i * 7 + (i >> 4)) % 4) as u8).collect(),
        )
        .unwrap();
        let mut q_codes = r.codes().to_vec();
        q_codes.drain(30..55);
        let q = Sequence::from_codes(smx_align_core::Alphabet::Dna2, q_codes).unwrap();
        let golden = affine_score(q.codes(), r.codes(), &scheme);
        assert_eq!(dev.score(&q, &r).unwrap(), golden);
        let aln = dev.align(&q, &r).unwrap();
        assert_eq!(aln.score, golden);
        // One consolidated 25-base deletion.
        assert!(aln
            .cigar
            .runs()
            .iter()
            .any(|&(op, n)| op == smx_align_core::Op::Delete && n == 25));
    }

    #[test]
    fn affine_device_rejects_mismatched_alphabet() {
        let dev = AffineDevice::new(
            smx_align_core::Alphabet::Dna2,
            smx_align_core::dp_affine::AffineScheme::minimap2(),
        )
        .unwrap();
        let p = Sequence::from_text(smx_align_core::Alphabet::Protein, "WYV").unwrap();
        assert!(matches!(dev.score(&p, &p), Err(AlignError::AlphabetMismatch)));
    }

    #[test]
    fn wrong_alphabet_rejected() {
        let mut dev = SmxDevice::new(AlignmentConfig::DnaEdit, 1).unwrap();
        let q = Sequence::from_text(smx_align_core::Alphabet::Protein, "WYV").unwrap();
        assert!(matches!(dev.align(&q, &q), Err(AlignError::AlphabetMismatch)));
    }
}
