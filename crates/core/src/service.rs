//! Resilient batch-alignment service layer (DESIGN.md §5).
//!
//! [`BatchExecutor`] runs a batch of pairs through a pool of
//! [`SmxDevice`] workers fed from a bounded work queue with
//! backpressure: submitters either block until a slot frees or shed the
//! pair, per the [`AdmissionPolicy`]. Each pair runs under a cooperative
//! cancellation token with an optional wall-clock deadline, checked at
//! tile boundaries inside the coprocessor. A circuit [`Breaker`] tracks
//! the fault rate over a sliding window of device outcomes and, when it
//! trips, routes whole pairs to the core's software baseline until
//! half-open probes show the device is healthy again.
//!
//! Since PR 3 the executor supervises a whole *pool* of devices
//! ([`crate::pool`], DESIGN.md §6): each pool slot has its own seeded
//! fault plan, its own breaker, and an EWMA health score that can
//! quarantine it behind canary re-probes. On top of routing, the service
//! defends result *content* with a scoreboard — device alignments are
//! re-verified on the host at a configurable audit rate, and a failed
//! audit ([`AlignError::IntegrityViolation`]) triggers one device retry
//! and then a software recompute — and defends *latency* with hedged
//! execution: a pair stuck past the hedge trigger is cancelled on the
//! device and re-run on the software baseline with its remaining budget.
//!
//! Every routing decision preserves the workspace's byte-identity
//! invariant: the device path (with tile-level recovery), the degraded
//! path, and the software baseline all share the global traceback
//! tie-break, so a batch run under any fault pattern, pool width, or
//! breaker state produces exactly the alignments of a fault-free
//! sequential run. The service layer only decides *where* a pair is
//! computed, never *what* it computes. Auditing and hedging therefore
//! cannot change the output either — only which counters tick.

use std::collections::{HashMap, VecDeque};
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use smx_align_core::{AlignError, Alignment, Sequence};
use smx_coproc::control::CancelToken;
use smx_coproc::faults::RecoveryStats;

use crate::orchestrator::{BatchFailure, DeviceBatchReport, SmxDevice};
use crate::pool::{
    AuditConfig, DevicePool, DeviceStats, Dispatch, HedgeConfig, OutcomeEvents, QuarantineConfig,
};

/// What a submitter does when the work queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Block until a queue slot frees (lossless backpressure).
    #[default]
    Block,
    /// Record the pair as [`PairOutcome::Shed`] and move on (load
    /// shedding for latency-sensitive callers).
    Shed,
}

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Sliding-window length, in device-pair outcomes.
    pub window: usize,
    /// Minimum outcomes in the window before the breaker may trip.
    pub min_samples: usize,
    /// Faulted fraction of the window at which the breaker opens.
    pub threshold: f64,
    /// Pairs served on the software path while open, before probing.
    pub cooldown_pairs: u64,
    /// Consecutive clean device probes required to close again.
    pub probes: u64,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig { window: 32, min_samples: 8, threshold: 0.5, cooldown_pairs: 16, probes: 4 }
    }
}

/// Breaker state (the classic three-state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Pairs run on the device; outcomes feed the sliding window.
    Closed,
    /// Pairs run on the software baseline for the cooldown.
    Open,
    /// A limited number of probe pairs run on the device; the rest stay
    /// on software until the probes deliver a verdict.
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        })
    }
}

/// Counts of breaker state transitions over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakerTransitions {
    /// Closed/HalfOpen → Open trips.
    pub opened: u64,
    /// Open → HalfOpen transitions (cooldown expired, probing started).
    pub half_opened: u64,
    /// HalfOpen → Closed recoveries.
    pub closed: u64,
}

/// Breaker state and transition counters at the end of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerSnapshot {
    /// State when the batch finished.
    pub state: BreakerState,
    /// Transition counts over the batch.
    pub transitions: BreakerTransitions,
}

/// Where the breaker routed a pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Route {
    /// Normal device path (breaker closed, or no breaker).
    Device,
    /// Device path as a half-open probe.
    Probe,
    /// Software baseline (breaker open, or half-open without a probe
    /// slot).
    Software,
}

/// The circuit breaker: a pure, deterministic state machine over pair
/// outcomes. Cooldown is measured in *pairs served*, not wall time, so
/// the machine is exactly reproducible in tests.
#[derive(Debug)]
pub struct Breaker {
    cfg: BreakerConfig,
    state: BreakerState,
    window: VecDeque<bool>,
    faulted_in_window: usize,
    cooldown_left: u64,
    probes_granted: u64,
    probes_clean: u64,
    transitions: BreakerTransitions,
}

impl Breaker {
    /// A closed breaker with an empty window.
    #[must_use]
    pub fn new(cfg: BreakerConfig) -> Breaker {
        Breaker {
            cfg,
            state: BreakerState::Closed,
            window: VecDeque::new(),
            faulted_in_window: 0,
            cooldown_left: 0,
            probes_granted: 0,
            probes_clean: 0,
            transitions: BreakerTransitions::default(),
        }
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Transition counters so far.
    #[must_use]
    pub fn transitions(&self) -> BreakerTransitions {
        self.transitions
    }

    /// Decides where the next pair runs, advancing cooldown/probe
    /// accounting.
    pub(crate) fn route(&mut self) -> Route {
        match self.state {
            BreakerState::Closed => Route::Device,
            BreakerState::Open => {
                if self.cooldown_left > 0 {
                    self.cooldown_left -= 1;
                    Route::Software
                } else {
                    self.state = BreakerState::HalfOpen;
                    self.transitions.half_opened += 1;
                    self.probes_granted = 1;
                    self.probes_clean = 0;
                    Route::Probe
                }
            }
            BreakerState::HalfOpen => {
                if self.probes_granted < self.cfg.probes {
                    self.probes_granted += 1;
                    Route::Probe
                } else {
                    // Probes are in flight; keep the rest of the traffic
                    // safe until they deliver a verdict.
                    Route::Software
                }
            }
        }
    }

    /// Feeds back one pair's outcome for the given route.
    pub(crate) fn record(&mut self, route: Route, faulted: bool) {
        match route {
            Route::Software => {}
            Route::Probe => {
                // A probe verdict from before a re-trip is stale.
                if self.state != BreakerState::HalfOpen {
                    return;
                }
                if faulted {
                    self.trip();
                } else {
                    self.probes_clean += 1;
                    if self.probes_clean >= self.cfg.probes {
                        self.state = BreakerState::Closed;
                        self.transitions.closed += 1;
                        self.window.clear();
                        self.faulted_in_window = 0;
                    }
                }
            }
            Route::Device => {
                if self.state != BreakerState::Closed {
                    return;
                }
                if self.window.len() == self.cfg.window && self.window.pop_front() == Some(true) {
                    self.faulted_in_window -= 1;
                }
                self.window.push_back(faulted);
                if faulted {
                    self.faulted_in_window += 1;
                }
                if self.window.len() >= self.cfg.min_samples
                    && self.faulted_in_window as f64
                        >= self.cfg.threshold * self.window.len() as f64
                {
                    self.trip();
                }
            }
        }
    }

    fn trip(&mut self) {
        self.state = BreakerState::Open;
        self.transitions.opened += 1;
        self.cooldown_left = self.cfg.cooldown_pairs;
        self.probes_granted = 0;
        self.probes_clean = 0;
    }
}

/// Executor tuning.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Worker threads (each with its own device clone). `1` runs the
    /// batch inline on the calling thread, deterministically.
    pub jobs: usize,
    /// Bounded work-queue capacity (backpressure point).
    pub queue_cap: usize,
    /// Full-queue behaviour.
    pub admission: AdmissionPolicy,
    /// Per-pair wall-clock deadline, enforced at tile boundaries.
    pub deadline: Option<Duration>,
    /// Circuit breaker over the coprocessor fault rate; `None` disables
    /// breaking (every pair takes the device path). With a multi-device
    /// pool, every device gets its *own* breaker with this tuning.
    pub breaker: Option<BreakerConfig>,
    /// Simulated devices in the pool. `0` (the default) sizes the pool
    /// to `jobs`, preserving the PR-2 device-per-worker model. Device 0
    /// keeps the template's fault plan verbatim; higher slots get the
    /// same plan re-seeded so they fault independently.
    pub devices: usize,
    /// Result scoreboard: re-verify device alignments on the host at
    /// this sampling config. `None` disables auditing.
    pub audit: Option<AuditConfig>,
    /// Hedged execution for latency-tail pairs. `None` disables hedging.
    pub hedge: Option<HedgeConfig>,
    /// Per-device health scoring and quarantine. `None` disables
    /// quarantine (devices stay in rotation however sick).
    pub quarantine: Option<QuarantineConfig>,
    /// Fail closed on audit failure: when the audit retry also fails (or
    /// errors), return [`AlignError::IntegrityViolation`] instead of
    /// silently recomputing on the software baseline. Lets strict
    /// pipelines surface corruption as a distinct, typed failure.
    pub integrity_fail_closed: bool,
}

impl Default for ExecutorConfig {
    fn default() -> ExecutorConfig {
        ExecutorConfig {
            jobs: 1,
            queue_cap: 64,
            admission: AdmissionPolicy::Block,
            deadline: None,
            breaker: None,
            devices: 0,
            audit: None,
            hedge: None,
            quarantine: None,
            integrity_fail_closed: false,
        }
    }
}

/// One pair's outcome in a service batch.
#[derive(Debug, Clone, PartialEq)]
pub enum PairOutcome {
    /// The pair aligned (on whichever path the breaker chose).
    Aligned(Alignment),
    /// The pair failed with a typed error.
    Failed(AlignError),
    /// The pair was shed by the admission policy and never ran.
    Shed,
}

/// Structured counters for one batch run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceStats {
    /// Pairs in the input batch.
    pub submitted: u64,
    /// Pairs that aligned (including resumed ones).
    pub completed: u64,
    /// Pairs that failed with an error.
    pub failed: u64,
    /// Pairs shed at admission.
    pub shed: u64,
    /// Pairs satisfied from a resume manifest without running.
    pub resumed: u64,
    /// Failures caused by an expired per-pair deadline.
    pub deadline_exceeded: u64,
    /// Failures caused by batch cancellation.
    pub cancelled: u64,
    /// Pairs executed on the device path (incl. probes).
    pub device_pairs: u64,
    /// Pairs the breaker routed to the software baseline.
    pub software_pairs: u64,
    /// Device pairs that ran as half-open probes.
    pub probe_pairs: u64,
    /// Pairs during which the device injected at least one fault.
    pub faulted_pairs: u64,
    /// High-water mark of the bounded work queue.
    pub max_queue_depth: usize,
    /// Host-side result audits run (scoreboard checks).
    pub audits_run: u64,
    /// Audits that failed — device results caught being plausible but
    /// wrong (summed over devices; primary and retry attempts counted
    /// separately).
    pub integrity_violations: u64,
    /// Pairs recomputed on the software baseline after the device retry
    /// also failed its audit.
    pub integrity_recomputed: u64,
    /// Hedge backups launched for latency-tail pairs.
    pub hedges_launched: u64,
    /// Hedge backups that produced the pair's result.
    pub hedges_won: u64,
    /// Device quarantine events across the pool.
    pub quarantines: u64,
    /// Devices readmitted after a clean canary streak.
    pub readmissions: u64,
    /// Canary probes run against quarantined devices.
    pub canary_runs: u64,
    /// Canary probes that failed.
    pub canary_failures: u64,
    /// Breaker state and transitions for device 0 (when a breaker was
    /// configured) — the single-device view; see `per_device` for the
    /// rest of the pool.
    pub breaker: Option<BreakerSnapshot>,
    /// Per-device counters and final health/breaker state, indexed by
    /// pool slot.
    pub per_device: Vec<DeviceStats>,
    /// Tile-level recovery counters aggregated across the device pool.
    pub recovery: RecoveryStats,
}

/// Outcome of [`BatchExecutor::run`]: per-pair outcomes positionally
/// aligned with the input, plus the run's counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceBatchReport {
    /// One entry per input pair.
    pub outcomes: Vec<PairOutcome>,
    /// Structured counters for the run.
    pub stats: ServiceStats,
}

impl ServiceBatchReport {
    /// The alignment for pair `index`, when it succeeded.
    #[must_use]
    pub fn alignment(&self, index: usize) -> Option<&Alignment> {
        match self.outcomes.get(index) {
            Some(PairOutcome::Aligned(a)) => Some(a),
            _ => None,
        }
    }

    /// Whether every pair aligned.
    #[must_use]
    pub fn all_succeeded(&self) -> bool {
        self.outcomes.iter().all(|o| matches!(o, PairOutcome::Aligned(_)))
    }

    /// Per-pair failures in input order (shed pairs are not failures).
    #[must_use]
    pub fn failures(&self) -> Vec<BatchFailure> {
        self.outcomes
            .iter()
            .enumerate()
            .filter_map(|(index, o)| match o {
                PairOutcome::Failed(error) => Some(BatchFailure { index, error: error.clone() }),
                _ => None,
            })
            .collect()
    }

    /// One-line-per-failure summary with the aggregate cause breakdown,
    /// mirroring [`DeviceBatchReport::failure_summary`].
    #[must_use]
    pub fn failure_summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!(
            "{}/{} pairs aligned, {} failed, {} shed",
            self.stats.completed,
            self.outcomes.len(),
            self.stats.failed,
            self.stats.shed,
        );
        if self.stats.deadline_exceeded + self.stats.cancelled > 0 {
            let _ = write!(
                s,
                " ({} deadline-exceeded, {} cancelled)",
                self.stats.deadline_exceeded, self.stats.cancelled
            );
        }
        for f in self.failures() {
            let _ = write!(s, "\n  pair {}: {}", f.index, f.error);
        }
        s
    }
}

/// Completion hook: called with `(pair index, alignment)` for every
/// newly computed result, in completion order.
pub type ResultHook<'a> = &'a mut dyn FnMut(usize, &Alignment);

/// Per-run knobs that are not executor configuration: a batch-wide
/// cancellation token, a resume manifest, and a completion callback.
#[derive(Default)]
pub struct RunOptions<'a> {
    /// Batch-wide cancellation token; per-pair deadline tokens are
    /// forked from it, so cancelling it aborts every in-flight and
    /// queued pair at the next tile boundary.
    pub cancel: Option<CancelToken>,
    /// Previously completed pairs (index → alignment, e.g. from a
    /// checkpoint manifest); they are re-emitted verbatim without
    /// running.
    pub resume: Option<&'a HashMap<usize, Alignment>>,
    /// Called on the collector thread for every *newly computed*
    /// alignment, in completion order — the checkpoint writer's hook.
    pub on_result: Option<ResultHook<'a>>,
}

/// The resilient batch-alignment service: a worker pool over device
/// clones with backpressure, deadlines, and a circuit breaker.
///
/// The executor owns a fully configured template device (fault
/// injection, degradation policy); each worker clones it, so per-worker
/// fault sessions are independent but identically planned.
#[derive(Debug, Clone)]
pub struct BatchExecutor {
    device: SmxDevice,
    cfg: ExecutorConfig,
}

impl BatchExecutor {
    /// Builds an executor over `device` with `cfg`.
    ///
    /// # Errors
    ///
    /// Rejects zero jobs, a zero-capacity queue, and malformed breaker
    /// settings (threshold outside `(0, 1]`, window smaller than
    /// `min_samples`, zero probes).
    pub fn new(device: SmxDevice, cfg: ExecutorConfig) -> Result<BatchExecutor, AlignError> {
        if cfg.jobs == 0 {
            return Err(AlignError::Internal("executor needs at least one job".into()));
        }
        if cfg.queue_cap == 0 {
            return Err(AlignError::Internal("queue capacity must be at least 1".into()));
        }
        if let Some(b) = &cfg.breaker {
            if !(b.threshold > 0.0 && b.threshold <= 1.0) {
                return Err(AlignError::Internal(format!(
                    "breaker threshold {} outside (0, 1]",
                    b.threshold
                )));
            }
            if b.min_samples == 0 || b.window < b.min_samples {
                return Err(AlignError::Internal(format!(
                    "breaker window {} must be >= min_samples {} >= 1",
                    b.window, b.min_samples
                )));
            }
            if b.probes == 0 {
                return Err(AlignError::Internal("breaker needs at least one probe".into()));
            }
        }
        if let Some(a) = &cfg.audit {
            if !(a.rate.is_finite() && (0.0..=1.0).contains(&a.rate)) {
                return Err(AlignError::Internal(format!("audit rate {} outside [0, 1]", a.rate)));
            }
        }
        if let Some(q) = &cfg.quarantine {
            if !(q.alpha > 0.0 && q.alpha <= 1.0 && q.threshold > 0.0 && q.threshold <= 1.0) {
                return Err(AlignError::Internal(format!(
                    "quarantine alpha {} and threshold {} must lie in (0, 1]",
                    q.alpha, q.threshold
                )));
            }
            if q.canary_period == 0 || q.canary_probes == 0 {
                return Err(AlignError::Internal(
                    "quarantine needs a nonzero canary period and probe count".into(),
                ));
            }
        }
        if let Some(h) = &cfg.hedge {
            if let crate::pool::HedgeTrigger::P95 { multiplier, .. } = h.trigger {
                if !(multiplier.is_finite() && multiplier > 0.0) {
                    return Err(AlignError::Internal(format!(
                        "hedge p95 multiplier {multiplier} must be positive"
                    )));
                }
            }
        }
        Ok(BatchExecutor { device, cfg })
    }

    /// The executor configuration.
    #[must_use]
    pub fn config(&self) -> &ExecutorConfig {
        &self.cfg
    }

    /// Runs `pairs` with default options.
    #[must_use]
    pub fn run(&self, pairs: &[(Sequence, Sequence)]) -> ServiceBatchReport {
        self.run_with(pairs, RunOptions::default())
    }

    /// Runs `pairs` under `opts`.
    #[must_use]
    pub fn run_with(
        &self,
        pairs: &[(Sequence, Sequence)],
        mut opts: RunOptions<'_>,
    ) -> ServiceBatchReport {
        let n = pairs.len();
        let mut outcomes: Vec<Option<PairOutcome>> = vec![None; n];
        let mut stats = ServiceStats { submitted: n as u64, ..ServiceStats::default() };

        if let Some(manifest) = opts.resume {
            for (&index, alignment) in manifest {
                if index < n && outcomes[index].is_none() {
                    outcomes[index] = Some(PairOutcome::Aligned(alignment.clone()));
                    stats.resumed += 1;
                }
            }
        }
        let todo: Vec<usize> = (0..n).filter(|&i| outcomes[i].is_none()).collect();

        let batch_token = opts.cancel.clone().unwrap_or_default();
        let n_devices = if self.cfg.devices == 0 { self.cfg.jobs } else { self.cfg.devices };
        let pool =
            match DevicePool::new(&self.device, n_devices, self.cfg.breaker, self.cfg.quarantine) {
                Ok(pool) => pool,
                Err(e) => {
                    // Pool construction failing (canary golden could not be
                    // computed) fails the whole batch closed with the typed
                    // error rather than panicking.
                    for index in todo {
                        outcomes[index] = Some(PairOutcome::Failed(e.clone()));
                        stats.failed += 1;
                    }
                    let outcomes = outcomes
                        .into_iter()
                        // LINT: allow(panic) the shed loop above fills every remaining None slot
                        .map(|o| o.expect("every pair has an outcome"))
                        .collect();
                    return ServiceBatchReport { outcomes, stats };
                }
            };

        if self.cfg.jobs == 1 {
            // Inline path: deterministic order, no queue, no shedding.
            let mut sw = self.software_baseline();
            for index in todo {
                let (q, r) = &pairs[index];
                let (result, meta) = run_pair(&pool, &mut sw, index, q, r, &self.cfg, &batch_token);
                tally(&mut stats, &meta, &result);
                if let (Ok(a), Some(cb)) = (&result, opts.on_result.as_mut()) {
                    cb(index, a);
                }
                outcomes[index] = Some(match result {
                    Ok(a) => PairOutcome::Aligned(a),
                    Err(e) => PairOutcome::Failed(e),
                });
            }
        } else {
            let queue = JobQueue::new(self.cfg.queue_cap);
            let (tx, rx) = mpsc::channel::<WorkerMsg>();
            std::thread::scope(|scope| {
                for _ in 0..self.cfg.jobs {
                    let tx = tx.clone();
                    let queue = &queue;
                    let pool = &pool;
                    let batch_token = batch_token.clone();
                    let cfg = &self.cfg;
                    let this = &self;
                    scope.spawn(move || {
                        let mut sw = this.software_baseline();
                        while let Some(index) = queue.pop() {
                            let (q, r) = &pairs[index];
                            let (result, meta) =
                                run_pair(pool, &mut sw, index, q, r, cfg, &batch_token);
                            let _ = tx.send(WorkerMsg::Pair { index, result, meta });
                        }
                        let _ = tx.send(WorkerMsg::Done);
                    });
                }
                drop(tx);

                let mut dispatched = 0usize;
                for index in todo {
                    match self.cfg.admission {
                        AdmissionPolicy::Block => {
                            queue.push_blocking(index);
                            dispatched += 1;
                        }
                        AdmissionPolicy::Shed => {
                            if queue.try_push(index) {
                                dispatched += 1;
                            } else {
                                outcomes[index] = Some(PairOutcome::Shed);
                                stats.shed += 1;
                            }
                        }
                    }
                }
                queue.close();

                let mut pairs_seen = 0usize;
                let mut workers_done = 0usize;
                while pairs_seen < dispatched || workers_done < self.cfg.jobs {
                    // LINT: allow(panic) workers_done < jobs means at least one worker still holds a sender
                    match rx.recv().expect("workers outlive the channel") {
                        WorkerMsg::Pair { index, result, meta } => {
                            pairs_seen += 1;
                            tally(&mut stats, &meta, &result);
                            if let (Ok(a), Some(cb)) = (&result, opts.on_result.as_mut()) {
                                cb(index, a);
                            }
                            outcomes[index] = Some(match result {
                                Ok(a) => PairOutcome::Aligned(a),
                                Err(e) => PairOutcome::Failed(e),
                            });
                        }
                        WorkerMsg::Done => workers_done += 1,
                    }
                }
                stats.max_queue_depth = queue.max_depth();
            });
        }

        stats.completed =
            outcomes.iter().flatten().filter(|o| matches!(o, PairOutcome::Aligned(_))).count()
                as u64;
        stats.failed =
            outcomes.iter().flatten().filter(|o| matches!(o, PairOutcome::Failed(_))).count()
                as u64;
        let (per_device, counters, recovery) = pool.finish();
        stats.recovery = recovery;
        stats.audits_run = counters.audits_run;
        stats.integrity_recomputed = counters.integrity_recomputed;
        stats.hedges_launched = counters.hedges_launched;
        stats.hedges_won = counters.hedges_won;
        stats.integrity_violations = per_device.iter().map(|d| d.integrity_violations).sum();
        stats.quarantines = per_device.iter().map(|d| d.quarantines).sum();
        stats.readmissions = per_device.iter().map(|d| d.readmissions).sum();
        stats.canary_runs = per_device.iter().map(|d| d.canary_runs).sum();
        stats.canary_failures = per_device.iter().map(|d| d.canary_failures).sum();
        stats.breaker = per_device.first().and_then(|d| d.breaker);
        stats.per_device = per_device;
        let outcomes =
            // LINT: allow(panic) every dispatched index received a Pair message or was marked Shed above
            outcomes.into_iter().map(|o| o.expect("every pair has an outcome")).collect();
        ServiceBatchReport { outcomes, stats }
    }

    /// A worker-local clone of the template running the trusted host
    /// path: fault injection disabled, so audits never apply to it and
    /// its results are correct by construction.
    fn software_baseline(&self) -> SmxDevice {
        let mut dev = self.device.clone();
        dev.disable_fault_injection();
        dev
    }
}

/// Per-pair metadata flowing from workers to the collector.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PairMeta {
    pub(crate) route: Route,
    pub(crate) faulted: bool,
}

enum WorkerMsg {
    Pair { index: usize, result: Result<Alignment, AlignError>, meta: PairMeta },
    Done,
}

/// One attempt on pool device `id` under `token`. Returns the result
/// plus whether the attempt counts as faulted for breaker/health
/// purposes: the device injected at least one detectable fault while it
/// ran, or it failed with a recoverable device fault. Deadline and
/// cancellation failures are *not* faults — breaking on them would mask
/// overload as device sickness.
fn attempt_on_device(
    pool: &DevicePool,
    id: usize,
    q: &Sequence,
    r: &Sequence,
    token: CancelToken,
) -> (Result<Alignment, AlignError>, bool) {
    let mut dev = match pool.device(id) {
        Ok(dev) => dev,
        // The device mutex is poisoned (another worker panicked inside
        // align): fail this pair typed. Not a fault — breaking the
        // breaker on a poisoned lock would misread a process-level bug
        // as device sickness.
        Err(e) => return (Err(e), false),
    };
    // Failpoint `pool.dispatch` (lane = device id): the dispatch path
    // to this device fails before work starts. Surfaced as a
    // recoverable TileCorrupted fault so the breaker, EWMA health, and
    // quarantine ladder all react exactly as they would to real device
    // sickness — which is what chaos schedules poison a device with.
    if smx_failpoint::hit_lane("pool.dispatch", id as u32).is_some() {
        return (Err(AlignError::TileCorrupted { ti: 0, tj: 0 }), true);
    }
    dev.set_cancel_token(Some(token));
    let before = dev.recovery_stats();
    // LINT: allow(lock-order) the device guard must stay held across its own DP by design: the mutex IS the device's execution slot
    let result = dev.align(q, r);
    let after = dev.recovery_stats();
    dev.set_cancel_token(None);
    let faulted = after.faults_injected > before.faults_injected
        || result.as_ref().err().is_some_and(AlignError::is_recoverable_fault);
    (result, faulted)
}

/// One attempt on the worker-local software baseline under `token`.
pub(crate) fn attempt_on_software(
    sw: &mut SmxDevice,
    q: &Sequence,
    r: &Sequence,
    token: CancelToken,
) -> Result<Alignment, AlignError> {
    sw.set_cancel_token(Some(token));
    let result = sw.align_software(q, r);
    sw.set_cancel_token(None);
    result
}

/// Forks a token carrying whatever remains of the pair's deadline, or a
/// plain clone of the batch token when no deadline is configured.
fn remaining_token(
    batch_token: &CancelToken,
    deadline: Option<Duration>,
    start: Instant,
) -> CancelToken {
    match deadline {
        Some(d) => batch_token.fork_with_deadline(d.saturating_sub(start.elapsed())),
        None => batch_token.clone(),
    }
}

/// Runs one pair through the pool: canary duty, dispatch, the primary
/// attempt under `min(deadline, hedge trigger)`, the hedge backup, the
/// audit retry-then-recompute ladder, and the health feedback — in that
/// order. Whatever path wins, the alignment content is byte-identical.
pub(crate) fn run_pair(
    pool: &DevicePool,
    sw: &mut SmxDevice,
    index: usize,
    q: &Sequence,
    r: &Sequence,
    cfg: &ExecutorConfig,
    batch_token: &CancelToken,
) -> (Result<Alignment, AlignError>, PairMeta) {
    // Quarantined devices are re-probed opportunistically by whichever
    // worker passes by next, so requalification needs no extra thread.
    pool.run_due_canaries();
    // `dispatch_pair` confines the health guard to the pool call. The
    // previous `match pool.health().dispatch()` kept the pool-wide
    // health lock alive through every arm below (scrutinee temporaries
    // live to the end of the match) — including the Software arm's
    // full baseline DP, serializing every other worker behind it.
    let dispatch = match pool.dispatch_pair() {
        Ok(d) => d,
        Err(e) => return (Err(e), PairMeta { route: Route::Software, faulted: false }),
    };
    let (id, route) = match dispatch {
        Dispatch::Device { id, route } => (id, route),
        Dispatch::Software => {
            // The whole pool is quarantined: serve from the baseline.
            let token = remaining_token(batch_token, cfg.deadline, Instant::now());
            let result = attempt_on_software(sw, q, r, token);
            return (result, PairMeta { route: Route::Software, faulted: false });
        }
    };
    if route == Route::Software {
        // This device's breaker is open; its cooldown already advanced.
        let token = remaining_token(batch_token, cfg.deadline, Instant::now());
        let result = attempt_on_software(sw, q, r, token);
        return (result, PairMeta { route, faulted: false });
    }

    let start = Instant::now();
    let hedge_after = cfg.hedge.as_ref().and_then(|h| pool.hedge_threshold(h));
    // The hedge trigger is implemented by capping the primary attempt's
    // token budget: a primary that would run past the trigger cancels
    // itself at the next tile boundary, and the backup takes over with
    // the remainder of the real deadline (DESIGN.md §6).
    let hedge_armed = hedge_after.is_some_and(|h| cfg.deadline.is_none_or(|d| h < d));
    let primary_budget = match (cfg.deadline, hedge_after) {
        (Some(d), Some(h)) => Some(d.min(h)),
        (Some(d), None) => Some(d),
        (None, h) => h,
    };
    let token = match primary_budget {
        Some(b) => batch_token.fork_with_deadline(b),
        None => batch_token.clone(),
    };
    let mut ev = OutcomeEvents::default();
    let (mut result, faulted) = attempt_on_device(pool, id, q, r, token);
    ev.faulted = faulted;

    if matches!(result, Err(AlignError::DeadlineExceeded { .. })) {
        ev.deadline = true;
        let remaining = cfg.deadline.map(|d| d.saturating_sub(start.elapsed()));
        if hedge_armed && remaining != Some(Duration::ZERO) {
            // The primary hit the hedge trigger, not the real deadline:
            // launch the backup on the always-healthy baseline with the
            // remaining budget. Byte-identity makes the winner
            // indistinguishable in the output.
            ev.hedge_launched = true;
            let backup_token = match remaining {
                Some(rem) => batch_token.fork_with_deadline(rem),
                None => batch_token.clone(),
            };
            let backup = attempt_on_software(sw, q, r, backup_token);
            ev.hedge_won = backup.is_ok();
            result = backup;
        }
    } else if result.is_ok() {
        pool.record_latency(start.elapsed());
    }

    if cfg.audit.as_ref().is_some_and(|a| a.samples(index)) {
        if let Ok(a) = &result {
            if !ev.hedge_won {
                ev.audits += 1;
                if pool.audit(id, a, q, r).is_err() {
                    ev.integrity += 1;
                    result = audit_recovery(pool, sw, id, q, r, cfg, batch_token, start, &mut ev);
                }
            }
        }
    }

    pool.record_outcome(id, route, ev);
    (result, PairMeta { route, faulted: ev.faulted })
}

/// The scoreboard's recovery ladder after a failed audit: retry once on
/// the same device (re-auditing the retry), then recompute on the
/// software baseline. The corrupt alignment is never returned.
#[allow(clippy::too_many_arguments)]
fn audit_recovery(
    pool: &DevicePool,
    sw: &mut SmxDevice,
    id: usize,
    q: &Sequence,
    r: &Sequence,
    cfg: &ExecutorConfig,
    batch_token: &CancelToken,
    start: Instant,
    ev: &mut OutcomeEvents,
) -> Result<Alignment, AlignError> {
    let (retry, retry_faulted) =
        attempt_on_device(pool, id, q, r, remaining_token(batch_token, cfg.deadline, start));
    ev.faulted |= retry_faulted;
    match retry {
        Ok(a) => {
            ev.audits += 1;
            match pool.audit(id, &a, q, r) {
                Ok(()) => return Ok(a),
                Err(e) => {
                    ev.integrity += 1;
                    if cfg.integrity_fail_closed {
                        return Err(e);
                    }
                }
            }
        }
        Err(e) if cfg.integrity_fail_closed => return Err(e),
        Err(_) => {}
    }
    ev.recomputed = true;
    attempt_on_software(sw, q, r, remaining_token(batch_token, cfg.deadline, start))
}

fn tally(stats: &mut ServiceStats, meta: &PairMeta, result: &Result<Alignment, AlignError>) {
    match meta.route {
        Route::Device => stats.device_pairs += 1,
        Route::Probe => {
            stats.device_pairs += 1;
            stats.probe_pairs += 1;
        }
        Route::Software => stats.software_pairs += 1,
    }
    if meta.faulted {
        stats.faulted_pairs += 1;
    }
    match result {
        Err(AlignError::DeadlineExceeded { .. }) => stats.deadline_exceeded += 1,
        Err(AlignError::Cancelled) => stats.cancelled += 1,
        _ => {}
    }
}

/// Sequential fail-closed batch on one device: the engine behind
/// [`SmxDevice::align_batch`]. Runs on the caller's device (stats
/// accumulate there) with whatever token the caller installed.
pub(crate) fn device_batch(
    dev: &mut SmxDevice,
    pairs: &[(Sequence, Sequence)],
) -> DeviceBatchReport {
    let mut alignments = Vec::with_capacity(pairs.len());
    let mut failures = Vec::new();
    for (index, (q, r)) in pairs.iter().enumerate() {
        match dev.align(q, r) {
            Ok(a) => alignments.push(Some(a)),
            Err(error) => {
                alignments.push(None);
                failures.push(BatchFailure { index, error });
            }
        }
    }
    DeviceBatchReport { alignments, failures, recovery: dev.recovery_stats() }
}

/// Bounded MPMC work queue: `Mutex<VecDeque>` + two condvars, closing
/// semantics for shutdown, and a depth high-water mark for the counters.
#[derive(Debug)]
struct JobQueue {
    cap: usize,
    inner: Mutex<QueueInner>,
    not_full: Condvar,
    not_empty: Condvar,
}

#[derive(Debug)]
struct QueueInner {
    jobs: VecDeque<usize>,
    closed: bool,
    max_depth: usize,
}

impl JobQueue {
    fn new(cap: usize) -> JobQueue {
        JobQueue {
            cap,
            inner: Mutex::new(QueueInner { jobs: VecDeque::new(), closed: false, max_depth: 0 }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Blocks until a slot frees (the backpressure point).
    fn push_blocking(&self, index: usize) {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        while inner.jobs.len() >= self.cap {
            inner = self.not_full.wait(inner).expect("queue lock poisoned");
        }
        inner.jobs.push_back(index);
        inner.max_depth = inner.max_depth.max(inner.jobs.len());
        self.not_empty.notify_one();
    }

    /// Non-blocking push; `false` means the pair was shed.
    fn try_push(&self, index: usize) -> bool {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        if inner.jobs.len() >= self.cap {
            return false;
        }
        inner.jobs.push_back(index);
        inner.max_depth = inner.max_depth.max(inner.jobs.len());
        self.not_empty.notify_one();
        true
    }

    /// Blocks for work; `None` once the queue is closed and drained.
    fn pop(&self) -> Option<usize> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        loop {
            if let Some(index) = inner.jobs.pop_front() {
                self.not_full.notify_one();
                return Some(index);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue lock poisoned");
        }
    }

    fn close(&self) {
        self.inner.lock().expect("queue lock poisoned").closed = true;
        self.not_empty.notify_all();
    }

    fn max_depth(&self) -> usize {
        self.inner.lock().expect("queue lock poisoned").max_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{assert_all_aligned, assert_byte_identical, expect_aligned};
    use smx_align_core::AlignmentConfig;
    use smx_coproc::faults::{FaultPlan, RecoveryPolicy};

    fn pairs(config: AlignmentConfig, count: usize, len: usize) -> Vec<(Sequence, Sequence)> {
        let card = config.alphabet().cardinality() as u32;
        (0..count as u32)
            .map(|p| {
                let seq = |stride: u32, off: u32| {
                    let codes: Vec<u8> = (0..len as u32)
                        .map(|i| ((i * stride + off + p * 3 + (i >> 4)) % card) as u8)
                        .collect();
                    Sequence::from_codes(config.alphabet(), codes).unwrap()
                };
                (seq(7, 1), seq(5, p))
            })
            .collect()
    }

    fn clean_baseline(config: AlignmentConfig, batch: &[(Sequence, Sequence)]) -> Vec<Alignment> {
        let mut dev = SmxDevice::new(config, 2).unwrap();
        batch.iter().map(|(q, r)| dev.align(q, r).unwrap()).collect()
    }

    #[test]
    fn pool_matches_sequential_baseline() {
        let config = AlignmentConfig::DnaGap;
        let batch = pairs(config, 16, 70);
        let golden = clean_baseline(config, &batch);
        let dev = SmxDevice::new(config, 2).unwrap();
        let exec = BatchExecutor::new(
            dev,
            ExecutorConfig { jobs: 4, queue_cap: 4, ..ExecutorConfig::default() },
        )
        .unwrap();
        let report = exec.run(&batch);
        assert!(report.all_succeeded());
        assert_byte_identical(&report, &golden);
        assert_eq!(report.stats.completed, 16);
        assert_eq!(report.stats.device_pairs, 16);
        assert!(report.stats.max_queue_depth <= 4);
    }

    #[test]
    fn fault_storm_through_pool_is_byte_identical_to_clean_run() {
        let config = AlignmentConfig::DnaGap;
        let batch = pairs(config, 20, 80);
        let golden = clean_baseline(config, &batch);
        let mut dev = SmxDevice::new(config, 2).unwrap();
        dev.enable_fault_injection(FaultPlan::new(42, 0.3), RecoveryPolicy::default());
        let exec = BatchExecutor::new(
            dev,
            ExecutorConfig {
                jobs: 4,
                queue_cap: 8,
                breaker: Some(BreakerConfig::default()),
                ..ExecutorConfig::default()
            },
        )
        .unwrap();
        let report = exec.run(&batch);
        assert!(report.all_succeeded(), "{}", report.failure_summary());
        assert_byte_identical(&report, &golden);
        assert!(report.stats.recovery.invariants_hold());
        assert!(report.stats.recovery.faults_injected > 0);
    }

    #[test]
    fn breaker_opens_under_sustained_faults_and_outputs_stay_identical() {
        let config = AlignmentConfig::DnaGap;
        let batch = pairs(config, 40, 60);
        let golden = clean_baseline(config, &batch);
        let mut dev = SmxDevice::new(config, 2).unwrap();
        // Every device pair faults somewhere: the breaker must trip.
        dev.enable_fault_injection(FaultPlan::new(7, 1.0), RecoveryPolicy::default());
        let exec = BatchExecutor::new(
            dev,
            ExecutorConfig {
                jobs: 1, // deterministic transition sequence
                breaker: Some(BreakerConfig {
                    window: 8,
                    min_samples: 4,
                    threshold: 0.5,
                    cooldown_pairs: 4,
                    probes: 2,
                }),
                ..ExecutorConfig::default()
            },
        )
        .unwrap();
        let report = exec.run(&batch);
        assert!(report.all_succeeded(), "{}", report.failure_summary());
        assert_byte_identical(&report, &golden);
        let snap = report.stats.breaker.expect("breaker configured");
        assert!(snap.transitions.opened >= 2, "{snap:?}");
        assert!(snap.transitions.half_opened >= 1, "{snap:?}");
        assert_eq!(snap.transitions.closed, 0, "faults never stop: {snap:?}");
        assert!(report.stats.software_pairs > 0);
        assert!(report.stats.probe_pairs > 0);
    }

    #[test]
    fn breaker_state_machine_transitions() {
        let mut b = Breaker::new(BreakerConfig {
            window: 4,
            min_samples: 2,
            threshold: 0.5,
            cooldown_pairs: 2,
            probes: 2,
        });
        assert_eq!(b.state(), BreakerState::Closed);
        // Two faulted device pairs trip it.
        assert_eq!(b.route(), Route::Device);
        b.record(Route::Device, true);
        assert_eq!(b.route(), Route::Device);
        b.record(Route::Device, true);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.transitions().opened, 1);
        // Cooldown: two software pairs.
        assert_eq!(b.route(), Route::Software);
        assert_eq!(b.route(), Route::Software);
        // Then half-open probes.
        assert_eq!(b.route(), Route::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.route(), Route::Probe);
        // Probe budget exhausted: traffic stays on software.
        assert_eq!(b.route(), Route::Software);
        // Clean probes close it and clear the window.
        b.record(Route::Probe, false);
        b.record(Route::Probe, false);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.transitions().closed, 1);
        // A faulted probe after a re-trip is stale and ignored.
        b.record(Route::Device, true);
        b.record(Route::Device, true);
        assert_eq!(b.state(), BreakerState::Open);
        let opened = b.transitions().opened;
        b.record(Route::Probe, true);
        assert_eq!(b.transitions().opened, opened);
    }

    #[test]
    fn faulted_probe_reopens_breaker() {
        let mut b = Breaker::new(BreakerConfig {
            window: 2,
            min_samples: 2,
            threshold: 0.5,
            cooldown_pairs: 0,
            probes: 1,
        });
        b.record(Route::Device, true);
        b.record(Route::Device, true);
        assert_eq!(b.state(), BreakerState::Open);
        // Zero cooldown: next route is immediately a probe.
        assert_eq!(b.route(), Route::Probe);
        b.record(Route::Probe, true);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.transitions().opened, 2);
    }

    #[test]
    fn zero_deadline_fails_every_pair_with_typed_error() {
        let config = AlignmentConfig::DnaEdit;
        let batch = pairs(config, 6, 50);
        let dev = SmxDevice::new(config, 2).unwrap();
        let exec = BatchExecutor::new(
            dev,
            ExecutorConfig { jobs: 2, deadline: Some(Duration::ZERO), ..ExecutorConfig::default() },
        )
        .unwrap();
        let report = exec.run(&batch);
        assert_eq!(report.stats.deadline_exceeded, 6);
        assert_eq!(report.stats.failed, 6);
        assert!(report
            .outcomes
            .iter()
            .all(|o| matches!(o, PairOutcome::Failed(AlignError::DeadlineExceeded { .. }))));
        assert!(report.failure_summary().contains("6 deadline-exceeded"));
    }

    #[test]
    fn cancelled_batch_token_aborts_all_pairs() {
        let config = AlignmentConfig::DnaEdit;
        let batch = pairs(config, 5, 50);
        let dev = SmxDevice::new(config, 2).unwrap();
        let exec = BatchExecutor::new(dev, ExecutorConfig { jobs: 2, ..ExecutorConfig::default() })
            .unwrap();
        let token = CancelToken::new();
        token.cancel();
        let report =
            exec.run_with(&batch, RunOptions { cancel: Some(token), ..RunOptions::default() });
        assert_eq!(report.stats.cancelled, 5);
        assert!(report
            .outcomes
            .iter()
            .all(|o| matches!(o, PairOutcome::Failed(AlignError::Cancelled))));
    }

    #[test]
    fn shed_policy_preserves_accounting_invariants() {
        let config = AlignmentConfig::DnaEdit;
        let batch = pairs(config, 24, 60);
        let dev = SmxDevice::new(config, 2).unwrap();
        let exec = BatchExecutor::new(
            dev,
            ExecutorConfig {
                jobs: 2,
                queue_cap: 1,
                admission: AdmissionPolicy::Shed,
                ..ExecutorConfig::default()
            },
        )
        .unwrap();
        let report = exec.run(&batch);
        let s = &report.stats;
        assert_eq!(s.completed + s.failed + s.shed, 24);
        assert_eq!(
            report.outcomes.iter().filter(|o| matches!(o, PairOutcome::Shed)).count() as u64,
            s.shed
        );
        // Whatever did run is byte-identical to the sequential baseline.
        let golden = clean_baseline(config, &batch);
        for (i, g) in golden.iter().enumerate() {
            if let Some(a) = report.alignment(i) {
                assert_eq!(a.score, g.score);
                assert_eq!(a.cigar.to_string(), g.cigar.to_string());
            }
        }
    }

    #[test]
    fn resume_skips_completed_pairs_and_reemits_them_verbatim() {
        let config = AlignmentConfig::DnaGap;
        let batch = pairs(config, 10, 60);
        let dev = SmxDevice::new(config, 2).unwrap();
        let exec = BatchExecutor::new(dev, ExecutorConfig { jobs: 2, ..ExecutorConfig::default() })
            .unwrap();
        let full = exec.run(&batch);
        assert!(full.all_succeeded());
        // Pretend a crash happened after the even-indexed pairs.
        let manifest: HashMap<usize, Alignment> =
            (0..10).step_by(2).map(|i| (i, expect_aligned(&full, i).clone())).collect();
        let mut computed = Vec::new();
        let report = exec.run_with(
            &batch,
            RunOptions {
                resume: Some(&manifest),
                on_result: Some(&mut |i, _a: &Alignment| computed.push(i)),
                ..RunOptions::default()
            },
        );
        assert!(report.all_succeeded());
        assert_eq!(report.stats.resumed, 5);
        computed.sort_unstable();
        assert_eq!(computed, vec![1, 3, 5, 7, 9], "only missing pairs recompute");
        assert_eq!(report.outcomes, full.outcomes, "byte-identical to the full run");
    }

    #[test]
    fn executor_config_validation() {
        let config = AlignmentConfig::DnaEdit;
        let dev = SmxDevice::new(config, 1).unwrap();
        assert!(BatchExecutor::new(
            dev.clone(),
            ExecutorConfig { jobs: 0, ..ExecutorConfig::default() }
        )
        .is_err());
        assert!(BatchExecutor::new(
            dev.clone(),
            ExecutorConfig { queue_cap: 0, ..ExecutorConfig::default() }
        )
        .is_err());
        assert!(BatchExecutor::new(
            dev.clone(),
            ExecutorConfig {
                breaker: Some(BreakerConfig { threshold: 1.5, ..BreakerConfig::default() }),
                ..ExecutorConfig::default()
            }
        )
        .is_err());
        assert!(BatchExecutor::new(
            dev,
            ExecutorConfig {
                breaker: Some(BreakerConfig { probes: 0, ..BreakerConfig::default() }),
                ..ExecutorConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn poisoned_pair_fails_closed_in_pool() {
        let config = AlignmentConfig::DnaGap;
        let mut batch = pairs(config, 6, 50);
        let poisoned = Sequence::from_text(smx_align_core::Alphabet::Protein, "WYVAC").unwrap();
        batch[3] = (poisoned, batch[3].1.clone());
        let dev = SmxDevice::new(config, 2).unwrap();
        let exec = BatchExecutor::new(dev, ExecutorConfig { jobs: 3, ..ExecutorConfig::default() })
            .unwrap();
        let report = exec.run(&batch);
        assert_eq!(report.stats.failed, 1);
        assert_eq!(report.stats.completed, 5);
        assert!(matches!(report.outcomes[3], PairOutcome::Failed(AlignError::AlphabetMismatch)));
        assert!(report.failure_summary().contains("pair 3:"));
    }

    /// The PR-3 acceptance scenario: a fault plan that *silently*
    /// corrupts device readouts (past every checksum), full auditing,
    /// and a batch that must still come out byte-identical to the
    /// fault-free baseline with the violations caught and counted.
    #[test]
    fn full_audit_catches_silent_corruption_and_restores_byte_identity() {
        let config = AlignmentConfig::DnaGap;
        let batch = pairs(config, 12, 60);
        let golden = clean_baseline(config, &batch);
        let mut dev = SmxDevice::new(config, 2).unwrap();
        dev.enable_fault_injection(
            FaultPlan::new(11, 0.0).with_silent_rate(1.0),
            RecoveryPolicy::default(),
        );
        let exec = BatchExecutor::new(
            dev,
            ExecutorConfig {
                jobs: 1,
                audit: Some(AuditConfig::full()),
                ..ExecutorConfig::default()
            },
        )
        .unwrap();
        let report = exec.run(&batch);
        assert_all_aligned(&report);
        assert_byte_identical(&report, &golden);
        let s = &report.stats;
        // Every readout is corrupt: the primary audit fails, the device
        // retry fails its audit too, and the software recompute restores
        // the correct answer for every pair.
        assert_eq!(s.audits_run, 24);
        assert_eq!(s.integrity_violations, 24);
        assert_eq!(s.integrity_recomputed, 12);
        assert_eq!(s.recovery.silent_corruptions, 24);
        assert_eq!(s.per_device.len(), 1);
        assert_eq!(s.per_device[0].integrity_violations, 24);
    }

    /// Without the scoreboard, silent corruption sails through: the
    /// batch "succeeds" with wrong content. This is the control run that
    /// proves the audit is the defense, not the device's own checks.
    #[test]
    fn unaudited_silent_corruption_passes_through_undetected() {
        let config = AlignmentConfig::DnaGap;
        let batch = pairs(config, 8, 60);
        let golden = clean_baseline(config, &batch);
        let mut dev = SmxDevice::new(config, 2).unwrap();
        dev.enable_fault_injection(
            FaultPlan::new(11, 0.0).with_silent_rate(1.0),
            RecoveryPolicy::default(),
        );
        let exec = BatchExecutor::new(dev, ExecutorConfig::default()).unwrap();
        let report = exec.run(&batch);
        assert_all_aligned(&report);
        assert_eq!(report.stats.audits_run, 0);
        assert_eq!(report.stats.integrity_violations, 0);
        assert!(report.stats.recovery.silent_corruptions > 0);
        let diverged =
            golden.iter().enumerate().filter(|(i, g)| expect_aligned(&report, *i) != *g).count();
        assert!(diverged > 0, "corruption reached the output unchallenged");
    }

    /// Sampled auditing is deterministic per pair index: sampled pairs
    /// are guaranteed clean, unsampled ones may carry corruption.
    #[test]
    fn sampled_audit_cleans_exactly_the_sampled_pairs() {
        let config = AlignmentConfig::DnaGap;
        let batch = pairs(config, 20, 60);
        let golden = clean_baseline(config, &batch);
        let audit = AuditConfig { rate: 0.5, seed: 3 };
        let mut dev = SmxDevice::new(config, 2).unwrap();
        dev.enable_fault_injection(
            FaultPlan::new(11, 0.0).with_silent_rate(1.0),
            RecoveryPolicy::default(),
        );
        let exec = BatchExecutor::new(
            dev,
            ExecutorConfig { jobs: 2, audit: Some(audit), ..ExecutorConfig::default() },
        )
        .unwrap();
        let report = exec.run(&batch);
        assert_all_aligned(&report);
        let sampled: Vec<usize> = (0..batch.len()).filter(|&i| audit.samples(i)).collect();
        assert!(!sampled.is_empty() && sampled.len() < batch.len(), "{sampled:?}");
        for &i in &sampled {
            assert_eq!(expect_aligned(&report, i), &golden[i], "audited pair {i}");
        }
        assert!(report.stats.integrity_violations >= sampled.len() as u64);
    }

    /// A hedge trigger of zero makes every device leg "stuck"
    /// immediately: the backup on the software baseline must win every
    /// pair, byte-identically, with no deadline failures surfaced.
    #[test]
    fn hedge_backup_completes_stuck_pairs_on_the_baseline() {
        let config = AlignmentConfig::DnaGap;
        let batch = pairs(config, 6, 50);
        let golden = clean_baseline(config, &batch);
        let dev = SmxDevice::new(config, 2).unwrap();
        let exec = BatchExecutor::new(
            dev,
            ExecutorConfig {
                jobs: 2,
                hedge: Some(HedgeConfig::after(Duration::ZERO)),
                ..ExecutorConfig::default()
            },
        )
        .unwrap();
        let report = exec.run(&batch);
        assert_all_aligned(&report);
        assert_byte_identical(&report, &golden);
        assert_eq!(report.stats.hedges_launched, 6);
        assert_eq!(report.stats.hedges_won, 6);
        assert_eq!(report.stats.deadline_exceeded, 0);
    }

    /// When the real deadline is at or below the hedge trigger, the
    /// hedge must not fire: the pair fails with the typed deadline
    /// error exactly as it would without hedging.
    #[test]
    fn hedge_never_overrides_the_real_deadline() {
        let config = AlignmentConfig::DnaEdit;
        let batch = pairs(config, 4, 50);
        let dev = SmxDevice::new(config, 2).unwrap();
        let exec = BatchExecutor::new(
            dev,
            ExecutorConfig {
                jobs: 1,
                deadline: Some(Duration::ZERO),
                hedge: Some(HedgeConfig::after(Duration::ZERO)),
                ..ExecutorConfig::default()
            },
        )
        .unwrap();
        let report = exec.run(&batch);
        assert_eq!(report.stats.deadline_exceeded, 4);
        assert_eq!(report.stats.hedges_launched, 0);
        assert!(report
            .outcomes
            .iter()
            .all(|o| matches!(o, PairOutcome::Failed(AlignError::DeadlineExceeded { .. }))));
    }

    /// A persistently faulting pool is quarantined device by device;
    /// traffic degrades to the software baseline, canary probes keep
    /// failing (the fault plan never heals), and the output stays
    /// byte-identical throughout.
    #[test]
    fn sick_pool_quarantines_and_degrades_to_software() {
        let config = AlignmentConfig::DnaGap;
        let batch = pairs(config, 40, 60);
        let golden = clean_baseline(config, &batch);
        let mut dev = SmxDevice::new(config, 2).unwrap();
        dev.enable_fault_injection(FaultPlan::new(7, 1.0), RecoveryPolicy::default());
        let exec = BatchExecutor::new(
            dev,
            ExecutorConfig {
                jobs: 1,
                devices: 2,
                quarantine: Some(QuarantineConfig {
                    alpha: 0.5,
                    threshold: 0.5,
                    min_samples: 2,
                    canary_period: 4,
                    canary_probes: 2,
                }),
                ..ExecutorConfig::default()
            },
        )
        .unwrap();
        let report = exec.run(&batch);
        assert_all_aligned(&report);
        assert_byte_identical(&report, &golden);
        let s = &report.stats;
        assert_eq!(s.quarantines, 2, "both devices fault on every pair");
        assert_eq!(s.readmissions, 0);
        assert!(s.canary_runs > 0, "quarantined devices keep getting probed");
        assert_eq!(s.canary_failures, s.canary_runs, "the plan never heals");
        assert!(s.software_pairs > 0, "traffic degraded to the baseline");
        assert_eq!(s.per_device.len(), 2);
        assert!(s.per_device.iter().all(|d| d.quarantined));
    }

    /// PR-2 documented invariant, previously untested: a deadline
    /// failure during a half-open probe must not trip the breaker —
    /// deadlines say "overloaded", not "sick".
    #[test]
    fn deadline_failure_during_half_open_probe_does_not_trip_breaker() {
        let mut b = Breaker::new(BreakerConfig {
            window: 4,
            min_samples: 2,
            threshold: 0.5,
            cooldown_pairs: 0,
            probes: 2,
        });
        b.record(Route::Device, true);
        b.record(Route::Device, true);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.route(), Route::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // The probe pair times out: run_pair classifies deadline errors
        // as not-faulted, so the verdict reaching the breaker is clean.
        b.record(Route::Probe, false);
        assert_eq!(b.state(), BreakerState::HalfOpen, "no trip, no premature close");
        assert_eq!(b.transitions().opened, 1, "the deadline did not re-open the breaker");
    }

    /// Executor-level companion: a deadline storm with a breaker
    /// configured leaves the breaker closed.
    #[test]
    fn deadline_storm_does_not_trip_the_breaker() {
        let config = AlignmentConfig::DnaEdit;
        let batch = pairs(config, 12, 50);
        let dev = SmxDevice::new(config, 2).unwrap();
        let exec = BatchExecutor::new(
            dev,
            ExecutorConfig {
                jobs: 1,
                deadline: Some(Duration::ZERO),
                breaker: Some(BreakerConfig {
                    window: 4,
                    min_samples: 2,
                    threshold: 0.5,
                    cooldown_pairs: 2,
                    probes: 1,
                }),
                ..ExecutorConfig::default()
            },
        )
        .unwrap();
        let report = exec.run(&batch);
        assert_eq!(report.stats.deadline_exceeded, 12);
        let snap = report.stats.breaker.expect("breaker configured");
        assert_eq!(snap.state, BreakerState::Closed);
        assert_eq!(snap.transitions.opened, 0);
    }

    #[test]
    fn pool_config_validation() {
        let config = AlignmentConfig::DnaEdit;
        let dev = SmxDevice::new(config, 1).unwrap();
        assert!(BatchExecutor::new(
            dev.clone(),
            ExecutorConfig {
                audit: Some(AuditConfig { rate: 1.5, seed: 0 }),
                ..ExecutorConfig::default()
            }
        )
        .is_err());
        assert!(BatchExecutor::new(
            dev.clone(),
            ExecutorConfig {
                quarantine: Some(QuarantineConfig { alpha: 0.0, ..QuarantineConfig::default() }),
                ..ExecutorConfig::default()
            }
        )
        .is_err());
        assert!(BatchExecutor::new(
            dev.clone(),
            ExecutorConfig {
                quarantine: Some(QuarantineConfig {
                    canary_probes: 0,
                    ..QuarantineConfig::default()
                }),
                ..ExecutorConfig::default()
            }
        )
        .is_err());
        assert!(BatchExecutor::new(
            dev,
            ExecutorConfig {
                hedge: Some(HedgeConfig {
                    trigger: crate::pool::HedgeTrigger::P95 { min_samples: 8, multiplier: 0.0 },
                }),
                ..ExecutorConfig::default()
            }
        )
        .is_err());
    }

    /// Multi-device pools spread clean traffic round-robin and report
    /// per-device accounting that sums to the batch totals.
    #[test]
    fn multi_device_pool_spreads_traffic_and_accounts_per_device() {
        let config = AlignmentConfig::DnaGap;
        let batch = pairs(config, 12, 60);
        let golden = clean_baseline(config, &batch);
        let dev = SmxDevice::new(config, 2).unwrap();
        let exec = BatchExecutor::new(
            dev,
            ExecutorConfig { jobs: 1, devices: 3, ..ExecutorConfig::default() },
        )
        .unwrap();
        let report = exec.run(&batch);
        assert_all_aligned(&report);
        assert_byte_identical(&report, &golden);
        let s = &report.stats;
        assert_eq!(s.per_device.len(), 3);
        assert_eq!(s.per_device.iter().map(|d| d.pairs).sum::<u64>(), 12);
        assert!(
            s.per_device.iter().all(|d| d.pairs == 4),
            "round-robin spreads evenly: {:?}",
            s.per_device
        );
    }

    /// A half-open probe in flight and a queue shed against a full queue
    /// are independent events: the shed neither consumes the probe slot
    /// nor feeds the breaker, and the clean probe still closes it. The
    /// interleaving is pinned step by step with [`Gate`], not left to
    /// the scheduler.
    #[test]
    fn half_open_probe_races_queue_shed_deterministically() {
        use crate::testkit::Gate;
        let mut breaker = Breaker::new(BreakerConfig {
            window: 4,
            min_samples: 2,
            threshold: 0.5,
            cooldown_pairs: 1,
            probes: 1,
        });
        // Trip the breaker with two faulted device pairs, then burn the
        // one-pair cooldown so the next route is the half-open probe.
        for _ in 0..2 {
            assert_eq!(breaker.route(), Route::Device);
            breaker.record(Route::Device, true);
        }
        assert_eq!(breaker.state(), BreakerState::Open);
        assert_eq!(breaker.route(), Route::Software);

        let queue = JobQueue::new(1);
        let gate = Gate::new();
        let breaker = Mutex::new(breaker);
        std::thread::scope(|scope| {
            let worker = scope.spawn(|| {
                gate.wait_for(1); // the queue is full
                let index = queue.pop().expect("job 0 is queued");
                assert_eq!(index, 0);
                let route = breaker.lock().unwrap().route();
                assert_eq!(route, Route::Probe, "cooldown expired: this pair is the probe");
                gate.arrive(2); // probe in flight
                gate.wait_for(3); // ...while the submitter sheds
                breaker.lock().unwrap().record(route, false);
                gate.arrive(4);
            });
            assert!(queue.try_push(0));
            gate.arrive(1);
            gate.wait_for(2);
            // The probe is in flight. Refill the freed seat, then shed
            // against the full queue while the breaker is mid-probe.
            assert!(queue.try_push(1));
            assert!(!queue.try_push(2), "the full queue sheds while the probe is in flight");
            assert_eq!(breaker.lock().unwrap().state(), BreakerState::HalfOpen);
            gate.arrive(3);
            gate.wait_for(4);
            worker.join().unwrap();
        });
        // The shed fed nothing into the breaker; the clean probe verdict
        // alone decided, and it closed.
        let breaker = breaker.into_inner().unwrap();
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert_eq!(
            breaker.transitions(),
            BreakerTransitions { opened: 1, half_opened: 1, closed: 1 }
        );
    }

    /// When the hedge backup *also* exceeds the real deadline, the pair
    /// fails typed (`DeadlineExceeded`), the launch is counted, and no
    /// hedge win is claimed.
    #[test]
    fn hedge_backup_exceeding_deadline_fails_typed_with_no_win() {
        let config = AlignmentConfig::DnaGap;
        let batch = pairs(config, 3, 2000);
        let dev = SmxDevice::new(config, 2).unwrap();
        let exec = BatchExecutor::new(
            dev,
            ExecutorConfig {
                jobs: 1,
                // A zero hedge trigger forces the primary to hand over
                // immediately; 2 ms cannot cover a 2000x2000 DP block on
                // the backup either.
                deadline: Some(Duration::from_millis(2)),
                hedge: Some(HedgeConfig {
                    trigger: crate::pool::HedgeTrigger::After(Duration::ZERO),
                }),
                ..ExecutorConfig::default()
            },
        )
        .unwrap();
        let report = exec.run(&batch);
        let s = &report.stats;
        assert_eq!(s.hedges_launched, 3, "every primary hit the trigger");
        assert_eq!(s.hedges_won, 0, "an expired backup is not a win");
        assert_eq!(s.deadline_exceeded, 3);
        assert_eq!(s.completed, 0);
        for (i, outcome) in report.outcomes.iter().enumerate() {
            assert!(
                matches!(outcome, PairOutcome::Failed(AlignError::DeadlineExceeded { .. })),
                "pair {i}: expected a typed deadline failure, got {outcome:?}"
            );
        }
    }
}
