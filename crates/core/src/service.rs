//! Resilient batch-alignment service layer (DESIGN.md §5).
//!
//! [`BatchExecutor`] runs a batch of pairs through a pool of
//! [`SmxDevice`] workers fed from a bounded work queue with
//! backpressure: submitters either block until a slot frees or shed the
//! pair, per the [`AdmissionPolicy`]. Each pair runs under a cooperative
//! cancellation token with an optional wall-clock deadline, checked at
//! tile boundaries inside the coprocessor. A circuit [`Breaker`] tracks
//! the fault rate over a sliding window of device outcomes and, when it
//! trips, routes whole pairs to the core's software baseline until
//! half-open probes show the device is healthy again.
//!
//! Every routing decision preserves the workspace's byte-identity
//! invariant: the device path (with tile-level recovery), the degraded
//! path, and the software baseline all share the global traceback
//! tie-break, so a batch run under any fault pattern, pool width, or
//! breaker state produces exactly the alignments of a fault-free
//! sequential run. The service layer only decides *where* a pair is
//! computed, never *what* it computes.

use std::collections::{HashMap, VecDeque};
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use smx_align_core::{AlignError, Alignment, Sequence};
use smx_coproc::control::CancelToken;
use smx_coproc::faults::RecoveryStats;

use crate::orchestrator::{BatchFailure, DeviceBatchReport, SmxDevice};

/// What a submitter does when the work queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Block until a queue slot frees (lossless backpressure).
    #[default]
    Block,
    /// Record the pair as [`PairOutcome::Shed`] and move on (load
    /// shedding for latency-sensitive callers).
    Shed,
}

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Sliding-window length, in device-pair outcomes.
    pub window: usize,
    /// Minimum outcomes in the window before the breaker may trip.
    pub min_samples: usize,
    /// Faulted fraction of the window at which the breaker opens.
    pub threshold: f64,
    /// Pairs served on the software path while open, before probing.
    pub cooldown_pairs: u64,
    /// Consecutive clean device probes required to close again.
    pub probes: u64,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig { window: 32, min_samples: 8, threshold: 0.5, cooldown_pairs: 16, probes: 4 }
    }
}

/// Breaker state (the classic three-state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Pairs run on the device; outcomes feed the sliding window.
    Closed,
    /// Pairs run on the software baseline for the cooldown.
    Open,
    /// A limited number of probe pairs run on the device; the rest stay
    /// on software until the probes deliver a verdict.
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        })
    }
}

/// Counts of breaker state transitions over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakerTransitions {
    /// Closed/HalfOpen → Open trips.
    pub opened: u64,
    /// Open → HalfOpen transitions (cooldown expired, probing started).
    pub half_opened: u64,
    /// HalfOpen → Closed recoveries.
    pub closed: u64,
}

/// Breaker state and transition counters at the end of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerSnapshot {
    /// State when the batch finished.
    pub state: BreakerState,
    /// Transition counts over the batch.
    pub transitions: BreakerTransitions,
}

/// Where the breaker routed a pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Route {
    /// Normal device path (breaker closed, or no breaker).
    Device,
    /// Device path as a half-open probe.
    Probe,
    /// Software baseline (breaker open, or half-open without a probe
    /// slot).
    Software,
}

/// The circuit breaker: a pure, deterministic state machine over pair
/// outcomes. Cooldown is measured in *pairs served*, not wall time, so
/// the machine is exactly reproducible in tests.
#[derive(Debug)]
pub struct Breaker {
    cfg: BreakerConfig,
    state: BreakerState,
    window: VecDeque<bool>,
    faulted_in_window: usize,
    cooldown_left: u64,
    probes_granted: u64,
    probes_clean: u64,
    transitions: BreakerTransitions,
}

impl Breaker {
    /// A closed breaker with an empty window.
    #[must_use]
    pub fn new(cfg: BreakerConfig) -> Breaker {
        Breaker {
            cfg,
            state: BreakerState::Closed,
            window: VecDeque::new(),
            faulted_in_window: 0,
            cooldown_left: 0,
            probes_granted: 0,
            probes_clean: 0,
            transitions: BreakerTransitions::default(),
        }
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Transition counters so far.
    #[must_use]
    pub fn transitions(&self) -> BreakerTransitions {
        self.transitions
    }

    /// Decides where the next pair runs, advancing cooldown/probe
    /// accounting.
    fn route(&mut self) -> Route {
        match self.state {
            BreakerState::Closed => Route::Device,
            BreakerState::Open => {
                if self.cooldown_left > 0 {
                    self.cooldown_left -= 1;
                    Route::Software
                } else {
                    self.state = BreakerState::HalfOpen;
                    self.transitions.half_opened += 1;
                    self.probes_granted = 1;
                    self.probes_clean = 0;
                    Route::Probe
                }
            }
            BreakerState::HalfOpen => {
                if self.probes_granted < self.cfg.probes {
                    self.probes_granted += 1;
                    Route::Probe
                } else {
                    // Probes are in flight; keep the rest of the traffic
                    // safe until they deliver a verdict.
                    Route::Software
                }
            }
        }
    }

    /// Feeds back one pair's outcome for the given route.
    fn record(&mut self, route: Route, faulted: bool) {
        match route {
            Route::Software => {}
            Route::Probe => {
                // A probe verdict from before a re-trip is stale.
                if self.state != BreakerState::HalfOpen {
                    return;
                }
                if faulted {
                    self.trip();
                } else {
                    self.probes_clean += 1;
                    if self.probes_clean >= self.cfg.probes {
                        self.state = BreakerState::Closed;
                        self.transitions.closed += 1;
                        self.window.clear();
                        self.faulted_in_window = 0;
                    }
                }
            }
            Route::Device => {
                if self.state != BreakerState::Closed {
                    return;
                }
                if self.window.len() == self.cfg.window
                    && self.window.pop_front() == Some(true)
                {
                    self.faulted_in_window -= 1;
                }
                self.window.push_back(faulted);
                if faulted {
                    self.faulted_in_window += 1;
                }
                if self.window.len() >= self.cfg.min_samples
                    && self.faulted_in_window as f64
                        >= self.cfg.threshold * self.window.len() as f64
                {
                    self.trip();
                }
            }
        }
    }

    fn trip(&mut self) {
        self.state = BreakerState::Open;
        self.transitions.opened += 1;
        self.cooldown_left = self.cfg.cooldown_pairs;
        self.probes_granted = 0;
        self.probes_clean = 0;
    }
}

/// Executor tuning.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Worker threads (each with its own device clone). `1` runs the
    /// batch inline on the calling thread, deterministically.
    pub jobs: usize,
    /// Bounded work-queue capacity (backpressure point).
    pub queue_cap: usize,
    /// Full-queue behaviour.
    pub admission: AdmissionPolicy,
    /// Per-pair wall-clock deadline, enforced at tile boundaries.
    pub deadline: Option<Duration>,
    /// Circuit breaker over the coprocessor fault rate; `None` disables
    /// breaking (every pair takes the device path).
    pub breaker: Option<BreakerConfig>,
}

impl Default for ExecutorConfig {
    fn default() -> ExecutorConfig {
        ExecutorConfig {
            jobs: 1,
            queue_cap: 64,
            admission: AdmissionPolicy::Block,
            deadline: None,
            breaker: None,
        }
    }
}

/// One pair's outcome in a service batch.
#[derive(Debug, Clone, PartialEq)]
pub enum PairOutcome {
    /// The pair aligned (on whichever path the breaker chose).
    Aligned(Alignment),
    /// The pair failed with a typed error.
    Failed(AlignError),
    /// The pair was shed by the admission policy and never ran.
    Shed,
}

/// Structured counters for one batch run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceStats {
    /// Pairs in the input batch.
    pub submitted: u64,
    /// Pairs that aligned (including resumed ones).
    pub completed: u64,
    /// Pairs that failed with an error.
    pub failed: u64,
    /// Pairs shed at admission.
    pub shed: u64,
    /// Pairs satisfied from a resume manifest without running.
    pub resumed: u64,
    /// Failures caused by an expired per-pair deadline.
    pub deadline_exceeded: u64,
    /// Failures caused by batch cancellation.
    pub cancelled: u64,
    /// Pairs executed on the device path (incl. probes).
    pub device_pairs: u64,
    /// Pairs the breaker routed to the software baseline.
    pub software_pairs: u64,
    /// Device pairs that ran as half-open probes.
    pub probe_pairs: u64,
    /// Pairs during which the device injected at least one fault.
    pub faulted_pairs: u64,
    /// High-water mark of the bounded work queue.
    pub max_queue_depth: usize,
    /// Breaker state and transitions (when a breaker was configured).
    pub breaker: Option<BreakerSnapshot>,
    /// Tile-level recovery counters aggregated across all workers.
    pub recovery: RecoveryStats,
}

/// Outcome of [`BatchExecutor::run`]: per-pair outcomes positionally
/// aligned with the input, plus the run's counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceBatchReport {
    /// One entry per input pair.
    pub outcomes: Vec<PairOutcome>,
    /// Structured counters for the run.
    pub stats: ServiceStats,
}

impl ServiceBatchReport {
    /// The alignment for pair `index`, when it succeeded.
    #[must_use]
    pub fn alignment(&self, index: usize) -> Option<&Alignment> {
        match self.outcomes.get(index) {
            Some(PairOutcome::Aligned(a)) => Some(a),
            _ => None,
        }
    }

    /// Whether every pair aligned.
    #[must_use]
    pub fn all_succeeded(&self) -> bool {
        self.outcomes.iter().all(|o| matches!(o, PairOutcome::Aligned(_)))
    }

    /// Per-pair failures in input order (shed pairs are not failures).
    #[must_use]
    pub fn failures(&self) -> Vec<BatchFailure> {
        self.outcomes
            .iter()
            .enumerate()
            .filter_map(|(index, o)| match o {
                PairOutcome::Failed(error) => {
                    Some(BatchFailure { index, error: error.clone() })
                }
                _ => None,
            })
            .collect()
    }

    /// One-line-per-failure summary with the aggregate cause breakdown,
    /// mirroring [`DeviceBatchReport::failure_summary`].
    #[must_use]
    pub fn failure_summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!(
            "{}/{} pairs aligned, {} failed, {} shed",
            self.stats.completed,
            self.outcomes.len(),
            self.stats.failed,
            self.stats.shed,
        );
        if self.stats.deadline_exceeded + self.stats.cancelled > 0 {
            let _ = write!(
                s,
                " ({} deadline-exceeded, {} cancelled)",
                self.stats.deadline_exceeded, self.stats.cancelled
            );
        }
        for f in self.failures() {
            let _ = write!(s, "\n  pair {}: {}", f.index, f.error);
        }
        s
    }
}

/// Completion hook: called with `(pair index, alignment)` for every
/// newly computed result, in completion order.
pub type ResultHook<'a> = &'a mut dyn FnMut(usize, &Alignment);

/// Per-run knobs that are not executor configuration: a batch-wide
/// cancellation token, a resume manifest, and a completion callback.
#[derive(Default)]
pub struct RunOptions<'a> {
    /// Batch-wide cancellation token; per-pair deadline tokens are
    /// forked from it, so cancelling it aborts every in-flight and
    /// queued pair at the next tile boundary.
    pub cancel: Option<CancelToken>,
    /// Previously completed pairs (index → alignment, e.g. from a
    /// checkpoint manifest); they are re-emitted verbatim without
    /// running.
    pub resume: Option<&'a HashMap<usize, Alignment>>,
    /// Called on the collector thread for every *newly computed*
    /// alignment, in completion order — the checkpoint writer's hook.
    pub on_result: Option<ResultHook<'a>>,
}

/// The resilient batch-alignment service: a worker pool over device
/// clones with backpressure, deadlines, and a circuit breaker.
///
/// The executor owns a fully configured template device (fault
/// injection, degradation policy); each worker clones it, so per-worker
/// fault sessions are independent but identically planned.
#[derive(Debug, Clone)]
pub struct BatchExecutor {
    device: SmxDevice,
    cfg: ExecutorConfig,
}

impl BatchExecutor {
    /// Builds an executor over `device` with `cfg`.
    ///
    /// # Errors
    ///
    /// Rejects zero jobs, a zero-capacity queue, and malformed breaker
    /// settings (threshold outside `(0, 1]`, window smaller than
    /// `min_samples`, zero probes).
    pub fn new(device: SmxDevice, cfg: ExecutorConfig) -> Result<BatchExecutor, AlignError> {
        if cfg.jobs == 0 {
            return Err(AlignError::Internal("executor needs at least one job".into()));
        }
        if cfg.queue_cap == 0 {
            return Err(AlignError::Internal("queue capacity must be at least 1".into()));
        }
        if let Some(b) = &cfg.breaker {
            if !(b.threshold > 0.0 && b.threshold <= 1.0) {
                return Err(AlignError::Internal(format!(
                    "breaker threshold {} outside (0, 1]",
                    b.threshold
                )));
            }
            if b.min_samples == 0 || b.window < b.min_samples {
                return Err(AlignError::Internal(format!(
                    "breaker window {} must be >= min_samples {} >= 1",
                    b.window, b.min_samples
                )));
            }
            if b.probes == 0 {
                return Err(AlignError::Internal("breaker needs at least one probe".into()));
            }
        }
        Ok(BatchExecutor { device, cfg })
    }

    /// The executor configuration.
    #[must_use]
    pub fn config(&self) -> &ExecutorConfig {
        &self.cfg
    }

    /// Runs `pairs` with default options.
    #[must_use]
    pub fn run(&self, pairs: &[(Sequence, Sequence)]) -> ServiceBatchReport {
        self.run_with(pairs, RunOptions::default())
    }

    /// Runs `pairs` under `opts`.
    #[must_use]
    pub fn run_with(
        &self,
        pairs: &[(Sequence, Sequence)],
        mut opts: RunOptions<'_>,
    ) -> ServiceBatchReport {
        let n = pairs.len();
        let mut outcomes: Vec<Option<PairOutcome>> = vec![None; n];
        let mut stats = ServiceStats { submitted: n as u64, ..ServiceStats::default() };

        if let Some(manifest) = opts.resume {
            for (&index, alignment) in manifest {
                if index < n && outcomes[index].is_none() {
                    outcomes[index] = Some(PairOutcome::Aligned(alignment.clone()));
                    stats.resumed += 1;
                }
            }
        }
        let todo: Vec<usize> = (0..n).filter(|&i| outcomes[i].is_none()).collect();

        let batch_token = opts.cancel.clone().unwrap_or_default();
        let breaker = self.cfg.breaker.map(|b| Mutex::new(Breaker::new(b)));

        if self.cfg.jobs == 1 {
            // Inline path: deterministic order, no queue, no shedding.
            let mut dev = self.device.clone();
            for index in todo {
                let (q, r) = &pairs[index];
                let (result, meta) =
                    run_pair(&mut dev, q, r, self.cfg.deadline, &batch_token, breaker.as_ref());
                tally(&mut stats, &meta, &result);
                if let (Ok(a), Some(cb)) = (&result, opts.on_result.as_mut()) {
                    cb(index, a);
                }
                outcomes[index] = Some(match result {
                    Ok(a) => PairOutcome::Aligned(a),
                    Err(e) => PairOutcome::Failed(e),
                });
            }
            stats.recovery.merge(&dev.recovery_stats());
        } else {
            let queue = JobQueue::new(self.cfg.queue_cap);
            let (tx, rx) = mpsc::channel::<WorkerMsg>();
            std::thread::scope(|scope| {
                for _ in 0..self.cfg.jobs {
                    let tx = tx.clone();
                    let queue = &queue;
                    let breaker = breaker.as_ref();
                    let batch_token = batch_token.clone();
                    let deadline = self.cfg.deadline;
                    let template = &self.device;
                    scope.spawn(move || {
                        let mut dev = template.clone();
                        while let Some(index) = queue.pop() {
                            let (q, r) = &pairs[index];
                            let (result, meta) =
                                run_pair(&mut dev, q, r, deadline, &batch_token, breaker);
                            let _ = tx.send(WorkerMsg::Pair { index, result, meta });
                        }
                        let _ = tx.send(WorkerMsg::Done(dev.recovery_stats()));
                    });
                }
                drop(tx);

                let mut dispatched = 0usize;
                for index in todo {
                    match self.cfg.admission {
                        AdmissionPolicy::Block => {
                            queue.push_blocking(index);
                            dispatched += 1;
                        }
                        AdmissionPolicy::Shed => {
                            if queue.try_push(index) {
                                dispatched += 1;
                            } else {
                                outcomes[index] = Some(PairOutcome::Shed);
                                stats.shed += 1;
                            }
                        }
                    }
                }
                queue.close();

                let mut pairs_seen = 0usize;
                let mut workers_done = 0usize;
                while pairs_seen < dispatched || workers_done < self.cfg.jobs {
                    match rx.recv().expect("workers outlive the channel") {
                        WorkerMsg::Pair { index, result, meta } => {
                            pairs_seen += 1;
                            tally(&mut stats, &meta, &result);
                            if let (Ok(a), Some(cb)) = (&result, opts.on_result.as_mut()) {
                                cb(index, a);
                            }
                            outcomes[index] = Some(match result {
                                Ok(a) => PairOutcome::Aligned(a),
                                Err(e) => PairOutcome::Failed(e),
                            });
                        }
                        WorkerMsg::Done(recovery) => {
                            workers_done += 1;
                            stats.recovery.merge(&recovery);
                        }
                    }
                }
                stats.max_queue_depth = queue.max_depth();
            });
        }

        stats.completed =
            outcomes.iter().flatten().filter(|o| matches!(o, PairOutcome::Aligned(_))).count()
                as u64;
        stats.failed =
            outcomes.iter().flatten().filter(|o| matches!(o, PairOutcome::Failed(_))).count()
                as u64;
        if let Some(b) = breaker {
            let b = b.into_inner().expect("breaker lock poisoned");
            stats.breaker =
                Some(BreakerSnapshot { state: b.state(), transitions: b.transitions() });
        }
        let outcomes = outcomes
            .into_iter()
            .map(|o| o.expect("every pair has an outcome"))
            .collect();
        ServiceBatchReport { outcomes, stats }
    }
}

/// Per-pair metadata flowing from workers to the collector.
#[derive(Debug, Clone, Copy)]
struct PairMeta {
    route: Route,
    faulted: bool,
}

enum WorkerMsg {
    Pair { index: usize, result: Result<Alignment, AlignError>, meta: PairMeta },
    Done(RecoveryStats),
}

/// Runs one pair on `dev`: consult the breaker, fork the deadline token,
/// execute on the chosen path, and feed the outcome back.
fn run_pair(
    dev: &mut SmxDevice,
    q: &Sequence,
    r: &Sequence,
    deadline: Option<Duration>,
    batch_token: &CancelToken,
    breaker: Option<&Mutex<Breaker>>,
) -> (Result<Alignment, AlignError>, PairMeta) {
    let route = match breaker {
        Some(b) => b.lock().expect("breaker lock poisoned").route(),
        None => Route::Device,
    };
    let token = match deadline {
        Some(d) => batch_token.fork_with_deadline(d),
        None => batch_token.clone(),
    };
    dev.set_cancel_token(Some(token));
    let before = dev.recovery_stats();
    let result = match route {
        Route::Software => dev.align_software(q, r),
        Route::Device | Route::Probe => dev.align(q, r),
    };
    let after = dev.recovery_stats();
    dev.set_cancel_token(None);
    // A pair "faulted" for breaker purposes when the device injected at
    // least one fault while it ran, or when it failed with a recoverable
    // device fault. Deadline/cancellation failures are *not* faults —
    // breaking on them would mask overload as device sickness.
    let faulted = after.faults_injected > before.faults_injected
        || result.as_ref().err().is_some_and(AlignError::is_recoverable_fault);
    if let Some(b) = breaker {
        b.lock().expect("breaker lock poisoned").record(route, faulted);
    }
    (result, PairMeta { route, faulted })
}

fn tally(stats: &mut ServiceStats, meta: &PairMeta, result: &Result<Alignment, AlignError>) {
    match meta.route {
        Route::Device => stats.device_pairs += 1,
        Route::Probe => {
            stats.device_pairs += 1;
            stats.probe_pairs += 1;
        }
        Route::Software => stats.software_pairs += 1,
    }
    if meta.faulted {
        stats.faulted_pairs += 1;
    }
    match result {
        Err(AlignError::DeadlineExceeded { .. }) => stats.deadline_exceeded += 1,
        Err(AlignError::Cancelled) => stats.cancelled += 1,
        _ => {}
    }
}

/// Sequential fail-closed batch on one device: the engine behind
/// [`SmxDevice::align_batch`]. Runs on the caller's device (stats
/// accumulate there) with whatever token the caller installed.
pub(crate) fn device_batch(
    dev: &mut SmxDevice,
    pairs: &[(Sequence, Sequence)],
) -> DeviceBatchReport {
    let mut alignments = Vec::with_capacity(pairs.len());
    let mut failures = Vec::new();
    for (index, (q, r)) in pairs.iter().enumerate() {
        match dev.align(q, r) {
            Ok(a) => alignments.push(Some(a)),
            Err(error) => {
                alignments.push(None);
                failures.push(BatchFailure { index, error });
            }
        }
    }
    DeviceBatchReport { alignments, failures, recovery: dev.recovery_stats() }
}

/// Bounded MPMC work queue: `Mutex<VecDeque>` + two condvars, closing
/// semantics for shutdown, and a depth high-water mark for the counters.
#[derive(Debug)]
struct JobQueue {
    cap: usize,
    inner: Mutex<QueueInner>,
    not_full: Condvar,
    not_empty: Condvar,
}

#[derive(Debug)]
struct QueueInner {
    jobs: VecDeque<usize>,
    closed: bool,
    max_depth: usize,
}

impl JobQueue {
    fn new(cap: usize) -> JobQueue {
        JobQueue {
            cap,
            inner: Mutex::new(QueueInner {
                jobs: VecDeque::new(),
                closed: false,
                max_depth: 0,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Blocks until a slot frees (the backpressure point).
    fn push_blocking(&self, index: usize) {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        while inner.jobs.len() >= self.cap {
            inner = self.not_full.wait(inner).expect("queue lock poisoned");
        }
        inner.jobs.push_back(index);
        inner.max_depth = inner.max_depth.max(inner.jobs.len());
        self.not_empty.notify_one();
    }

    /// Non-blocking push; `false` means the pair was shed.
    fn try_push(&self, index: usize) -> bool {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        if inner.jobs.len() >= self.cap {
            return false;
        }
        inner.jobs.push_back(index);
        inner.max_depth = inner.max_depth.max(inner.jobs.len());
        self.not_empty.notify_one();
        true
    }

    /// Blocks for work; `None` once the queue is closed and drained.
    fn pop(&self) -> Option<usize> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        loop {
            if let Some(index) = inner.jobs.pop_front() {
                self.not_full.notify_one();
                return Some(index);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue lock poisoned");
        }
    }

    fn close(&self) {
        self.inner.lock().expect("queue lock poisoned").closed = true;
        self.not_empty.notify_all();
    }

    fn max_depth(&self) -> usize {
        self.inner.lock().expect("queue lock poisoned").max_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smx_align_core::AlignmentConfig;
    use smx_coproc::faults::{FaultPlan, RecoveryPolicy};

    fn pairs(config: AlignmentConfig, count: usize, len: usize) -> Vec<(Sequence, Sequence)> {
        let card = config.alphabet().cardinality() as u32;
        (0..count as u32)
            .map(|p| {
                let seq = |stride: u32, off: u32| {
                    let codes: Vec<u8> = (0..len as u32)
                        .map(|i| ((i * stride + off + p * 3 + (i >> 4)) % card) as u8)
                        .collect();
                    Sequence::from_codes(config.alphabet(), codes).unwrap()
                };
                (seq(7, 1), seq(5, p))
            })
            .collect()
    }

    fn clean_baseline(
        config: AlignmentConfig,
        batch: &[(Sequence, Sequence)],
    ) -> Vec<Alignment> {
        let mut dev = SmxDevice::new(config, 2).unwrap();
        batch.iter().map(|(q, r)| dev.align(q, r).unwrap()).collect()
    }

    fn assert_byte_identical(report: &ServiceBatchReport, golden: &[Alignment]) {
        assert_eq!(report.outcomes.len(), golden.len());
        for (i, g) in golden.iter().enumerate() {
            let a = report.alignment(i).unwrap_or_else(|| panic!("pair {i} not aligned"));
            assert_eq!(a.score, g.score, "pair {i}");
            assert_eq!(a.cigar.to_string(), g.cigar.to_string(), "pair {i}");
        }
    }

    #[test]
    fn pool_matches_sequential_baseline() {
        let config = AlignmentConfig::DnaGap;
        let batch = pairs(config, 16, 70);
        let golden = clean_baseline(config, &batch);
        let dev = SmxDevice::new(config, 2).unwrap();
        let exec = BatchExecutor::new(
            dev,
            ExecutorConfig { jobs: 4, queue_cap: 4, ..ExecutorConfig::default() },
        )
        .unwrap();
        let report = exec.run(&batch);
        assert!(report.all_succeeded());
        assert_byte_identical(&report, &golden);
        assert_eq!(report.stats.completed, 16);
        assert_eq!(report.stats.device_pairs, 16);
        assert!(report.stats.max_queue_depth <= 4);
    }

    #[test]
    fn fault_storm_through_pool_is_byte_identical_to_clean_run() {
        let config = AlignmentConfig::DnaGap;
        let batch = pairs(config, 20, 80);
        let golden = clean_baseline(config, &batch);
        let mut dev = SmxDevice::new(config, 2).unwrap();
        dev.enable_fault_injection(FaultPlan::new(42, 0.3), RecoveryPolicy::default());
        let exec = BatchExecutor::new(
            dev,
            ExecutorConfig {
                jobs: 4,
                queue_cap: 8,
                breaker: Some(BreakerConfig::default()),
                ..ExecutorConfig::default()
            },
        )
        .unwrap();
        let report = exec.run(&batch);
        assert!(report.all_succeeded(), "{}", report.failure_summary());
        assert_byte_identical(&report, &golden);
        assert!(report.stats.recovery.invariants_hold());
        assert!(report.stats.recovery.faults_injected > 0);
    }

    #[test]
    fn breaker_opens_under_sustained_faults_and_outputs_stay_identical() {
        let config = AlignmentConfig::DnaGap;
        let batch = pairs(config, 40, 60);
        let golden = clean_baseline(config, &batch);
        let mut dev = SmxDevice::new(config, 2).unwrap();
        // Every device pair faults somewhere: the breaker must trip.
        dev.enable_fault_injection(FaultPlan::new(7, 1.0), RecoveryPolicy::default());
        let exec = BatchExecutor::new(
            dev,
            ExecutorConfig {
                jobs: 1, // deterministic transition sequence
                breaker: Some(BreakerConfig {
                    window: 8,
                    min_samples: 4,
                    threshold: 0.5,
                    cooldown_pairs: 4,
                    probes: 2,
                }),
                ..ExecutorConfig::default()
            },
        )
        .unwrap();
        let report = exec.run(&batch);
        assert!(report.all_succeeded(), "{}", report.failure_summary());
        assert_byte_identical(&report, &golden);
        let snap = report.stats.breaker.expect("breaker configured");
        assert!(snap.transitions.opened >= 2, "{snap:?}");
        assert!(snap.transitions.half_opened >= 1, "{snap:?}");
        assert_eq!(snap.transitions.closed, 0, "faults never stop: {snap:?}");
        assert!(report.stats.software_pairs > 0);
        assert!(report.stats.probe_pairs > 0);
    }

    #[test]
    fn breaker_state_machine_transitions() {
        let mut b = Breaker::new(BreakerConfig {
            window: 4,
            min_samples: 2,
            threshold: 0.5,
            cooldown_pairs: 2,
            probes: 2,
        });
        assert_eq!(b.state(), BreakerState::Closed);
        // Two faulted device pairs trip it.
        assert_eq!(b.route(), Route::Device);
        b.record(Route::Device, true);
        assert_eq!(b.route(), Route::Device);
        b.record(Route::Device, true);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.transitions().opened, 1);
        // Cooldown: two software pairs.
        assert_eq!(b.route(), Route::Software);
        assert_eq!(b.route(), Route::Software);
        // Then half-open probes.
        assert_eq!(b.route(), Route::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.route(), Route::Probe);
        // Probe budget exhausted: traffic stays on software.
        assert_eq!(b.route(), Route::Software);
        // Clean probes close it and clear the window.
        b.record(Route::Probe, false);
        b.record(Route::Probe, false);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.transitions().closed, 1);
        // A faulted probe after a re-trip is stale and ignored.
        b.record(Route::Device, true);
        b.record(Route::Device, true);
        assert_eq!(b.state(), BreakerState::Open);
        let opened = b.transitions().opened;
        b.record(Route::Probe, true);
        assert_eq!(b.transitions().opened, opened);
    }

    #[test]
    fn faulted_probe_reopens_breaker() {
        let mut b = Breaker::new(BreakerConfig {
            window: 2,
            min_samples: 2,
            threshold: 0.5,
            cooldown_pairs: 0,
            probes: 1,
        });
        b.record(Route::Device, true);
        b.record(Route::Device, true);
        assert_eq!(b.state(), BreakerState::Open);
        // Zero cooldown: next route is immediately a probe.
        assert_eq!(b.route(), Route::Probe);
        b.record(Route::Probe, true);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.transitions().opened, 2);
    }

    #[test]
    fn zero_deadline_fails_every_pair_with_typed_error() {
        let config = AlignmentConfig::DnaEdit;
        let batch = pairs(config, 6, 50);
        let dev = SmxDevice::new(config, 2).unwrap();
        let exec = BatchExecutor::new(
            dev,
            ExecutorConfig {
                jobs: 2,
                deadline: Some(Duration::ZERO),
                ..ExecutorConfig::default()
            },
        )
        .unwrap();
        let report = exec.run(&batch);
        assert_eq!(report.stats.deadline_exceeded, 6);
        assert_eq!(report.stats.failed, 6);
        assert!(report
            .outcomes
            .iter()
            .all(|o| matches!(o, PairOutcome::Failed(AlignError::DeadlineExceeded { .. }))));
        assert!(report.failure_summary().contains("6 deadline-exceeded"));
    }

    #[test]
    fn cancelled_batch_token_aborts_all_pairs() {
        let config = AlignmentConfig::DnaEdit;
        let batch = pairs(config, 5, 50);
        let dev = SmxDevice::new(config, 2).unwrap();
        let exec = BatchExecutor::new(
            dev,
            ExecutorConfig { jobs: 2, ..ExecutorConfig::default() },
        )
        .unwrap();
        let token = CancelToken::new();
        token.cancel();
        let report = exec.run_with(
            &batch,
            RunOptions { cancel: Some(token), ..RunOptions::default() },
        );
        assert_eq!(report.stats.cancelled, 5);
        assert!(report
            .outcomes
            .iter()
            .all(|o| matches!(o, PairOutcome::Failed(AlignError::Cancelled))));
    }

    #[test]
    fn shed_policy_preserves_accounting_invariants() {
        let config = AlignmentConfig::DnaEdit;
        let batch = pairs(config, 24, 60);
        let dev = SmxDevice::new(config, 2).unwrap();
        let exec = BatchExecutor::new(
            dev,
            ExecutorConfig {
                jobs: 2,
                queue_cap: 1,
                admission: AdmissionPolicy::Shed,
                ..ExecutorConfig::default()
            },
        )
        .unwrap();
        let report = exec.run(&batch);
        let s = &report.stats;
        assert_eq!(s.completed + s.failed + s.shed, 24);
        assert_eq!(
            report.outcomes.iter().filter(|o| matches!(o, PairOutcome::Shed)).count() as u64,
            s.shed
        );
        // Whatever did run is byte-identical to the sequential baseline.
        let golden = clean_baseline(config, &batch);
        for (i, g) in golden.iter().enumerate() {
            if let Some(a) = report.alignment(i) {
                assert_eq!(a.score, g.score);
                assert_eq!(a.cigar.to_string(), g.cigar.to_string());
            }
        }
    }

    #[test]
    fn resume_skips_completed_pairs_and_reemits_them_verbatim() {
        let config = AlignmentConfig::DnaGap;
        let batch = pairs(config, 10, 60);
        let dev = SmxDevice::new(config, 2).unwrap();
        let exec =
            BatchExecutor::new(dev, ExecutorConfig { jobs: 2, ..ExecutorConfig::default() })
                .unwrap();
        let full = exec.run(&batch);
        assert!(full.all_succeeded());
        // Pretend a crash happened after the even-indexed pairs.
        let manifest: HashMap<usize, Alignment> = (0..10)
            .step_by(2)
            .map(|i| (i, full.alignment(i).unwrap().clone()))
            .collect();
        let mut computed = Vec::new();
        let report = exec.run_with(
            &batch,
            RunOptions {
                resume: Some(&manifest),
                on_result: Some(&mut |i, _a: &Alignment| computed.push(i)),
                ..RunOptions::default()
            },
        );
        assert!(report.all_succeeded());
        assert_eq!(report.stats.resumed, 5);
        computed.sort_unstable();
        assert_eq!(computed, vec![1, 3, 5, 7, 9], "only missing pairs recompute");
        assert_eq!(report.outcomes, full.outcomes, "byte-identical to the full run");
    }

    #[test]
    fn executor_config_validation() {
        let config = AlignmentConfig::DnaEdit;
        let dev = SmxDevice::new(config, 1).unwrap();
        assert!(BatchExecutor::new(
            dev.clone(),
            ExecutorConfig { jobs: 0, ..ExecutorConfig::default() }
        )
        .is_err());
        assert!(BatchExecutor::new(
            dev.clone(),
            ExecutorConfig { queue_cap: 0, ..ExecutorConfig::default() }
        )
        .is_err());
        assert!(BatchExecutor::new(
            dev.clone(),
            ExecutorConfig {
                breaker: Some(BreakerConfig { threshold: 1.5, ..BreakerConfig::default() }),
                ..ExecutorConfig::default()
            }
        )
        .is_err());
        assert!(BatchExecutor::new(
            dev,
            ExecutorConfig {
                breaker: Some(BreakerConfig { probes: 0, ..BreakerConfig::default() }),
                ..ExecutorConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn poisoned_pair_fails_closed_in_pool() {
        let config = AlignmentConfig::DnaGap;
        let mut batch = pairs(config, 6, 50);
        let poisoned =
            Sequence::from_text(smx_align_core::Alphabet::Protein, "WYVAC").unwrap();
        batch[3] = (poisoned, batch[3].1.clone());
        let dev = SmxDevice::new(config, 2).unwrap();
        let exec =
            BatchExecutor::new(dev, ExecutorConfig { jobs: 3, ..ExecutorConfig::default() })
                .unwrap();
        let report = exec.run(&batch);
        assert_eq!(report.stats.failed, 1);
        assert_eq!(report.stats.completed, 5);
        assert!(matches!(
            report.outcomes[3],
            PairOutcome::Failed(AlignError::AlphabetMismatch)
        ));
        assert!(report.failure_summary().contains("pair 3:"));
    }
}
