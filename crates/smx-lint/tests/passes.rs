//! Fixture-driven pass tests: each pass must flag its deliberately-bad
//! fixture and stay silent on the known-good twin.

use smx_lint::config::Config;
use smx_lint::passes;
use smx_lint::report::Finding;
use smx_lint::source::SourceFile;
use std::path::PathBuf;

fn fixture_config() -> Config {
    Config::parse(include_str!("fixtures/lint.toml")).expect("fixture lint.toml parses")
}

fn run_on(rel: &str, src: &str) -> Vec<Finding> {
    let cfg = fixture_config();
    let file = SourceFile::from_source(PathBuf::from(rel), rel.to_string(), src);
    let mut out = Vec::new();
    for p in passes::all() {
        p.run(&file, &cfg, &mut out);
    }
    out
}

fn of_pass<'a>(findings: &'a [Finding], pass: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.pass == pass).collect()
}

#[test]
fn lock_order_bad_is_flagged() {
    let f = run_on("lock_order_bad.rs", include_str!("fixtures/lock_order_bad.rs"));
    let hits = of_pass(&f, "lock-order");
    assert!(hits.len() >= 4, "expected >=4 lock-order findings, got {:?}", hits);
    assert!(hits.iter().any(|f| f.message.contains("inverts the declared hierarchy")));
    assert!(hits.iter().any(|f| f.message.contains("blocking call `recv`")));
    // The scrutinee-temporary case: acquiring `outer` inside the match
    // body while the `inner` scrutinee guard is still alive.
    assert!(
        hits.iter().any(|f| f.message.contains("`outer`") && f.message.contains("`inner`")),
        "scrutinee-held guard not detected: {:?}",
        hits
    );
    // The acquire-method mapping (`pool.health()` -> `middle`).
    assert!(hits.iter().any(|f| f.message.contains("`middle`")));
}

#[test]
fn lock_order_ok_is_clean() {
    let f = run_on("lock_order_ok.rs", include_str!("fixtures/lock_order_ok.rs"));
    assert!(
        of_pass(&f, "lock-order").is_empty(),
        "false positives: {:?}",
        of_pass(&f, "lock-order")
    );
}

#[test]
fn panic_bad_is_flagged() {
    let f = run_on("panic_bad.rs", include_str!("fixtures/panic_bad.rs"));
    let hits = of_pass(&f, "panic");
    assert_eq!(hits.len(), 5, "unwrap, expect, index, panic!, todo!: {:?}", hits);
}

#[test]
fn panic_ok_is_clean() {
    let f = run_on("panic_ok.rs", include_str!("fixtures/panic_ok.rs"));
    assert!(of_pass(&f, "panic").is_empty(), "false positives: {:?}", of_pass(&f, "panic"));
}

#[test]
fn panic_zone_only_applies_to_configured_paths() {
    // The same panicking source outside the zone is not flagged.
    let f = run_on("other.rs", include_str!("fixtures/panic_bad.rs"));
    assert!(of_pass(&f, "panic").is_empty());
}

#[test]
fn unsafe_bad_is_flagged() {
    let f = run_on("unsafe_bad.rs", include_str!("fixtures/unsafe_bad.rs"));
    let hits = of_pass(&f, "unsafe");
    assert_eq!(hits.len(), 3, "block, fn, and stale-comment sites: {:?}", hits);
}

#[test]
fn unsafe_ok_is_clean() {
    let f = run_on("unsafe_ok.rs", include_str!("fixtures/unsafe_ok.rs"));
    assert!(of_pass(&f, "unsafe").is_empty(), "false positives: {:?}", of_pass(&f, "unsafe"));
}

#[test]
fn unsafe_inventory_counts_documented_sites() {
    let file = SourceFile::from_source(
        PathBuf::from("unsafe_ok.rs"),
        "unsafe_ok.rs".to_string(),
        include_str!("fixtures/unsafe_ok.rs"),
    );
    let inv = passes::unsafe_audit::inventory(&file);
    assert_eq!(inv.len(), 4);
    assert!(inv.iter().all(|(_, _, documented)| *documented));
}

#[test]
fn determinism_bad_is_flagged() {
    let f = run_on("determinism_bad.rs", include_str!("fixtures/determinism_bad.rs"));
    let hits = of_pass(&f, "determinism");
    assert!(hits.len() >= 5, "Instant, SystemTime, sleep, HashMap/Set uses: {:?}", hits);
    assert!(hits.iter().any(|f| f.message.contains("Instant::now")));
    assert!(hits.iter().any(|f| f.message.contains("sleep")));
    assert!(hits.iter().any(|f| f.message.contains("HashMap")));
}

#[test]
fn determinism_ok_is_clean() {
    let f = run_on("determinism_ok.rs", include_str!("fixtures/determinism_ok.rs"));
    assert!(
        of_pass(&f, "determinism").is_empty(),
        "false positives: {:?}",
        of_pass(&f, "determinism")
    );
}

#[test]
fn arith_bad_is_flagged() {
    let f = run_on("arith_bad.rs", include_str!("fixtures/arith_bad.rs"));
    let hits = of_pass(&f, "arith");
    assert_eq!(hits.len(), 3, "+, -, * on score-typed locals: {:?}", hits);
}

#[test]
fn arith_ok_is_clean() {
    let f = run_on("arith_ok.rs", include_str!("fixtures/arith_ok.rs"));
    assert!(of_pass(&f, "arith").is_empty(), "false positives: {:?}", of_pass(&f, "arith"));
}

#[test]
fn cfg_test_regions_are_skipped() {
    let src = r#"
fn prod(v: &[u32]) -> u32 {
    v.iter().sum()
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let v = vec![1u32];
        assert_eq!(v[0], v.first().copied().unwrap());
    }
}
"#;
    let f = run_on("panic_test_region.rs", src);
    assert!(of_pass(&f, "panic").is_empty(), "test-region findings leaked: {:?}", f);
}

#[test]
fn annotation_requires_matching_pass_name() {
    let src = r#"
fn hot(r: Result<u32, ()>) -> u32 {
    // LINT: allow(arith) wrong pass name, does not cover unwrap
    r.unwrap()
}
"#;
    let f = run_on("panic_wrong_allow.rs", src);
    assert_eq!(of_pass(&f, "panic").len(), 1);
}

#[test]
fn baseline_grandfathers_then_goes_stale() {
    use smx_lint::baseline::{render, Baseline};
    let findings = run_on("panic_bad.rs", include_str!("fixtures/panic_bad.rs"));
    let text = render(&findings);
    let baseline = Baseline::parse(&text).expect("generated baseline parses");

    // Same findings: everything grandfathered, nothing new or stale.
    let again = run_on("panic_bad.rs", include_str!("fixtures/panic_bad.rs"));
    let split = baseline.apply(again);
    assert!(split.new_findings.is_empty());
    assert_eq!(split.baselined.len(), 5);
    assert!(split.stale.is_empty());

    // Fixed code: every baseline entry is now stale (shrink-only).
    let clean = run_on("panic_bad.rs", include_str!("fixtures/panic_ok.rs"));
    let split = baseline.apply(clean);
    assert!(split.new_findings.is_empty());
    assert_eq!(split.stale.len(), 5);
}
