// Deliberately-bad fixture: nondeterminism in a determinism zone.

use std::collections::HashMap; // BAD
use std::collections::HashSet; // BAD

fn simulate(steps: u32) -> u32 {
    let started = std::time::Instant::now(); // BAD
    let stamp = std::time::SystemTime::now(); // BAD
    std::thread::sleep(std::time::Duration::from_millis(1)); // BAD
    let mut seen: HashSet<u32> = HashSet::new(); // BAD (x2)
    let mut m: HashMap<u32, u32> = HashMap::new(); // BAD (x2)
    m.insert(steps, steps);
    seen.insert(steps);
    let _ = (started, stamp);
    steps
}
