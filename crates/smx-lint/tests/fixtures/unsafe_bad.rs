// Deliberately-bad fixture: undocumented unsafe.

fn read_first(p: *const u8) -> u8 {
    unsafe { *p } // BAD: no SAFETY comment above
}

unsafe fn no_doc() {} // BAD: unsafe fn without SAFETY

fn stale_comment(p: *const u8) -> u8 {
    // SAFETY: this comment is not adjacent to the unsafe block.
    let offset = 0usize;
    unsafe { *p.add(offset) } // BAD: code intervenes after the comment
}
