// Known-good fixture: correct lock usage the pass must NOT flag.

use std::sync::{Condvar, Mutex};

struct S {
    outer: Mutex<u32>,
    inner: Mutex<u32>,
    cv: Condvar,
}

impl S {
    fn declared_order(&self) {
        let o = self.outer.lock().unwrap();
        let i = self.inner.lock().unwrap(); // outer -> inner matches the hierarchy
        drop(i);
        drop(o);
    }

    fn copy_out_is_not_a_guard(&self) {
        let n = *self.inner.lock().unwrap(); // copies the value; guard dies at the `;`
        let o = self.outer.lock().unwrap();
        drop(o);
        let _ = n;
    }

    fn drop_releases_early(&self) {
        let i = self.inner.lock().unwrap();
        drop(i);
        let o = self.outer.lock().unwrap(); // inner already dropped
        drop(o);
    }

    fn condvar_wait_releases_its_lock(&self) {
        let mut g = self.inner.lock().unwrap();
        while *g == 0 {
            g = self.cv.wait(g).unwrap(); // waiting on the held guard is fine
        }
    }

    fn annotated_by_design(&self) {
        let i = self.inner.lock().unwrap();
        // LINT: allow(lock-order) device guard must stay held across the DP by design
        let r = heavy_dp(&i);
        drop(i);
        let _ = r;
    }
}
