// Known-good fixture: every unsafe site carries an adjacent SAFETY
// comment.

fn read_first(p: *const u8, len: usize) -> u8 {
    assert!(len > 0);
    // SAFETY: len > 0 checked above, so `p` points to at least one byte.
    unsafe { *p }
}

// SAFETY: caller must pass a pointer valid for `len` bytes; this fn is
// only reachable from the bounds-checked dispatch wrapper.
unsafe fn documented(p: *const u8, len: usize) -> u8 {
    if len == 0 {
        return 0;
    }
    // SAFETY: len != 0 checked in the line above.
    unsafe { *p }
}

fn multiline_block_comment(p: *const u8) -> u8 {
    /* SAFETY: the pointer is produced by `Box::into_raw` two frames up
       and is never freed before this read. */
    unsafe { *p }
}
