// Deliberately-bad fixture: panicking surface in a panic-freedom zone.

fn hot_path(v: &[u32], r: Result<u32, ()>) -> u32 {
    let x = r.unwrap(); // BAD
    let y = r.expect("always ok"); // BAD
    let z = v[0]; // BAD: indexing in an index zone
    if x == 0 {
        panic!("boom"); // BAD
    }
    if y == 0 {
        todo!(); // BAD
    }
    z
}
