// Deliberately-bad fixture: lock-order violations the pass must catch.
// Not a cargo target — never compiled.

use std::sync::Mutex;

struct S {
    outer: Mutex<u32>,
    inner: Mutex<u32>,
    chan: std::sync::mpsc::Receiver<u32>,
}

impl S {
    fn inversion(&self) {
        let i = self.inner.lock().unwrap();
        let o = self.outer.lock().unwrap(); // BAD: outer after inner
        drop(o);
        drop(i);
    }

    fn blocking_while_held(&self) {
        let g = self.middle.lock().unwrap();
        let v = self.chan.recv(); // BAD: lock held across blocking recv
        drop(g);
    }

    fn scrutinee_holds_guard(&self) {
        match self.inner.lock().unwrap().checked_add(1) {
            Some(_) => {
                // BAD: the scrutinee temporary still holds `inner` here.
                let o = self.outer.lock().unwrap();
                drop(o);
            }
            None => {}
        }
    }

    fn acquire_method_inversion(&self, pool: &Pool) {
        let i = self.inner.lock().unwrap();
        let h = pool.health(); // BAD: `health` maps to `middle`, outer-ranked than inner
        drop(h);
    }
}
