// Known-good fixture: deterministic replacements plus an annotated
// keyed-only map.

use std::collections::BTreeMap;

fn simulate(clock: u64, steps: u32) -> u64 {
    let mut m: BTreeMap<u32, u64> = BTreeMap::new();
    m.insert(steps, clock);
    // LINT: allow(determinism) keyed access only, never iterated
    let cache: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    let _ = cache;
    clock.saturating_add(u64::from(steps))
}
