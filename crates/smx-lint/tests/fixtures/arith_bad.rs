// Deliberately-bad fixture: bare arithmetic on score-typed values in
// a kernel file.

fn kernel(score: i16, best: i16, gap: i16) -> i16 {
    let up = score + gap; // BAD
    let diag = best - 1; // BAD
    let scaled = best * 2; // BAD
    up.max(diag).max(scaled)
}
