// Known-good fixture: saturating/wrapping score arithmetic, non-score
// index math, unary uses, and an annotated exception.

fn kernel(score: i16, best: i16, gap: i16, idx: usize, width: usize) -> i16 {
    let up = score.saturating_add(gap);
    let diag = best.wrapping_sub(1);
    let cell = idx + width * 2; // index math on non-score idents is fine
    let neg = -score; // unary minus, not binary arithmetic
    // LINT: allow(arith) bounded by the i8 score profile, proven in dispatch
    let shifted = score + 1;
    let _ = (cell, neg);
    up.max(diag).max(shifted)
}
