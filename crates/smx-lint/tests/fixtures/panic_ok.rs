// Known-good fixture: panic-free idioms plus the adversarial cases
// the lexer must not misread as violations.

fn hot_path(v: &[u32], r: Result<u32, ()>) -> u32 {
    let x = r.unwrap_or(0); // different method, not `unwrap`
    let y = v.first().copied().unwrap_or_default();
    // A raw string *containing* `.unwrap()` is data, not a call:
    let s = r#"value.unwrap() // and a fake comment"#;
    // So is a cooked string with an escaped quote and `panic!`:
    let t = "say \"panic!(now)\" and x[0]";
    // And a plain comment mentioning v[3].unwrap() changes nothing.
    // LINT: allow(panic) index bound: caller guarantees v.len() >= 2
    let z = v[1];
    let w = v.get(2).copied().unwrap_or(0); // LINT: allow(panic) trailing form unused here
    let _ = (s, t);
    x + y + z + w
}
