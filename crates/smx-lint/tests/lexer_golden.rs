//! Golden tests for the hand-written lexer's adversarial cases — the
//! exact inputs where a regex-based scanner produces false findings.

use smx_lint::lexer::{lex, TokKind};

fn kinds(src: &str) -> Vec<(TokKind, String)> {
    lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
}

#[test]
fn raw_string_containing_unwrap_is_one_literal() {
    let toks = kinds(r###"let s = r#"value.unwrap() // fake"#;"###);
    assert_eq!(
        toks.iter().filter(|(k, _)| *k == TokKind::RawStrLit).count(),
        1,
        "raw string must be a single token: {:?}",
        toks
    );
    // No `unwrap` identifier token may leak out of the literal.
    assert!(
        !toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "unwrap"),
        "unwrap leaked out of a raw string: {:?}",
        toks
    );
}

#[test]
fn raw_string_hash_counts_must_match() {
    // The `"#` inside does not close an `r##"…"##` literal.
    let toks = kinds(r####"let s = r##"inner "# still inside"##;"####);
    let raw: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::RawStrLit).collect();
    assert_eq!(raw.len(), 1);
    assert!(raw[0].1.contains("still inside"));
}

#[test]
fn byte_raw_string_is_lexed() {
    let toks = kinds(r###"let s = br#"x.lock()"#;"###);
    assert!(toks.iter().any(|(k, _)| *k == TokKind::RawStrLit));
    assert!(!toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "lock"));
}

#[test]
fn lifetime_vs_char_literal() {
    let toks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
    assert!(toks.iter().any(|(k, t)| *k == TokKind::Lifetime && t == "'a"));
    assert!(toks.iter().any(|(k, t)| *k == TokKind::CharLit && t == "'x'"));
    // `'a` appears twice as a lifetime, never as a char.
    assert_eq!(toks.iter().filter(|(k, t)| *k == TokKind::Lifetime && t == "'a").count(), 2);
}

#[test]
fn char_escapes_and_static_lifetime() {
    let toks = kinds(r"let c = '\n'; let s: &'static str = x;");
    assert!(toks.iter().any(|(k, t)| *k == TokKind::CharLit && t == r"'\n'"));
    assert!(toks.iter().any(|(k, t)| *k == TokKind::Lifetime && t == "'static"));
}

#[test]
fn nested_block_comments() {
    let toks = kinds("a /* outer /* inner */ still comment */ b");
    assert_eq!(
        toks,
        vec![
            (TokKind::Ident, "a".into()),
            (TokKind::BlockComment, "/* outer /* inner */ still comment */".into()),
            (TokKind::Ident, "b".into()),
        ]
    );
}

#[test]
fn line_comment_markers_inside_strings() {
    let toks = kinds(r#"let url = "http://example.com"; // real comment"#);
    let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::StrLit).collect();
    assert_eq!(strs.len(), 1);
    assert_eq!(strs[0].1, "\"http://example.com\"");
    assert!(toks.iter().any(|(k, t)| *k == TokKind::LineComment && t == "// real comment"));
}

#[test]
fn escaped_quote_does_not_end_string() {
    let toks = kinds(r#"let s = "say \"panic!\" now";"#);
    let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::StrLit).collect();
    assert_eq!(strs.len(), 1);
    assert!(strs[0].1.contains("panic!"));
    assert!(!toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "panic"));
}

#[test]
fn doc_comments_are_distinguished() {
    let toks = kinds("/// doc\n//! inner doc\n//// not doc\n// plain\n/** block doc */\n/*! inner block doc */\n/* plain block */");
    let doc = toks.iter().filter(|(k, _)| *k == TokKind::DocComment).count();
    let line = toks.iter().filter(|(k, _)| *k == TokKind::LineComment).count();
    let block = toks.iter().filter(|(k, _)| *k == TokKind::BlockComment).count();
    assert_eq!((doc, line, block), (4, 2, 1));
}

#[test]
fn raw_identifiers() {
    let toks = kinds("let r#type = 1;");
    assert!(toks.iter().any(|(k, t)| *k == TokKind::RawIdent && t == "r#type"));
}

#[test]
fn numbers_ranges_and_multichar_puncts() {
    let toks = kinds("for i in 0..=10 { x <<= 1; y = 1.5e-3; z = 0xFF_u32; }");
    assert!(toks.iter().any(|(k, t)| *k == TokKind::Punct && t == "..="));
    assert!(toks.iter().any(|(k, t)| *k == TokKind::Punct && t == "<<="));
    assert!(toks.iter().any(|(k, t)| *k == TokKind::NumLit && t == "1.5e-3"));
    assert!(toks.iter().any(|(k, t)| *k == TokKind::NumLit && t == "0xFF_u32"));
}

#[test]
fn unterminated_constructs_do_not_panic() {
    // The lexer is total: worst case it swallows to EOF.
    for src in ["\"open", "r#\"open", "/* open /* deeper", "'", "b'"] {
        let _ = lex(src);
    }
}
