//! Tier-1 enforcement: the real workspace must lint clean against the
//! checked-in `lint.toml` and the shrink-only `lint-baseline.txt`.
//!
//! A new finding means either fix the code or annotate it with a
//! reviewed `// LINT: allow(<pass>) <reason>`. A stale baseline entry
//! means the underlying code was fixed — delete the entry.

use smx_lint::baseline::Baseline;
use smx_lint::config::Config;
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // crates/smx-lint -> crates -> workspace root
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("smx-lint sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_lints_clean_against_baseline() {
    let root = workspace_root();
    let cfg_text =
        std::fs::read_to_string(root.join("lint.toml")).expect("workspace lint.toml exists");
    let cfg = Config::parse(&cfg_text).expect("workspace lint.toml parses");
    let baseline_text = std::fs::read_to_string(root.join("lint-baseline.txt"))
        .expect("workspace lint-baseline.txt exists");
    let baseline = Baseline::parse(&baseline_text).expect("workspace baseline parses");

    let run = smx_lint::run_workspace(&root, &cfg).expect("workspace lint run succeeds");
    assert!(run.files_checked > 50, "suspiciously few files walked: {}", run.files_checked);

    let split = baseline.apply(run.findings);
    assert!(
        split.new_findings.is_empty(),
        "new lint findings — fix or annotate:\n{}",
        split.new_findings.iter().map(|f| f.render()).collect::<Vec<_>>().join("\n")
    );
    assert!(
        split.stale.is_empty(),
        "stale baseline entries — the code was fixed, shrink the baseline:\n{}",
        split.stale.join("\n")
    );
    assert!(
        run.unsafe_inventory.iter().all(|(_, _, documented)| *documented),
        "undocumented unsafe sites: {:?}",
        run.unsafe_inventory.iter().filter(|(_, _, d)| !*d).collect::<Vec<_>>()
    );
}
