//! CLI for the workspace invariant checker.
//!
//! ```text
//! cargo run -p smx-lint -- --workspace [--json out.json]
//! cargo run -p smx-lint -- --workspace --write-baseline
//! cargo run -p smx-lint -- --workspace --check-baseline
//! ```
//!
//! Exit codes: 0 clean (or fully baselined), 1 new findings,
//! 2 stale baseline entries (shrink-only violation), 3 config/IO error.

use smx_lint::baseline::{self, Baseline};
use smx_lint::config::Config;
use smx_lint::report;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    workspace: bool,
    json: Option<PathBuf>,
    root: Option<PathBuf>,
    config: Option<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: bool,
    check_baseline: bool,
    files: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        json: None,
        root: None,
        config: None,
        baseline: None,
        write_baseline: false,
        check_baseline: false,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "--json" => args.json = Some(take(&mut it, "--json")?),
            "--root" => args.root = Some(take(&mut it, "--root")?),
            "--config" => args.config = Some(take(&mut it, "--config")?),
            "--baseline" => args.baseline = Some(take(&mut it, "--baseline")?),
            "--write-baseline" => args.write_baseline = true,
            "--check-baseline" => args.check_baseline = true,
            "--help" | "-h" => {
                println!(
                    "smx-lint: workspace invariant checker\n\n\
                     usage: smx-lint --workspace [--json FILE] [--root DIR] [--config FILE]\n\
                     \u{20}      smx-lint [FILES...]              lint specific files\n\
                     \u{20}      --baseline FILE                  baseline path (default lint-baseline.txt)\n\
                     \u{20}      --write-baseline                 regenerate the baseline from current findings\n\
                     \u{20}      --check-baseline                 verify the baseline parses and has no stale entries"
                );
                std::process::exit(0);
            }
            f if !f.starts_with('-') => args.files.push(PathBuf::from(f)),
            other => return Err(format!("unknown flag `{}`", other)),
        }
    }
    if !args.workspace && args.files.is_empty() {
        return Err("nothing to lint: pass --workspace or file paths (see --help)".to_string());
    }
    Ok(args)
}

fn take(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<PathBuf, String> {
    it.next().map(PathBuf::from).ok_or_else(|| format!("{} requires a value", flag))
}

fn main() -> ExitCode {
    match real_main() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("smx-lint: error: {}", e);
            ExitCode::from(3)
        }
    }
}

fn real_main() -> Result<ExitCode, String> {
    let args = parse_args()?;
    let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
    let root = match &args.root {
        Some(r) => r.clone(),
        None => smx_lint::find_root(&cwd).ok_or("could not locate workspace root (lint.toml)")?,
    };
    let config_path = args.config.clone().unwrap_or_else(|| root.join("lint.toml"));
    let config_text = std::fs::read_to_string(&config_path)
        .map_err(|e| format!("{}: {}", config_path.display(), e))?;
    let cfg =
        Config::parse(&config_text).map_err(|e| format!("{}: {}", config_path.display(), e))?;

    let run = if args.workspace {
        smx_lint::run_workspace(&root, &cfg)
    } else {
        smx_lint::run_files(&root, &cfg, &args.files)
    }
    .map_err(|e| e.to_string())?;

    let baseline_path = args.baseline.clone().unwrap_or_else(|| root.join("lint-baseline.txt"));

    if args.write_baseline {
        std::fs::write(&baseline_path, baseline::render(&run.findings))
            .map_err(|e| format!("{}: {}", baseline_path.display(), e))?;
        println!(
            "smx-lint: wrote {} grandfathered finding(s) to {}",
            run.findings.len(),
            baseline_path.display()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => {
            Baseline::parse(&text).map_err(|e| format!("{}: {}", baseline_path.display(), e))?
        }
        Err(_) => Baseline::parse("").map_err(|e| e.to_string())?,
    };
    let split = baseline.apply(run.findings);

    if let Some(json_path) = &args.json {
        let json = report::to_json(
            &split.new_findings,
            &split.baselined,
            &run.unsafe_inventory,
            run.files_checked,
        );
        std::fs::write(json_path, json).map_err(|e| format!("{}: {}", json_path.display(), e))?;
    }

    for f in &split.new_findings {
        println!("{}", f.render());
    }
    for key in &split.stale {
        eprintln!(
            "smx-lint: stale baseline entry `{}` — the finding is gone; delete the line \
             (baseline is shrink-only)",
            key
        );
    }
    let undocumented = run.unsafe_inventory.iter().filter(|(_, _, d)| !d).count();
    println!(
        "smx-lint: {} file(s), {} new finding(s), {} baselined, {} stale baseline entr(y/ies), \
         {} unsafe site(s) ({} undocumented)",
        run.files_checked,
        split.new_findings.len(),
        split.baselined.len(),
        split.stale.len(),
        run.unsafe_inventory.len(),
        undocumented,
    );

    if args.check_baseline {
        // Baseline self-check: parse already succeeded; fail only on
        // stale entries so the file can never grow cover for the future.
        return Ok(if split.stale.is_empty() { ExitCode::SUCCESS } else { ExitCode::from(2) });
    }
    if !split.stale.is_empty() {
        return Ok(ExitCode::from(2));
    }
    if !split.new_findings.is_empty() {
        return Ok(ExitCode::from(1));
    }
    Ok(ExitCode::SUCCESS)
}
