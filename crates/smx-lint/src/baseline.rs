//! Grandfathered-findings baseline.
//!
//! The baseline file pins known, accepted findings so the build goes
//! red only on *new* violations. Keys are robust to line-number drift:
//!
//! ```text
//! <pass>:<rel-path>:<fnv1a64 of trimmed line text>:<occurrence-index>
//! ```
//!
//! The occurrence index disambiguates identical lines in one file.
//! The baseline is shrink-only: if a key no longer matches any current
//! finding the entry is *stale* and the run fails, forcing the entry
//! to be deleted (never silently kept as cover for a future finding).

use crate::report::Finding;
use std::collections::BTreeMap;

/// FNV-1a 64-bit hash of a byte string. Stable, dependency-free.
pub fn fnv1a64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Computes baseline keys for a finding list, assigning occurrence
/// indices in order of appearance.
pub fn keys_for(findings: &[Finding]) -> Vec<String> {
    let mut seen: BTreeMap<String, u32> = BTreeMap::new();
    findings
        .iter()
        .map(|f| {
            let base = format!("{}:{}:{:016x}", f.pass, f.file, fnv1a64(f.line_text.trim()));
            let n = seen.entry(base.clone()).or_insert(0);
            let key = format!("{}:{}", base, n);
            *n += 1;
            key
        })
        .collect()
}

/// Parsed baseline file: keys plus their original line numbers (for
/// stale-entry error messages).
pub struct Baseline {
    /// key → file line number in the baseline file.
    pub entries: BTreeMap<String, usize>,
}

impl Baseline {
    /// Parses baseline text. Lines are `key  # comment` or blank.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = BTreeMap::new();
        for (n, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            // Minimal shape check: pass:path:hash:index with a
            // 16-hex-digit hash and numeric index.
            let parts: Vec<&str> = line.rsplitn(3, ':').collect();
            if parts.len() != 3
                || parts[0].parse::<u32>().is_err()
                || parts[1].len() != 16
                || !parts[1].chars().all(|c| c.is_ascii_hexdigit())
            {
                return Err(format!("baseline line {}: malformed key `{}`", n + 1, line));
            }
            if entries.insert(line.to_string(), n + 1).is_some() {
                return Err(format!("baseline line {}: duplicate key `{}`", n + 1, line));
            }
        }
        Ok(Baseline { entries })
    }

    /// Splits findings into (new, baselined) and reports stale keys.
    pub fn apply(&self, findings: Vec<Finding>) -> Split {
        let keys = keys_for(&findings);
        let mut new_findings = Vec::new();
        let mut baselined = Vec::new();
        let mut matched: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
        for (f, key) in findings.into_iter().zip(keys.iter()) {
            if let Some((k, _)) = self.entries.get_key_value(key) {
                matched.insert(k.as_str());
                baselined.push(f);
            } else {
                new_findings.push(f);
            }
        }
        let stale =
            self.entries.keys().filter(|k| !matched.contains(k.as_str())).cloned().collect();
        Split { new_findings, baselined, stale }
    }
}

/// Result of matching findings against the baseline.
pub struct Split {
    /// Findings with no baseline entry — these fail the build.
    pub new_findings: Vec<Finding>,
    /// Grandfathered findings (reported, not fatal).
    pub baselined: Vec<Finding>,
    /// Baseline keys matching no current finding — shrink-only
    /// violation, also fails the build.
    pub stale: Vec<String>,
}

/// Renders a baseline file for the given findings (used by
/// `--write-baseline`). One key per line with a locating comment.
pub fn render(findings: &[Finding]) -> String {
    let mut s = String::from(
        "# smx-lint baseline — grandfathered findings. Shrink-only: delete\n\
         # entries as the underlying code is fixed; never add new ones.\n\
         # Key: <pass>:<file>:<fnv1a64(trimmed line)>:<occurrence>\n",
    );
    for (f, key) in findings.iter().zip(keys_for(findings)) {
        s.push_str(&format!("{}  # line {}: {}\n", key, f.line, f.message));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(pass: &str, file: &str, line: u32, text: &str) -> Finding {
        Finding {
            pass: pass.into(),
            file: file.into(),
            line,
            message: "m".into(),
            line_text: text.into(),
        }
    }

    #[test]
    fn round_trip_and_line_shift_stability() {
        let f = vec![finding("panic", "a.rs", 10, "x.unwrap();")];
        let text = render(&f);
        let b = Baseline::parse(&text).unwrap();
        // Same line text at a different line number still matches.
        let shifted = vec![finding("panic", "a.rs", 99, "x.unwrap();")];
        let split = b.apply(shifted);
        assert!(split.new_findings.is_empty());
        assert_eq!(split.baselined.len(), 1);
        assert!(split.stale.is_empty());
    }

    #[test]
    fn stale_entries_are_reported() {
        let f = vec![finding("panic", "a.rs", 10, "x.unwrap();")];
        let b = Baseline::parse(&render(&f)).unwrap();
        let split = b.apply(Vec::new());
        assert_eq!(split.stale.len(), 1);
    }

    #[test]
    fn duplicate_lines_get_distinct_occurrence_indices() {
        let fs = vec![
            finding("panic", "a.rs", 1, "x.unwrap();"),
            finding("panic", "a.rs", 2, "x.unwrap();"),
        ];
        let keys = keys_for(&fs);
        assert_ne!(keys[0], keys[1]);
        let b = Baseline::parse(&render(&fs)).unwrap();
        let split = b.apply(fs);
        assert!(split.new_findings.is_empty() && split.stale.is_empty());
    }

    #[test]
    fn malformed_baseline_is_an_error() {
        assert!(Baseline::parse("not-a-key\n").is_err());
    }
}
