//! Per-file analysis context shared by all passes: the token stream,
//! `// LINT: allow(...)` annotations, and `#[cfg(test)]` regions.

use crate::lexer::{lex, TokKind, Token};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// One `// LINT: allow(<pass>) <reason>` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Pass name inside the parens (`panic`, `lock-order`, …).
    pub pass: String,
    /// Free-text justification after the closing paren.
    pub reason: String,
    /// Line the annotation comment sits on.
    pub line: u32,
    /// Line the annotation applies to: its own line for trailing
    /// comments, the next code line for standalone comments.
    pub applies_to: u32,
}

/// A lexed workspace source file plus derived pass inputs.
pub struct SourceFile {
    /// Absolute path on disk.
    pub path: PathBuf,
    /// Workspace-relative path with `/` separators (baseline keys,
    /// config path matching, and reports all use this form).
    pub rel: String,
    /// Raw source lines (0-indexed storage; line N is `lines[N-1]`).
    pub lines: Vec<String>,
    /// Non-comment tokens, in order.
    pub tokens: Vec<Token>,
    /// Comment tokens, in order (passes scan these for SAFETY).
    pub comments: Vec<Token>,
    /// Parsed LINT allow annotations.
    pub allows: Vec<Allow>,
    /// Lines covered by a `#[cfg(test)]` item — skipped by all passes.
    pub test_lines: BTreeSet<u32>,
}

impl SourceFile {
    /// Reads and analyzes one file. `root` anchors the relative path.
    pub fn load(root: &Path, path: &Path) -> std::io::Result<SourceFile> {
        let text = std::fs::read_to_string(path)?;
        let rel = path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/");
        Ok(SourceFile::from_source(path.to_path_buf(), rel, &text))
    }

    /// Builds the context from in-memory source (used by fixture tests).
    pub fn from_source(path: PathBuf, rel: String, text: &str) -> SourceFile {
        let all = lex(text);
        let mut tokens = Vec::new();
        let mut comments = Vec::new();
        for t in all {
            if t.is_comment() {
                comments.push(t);
            } else {
                tokens.push(t);
            }
        }
        let lines: Vec<String> = text.lines().map(|l| l.to_string()).collect();
        let allows = parse_allows(&comments, &lines);
        let test_lines = find_test_regions(&tokens);
        SourceFile { path, rel, lines, tokens, comments, allows, test_lines }
    }

    /// Whether `line` sits inside a `#[cfg(test)]` item.
    pub fn in_test(&self, line: u32) -> bool {
        self.test_lines.contains(&line)
    }

    /// Whether a finding of `pass` at `line` is suppressed by an
    /// annotation. The reason is required by the grammar, so a match
    /// here always carries a justification.
    pub fn allowed(&self, pass: &str, line: u32) -> bool {
        self.allows.iter().any(|a| a.pass == pass && a.applies_to == line)
    }

    /// Trimmed text of a 1-based line ("" when out of range).
    pub fn line_text(&self, line: u32) -> &str {
        self.lines.get(line as usize - 1).map(|s| s.trim()).unwrap_or("")
    }
}

/// Extracts `// LINT: allow(<pass>) <reason>` annotations. A trailing
/// comment applies to its own line; a standalone comment (nothing but
/// whitespace before it) applies to the next non-comment code line.
fn parse_allows(comments: &[Token], lines: &[String]) -> Vec<Allow> {
    let mut out = Vec::new();
    for c in comments {
        if c.kind != TokKind::LineComment {
            continue;
        }
        let body = c.text.trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("LINT:") else { continue };
        let rest = rest.trim();
        let Some(rest) = rest.strip_prefix("allow(") else { continue };
        let Some(close) = rest.find(')') else { continue };
        let pass = rest[..close].trim().to_string();
        let reason = rest[close + 1..].trim().to_string();
        let standalone = c.col == 1
            || lines.get(c.line as usize - 1).is_some_and(|l| l.trim_start().starts_with("//"));
        let applies_to = if standalone { next_code_line(lines, c.line) } else { c.line };
        out.push(Allow { pass, reason, line: c.line, applies_to });
    }
    out
}

/// First line after `from` that holds code (non-blank, non-comment).
fn next_code_line(lines: &[String], from: u32) -> u32 {
    let mut n = from + 1;
    while let Some(l) = lines.get(n as usize - 1) {
        let t = l.trim();
        if !t.is_empty() && !t.starts_with("//") {
            return n;
        }
        n += 1;
    }
    from + 1
}

/// Finds lines covered by `#[cfg(test)]`-gated items: the attribute
/// token pattern `#` `[` `cfg` `(` `test` followed by the item's body
/// up to its matching `}` (or `;` for statement-like items).
fn find_test_regions(tokens: &[Token]) -> BTreeSet<u32> {
    let mut set = BTreeSet::new();
    let mut i = 0usize;
    while i + 4 < tokens.len() {
        let is_cfg_test = tokens[i].text == "#"
            && tokens[i + 1].text == "["
            && tokens[i + 2].text == "cfg"
            && tokens[i + 3].text == "("
            && tokens[i + 4].text == "test";
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Skip to the end of the attribute's `[...]`.
        let mut j = i + 1;
        let mut brackets = 0i32;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "[" => brackets += 1,
                "]" => {
                    brackets -= 1;
                    if brackets == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        // The gated item runs to the matching `}` of its first brace,
        // or to `;` if one appears before any `{` (e.g. `use` items).
        let mut depth = 0i32;
        let mut end_line = tokens.get(j).map(|t| t.line).unwrap_or(tokens[i].line);
        while j < tokens.len() {
            let t = &tokens[j];
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        end_line = t.line;
                        j += 1;
                        break;
                    }
                }
                ";" if depth == 0 => {
                    end_line = t.line;
                    j += 1;
                    break;
                }
                _ => {}
            }
            end_line = t.end_line();
            j += 1;
        }
        for l in tokens[i].line..=end_line {
            set.insert(l);
        }
        i = j;
    }
    set
}

/// Per-function token slices: `(name, start index, end index exclusive)`.
/// Used by the lock-order pass to scope acquisition tracking.
pub fn functions(tokens: &[Token]) -> Vec<(String, usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].kind == TokKind::Ident && tokens[i].text == "fn" {
            let name = tokens
                .get(i + 1)
                .filter(|t| t.kind == TokKind::Ident || t.kind == TokKind::RawIdent)
                .map(|t| t.text.clone())
                .unwrap_or_default();
            // Find the body's opening brace (skip signature; a `;`
            // before `{` means a trait method decl with no body).
            let mut j = i + 1;
            let mut angle = 0i32;
            let mut open = None;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "->" => {}
                    "{" if angle <= 0 => {
                        open = Some(j);
                        break;
                    }
                    ";" if angle <= 0 => break,
                    _ => {}
                }
                j += 1;
            }
            let Some(open) = open else {
                i = j + 1;
                continue;
            };
            let close = matching_brace(tokens, open);
            out.push((name, open, close));
            // Nested fns are re-discovered by continuing inside.
            i = open + 1;
        } else {
            i += 1;
        }
    }
    out
}

/// Index of the `}` matching the `{` at `open` (or last token index).
pub fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    tokens.len().saturating_sub(1)
}

/// Grouping of allow annotations by pass, for reporting.
pub fn allows_by_pass(files: &[SourceFile]) -> BTreeMap<String, usize> {
    let mut m = BTreeMap::new();
    for f in files {
        for a in &f.allows {
            *m.entry(a.pass.clone()).or_insert(0) += 1;
        }
    }
    m
}
