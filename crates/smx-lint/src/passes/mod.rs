//! The five invariant passes. Each pass walks one file's token stream
//! and emits findings; test regions and `// LINT: allow` annotations
//! are honored centrally through [`emit`].

pub mod arith;
pub mod determinism;
pub mod lock_order;
pub mod panic_free;
pub mod unsafe_audit;

use crate::config::Config;
use crate::report::Finding;
use crate::source::SourceFile;

/// A lint pass over one file.
pub trait Pass {
    /// Name used in reports, annotations, and baseline keys.
    fn name(&self) -> &'static str;
    /// Runs the pass, appending findings to `out`.
    fn run(&self, file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>);
}

/// All passes, in report order.
pub fn all() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(lock_order::LockOrder),
        Box::new(panic_free::PanicFree),
        Box::new(unsafe_audit::UnsafeAudit),
        Box::new(determinism::Determinism),
        Box::new(arith::Arith),
    ]
}

/// Emits one finding unless the line is in a test region or carries a
/// matching allow annotation.
pub fn emit(file: &SourceFile, pass: &str, line: u32, message: String, out: &mut Vec<Finding>) {
    if file.in_test(line) || file.allowed(pass, line) {
        return;
    }
    out.push(Finding {
        pass: pass.to_string(),
        file: file.rel.clone(),
        line,
        message,
        line_text: file.line_text(line).to_string(),
    });
}

/// Keywords that can syntactically precede `[` or `(` without being a
/// value expression (so `mut [i32; 4]` is not indexing, `match (x)` is
/// not a call, …).
pub const KEYWORDS: [&str; 33] = [
    "as", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "struct", "trait", "type", "unsafe", "use", "where", "while", "yield",
];

/// Whether an identifier token is a Rust keyword (per [`KEYWORDS`]).
pub fn is_keyword(text: &str) -> bool {
    KEYWORDS.contains(&text)
}
