//! Unsafe audit: every `unsafe` block / fn / impl must be immediately
//! preceded by a `// SAFETY:` comment stating the bound relied on.
//! Lines between the comment and the `unsafe` token may only be blank
//! or further comments. The pass also builds the inventory of all
//! unsafe sites (documented or not) for the JSON report.

use crate::config::Config;
use crate::lexer::TokKind;
use crate::passes::{emit, Pass};
use crate::report::Finding;
use crate::source::SourceFile;

pub struct UnsafeAudit;

impl Pass for UnsafeAudit {
    fn name(&self) -> &'static str {
        "unsafe"
    }

    fn run(&self, file: &SourceFile, _cfg: &Config, out: &mut Vec<Finding>) {
        for (line, documented) in sites(file) {
            if !documented {
                emit(
                    file,
                    "unsafe",
                    line,
                    "`unsafe` without an immediately-preceding `// SAFETY:` comment".to_string(),
                    out,
                );
            }
        }
    }
}

/// All non-test `unsafe` sites in the file: `(line, has SAFETY)`.
pub fn sites(file: &SourceFile) -> Vec<(u32, bool)> {
    let mut out = Vec::new();
    for t in &file.tokens {
        if t.kind == TokKind::Ident && t.text == "unsafe" && !file.in_test(t.line) {
            out.push((t.line, has_safety_comment(file, t.line)));
        }
    }
    out
}

/// Inventory rows for the JSON report: `(file, line, documented)`.
pub fn inventory(file: &SourceFile) -> Vec<(String, u32, bool)> {
    sites(file).into_iter().map(|(line, doc)| (file.rel.clone(), line, doc)).collect()
}

/// Whether a SAFETY comment ends on or directly above `line`, with
/// only blank/comment lines in between.
fn has_safety_comment(file: &SourceFile, line: u32) -> bool {
    let safety_end = file
        .comments
        .iter()
        .filter(|c| {
            let body = c
                .text
                .trim_start_matches('/')
                .trim_start_matches('*')
                .trim_start_matches('!')
                .trim_start();
            body.starts_with("SAFETY:") && c.end_line() <= line
        })
        .map(|c| c.end_line())
        .max();
    let Some(end) = safety_end else { return false };
    // Every line strictly between must be blank or comment-only.
    (end + 1..line).all(|n| {
        let t = file.line_text(n);
        t.is_empty() || t.starts_with("//") || t.starts_with("/*") || t.starts_with('*')
    })
}
