//! Lock-order discipline.
//!
//! Tracks guard acquisition syntactically per function and checks:
//!
//! * **order** — acquiring a lock ranked *earlier* (more outer) in the
//!   `[locks] hierarchy` while holding a later-ranked one is an
//!   inversion;
//! * **blocking** — holding any tracked lock across a call to a
//!   declared-blocking function (`[locks] blocking`) is flagged, with
//!   a carve-out for `Condvar::wait*` on the guard being waited on
//!   (the wait releases that lock).
//!
//! Guard liveness is modeled syntactically:
//!
//! * a let-bound guard (`let g = m.lock().unwrap();` — the chain after
//!   the acquisition is only `unwrap`/`expect`/`?` and the statement
//!   binds it directly) lives until the enclosing `}` or an explicit
//!   `drop(g)`;
//! * any other acquisition is a temporary that lives to the end of its
//!   statement (`;`) — **or**, if the statement opens a block first
//!   (`match m.lock().unwrap().x() { … }`), to that block's closing
//!   `}`. This models Rust's scrutinee-temporary rule, the bug class
//!   where a guard silently outlives the "one line" it appears on.
//!
//! Bindings that immediately copy out of the guard
//! (`let n = *m.lock().unwrap();`) are temporaries, not guards: the
//! leading `*` deref disqualifies the let-binding rule.

use crate::config::Config;
use crate::lexer::{TokKind, Token};
use crate::passes::{emit, Pass};
use crate::report::Finding;
use crate::source::{functions, matching_brace, SourceFile};

pub struct LockOrder;

const WAITS: [&str; 3] = ["wait", "wait_timeout", "wait_timeout_while"];

#[derive(Debug)]
struct Held {
    name: String,
    /// Binding variable for let-bound guards (enables `drop(g)`).
    var: Option<String>,
    /// Token index at which the guard is dead (inclusive bound: the
    /// guard no longer counts once the scan reaches this index).
    until: usize,
    line: u32,
}

impl Pass for LockOrder {
    fn name(&self) -> &'static str {
        "lock-order"
    }

    fn run(&self, file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
        let toks = &file.tokens;
        for (_name, open, close) in functions(toks) {
            check_fn(file, cfg, toks, open, close, out);
        }
    }
}

fn check_fn(
    file: &SourceFile,
    cfg: &Config,
    toks: &[Token],
    open: usize,
    close: usize,
    out: &mut Vec<Finding>,
) {
    let mut held: Vec<Held> = Vec::new();
    let mut brace_stack: Vec<usize> = Vec::new();
    let mut i = open;
    while i <= close && i < toks.len() {
        held.retain(|h| i < h.until);
        let t = &toks[i];
        match t.text.as_str() {
            "{" => brace_stack.push(i),
            "}" => {
                brace_stack.pop();
            }
            _ => {}
        }
        // Explicit drop(var) releases a guard early.
        if t.kind == TokKind::Ident && t.text == "drop" && tok_text(toks, i + 1) == "(" {
            if let Some(v) = toks.get(i + 2).filter(|v| v.kind == TokKind::Ident) {
                held.retain(|h| h.var.as_deref() != Some(v.text.as_str()));
            }
        }
        if let Some(acq) = acquisition_at(cfg, toks, i) {
            let line = t.line;
            if let Some(new_rank) = cfg.lock_rank(&acq.name) {
                for h in held.iter().filter(|h| h.name != acq.name) {
                    if let Some(held_rank) = cfg.lock_rank(&h.name) {
                        if new_rank < held_rank {
                            emit(
                                file,
                                "lock-order",
                                line,
                                format!(
                                    "acquires `{}` (rank {}) while holding `{}` (rank {}, \
                                     acquired line {}) — inverts the declared hierarchy",
                                    acq.name, new_rank, h.name, held_rank, h.line
                                ),
                                out,
                            );
                        }
                    }
                }
            }
            let until = if acq.var.is_some() {
                // Let-bound guard: lives to the enclosing `}`.
                brace_stack.last().map(|&b| matching_brace(toks, b)).unwrap_or(close)
            } else {
                temporary_end(toks, acq.end, close)
            };
            held.push(Held { name: acq.name, var: acq.var, until, line });
            i = acq.end;
            continue;
        }
        // Condvar wait: blocking for every held lock EXCEPT the guard
        // passed as the first argument (the wait releases it).
        let is_wait = t.kind == TokKind::Ident
            && WAITS.contains(&t.text.as_str())
            && tok_text(toks, i.wrapping_sub(1)) == "."
            && tok_text(toks, i + 1) == "(";
        if is_wait {
            let waited = first_arg_ident(toks, i + 1);
            for h in &held {
                if waited.is_some() && h.var.as_deref() == waited.as_deref() {
                    continue;
                }
                emit(
                    file,
                    "lock-order",
                    t.line,
                    format!(
                        "lock `{}` (acquired line {}) held across condvar `{}`",
                        h.name, h.line, t.text
                    ),
                    out,
                );
            }
            i += 1;
            continue;
        }
        // Declared-blocking call while holding any lock.
        if t.kind == TokKind::Ident
            && cfg.blocking.iter().any(|b| b == &t.text)
            && tok_text(toks, i + 1) == "("
            && tok_text(toks, i.wrapping_sub(1)) != "fn"
        {
            for h in &held {
                emit(
                    file,
                    "lock-order",
                    t.line,
                    format!(
                        "lock `{}` (acquired line {}) held across blocking call `{}`",
                        h.name, h.line, t.text
                    ),
                    out,
                );
            }
        }
        i += 1;
    }
}

struct Acquisition {
    name: String,
    var: Option<String>,
    /// Token index just past the acquisition chain (`.unwrap()` etc.).
    end: usize,
}

/// Recognizes an acquisition whose method-name token is at `i`:
/// `.lock(` / `.try_lock(` on a receiver, or a configured
/// acquire-method (e.g. `.health(`, `.device(`).
fn acquisition_at(cfg: &Config, toks: &[Token], i: usize) -> Option<Acquisition> {
    let t = toks.get(i)?;
    if t.kind != TokKind::Ident
        || tok_text(toks, i.wrapping_sub(1)) != "."
        || tok_text(toks, i + 1) != "("
    {
        return None;
    }
    let name = match t.text.as_str() {
        "lock" | "try_lock" => receiver_name(toks, i - 1)?,
        m => cfg.acquire_methods.get(m)?.clone(),
    };
    // Skip the call's argument list, then a trailing
    // `.unwrap()` / `.expect(..)` / `?` chain.
    let mut j = skip_group(toks, i + 1);
    let mut plain_chain = true;
    loop {
        if tok_text(toks, j) == "?" {
            j += 1;
        } else if tok_text(toks, j) == "." {
            let m = tok_text(toks, j + 1);
            if (m == "unwrap" || m == "expect") && tok_text(toks, j + 2) == "(" {
                j = skip_group(toks, j + 2);
            } else {
                plain_chain = false;
                break;
            }
        } else {
            break;
        }
    }
    let var = if plain_chain && tok_text(toks, j) == ";" { let_binding_var(toks, i) } else { None };
    Some(Acquisition { name, var, end: j })
}

/// If the statement containing the acquisition at method-token `i` is
/// `let [mut] NAME = <receiver-chain>…;` with no leading `*`, returns
/// `NAME`. Walks backward over the receiver chain.
fn let_binding_var(toks: &[Token], i: usize) -> Option<String> {
    let mut k = i - 1; // the `.` before the method name
    loop {
        let prev = tok_text(toks, k.wrapping_sub(1));
        if prev == "]" || prev == ")" {
            k = walk_back_group(toks, k - 1)?;
        } else if toks.get(k.wrapping_sub(1)).is_some_and(|p| p.kind == TokKind::Ident) {
            k -= 1;
            // An ident may itself be preceded by `.` — keep walking.
            if tok_text(toks, k.wrapping_sub(1)) == "." {
                k -= 1;
            } else {
                break;
            }
        } else {
            break;
        }
    }
    // `k` is now the first token of the receiver expression.
    if tok_text(toks, k.wrapping_sub(1)) != "=" {
        return None;
    }
    let mut b = k.checked_sub(2)?;
    if tok_text(toks, b) == "mut" {
        b = b.checked_sub(1)?;
    }
    let name = toks.get(b).filter(|v| v.kind == TokKind::Ident)?;
    if tok_text(toks, b.wrapping_sub(1)) != "let" {
        return None;
    }
    Some(name.text.clone())
}

/// Receiver lock name for `.lock()`: the identifier before the dot,
/// skipping one trailing index/call group (`devices[id].lock()` →
/// `devices`).
fn receiver_name(toks: &[Token], dot: usize) -> Option<String> {
    let mut k = dot;
    let prev = tok_text(toks, k.wrapping_sub(1));
    if prev == "]" || prev == ")" {
        k = walk_back_group(toks, k - 1)?;
    }
    toks.get(k.wrapping_sub(1))
        .filter(|t| t.kind == TokKind::Ident && t.text != "self")
        .map(|t| t.text.clone())
}

/// Where a temporary acquired with chain ending at `chain_end` dies:
/// the next `;` at depth 0, or — if a `{` opens first at depth 0 (a
/// `match`/`if`/`while` header scrutinee) — that block's closing `}`.
fn temporary_end(toks: &[Token], chain_end: usize, fn_close: usize) -> usize {
    let mut depth = 0i32;
    let mut j = chain_end;
    while j <= fn_close && j < toks.len() {
        match toks[j].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => {
                if depth == 0 {
                    // The acquisition was an argument inside a call —
                    // the temporary dies with the enclosing statement;
                    // keep scanning past the close.
                } else {
                    depth -= 1;
                }
            }
            "{" if depth == 0 => return matching_brace(toks, j),
            "{" => depth += 1,
            "}" => depth -= 1,
            ";" if depth <= 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    fn_close
}

/// First identifier inside a call's argument list, skipping `&`,
/// `mut`, and `*` (so `.wait(&mut inner)` → `inner`).
fn first_arg_ident(toks: &[Token], open_paren: usize) -> Option<String> {
    let mut j = open_paren + 1;
    while matches!(tok_text(toks, j), "&" | "mut" | "*") {
        j += 1;
    }
    toks.get(j).filter(|t| t.kind == TokKind::Ident).map(|t| t.text.clone())
}

/// Index just past the balanced group opened at `at` (`(` or `[`).
fn skip_group(toks: &[Token], at: usize) -> usize {
    let (open_sym, close_sym) = match tok_text(toks, at) {
        "[" => ("[", "]"),
        _ => ("(", ")"),
    };
    let mut depth = 0i32;
    let mut j = at;
    while j < toks.len() {
        if toks[j].text == open_sym {
            depth += 1;
        } else if toks[j].text == close_sym {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    toks.len()
}

/// Walks backward over one balanced `[..]`/`(..)` group whose closer
/// is at `close`; returns the index of the opening token.
fn walk_back_group(toks: &[Token], close: usize) -> Option<usize> {
    let (open_sym, close_sym) = match tok_text(toks, close) {
        "]" => ("[", "]"),
        ")" => ("(", ")"),
        _ => return None,
    };
    let mut depth = 0i32;
    let mut j = close;
    loop {
        if toks[j].text == close_sym {
            depth += 1;
        } else if toks[j].text == open_sym {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
        j = j.checked_sub(1)?;
    }
}

fn tok_text(toks: &[Token], i: usize) -> &str {
    toks.get(i).map(|t| t.text.as_str()).unwrap_or("")
}
