//! Determinism zones.
//!
//! In files under `[determinism] paths` (the simulator and the
//! deterministic kernel/audit code), forbids the usual sources of
//! nondeterminism: wall-clock reads (`Instant::now`,
//! `SystemTime::now`), `thread::sleep`, and the iteration-order
//! hazards `HashMap`/`HashSet`. Timing-owning modules (server, bench,
//! breaker cooldown) simply stay out of the zone paths.

use crate::config::Config;
use crate::lexer::TokKind;
use crate::passes::{emit, Pass};
use crate::report::Finding;
use crate::source::SourceFile;

pub struct Determinism;

impl Pass for Determinism {
    fn name(&self) -> &'static str {
        "determinism"
    }

    fn run(&self, file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
        if !Config::in_zone(&file.rel, &cfg.determinism_paths) {
            return;
        }
        let toks = &file.tokens;
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            let next = toks.get(i + 1).map(|n| n.text.as_str()).unwrap_or("");
            let next2 = toks.get(i + 2).map(|n| n.text.as_str()).unwrap_or("");
            match t.text.as_str() {
                "Instant" | "SystemTime" if next == "::" && next2 == "now" => emit(
                    file,
                    "determinism",
                    t.line,
                    format!("`{}::now()` in a determinism zone", t.text),
                    out,
                ),
                "sleep"
                    if next == "("
                        && toks.get(i.wrapping_sub(1)).map(|p| p.text.as_str()) != Some("fn") =>
                {
                    emit(
                        file,
                        "determinism",
                        t.line,
                        "`sleep` in a determinism zone".to_string(),
                        out,
                    )
                }
                "HashMap" | "HashSet" => emit(
                    file,
                    "determinism",
                    t.line,
                    format!(
                        "`{}` in a determinism zone — iteration order leaks; use BTreeMap/BTreeSet \
                         or annotate keyed-only access",
                        t.text
                    ),
                    out,
                ),
                _ => {}
            }
        }
    }
}
