//! Panic-freedom zones.
//!
//! In files under `[panic_freedom] paths`, forbids the panicking
//! surface: `.unwrap()`, `.expect(..)`, `panic!`, `todo!`,
//! `unimplemented!`. In the stricter `index_paths` subset, slice/array
//! indexing (`x[i]`) is also denied — every index must be annotated
//! with its bounds argument or rewritten with `get`.

use crate::config::Config;
use crate::lexer::TokKind;
use crate::passes::{emit, is_keyword, Pass};
use crate::report::Finding;
use crate::source::SourceFile;

pub struct PanicFree;

const MACROS: [&str; 3] = ["panic", "todo", "unimplemented"];

impl Pass for PanicFree {
    fn name(&self) -> &'static str {
        "panic"
    }

    fn run(&self, file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
        if !Config::in_zone(&file.rel, &cfg.panic_paths) {
            return;
        }
        let index_zone = Config::in_zone(&file.rel, &cfg.index_paths);
        let toks = &file.tokens;
        for i in 0..toks.len() {
            let t = &toks[i];
            let prev = toks.get(i.wrapping_sub(1));
            let next = toks.get(i + 1);
            if t.kind == TokKind::Ident
                && (t.text == "unwrap" || t.text == "expect")
                && prev.is_some_and(|p| p.text == ".")
                && next.is_some_and(|n| n.text == "(")
            {
                emit(
                    file,
                    "panic",
                    t.line,
                    format!(
                        "`.{}()` in a panic-freedom zone — handle the error or annotate",
                        t.text
                    ),
                    out,
                );
            }
            if t.kind == TokKind::Ident
                && MACROS.contains(&t.text.as_str())
                && next.is_some_and(|n| n.text == "!")
            {
                emit(file, "panic", t.line, format!("`{}!` in a panic-freedom zone", t.text), out);
            }
            // Indexing: `[` in value position — previous token is a
            // non-keyword identifier, `]`, or `)`. Attribute (`#[`),
            // macro (`vec![`), type (`&[u8]`), and literal (`= [`)
            // brackets all fail that test.
            if index_zone && t.text == "[" {
                let is_index = prev.is_some_and(|p| {
                    (p.kind == TokKind::Ident && !is_keyword(&p.text))
                        || p.text == "]"
                        || p.text == ")"
                });
                if is_index {
                    emit(
                        file,
                        "panic",
                        t.line,
                        "slice indexing in a panic-freedom zone — use `get` or annotate the bound"
                            .to_string(),
                        out,
                    );
                }
            }
        }
    }
}
