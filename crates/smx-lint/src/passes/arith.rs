//! Kernel arithmetic discipline.
//!
//! In the DP/SIMD kernel files (`[arith] paths`), score values must
//! use `saturating_*` / `wrapping_*` arithmetic — a bare `+`/`-`/`*`
//! on a score-typed operand is exactly the overflow class PR 6
//! hardened against. An identifier is score-typed when it appears in
//! `[arith] score_idents`.
//!
//! Only *binary* uses are flagged: the operator must sit between two
//! operand-shaped tokens, so unary minus (`-score` after `=`) and
//! deref (`*score`) are not matched.

use crate::config::Config;
use crate::lexer::TokKind;
use crate::passes::{emit, is_keyword, Pass};
use crate::report::Finding;
use crate::source::SourceFile;

pub struct Arith;

impl Pass for Arith {
    fn name(&self) -> &'static str {
        "arith"
    }

    fn run(&self, file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
        if !Config::in_zone(&file.rel, &cfg.arith_paths) {
            return;
        }
        let toks = &file.tokens;
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.kind != TokKind::Punct || !matches!(t.text.as_str(), "+" | "-" | "*") {
                continue;
            }
            let Some(prev) = toks.get(i.wrapping_sub(1)) else { continue };
            let Some(next) = toks.get(i + 1) else { continue };
            // Binary position: the left neighbor must end an operand.
            let binary = matches!(prev.kind, TokKind::Ident | TokKind::NumLit)
                && !is_keyword(&prev.text)
                || prev.text == "]"
                || prev.text == ")";
            if !binary {
                continue;
            }
            let score = |tok: &crate::lexer::Token| {
                tok.kind == TokKind::Ident && cfg.score_idents.iter().any(|s| s == &tok.text)
            };
            if score(prev) || score(next) {
                let operand = if score(prev) { &prev.text } else { &next.text };
                emit(
                    file,
                    "arith",
                    t.line,
                    format!(
                        "bare `{}` on score-typed `{}` — use saturating_*/wrapping_* or annotate",
                        t.text, operand
                    ),
                    out,
                );
            }
        }
    }
}
