//! Finding model and report rendering (text + hand-rolled JSON).

/// One lint finding. Deny-by-default: every finding fails the build
/// unless it is annotated in source or grandfathered in the baseline.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Pass that produced it (`lock-order`, `panic`, `unsafe`,
    /// `determinism`, `arith`).
    pub pass: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
    /// Trimmed source line text (keys the baseline robustly against
    /// line-number drift).
    pub line_text: String,
}

impl Finding {
    /// `pass:file:line: message` single-line rendering.
    pub fn render(&self) -> String {
        format!("{}: {}:{}: {}", self.pass, self.file, self.line, self.message)
    }
}

/// Escapes a string for inclusion in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes the full report as pretty-printed JSON. `new_findings`
/// is the subset not covered by the baseline; `unsafe_sites` is the
/// unsafe-audit inventory (all sites, including SAFETY-documented).
pub fn to_json(
    new_findings: &[Finding],
    baselined: &[Finding],
    unsafe_sites: &[(String, u32, bool)],
    files_checked: usize,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"files_checked\": {},\n", files_checked));
    s.push_str(&format!("  \"new_findings\": {},\n", findings_json(new_findings, 2)));
    s.push_str(&format!("  \"baselined_findings\": {},\n", findings_json(baselined, 2)));
    s.push_str("  \"unsafe_inventory\": [\n");
    for (i, (file, line, documented)) in unsafe_sites.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"safety_comment\": {}}}{}\n",
            json_escape(file),
            line,
            documented,
            if i + 1 < unsafe_sites.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

fn findings_json(findings: &[Finding], indent: usize) -> String {
    if findings.is_empty() {
        return "[]".to_string();
    }
    let pad = " ".repeat(indent);
    let mut s = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        s.push_str(&format!(
            "{}  {{\"pass\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{}\n",
            pad,
            json_escape(&f.pass),
            json_escape(&f.file),
            f.line,
            json_escape(&f.message),
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    s.push_str(&format!("{}]", pad));
    s
}
