//! smx-lint: workspace invariant checker.
//!
//! Five passes clippy cannot express, tuned to this codebase's failure
//! modes (DESIGN.md §10): lock-order discipline, panic-freedom zones,
//! unsafe SAFETY audit, determinism zones, and kernel arithmetic
//! discipline. Fully self-contained — the lexer, TOML-subset config
//! parser, JSON writer, and baseline engine are all in-tree, matching
//! the workspace's no-registry-deps rule.

pub mod baseline;
pub mod config;
pub mod lexer;
pub mod passes;
pub mod report;
pub mod source;

use config::Config;
use report::Finding;
use source::SourceFile;
use std::path::{Path, PathBuf};

/// Result of linting a set of files (before baseline matching).
pub struct LintRun {
    /// Number of `.rs` files analyzed.
    pub files_checked: usize,
    /// Findings surviving test-region and annotation suppression,
    /// sorted by (file, line, pass) for deterministic output.
    pub findings: Vec<Finding>,
    /// All non-test unsafe sites: `(file, line, documented)`.
    pub unsafe_inventory: Vec<(String, u32, bool)>,
}

/// Collects every workspace `.rs` file under `root`, skipping
/// `target/`, hidden directories, and configured excludes. Sorted for
/// deterministic traversal.
pub fn walk_workspace(root: &Path, cfg: &Config) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    walk_dir(root, root, cfg, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk_dir(root: &Path, dir: &Path, cfg: &Config, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
        if cfg.exclude.iter().any(|e| rel.starts_with(e.as_str())) {
            continue;
        }
        let ty = entry.file_type()?;
        if ty.is_dir() {
            walk_dir(root, &path, cfg, out)?;
        } else if ty.is_file() && name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints the given files against `cfg`.
pub fn run_files(root: &Path, cfg: &Config, files: &[PathBuf]) -> std::io::Result<LintRun> {
    let mut findings = Vec::new();
    let mut unsafe_inventory = Vec::new();
    let all_passes = passes::all();
    for path in files {
        let sf = SourceFile::load(root, path)?;
        for p in &all_passes {
            p.run(&sf, cfg, &mut findings);
        }
        unsafe_inventory.extend(passes::unsafe_audit::inventory(&sf));
    }
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.pass.as_str()).cmp(&(b.file.as_str(), b.line, b.pass.as_str()))
    });
    unsafe_inventory.sort();
    Ok(LintRun { files_checked: files.len(), findings, unsafe_inventory })
}

/// Lints the whole workspace rooted at `root`.
pub fn run_workspace(root: &Path, cfg: &Config) -> std::io::Result<LintRun> {
    let files = walk_workspace(root, cfg)?;
    run_files(root, cfg, &files)
}

/// Finds the workspace root by walking up from `start` looking for
/// `lint.toml` (falls back to a `Cargo.toml` containing `[workspace]`).
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("lint.toml").is_file() {
            return Some(d);
        }
        if let Ok(t) = std::fs::read_to_string(d.join("Cargo.toml")) {
            if t.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(|p| p.to_path_buf());
    }
    None
}
