//! `lint.toml` configuration: lock hierarchy, zone paths, and the
//! hand-rolled TOML-subset parser that reads it (no registry deps).
//!
//! Supported TOML subset: `[section]` / `[section.sub]` headers,
//! `key = "string"`, `key = true/false`, `key = 123`, and string
//! arrays which may span multiple lines. `#` comments. That is all
//! this project needs; anything else is a parse error.

use std::collections::BTreeMap;

/// Parsed lint configuration.
#[derive(Debug, Default)]
pub struct Config {
    /// Workspace-relative path prefixes excluded from walking.
    pub exclude: Vec<String>,
    /// Lock names, outermost first. Acquiring a lock while holding one
    /// that appears *later* in this list is an inversion.
    pub lock_hierarchy: Vec<String>,
    /// Method/function names declared blocking: holding any lock
    /// across a call to one of these is flagged.
    pub blocking: Vec<String>,
    /// Helper methods that return a guard: method name → lock name.
    pub acquire_methods: BTreeMap<String, String>,
    /// Panic-freedom zone: path prefixes where `unwrap`/`expect`/
    /// `panic!`/`todo!` are denied.
    pub panic_paths: Vec<String>,
    /// Subset of the panic zone where slice indexing is also denied.
    pub index_paths: Vec<String>,
    /// Determinism zone: path prefixes where wall-clock, sleeps, and
    /// `HashMap`/`HashSet` are denied.
    pub determinism_paths: Vec<String>,
    /// Kernel-arithmetic zone path prefixes.
    pub arith_paths: Vec<String>,
    /// Identifiers treated as score-typed in the arith zone.
    pub score_idents: Vec<String>,
}

impl Config {
    /// Whether `rel` (workspace-relative, `/`-separated) falls under
    /// any of the given path prefixes.
    pub fn in_zone(rel: &str, prefixes: &[String]) -> bool {
        prefixes.iter().any(|p| rel.starts_with(p.as_str()))
    }

    /// Rank of a lock in the hierarchy (lower = outer). `None` for
    /// locks not in the declared hierarchy — those are unranked and
    /// never flagged for order (but still for blocking calls).
    pub fn lock_rank(&self, name: &str) -> Option<usize> {
        self.lock_hierarchy.iter().position(|l| l == name)
    }

    /// Parses the config text. Errors carry the offending line.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((n, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(h) = line.strip_prefix('[') {
                let Some(h) = h.strip_suffix(']') else {
                    return Err(format!("line {}: unterminated section header", n + 1));
                };
                section = h.trim().to_string();
                continue;
            }
            let Some(eq) = line.find('=') else {
                return Err(format!("line {}: expected `key = value`", n + 1));
            };
            let key = line[..eq].trim().to_string();
            let mut value = line[eq + 1..].trim().to_string();
            // Multiline array: keep consuming lines until brackets close.
            if value.starts_with('[') {
                while !array_closed(&value) {
                    let Some((_, next)) = lines.next() else {
                        return Err(format!("line {}: unterminated array", n + 1));
                    };
                    value.push(' ');
                    value.push_str(strip_comment(next).trim());
                }
            }
            cfg.set(&section, &key, &value).map_err(|e| format!("line {}: {}", n + 1, e))?;
        }
        Ok(cfg)
    }

    fn set(&mut self, section: &str, key: &str, value: &str) -> Result<(), String> {
        match (section, key) {
            ("workspace", "exclude") => self.exclude = parse_string_array(value)?,
            ("locks", "hierarchy") => self.lock_hierarchy = parse_string_array(value)?,
            ("locks", "blocking") => self.blocking = parse_string_array(value)?,
            ("locks.acquire_methods", method) => {
                self.acquire_methods.insert(method.to_string(), parse_string(value)?);
            }
            ("panic_freedom", "paths") => self.panic_paths = parse_string_array(value)?,
            ("panic_freedom", "index_paths") => self.index_paths = parse_string_array(value)?,
            ("determinism", "paths") => self.determinism_paths = parse_string_array(value)?,
            ("arith", "paths") => self.arith_paths = parse_string_array(value)?,
            ("arith", "score_idents") => self.score_idents = parse_string_array(value)?,
            _ => return Err(format!("unknown key `{}` in section `[{}]`", key, section)),
        }
        Ok(())
    }
}

/// Strips a `#` comment, respecting `#` inside double quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Whether a (possibly partial) array literal has balanced brackets.
fn array_closed(s: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

fn parse_string(v: &str) -> Result<String, String> {
    let v = v.trim();
    let inner = v
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("expected a quoted string, got `{}`", v))?;
    Ok(inner.to_string())
}

fn parse_string_array(v: &str) -> Result<Vec<String>, String> {
    let v = v.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("expected an array, got `{}`", v))?;
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in inner.chars() {
        match c {
            '"' => {
                if in_str {
                    out.push(std::mem::take(&mut cur));
                }
                in_str = !in_str;
            }
            ',' if !in_str => {}
            _ if in_str => cur.push(c),
            _ if c.is_whitespace() => {}
            _ => return Err(format!("unexpected `{}` in array", c)),
        }
    }
    if in_str {
        return Err("unterminated string in array".to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_arrays_and_maps() {
        let cfg = Config::parse(
            r#"
# comment
[workspace]
exclude = ["a/b", "c"]

[locks]
hierarchy = [
    "outer",  # outermost
    "inner",
]
blocking = ["sleep"]

[locks.acquire_methods]
health = "health"
"#,
        )
        .unwrap();
        assert_eq!(cfg.exclude, vec!["a/b", "c"]);
        assert_eq!(cfg.lock_hierarchy, vec!["outer", "inner"]);
        assert_eq!(cfg.acquire_methods.get("health").unwrap(), "health");
        assert_eq!(cfg.lock_rank("outer"), Some(0));
        assert_eq!(cfg.lock_rank("nope"), None);
    }

    #[test]
    fn rejects_unknown_keys() {
        assert!(Config::parse("[locks]\nbogus = 1\n").is_err());
    }
}
