//! A small hand-written Rust lexer with line/column tracking.
//!
//! The passes in this crate reason about *token streams*, never raw
//! text, so the lexer must get exactly the adversarial cases right that
//! naive regex scanning gets wrong:
//!
//! * nested block comments (`/* /* */ */` is one comment);
//! * raw strings (`r#"x.unwrap()"#` is a string literal, not a call);
//! * `'a` lifetimes vs `'x'` char literals (a tick followed by an
//!   identifier is a lifetime unless a closing tick follows);
//! * `//` inside string literals (`"http://x"` stays one token);
//! * doc comments (`///`, `//!`, `/** */`, `/*! */`) distinguished from
//!   plain comments, and `////…` correctly *not* a doc comment.
//!
//! The lexer is total: malformed input never panics, it just terminates
//! the current token at end of input. Positions are 1-based.

/// Kind of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`foo`, `fn`, `unsafe`).
    Ident,
    /// Raw identifier (`r#type`).
    RawIdent,
    /// Lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    CharLit,
    /// String literal (`"…"`).
    StrLit,
    /// Byte-string literal (`b"…"`).
    ByteStrLit,
    /// Raw (byte) string literal (`r"…"`, `r#"…"#`, `br#"…"#`).
    RawStrLit,
    /// Numeric literal (`42`, `0xFF`, `1.5e-3`, `1_000u64`).
    NumLit,
    /// `// …` comment (non-doc).
    LineComment,
    /// `/* … */` comment (non-doc; nesting handled).
    BlockComment,
    /// Doc comment of any shape (`///`, `//!`, `/** */`, `/*! */`).
    DocComment,
    /// Punctuation / operator, longest-match (`+=`, `::`, `..=`, `{`).
    Punct,
}

/// One token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Token {
    /// What the token is.
    pub kind: TokKind,
    /// Verbatim source text (comments and literals keep their markers).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column of the token's first character.
    pub col: u32,
}

impl Token {
    /// Whether this token is any comment kind.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment | TokKind::DocComment)
    }

    /// 1-based line of the token's *last* character (block comments span).
    pub fn end_line(&self) -> u32 {
        self.line + self.text.chars().filter(|&c| c == '\n').count() as u32
    }
}

/// Multi-character operators, longest first so matching is greedy.
const PUNCTS: [&str; 25] = [
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..", "?",
];

/// Lexes `src` into tokens. Never fails; unterminated constructs are
/// closed at end of input.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer { chars: src.chars().collect(), i: 0, line: 1, col: 1, out: Vec::new() }.run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self, buf: &mut String) {
        if let Some(c) = self.chars.get(self.i).copied() {
            buf.push(c);
            self.i += 1;
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
    }

    fn skip(&mut self) {
        let mut sink = String::new();
        self.bump(&mut sink);
    }

    fn emit(&mut self, kind: TokKind, text: String, line: u32, col: u32) {
        self.out.push(Token { kind, text, line, col });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            if c.is_whitespace() {
                self.skip();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment(line, col);
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment(line, col);
            } else if c == 'r' && self.raw_string_follows(1) {
                self.raw_string(line, col, 1);
            } else if c == 'r' && self.peek(1) == Some('#') && ident_start(self.peek(2)) {
                self.raw_ident(line, col);
            } else if c == 'b' && self.peek(1) == Some('r') && self.raw_string_follows(2) {
                self.raw_string(line, col, 2);
            } else if c == 'b' && self.peek(1) == Some('"') {
                self.string(line, col, 1, TokKind::StrLit);
            } else if c == 'b' && self.peek(1) == Some('\'') {
                self.char_or_lifetime(line, col, 1);
            } else if is_ident_start(c) {
                self.ident(line, col);
            } else if c.is_ascii_digit() {
                self.number(line, col);
            } else if c == '"' {
                self.string(line, col, 0, TokKind::StrLit);
            } else if c == '\'' {
                self.char_or_lifetime(line, col, 0);
            } else {
                self.punct(line, col);
            }
        }
        self.out
    }

    /// Whether a raw string opener (`#`* then `"`) starts `ahead` chars in.
    fn raw_string_follows(&self, ahead: usize) -> bool {
        let mut k = ahead;
        while self.peek(k) == Some('#') {
            k += 1;
        }
        self.peek(k) == Some('"')
    }

    fn line_comment(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump(&mut text);
        }
        // `///x` and `//!x` are doc comments; `////…` is not.
        let doc = (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!");
        let kind = if doc { TokKind::DocComment } else { TokKind::LineComment };
        self.emit(kind, text, line, col);
    }

    fn block_comment(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        self.bump(&mut text); // '/'
        self.bump(&mut text); // '*'
        let mut depth = 1usize;
        while depth > 0 && self.peek(0).is_some() {
            if self.peek(0) == Some('/') && self.peek(1) == Some('*') {
                depth += 1;
                self.bump(&mut text);
                self.bump(&mut text);
            } else if self.peek(0) == Some('*') && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump(&mut text);
                self.bump(&mut text);
            } else {
                self.bump(&mut text);
            }
        }
        // `/**/` and `/***/` are not doc comments; `/**x` and `/*!` are.
        let doc = (text.starts_with("/**") && text.len() > 4 && !text.starts_with("/***"))
            || text.starts_with("/*!");
        let kind = if doc { TokKind::DocComment } else { TokKind::BlockComment };
        self.emit(kind, text, line, col);
    }

    /// Raw (byte) string: `prefix_len` covers the `r` / `br` prefix.
    fn raw_string(&mut self, line: u32, col: u32, prefix_len: usize) {
        let mut text = String::new();
        for _ in 0..prefix_len {
            self.bump(&mut text);
        }
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump(&mut text);
        }
        self.bump(&mut text); // opening '"'
        loop {
            match self.peek(0) {
                None => break,
                Some('"') => {
                    // Candidate close: '"' followed by `hashes` '#'s.
                    let closes = (0..hashes).all(|k| self.peek(1 + k) == Some('#'));
                    self.bump(&mut text);
                    if closes {
                        for _ in 0..hashes {
                            self.bump(&mut text);
                        }
                        break;
                    }
                }
                Some(_) => self.bump(&mut text),
            }
        }
        self.emit(TokKind::RawStrLit, text, line, col);
    }

    fn raw_ident(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        self.bump(&mut text); // 'r'
        self.bump(&mut text); // '#'
        while ident_continue(self.peek(0)) {
            self.bump(&mut text);
        }
        self.emit(TokKind::RawIdent, text, line, col);
    }

    fn ident(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while ident_continue(self.peek(0)) {
            self.bump(&mut text);
        }
        self.emit(TokKind::Ident, text, line, col);
    }

    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        self.bump(&mut text);
        loop {
            match self.peek(0) {
                Some(c) if c.is_ascii_alphanumeric() || c == '_' => {
                    self.bump(&mut text);
                    // Exponent sign: `1e-3`, `2.5E+7`.
                    if (c == 'e' || c == 'E')
                        && !text.starts_with("0x")
                        && matches!(self.peek(0), Some('+') | Some('-'))
                        && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                    {
                        self.bump(&mut text);
                    }
                }
                // A fractional point, but never the `..` of a range.
                Some('.')
                    if self.peek(1).is_some_and(|d| d.is_ascii_digit()) && !text.contains('.') =>
                {
                    self.bump(&mut text);
                }
                _ => break,
            }
        }
        self.emit(TokKind::NumLit, text, line, col);
    }

    /// Cooked (byte) string with escape handling.
    fn string(&mut self, line: u32, col: u32, prefix_len: usize, kind: TokKind) {
        let mut text = String::new();
        for _ in 0..prefix_len {
            self.bump(&mut text);
        }
        self.bump(&mut text); // opening '"'
        loop {
            match self.peek(0) {
                None => break,
                Some('\\') => {
                    self.bump(&mut text);
                    self.bump(&mut text);
                }
                Some('"') => {
                    self.bump(&mut text);
                    break;
                }
                Some(_) => self.bump(&mut text),
            }
        }
        let kind = if prefix_len == 1 { TokKind::ByteStrLit } else { kind };
        self.emit(kind, text, line, col);
    }

    /// The tick disambiguation: `'a` lifetime vs `'x'` char literal.
    fn char_or_lifetime(&mut self, line: u32, col: u32, prefix_len: usize) {
        let mut text = String::new();
        for _ in 0..prefix_len {
            self.bump(&mut text); // 'b'
        }
        self.bump(&mut text); // opening tick
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume escape, then to the close.
                self.bump(&mut text);
                self.bump(&mut text);
                while self.peek(0).is_some() && self.peek(0) != Some('\'') {
                    self.bump(&mut text);
                }
                self.bump(&mut text);
                self.emit(TokKind::CharLit, text, line, col);
            }
            Some(c) if is_ident_start(c) => {
                // Could be `'a` (lifetime) or `'a'` / `'word'`-ish (char).
                let mut k = 0usize;
                while ident_continue(self.peek(k)) {
                    k += 1;
                }
                if self.peek(k) == Some('\'') {
                    for _ in 0..=k {
                        self.bump(&mut text);
                    }
                    self.emit(TokKind::CharLit, text, line, col);
                } else {
                    while ident_continue(self.peek(0)) {
                        self.bump(&mut text);
                    }
                    self.emit(TokKind::Lifetime, text, line, col);
                }
            }
            Some(_) => {
                // `'1'`, `'.'`, `' '` and friends.
                self.bump(&mut text);
                if self.peek(0) == Some('\'') {
                    self.bump(&mut text);
                }
                self.emit(TokKind::CharLit, text, line, col);
            }
            None => self.emit(TokKind::CharLit, text, line, col),
        }
    }

    fn punct(&mut self, line: u32, col: u32) {
        for p in PUNCTS {
            if self
                .chars
                .get(self.i..self.i + p.len())
                .is_some_and(|w| w.iter().collect::<String>() == p)
            {
                let mut text = String::new();
                for _ in 0..p.len() {
                    self.bump(&mut text);
                }
                self.emit(TokKind::Punct, text, line, col);
                return;
            }
        }
        let mut text = String::new();
        self.bump(&mut text);
        self.emit(TokKind::Punct, text, line, col);
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn ident_start(c: Option<char>) -> bool {
    c.is_some_and(is_ident_start)
}

fn ident_continue(c: Option<char>) -> bool {
    c.is_some_and(|c| c.is_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("fn f(x: i32) -> i32 { x += 1; x }");
        assert!(toks.contains(&(TokKind::Punct, "->".into())));
        assert!(toks.contains(&(TokKind::Punct, "+=".into())));
        assert!(toks.contains(&(TokKind::Ident, "fn".into())));
    }

    #[test]
    fn positions_are_one_based_and_track_lines() {
        let toks = lex("a\n  bb");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn range_is_not_a_float() {
        let toks = kinds("0..5");
        assert_eq!(
            toks,
            vec![
                (TokKind::NumLit, "0".into()),
                (TokKind::Punct, "..".into()),
                (TokKind::NumLit, "5".into()),
            ]
        );
    }
}
