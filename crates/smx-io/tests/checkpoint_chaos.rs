//! Failpoint regression tests for the [`CheckpointWriter`] I/O-error
//! contract: a failed write or fsync surfaces as a typed error and
//! leaves the file in a state `append`/resume provably recovers from —
//! at worst a torn *final* line, never a corrupt middle one. Compiled
//! only with `--features failpoints`.
//!
//! The registry is process-global; every test serializes on
//! [`registry_lock`] and clears the registry on drop.
#![cfg(feature = "failpoints")]

use smx_align_core::{Alignment, Cigar};
use smx_failpoint::{clear, install, Action, FailSchedule};
use smx_io::checkpoint::{CheckpointWriter, Manifest, RecordSink};
use smx_io::IoError;
use std::io::Write;
use std::sync::{Mutex, MutexGuard, PoisonError};

static REGISTRY: Mutex<()> = Mutex::new(());

fn registry_lock() -> impl Drop {
    struct Guard(#[allow(dead_code)] MutexGuard<'static, ()>);
    impl Drop for Guard {
        fn drop(&mut self) {
            clear();
        }
    }
    Guard(REGISTRY.lock().unwrap_or_else(PoisonError::into_inner))
}

fn aln(score: i32, cigar: &str) -> Alignment {
    Alignment { score, cigar: Cigar::parse(cigar).unwrap() }
}

fn tmpfile(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("smx-ckpt-chaos-{}-{tag}.tsv", std::process::id()))
}

/// A torn half-line from a failed `write` is rolled back on the spot:
/// the file keeps only whole records, later records append cleanly, and
/// the final manifest loads with every *acked* record and nothing else.
/// This is the regression test for the corrupt-middle-line wedge: before
/// the rollback, the torn bytes merged with the next record into a line
/// [`Manifest::load`] hard-rejects, permanently wedging the session.
#[test]
fn partial_write_rolls_back_to_whole_records() {
    let _guard = registry_lock();
    let path = tmpfile("partial-write");
    let _ = std::fs::remove_file(&path);

    let mut w = CheckpointWriter::create(&path).unwrap();
    w.record(0, &aln(5, "5=")).unwrap();

    // Second record: the write tears halfway and must report an error.
    install(FailSchedule::new(2).rule("ckpt.write", None, Action::Partial, 1.0, Some(1)));
    match w.record(1, &aln(7, "3=1X3=")) {
        Err(IoError::Io(_)) => {}
        other => panic!("torn write reported {other:?}"),
    }
    clear();

    // Third record appends over the rolled-back tail.
    w.record(2, &aln(9, "9=")).unwrap();
    drop(w);

    let manifest = Manifest::load(&path).unwrap();
    assert_eq!(
        manifest.completed.keys().copied().collect::<std::collections::BTreeSet<_>>(),
        [0, 2].into_iter().collect(),
        "exactly the acked records survive"
    );
    assert!(!manifest.torn_tail, "rollback must not leave a tear for load to repair");
    std::fs::remove_file(&path).ok();
}

/// A failed fsync is reported as a typed error and the record is NOT
/// acked — but the bytes may be in the page cache, so the rollback
/// truncates them too: retrying the same record later produces exactly
/// one copy.
#[test]
fn failed_fsync_is_typed_and_unacked() {
    let _guard = registry_lock();
    let path = tmpfile("fsync");
    let _ = std::fs::remove_file(&path);

    let mut w = CheckpointWriter::create(&path).unwrap();
    w.record(0, &aln(3, "3=")).unwrap();

    install(FailSchedule::new(4).rule("ckpt.fsync", None, Action::Error, 1.0, Some(1)));
    match w.record(1, &aln(4, "2=1I1=")) {
        Err(IoError::Io(_)) => {}
        other => panic!("failed fsync reported {other:?}"),
    }
    clear();

    // The unacked record is retried — the rollback guarantees no
    // duplicate line from the first attempt's page-cache bytes.
    w.record(1, &aln(4, "2=1I1=")).unwrap();
    drop(w);

    let text = std::fs::read_to_string(&path).unwrap();
    assert_eq!(text.lines().count(), 2, "retry must not duplicate the rolled-back line");
    let manifest = Manifest::load(&path).unwrap();
    assert_eq!(manifest.completed[&1], aln(4, "2=1I1="));
    std::fs::remove_file(&path).ok();
}

/// The full crash-recovery story: a run tears mid-record and dies
/// without any rollback (simulating `kill -9` between the torn write and
/// the cleanup), and the next process's `append` + [`Manifest::load`]
/// still recover every durable record.
#[test]
fn append_recovers_from_a_torn_tail_left_by_a_dead_process() {
    let _guard = registry_lock();
    let path = tmpfile("torn-tail");
    let _ = std::fs::remove_file(&path);

    {
        let mut w = CheckpointWriter::create(&path).unwrap();
        w.record(0, &aln(5, "5=")).unwrap();
        w.record(1, &aln(6, "6=")).unwrap();
    }
    // Simulate the kill: append raw torn bytes behind the writer's back,
    // exactly what a died-mid-write process leaves when rollback never
    // ran.
    let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
    f.write_all(b"2\t9\t9").unwrap();
    drop(f);

    let loaded = Manifest::load(&path).unwrap();
    assert!(loaded.torn_tail, "load must flag the tear");
    assert_eq!(loaded.completed.len(), 2);

    // The resume path: append truncates the tear, new records follow.
    let mut w = CheckpointWriter::append(&path).unwrap();
    w.record(2, &aln(9, "9=")).unwrap();
    drop(w);

    let healed = Manifest::load(&path).unwrap();
    assert!(!healed.torn_tail);
    assert_eq!(healed.completed.len(), 3);
    assert_eq!(healed.completed[&2], aln(9, "9="));
    std::fs::remove_file(&path).ok();
}

/// When the rollback itself fails, the writer poisons itself: every
/// further `record` returns a typed error without touching the sink, so
/// the damage stays bounded to one torn final line.
#[test]
fn failed_rollback_poisons_the_writer() {
    let _guard = registry_lock();

    /// Sink whose writes fail after a byte budget and whose rollback
    /// always fails — the double-fault path.
    struct BrokenSink {
        data: Vec<u8>,
        budget: usize,
    }
    impl Write for BrokenSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            let n = buf.len().min(self.budget);
            self.budget -= n;
            self.data.extend_from_slice(&buf[..n]);
            if n < buf.len() {
                return Err(std::io::Error::other("budget exhausted"));
            }
            Ok(n)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    impl RecordSink for BrokenSink {
        fn rollback(&mut self) -> std::io::Result<()> {
            Err(std::io::Error::other("rollback unavailable"))
        }
    }

    let mut w = CheckpointWriter::new(BrokenSink { data: Vec::new(), budget: 4 });
    match w.record(0, &aln(5, "5=")) {
        Err(IoError::Io(_)) => {}
        other => panic!("budget-exhausted write reported {other:?}"),
    }
    // Poisoned: the next record fails typed without writing anything.
    match w.record(1, &aln(6, "6=")) {
        Err(IoError::Io(e)) => {
            assert!(e.to_string().contains("poisoned"), "unexpected error: {e}");
        }
        other => panic!("poisoned writer reported {other:?}"),
    }
}
