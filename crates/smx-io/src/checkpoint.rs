//! Crash-safe batch checkpoint manifests (DESIGN.md §5.4).
//!
//! A manifest is an append-only text file with one line per *completed*
//! pair, written and flushed as results arrive so a crash loses at most
//! the line being written. Each line carries the pair index, the score,
//! the CIGAR, and an FNV-1a checksum of the payload, so resuming can
//! re-emit completed alignments byte-identically without recomputing
//! them — and can detect a corrupted manifest instead of trusting it.
//!
//! Loading is tolerant of exactly one failure mode: a torn *final* line
//! (the crash interrupted the last `write`). Anything malformed earlier
//! in the file is a hard, line-numbered [`IoError::Parse`], because a
//! corrupt middle line means the file was damaged after the fact, not
//! torn by a crash.
//!
//! ```
//! use smx_align_core::{Alignment, Cigar};
//! use smx_io::checkpoint::{CheckpointWriter, Manifest};
//!
//! let mut buf = Vec::new();
//! let mut w = CheckpointWriter::new(&mut buf);
//! let aln = Alignment { score: 3, cigar: Cigar::parse("3=").unwrap() };
//! w.record(0, &aln)?;
//! drop(w); // flush-on-drop releases the borrow
//! let manifest = Manifest::parse(&buf[..])?;
//! assert_eq!(manifest.completed[&0], aln);
//! assert!(!manifest.torn_tail);
//! # Ok::<(), smx_io::IoError>(())
//! ```

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufReader, Read, Seek, SeekFrom, Write};
use std::path::Path;

use smx_align_core::{Alignment, Cigar};

use crate::IoError;

/// FNV-1a 64-bit over the line payload; cheap, dependency-free, and
/// plenty to catch truncation and bit rot in a text manifest.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn payload(index: usize, score: i32, cigar: &str) -> String {
    format!("{index}\t{score}\t{cigar}")
}

/// A sink [`CheckpointWriter`] can roll back after a failed record,
/// restoring the invariant a resume depends on: the file is a valid
/// prefix of whole records, at worst followed by one torn *final* line.
/// Without the rollback, the torn bytes of a failed record would merge
/// with the next successful one into a corrupt *middle* line — which
/// [`Manifest::load`] rejects by design, permanently wedging the
/// session.
pub trait RecordSink: Write {
    /// Marks everything written so far as durable (a record landed).
    fn mark_durable(&mut self) {}

    /// Discards everything past the last durable mark.
    ///
    /// # Errors
    ///
    /// Propagates the underlying truncation failure; the caller must
    /// then stop appending (the sink may end in torn bytes).
    fn rollback(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// In-memory sinks never fail mid-record; nothing to roll back.
impl RecordSink for Vec<u8> {}

impl<S: RecordSink + ?Sized> RecordSink for &mut S {
    fn mark_durable(&mut self) {
        (**self).mark_durable()
    }

    fn rollback(&mut self) -> std::io::Result<()> {
        (**self).rollback()
    }
}

/// A [`File`] whose `flush` also issues `sync_data`, so every
/// [`CheckpointWriter::record`] (and the flush-on-drop) pushes the line
/// through the OS page cache to the device. Without the sync, a *machine*
/// crash (as opposed to a process crash) could lose lines the writer had
/// already reported as durable. Tracks its durable length so a failed
/// record can be truncated away ([`RecordSink::rollback`]).
#[derive(Debug)]
pub struct SyncFile {
    file: File,
    /// Bytes written so far, including any torn tail from a failure.
    len: u64,
    /// Bytes fully recorded, flushed, and synced.
    durable: u64,
}

impl Write for SyncFile {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        // Failpoint `ckpt.write`: Error refuses the write outright
        // (ENOSPC-style); Partial commits only half the buffer to the
        // file — a real torn tail the rollback must truncate away —
        // and reports the failure to the caller.
        match smx_failpoint::hit("ckpt.write") {
            Some(smx_failpoint::Injected::Error) => {
                return Err(smx_failpoint::injected_io_error());
            }
            Some(smx_failpoint::Injected::Partial) => {
                let torn = buf.get(..buf.len() / 2).unwrap_or(buf);
                self.file.write_all(torn)?;
                self.len += torn.len() as u64;
                let _ = self.file.sync_data();
                return Err(smx_failpoint::injected_io_error());
            }
            None => {}
        }
        let n = self.file.write(buf)?;
        self.len += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.file.flush()?;
        // Failpoint `ckpt.fsync`: the durability barrier fails after
        // the page-cache write went through — the OS has the bytes but
        // the writer must NOT ack them. Partial degrades to Error here
        // (there is no half of an fsync).
        if smx_failpoint::hit("ckpt.fsync").is_some() {
            return Err(smx_failpoint::injected_io_error());
        }
        self.file.sync_data()
    }
}

impl RecordSink for SyncFile {
    fn mark_durable(&mut self) {
        self.durable = self.len;
    }

    fn rollback(&mut self) -> std::io::Result<()> {
        self.file.set_len(self.durable)?;
        // Reposition for the non-append (`create`) case; append-mode
        // files ignore the cursor and this is a harmless no-op.
        self.file.seek(SeekFrom::Start(self.durable))?;
        self.len = self.durable;
        Ok(())
    }
}

/// Streams completed pairs into a manifest, flushing (and, for
/// file-backed writers, syncing) after every record so the file is
/// crash-safe at line granularity.
///
/// The I/O-error contract: `record` either lands the whole line durably
/// or rolls the sink back to the previous record and returns a typed
/// error — the file never holds torn bytes *between* valid records. If
/// the rollback itself fails, the writer poisons itself (every further
/// `record` errors) and the file ends in at most one torn *final* line,
/// which [`Manifest::load`] and [`CheckpointWriter::append`] recover
/// from.
#[derive(Debug)]
pub struct CheckpointWriter<W: RecordSink> {
    out: W,
    poisoned: bool,
}

impl CheckpointWriter<SyncFile> {
    /// Creates (truncating) a manifest file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures.
    pub fn create(path: &Path) -> Result<CheckpointWriter<SyncFile>, IoError> {
        Ok(CheckpointWriter::new(SyncFile { file: File::create(path)?, len: 0, durable: 0 }))
    }

    /// Opens `path` for appending (the resume case: completed pairs from
    /// the interrupted run stay valid, new ones are added after them).
    ///
    /// A torn final line left by the crash is truncated away first —
    /// otherwise the tear and the first appended record would merge into
    /// one corrupt *middle* line and poison the next load. (A corrupt
    /// line elsewhere in the file already failed the [`Manifest::load`]
    /// the resume flow does before appending.)
    ///
    /// # Errors
    ///
    /// Propagates file-open and truncation failures.
    pub fn append(path: &Path) -> Result<CheckpointWriter<SyncFile>, IoError> {
        let valid = match std::fs::read(path) {
            Ok(bytes) => valid_prefix_len(&bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => 0,
            Err(e) => return Err(IoError::Io(e)),
        };
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        file.set_len(valid as u64)?;
        Ok(CheckpointWriter::new(SyncFile { file, len: valid as u64, durable: valid as u64 }))
    }
}

impl<W: RecordSink> CheckpointWriter<W> {
    /// Wraps any sink (tests use a `Vec<u8>`).
    pub fn new(out: W) -> CheckpointWriter<W> {
        CheckpointWriter { out, poisoned: false }
    }

    /// Appends one completed pair, flushes, and (when file-backed) syncs
    /// to the device.
    ///
    /// # Errors
    ///
    /// Returns a typed [`IoError`] on any write or sync failure, after
    /// rolling the sink back to the previous record (see the type-level
    /// contract). A poisoned writer fails every call without touching
    /// the sink.
    pub fn record(&mut self, index: usize, alignment: &Alignment) -> Result<(), IoError> {
        if self.poisoned {
            return Err(IoError::Io(std::io::Error::other(
                "checkpoint writer poisoned by an earlier unrecoverable write failure",
            )));
        }
        let cigar = alignment.cigar.to_string();
        let body = payload(index, alignment.score, &cigar);
        let sum = fnv1a64(body.as_bytes());
        let line = format!("{body}\t{sum:016x}\n");
        let attempt = self.out.write_all(line.as_bytes()).and_then(|()| self.out.flush());
        match attempt {
            Ok(()) => {
                self.out.mark_durable();
                Ok(())
            }
            Err(e) => {
                if self.out.rollback().is_err() {
                    self.poisoned = true;
                }
                Err(IoError::Io(e))
            }
        }
    }
}

impl<W: RecordSink> Drop for CheckpointWriter<W> {
    fn drop(&mut self) {
        // Every successful `record` already flushed and every failed one
        // rolled back, so this only matters for a poisoned writer whose
        // sink may still hold torn bytes the OS has not synced. Errors
        // here have nowhere to go — the next load's checksums catch the
        // damage.
        if !self.poisoned {
            return;
        }
        let _ = self.out.flush();
    }
}

/// A loaded manifest: the completed pairs, and whether the final line
/// was torn by a crash.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Manifest {
    /// Completed pairs by batch index. A pair recorded twice (a resume
    /// appended over an older manifest) keeps the *last* record.
    pub completed: HashMap<usize, Alignment>,
    /// Whether a torn final line was discarded.
    pub torn_tail: bool,
    /// Byte offset where the torn final line starts — the truncation
    /// point a resume will cut back to. `None` when nothing was torn.
    /// Callers resuming over a tear should log this offset so the
    /// discarded record is visible in the run's record, not silent.
    pub torn_offset: Option<u64>,
}

impl Manifest {
    /// Parses a manifest from a reader.
    ///
    /// # Errors
    ///
    /// [`IoError::Parse`] with the 1-based line number for any malformed
    /// line that is not the final one; I/O errors pass through. A torn
    /// final line is tolerated and flagged in [`Manifest::torn_tail`].
    pub fn parse<R: Read>(reader: R) -> Result<Manifest, IoError> {
        let mut bytes = Vec::new();
        BufReader::new(reader).read_to_end(&mut bytes)?;
        // Line starts by byte offset, so a torn tail can be reported as
        // the exact truncation point a resume will cut back to.
        let mut starts: Vec<usize> = vec![0];
        starts.extend(bytes.iter().enumerate().filter(|&(_, &b)| b == b'\n').map(|(at, _)| at + 1));
        let mut manifest = Manifest::default();
        let last = starts.len();
        for (lineno, &start) in starts.iter().enumerate() {
            let rest = &bytes[start..];
            let end = rest.iter().position(|&b| b == b'\n').unwrap_or(rest.len());
            let line = std::str::from_utf8(&rest[..end])
                .map(|l| l.strip_suffix('\r').unwrap_or(l))
                .map_err(|_| "line is not valid UTF-8".to_string());
            match line {
                Ok("") => continue,
                Ok(line) => match parse_line(line) {
                    Ok((index, alignment)) => {
                        manifest.completed.insert(index, alignment);
                        continue;
                    }
                    Err(message) if lineno + 1 == last => {
                        // The crash tore the line being written;
                        // everything before it is intact, so resume from
                        // there — recording where the tear starts.
                        let _ = message;
                    }
                    Err(message) => {
                        return Err(IoError::Parse { line: lineno + 1, message });
                    }
                },
                Err(message) if lineno + 1 == last => {
                    let _ = message;
                }
                Err(message) => {
                    return Err(IoError::Parse { line: lineno + 1, message });
                }
            }
            manifest.torn_tail = true;
            manifest.torn_offset = Some(start as u64);
        }
        Ok(manifest)
    }

    /// Parses the manifest at `path`; a missing file is an empty
    /// manifest (a fresh run that has checkpointed nothing yet).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Manifest::parse`].
    pub fn load(path: &Path) -> Result<Manifest, IoError> {
        match File::open(path) {
            Ok(f) => Manifest::parse(f),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Manifest::default()),
            Err(e) => Err(IoError::Io(e)),
        }
    }
}

fn parse_line(line: &str) -> Result<(usize, Alignment), String> {
    let fields: Vec<&str> = line.split('\t').collect();
    let [index, score, cigar, sum] = fields.as_slice() else {
        return Err(format!("expected 4 tab-separated fields, got {}", fields.len()));
    };
    let expected = u64::from_str_radix(sum, 16).map_err(|_| "unparseable checksum".to_string())?;
    let body = payload_str(index, score, cigar);
    let actual = fnv1a64(body.as_bytes());
    if actual != expected {
        return Err(format!(
            "checksum mismatch: line says {expected:016x}, payload hashes to {actual:016x}"
        ));
    }
    let index: usize = index.parse().map_err(|_| format!("bad pair index {index:?}"))?;
    let score: i32 = score.parse().map_err(|_| format!("bad score {score:?}"))?;
    let cigar = Cigar::parse(cigar).map_err(|e| format!("bad cigar: {e}"))?;
    Ok((index, Alignment { score, cigar }))
}

fn payload_str(index: &str, score: &str, cigar: &str) -> String {
    format!("{index}\t{score}\t{cigar}")
}

/// Length of the longest prefix of `bytes` made of whole, valid manifest
/// lines — the safe point to truncate to before appending.
fn valid_prefix_len(bytes: &[u8]) -> usize {
    let mut end = 0;
    let mut start = 0;
    while let Some(nl) = bytes[start..].iter().position(|&b| b == b'\n') {
        let line = &bytes[start..start + nl];
        let ok = line.is_empty() || std::str::from_utf8(line).is_ok_and(|l| parse_line(l).is_ok());
        if !ok {
            break;
        }
        start += nl + 1;
        end = start;
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aln(score: i32, cigar: &str) -> Alignment {
        Alignment { score, cigar: Cigar::parse(cigar).unwrap() }
    }

    fn manifest_bytes(entries: &[(usize, Alignment)]) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = CheckpointWriter::new(&mut buf);
        for (i, a) in entries {
            w.record(*i, a).unwrap();
        }
        drop(w);
        buf
    }

    #[test]
    fn roundtrip() {
        let entries = vec![(0, aln(5, "5=")), (3, aln(-2, "2=1X1I1D")), (1, aln(0, "1=1X"))];
        let buf = manifest_bytes(&entries);
        let m = Manifest::parse(&buf[..]).unwrap();
        assert!(!m.torn_tail);
        assert_eq!(m.completed.len(), 3);
        for (i, a) in &entries {
            assert_eq!(&m.completed[i], a);
        }
    }

    #[test]
    fn torn_final_line_is_tolerated_at_any_truncation_point() {
        let entries = vec![(0, aln(5, "5=")), (1, aln(7, "3=2X")), (2, aln(1, "1="))];
        let buf = manifest_bytes(&entries);
        // The full file parses; then any strictly-truncated prefix must
        // also parse, keeping every intact line before the tear.
        for cut in 0..buf.len() {
            let m =
                Manifest::parse(&buf[..cut]).unwrap_or_else(|e| panic!("cut at byte {cut}: {e}"));
            // Number of complete lines before the cut.
            let whole = buf[..cut].iter().filter(|&&b| b == b'\n').count();
            assert!(m.completed.len() >= whole, "cut {cut}");
        }
    }

    #[test]
    fn corrupt_middle_line_is_a_hard_lined_error() {
        let entries = vec![(0, aln(5, "5=")), (1, aln(7, "3=2X")), (2, aln(1, "1="))];
        let mut buf = manifest_bytes(&entries);
        // Flip a digit inside the second line's score field.
        let line2_start = buf.iter().position(|&b| b == b'\n').unwrap() + 1;
        buf[line2_start] = b'9';
        let err = Manifest::parse(&buf[..]).unwrap_err();
        match err {
            IoError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("checksum mismatch"), "{message}");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn duplicate_index_keeps_last_record() {
        let buf = manifest_bytes(&[(4, aln(1, "1=")), (4, aln(9, "9="))]);
        let m = Manifest::parse(&buf[..]).unwrap();
        assert_eq!(m.completed[&4], aln(9, "9="));
    }

    #[test]
    fn append_after_torn_tail_yields_loadable_manifest() {
        let dir = std::env::temp_dir().join("smx-checkpoint-append");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("manifest.tsv");
        let full = manifest_bytes(&[(0, aln(5, "5=")), (1, aln(7, "3=2X"))]);
        // A crash tore the second line mid-way.
        std::fs::write(&path, &full[..full.len() - 4]).unwrap();
        let mut w = CheckpointWriter::append(&path).unwrap();
        w.record(1, &aln(7, "3=2X")).unwrap();
        w.record(2, &aln(1, "1=")).unwrap();
        drop(w);
        let m = Manifest::load(&path).unwrap();
        assert!(!m.torn_tail, "the tear must have been truncated away");
        assert_eq!(m.completed.len(), 3);
        assert_eq!(m.completed[&1], aln(7, "3=2X"));
    }

    /// The file-backed version of the cut-at-every-byte property: bytes
    /// produced through the `create` → `record` → sync → drop path must
    /// tolerate a tear at *any* byte offset, and appending over each
    /// tear must truncate it away and yield a clean, loadable manifest.
    #[test]
    fn synced_file_writer_survives_cut_at_every_byte() {
        let dir = std::env::temp_dir().join("smx-checkpoint-cut");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("manifest.tsv");
        let entries = vec![(0, aln(5, "5=")), (1, aln(7, "3=2X")), (2, aln(1, "1="))];
        {
            let mut w = CheckpointWriter::create(&path).unwrap();
            for (i, a) in &entries {
                w.record(*i, a).unwrap();
            }
        } // flush-on-drop
        let buf = std::fs::read(&path).unwrap();
        assert_eq!(Manifest::parse(&buf[..]).unwrap().completed.len(), entries.len());

        let torn = dir.join("torn.tsv");
        for cut in 0..buf.len() {
            std::fs::write(&torn, &buf[..cut]).unwrap();
            // Loading the torn file keeps every intact line.
            let m = Manifest::load(&torn).unwrap_or_else(|e| panic!("cut at byte {cut}: {e}"));
            let whole = buf[..cut].iter().filter(|&&b| b == b'\n').count();
            assert!(m.completed.len() >= whole, "cut {cut}");
            // Appending over the tear truncates it and stays loadable.
            let mut w = CheckpointWriter::append(&torn).unwrap();
            w.record(9, &aln(4, "4=")).unwrap();
            drop(w);
            let m = Manifest::load(&torn).unwrap_or_else(|e| panic!("append at {cut}: {e}"));
            assert!(!m.torn_tail, "cut {cut}: the tear must be gone after append");
            assert_eq!(m.completed[&9], aln(4, "4="), "cut {cut}");
            assert!(m.completed.len() > whole, "cut {cut}");
        }
    }

    /// A torn tail is reported with the byte offset where the torn
    /// record starts — exactly the offset `append` truncates back to —
    /// so resume flows can log what was discarded instead of silently
    /// dropping it.
    #[test]
    fn torn_tail_reports_its_byte_offset() {
        let entries = vec![(0, aln(5, "5=")), (1, aln(7, "3=2X"))];
        let buf = manifest_bytes(&entries);
        let line2_start = buf.iter().position(|&b| b == b'\n').unwrap() as u64 + 1;
        // Cut anywhere strictly inside the second record: the tear's
        // reported offset is always the start of that record.
        for cut in (line2_start as usize + 1)..buf.len() - 1 {
            let m = Manifest::parse(&buf[..cut]).unwrap();
            assert!(m.torn_tail, "cut {cut}");
            assert_eq!(m.torn_offset, Some(line2_start), "cut {cut}");
            assert_eq!(m.completed.len(), 1, "cut {cut}");
        }
        // An intact manifest reports no tear and no offset.
        let m = Manifest::parse(&buf[..]).unwrap();
        assert!(!m.torn_tail);
        assert_eq!(m.torn_offset, None);
        // The offset is the point `append` truncates to.
        let dir = std::env::temp_dir().join("smx-checkpoint-offset");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("manifest.tsv");
        std::fs::write(&path, &buf[..buf.len() - 3]).unwrap();
        let m = Manifest::load(&path).unwrap();
        assert_eq!(m.torn_offset, Some(line2_start));
        drop(CheckpointWriter::append(&path).unwrap());
        assert_eq!(std::fs::metadata(&path).unwrap().len(), line2_start);
    }

    #[test]
    fn missing_file_is_empty_manifest() {
        let m = Manifest::load(Path::new("/nonexistent/smx-checkpoint-test")).unwrap();
        assert!(m.completed.is_empty());
    }

    #[test]
    fn malformed_field_counts_are_reported() {
        let err = Manifest::parse(&b"0\t1\n1\t1\t1=\tdeadbeef\n"[..]).unwrap_err();
        match err {
            IoError::Parse { line, message } => {
                assert_eq!(line, 1);
                assert!(message.contains("4 tab-separated fields"), "{message}");
            }
            other => panic!("unexpected error {other}"),
        }
    }
}
