//! FASTQ parsing (the format sequencers actually emit). Quality strings
//! are validated for length but otherwise ignored — alignment consumes
//! only the bases.

use crate::fasta::Record;
use crate::IoError;
use smx_align_core::{Alphabet, Sequence};
use std::io::{BufRead, BufReader, Read};

/// One FASTQ record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastqRecord {
    /// Identifier (the `@` header up to the first whitespace).
    pub id: String,
    /// Sequence bases.
    pub sequence: String,
    /// Per-base quality string (same length as `sequence`).
    pub quality: String,
}

impl FastqRecord {
    /// Drops the quality, yielding a FASTA record.
    #[must_use]
    pub fn into_fasta(self) -> Record {
        Record::new(&self.id, &self.sequence)
    }

    /// Mean Phred quality (offset 33).
    #[must_use]
    pub fn mean_quality(&self) -> f64 {
        if self.quality.is_empty() {
            return 0.0;
        }
        let total: u64 = self.quality.bytes().map(|b| u64::from(b.saturating_sub(33))).sum();
        total as f64 / self.quality.len() as f64
    }
}

/// Parses all records from a FASTQ reader.
///
/// Supports the plain four-line form (`@id`, bases, `+`, qualities);
/// multi-line sequences are rejected for the usual ambiguity reasons.
///
/// # Errors
///
/// Returns [`IoError::Parse`] with a line number on structural problems
/// (missing `@`/`+` markers, quality-length mismatch, truncated record).
pub fn parse<R: Read>(reader: R) -> Result<Vec<FastqRecord>, IoError> {
    let buf = BufReader::new(reader);
    let mut lines = buf.lines().enumerate();
    let mut records = Vec::new();
    while let Some((lineno, line)) = lines.next() {
        let header = crate::decode_line(lineno, line)?;
        if header.trim().is_empty() {
            continue;
        }
        let Some(h) = header.strip_prefix('@') else {
            return Err(IoError::Parse {
                line: lineno + 1,
                message: format!("expected '@' header, found {header:?}"),
            });
        };
        let id = h.split_whitespace().next().unwrap_or("").to_string();
        if id.is_empty() {
            return Err(IoError::Parse { line: lineno + 1, message: "empty record id".into() });
        }
        let mut next_line = |what: &str| -> Result<(usize, String), IoError> {
            match lines.next() {
                Some((n, l)) => Ok((n, crate::decode_line(n, l)?)),
                None => Err(IoError::Parse {
                    line: lineno + 1,
                    message: format!("truncated record {id:?}: missing {what}"),
                }),
            }
        };
        let (seq_no, sequence) = next_line("sequence line")?;
        let (plus_no, plus) = next_line("'+' separator")?;
        if !plus.starts_with('+') {
            return Err(IoError::Parse {
                line: plus_no + 1,
                message: format!("expected '+' separator, found {plus:?}"),
            });
        }
        let (qual_no, quality) = next_line("quality line")?;
        let sequence = sequence.trim().to_string();
        let quality = quality.trim().to_string();
        if let Some(bad) = sequence.bytes().find(|b| !b.is_ascii_graphic()) {
            return Err(IoError::Parse {
                line: seq_no + 1,
                message: format!("sequence contains non-printable or whitespace byte 0x{bad:02x}"),
            });
        }
        if let Some(bad) = quality.bytes().find(|b| !b.is_ascii_graphic()) {
            return Err(IoError::Parse {
                line: qual_no + 1,
                message: format!("quality contains non-printable or whitespace byte 0x{bad:02x}"),
            });
        }
        if sequence.len() != quality.len() {
            return Err(IoError::Parse {
                line: qual_no + 1,
                message: format!(
                    "quality length {} does not match sequence length {}",
                    quality.len(),
                    sequence.len()
                ),
            });
        }
        records.push(FastqRecord { id, sequence, quality });
    }
    Ok(records)
}

/// Parses a FASTQ file and decodes every record under `alphabet`.
///
/// # Errors
///
/// Propagates parse and I/O errors; returns [`IoError::Alphabet`] when a
/// record's bases fall outside `alphabet`.
pub fn parse_typed<R: Read>(
    reader: R,
    alphabet: Alphabet,
) -> Result<Vec<(FastqRecord, Sequence)>, IoError> {
    parse(reader)?
        .into_iter()
        .map(|r| {
            let s = Sequence::from_text(alphabet, &r.sequence)
                .map_err(|source| IoError::Alphabet { id: r.id.clone(), source })?;
            Ok((r, s))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "@read1 desc\nACGT\n+\nIIII\n@read2\nTTAA\n+read2\n!!!!\n";

    #[test]
    fn parse_two_records() {
        let recs = parse(SAMPLE.as_bytes()).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].id, "read1");
        assert_eq!(recs[0].sequence, "ACGT");
        assert!((recs[0].mean_quality() - 40.0).abs() < 1e-9);
        assert!((recs[1].mean_quality() - 0.0).abs() < 1e-9);
    }

    #[test]
    fn into_fasta_drops_quality() {
        let recs = parse(SAMPLE.as_bytes()).unwrap();
        let fa = recs[0].clone().into_fasta();
        assert_eq!(fa.id, "read1");
        assert_eq!(fa.sequence, "ACGT");
    }

    #[test]
    fn quality_length_mismatch_rejected() {
        let bad = "@x\nACGT\n+\nII\n";
        let err = parse(bad.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("quality length"));
    }

    #[test]
    fn missing_plus_rejected() {
        let bad = "@x\nACGT\nIIII\n";
        assert!(parse(bad.as_bytes()).is_err());
    }

    #[test]
    fn truncated_record_rejected() {
        let bad = "@x\nACGT\n+\n";
        assert!(parse(bad.as_bytes()).is_err());
    }

    #[test]
    fn fasta_header_rejected() {
        assert!(parse(">x\nACGT\n".as_bytes()).is_err());
    }

    #[test]
    fn empty_input_ok() {
        assert!(parse("".as_bytes()).unwrap().is_empty());
    }

    #[test]
    fn non_utf8_reported_with_line_number() {
        let bad: &[u8] = b"@x\nAC\xff\xfeGT\n+\nIIII\n";
        let err = parse(bad).unwrap_err();
        assert!(
            matches!(err, IoError::Parse { line: 2, .. }),
            "expected line-2 parse error, got {err}"
        );
    }

    #[test]
    fn embedded_whitespace_in_sequence_rejected() {
        let bad = "@x\nAC\tGT\n+\nIIIII\n";
        let err = parse(bad.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("non-printable"), "{err}");
    }

    #[test]
    fn control_bytes_in_quality_rejected() {
        let bad = "@x\nACGT\n+\nII\u{1}I\n";
        assert!(parse(bad.as_bytes()).is_err());
    }

    #[test]
    fn typed_loading_validates_alphabet() {
        let ok = parse_typed("@a\nACGT\n+\nIIII\n".as_bytes(), Alphabet::Dna2).unwrap();
        assert_eq!(ok[0].1.codes(), &[0, 1, 2, 3]);
        let err = parse_typed("@a\nACGX\n+\nIIII\n".as_bytes(), Alphabet::Dna2).unwrap_err();
        assert!(matches!(err, IoError::Alphabet { .. }));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]
        #[test]
        fn parser_never_panics(input in proptest::string::string_regex("[ -~\\n]{0,200}").unwrap()) {
            let _ = parse(input.as_bytes());
        }

        #[test]
        fn parser_never_panics_on_bytes(input in proptest::collection::vec(0u8..=255, 0..200)) {
            let _ = parse(input.as_slice());
        }
    }
}
