//! # smx-io
//!
//! FASTA and pair-file I/O for the SMX toolchain: a tolerant FASTA
//! parser/writer and helpers for loading records into typed
//! [`Sequence`](smx_align_core::Sequence)s and pairing them for
//! alignment.
//!
//! ## Example
//!
//! ```
//! use smx_io::fasta;
//!
//! let input = ">read1 a comment\nACGT\nACGT\n>read2\nTTTT\n";
//! let records = fasta::parse(input.as_bytes())?;
//! assert_eq!(records.len(), 2);
//! assert_eq!(records[0].id, "read1");
//! assert_eq!(records[0].sequence, "ACGTACGT");
//! # Ok::<(), smx_io::IoError>(())
//! ```

pub mod checkpoint;
pub mod fasta;
pub mod fastq;
pub mod matrix;
pub mod pairs;

pub use fasta::Record;

use std::error::Error;
use std::fmt;

/// Errors from parsing or typed loading.
#[derive(Debug)]
#[non_exhaustive]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed FASTA/FASTQ/matrix content.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A sequence failed alphabet validation.
    Alphabet {
        /// Record id.
        id: String,
        /// The underlying alignment error.
        source: smx_align_core::AlignError,
    },
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o failure: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            IoError::Alphabet { id, source } => {
                write!(f, "record {id:?} failed alphabet validation: {source}")
            }
        }
    }
}

impl Error for IoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Alphabet { source, .. } => Some(source),
            IoError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> IoError {
        IoError::Io(e)
    }
}

/// Decodes one line from a `lines()` iterator, turning the opaque
/// invalid-UTF-8 [`std::io::Error`] into a line-numbered parse error so
/// binary garbage fed to a text parser is reported like any other
/// malformed input.
pub(crate) fn decode_line(lineno: usize, line: std::io::Result<String>) -> Result<String, IoError> {
    line.map_err(|e| {
        if e.kind() == std::io::ErrorKind::InvalidData {
            IoError::Parse { line: lineno + 1, message: "input is not valid UTF-8".into() }
        } else {
            IoError::Io(e)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let e = IoError::Parse { line: 3, message: "sequence before header".into() };
        assert!(e.to_string().contains("line 3"));
    }
}
