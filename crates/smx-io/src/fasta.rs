//! Tolerant FASTA parsing and writing.

use crate::IoError;
use smx_align_core::{Alphabet, Sequence};
use std::io::{BufRead, BufReader, Read, Write};

/// One FASTA record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Identifier: the header up to the first whitespace.
    pub id: String,
    /// The rest of the header line (may be empty).
    pub description: String,
    /// Concatenated sequence lines (whitespace stripped).
    pub sequence: String,
}

impl Record {
    /// Builds a record, normalizing the sequence (strips whitespace).
    #[must_use]
    pub fn new(id: &str, sequence: &str) -> Record {
        Record {
            id: id.to_string(),
            description: String::new(),
            sequence: sequence.split_whitespace().collect(),
        }
    }

    /// Decodes into a typed sequence under `alphabet`.
    ///
    /// # Errors
    ///
    /// Returns [`IoError::Alphabet`] when a symbol is invalid.
    pub fn to_sequence(&self, alphabet: Alphabet) -> Result<Sequence, IoError> {
        Sequence::from_text(alphabet, &self.sequence)
            .map_err(|source| IoError::Alphabet { id: self.id.clone(), source })
    }
}

/// Parses all records from a reader.
///
/// Accepts multi-line sequences, blank lines, and `;` comment lines;
/// rejects sequence data before the first header.
///
/// # Errors
///
/// Returns [`IoError::Parse`] with a line number on malformed input and
/// [`IoError::Io`] on read failures.
pub fn parse<R: Read>(reader: R) -> Result<Vec<Record>, IoError> {
    let buf = BufReader::new(reader);
    let mut records: Vec<Record> = Vec::new();
    let mut current: Option<Record> = None;
    for (lineno, line) in buf.lines().enumerate() {
        let line = crate::decode_line(lineno, line)?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with(';') {
            continue;
        }
        if let Some(header) = trimmed.strip_prefix('>') {
            if let Some(done) = current.take() {
                records.push(done);
            }
            let mut parts = header.splitn(2, char::is_whitespace);
            let id = parts.next().unwrap_or("").to_string();
            if id.is_empty() {
                return Err(IoError::Parse {
                    line: lineno + 1,
                    message: "empty record identifier".into(),
                });
            }
            current = Some(Record {
                id,
                description: parts.next().unwrap_or("").trim().to_string(),
                sequence: String::new(),
            });
        } else {
            match current.as_mut() {
                Some(rec) => rec.sequence.extend(trimmed.split_whitespace().flat_map(str::chars)),
                None => {
                    return Err(IoError::Parse {
                        line: lineno + 1,
                        message: "sequence data before the first header".into(),
                    })
                }
            }
        }
    }
    if let Some(done) = current.take() {
        records.push(done);
    }
    Ok(records)
}

/// Writes records in FASTA format, wrapping sequences at 70 columns.
///
/// # Errors
///
/// Returns [`IoError::Io`] on write failures.
pub fn write<W: Write>(mut writer: W, records: &[Record]) -> Result<(), IoError> {
    for r in records {
        if r.description.is_empty() {
            writeln!(writer, ">{}", r.id)?;
        } else {
            writeln!(writer, ">{} {}", r.id, r.description)?;
        }
        for chunk in r.sequence.as_bytes().chunks(70) {
            writer.write_all(chunk)?;
            writeln!(writer)?;
        }
    }
    Ok(())
}

/// Parses a FASTA file and decodes every record under `alphabet`.
///
/// # Errors
///
/// Propagates parse, I/O, and alphabet errors.
pub fn parse_typed<R: Read>(
    reader: R,
    alphabet: Alphabet,
) -> Result<Vec<(Record, Sequence)>, IoError> {
    parse(reader)?
        .into_iter()
        .map(|r| {
            let s = r.to_sequence(alphabet)?;
            Ok((r, s))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_multi_line() {
        let input = ">a desc here\nACGT\nacgt\n\n>b\nTT TT\n";
        let recs = parse(input.as_bytes()).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].id, "a");
        assert_eq!(recs[0].description, "desc here");
        assert_eq!(recs[0].sequence, "ACGTacgt");
        assert_eq!(recs[1].sequence, "TTTT");
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let input = "; a comment\n>x\nAC\n;mid comment\nGT\n";
        let recs = parse(input.as_bytes()).unwrap();
        assert_eq!(recs[0].sequence, "ACGT");
    }

    #[test]
    fn sequence_before_header_rejected() {
        let err = parse("ACGT\n".as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 1, .. }));
    }

    #[test]
    fn empty_id_rejected() {
        assert!(parse("> \nACGT\n".as_bytes()).is_err());
    }

    #[test]
    fn roundtrip_with_wrapping() {
        let recs = vec![
            Record { id: "long".into(), description: "d".into(), sequence: "A".repeat(150) },
            Record::new("short", "ACGT"),
        ];
        let mut out = Vec::new();
        write(&mut out, &recs).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.lines().all(|l| l.len() <= 71));
        let back = parse(text.as_bytes()).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn typed_loading_validates() {
        let ok = parse_typed(">a\nACGT\n".as_bytes(), Alphabet::Dna2).unwrap();
        assert_eq!(ok[0].1.codes(), &[0, 1, 2, 3]);
        let err = parse_typed(">a\nACGX\n".as_bytes(), Alphabet::Dna2).unwrap_err();
        assert!(matches!(err, IoError::Alphabet { .. }));
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(parse("".as_bytes()).unwrap().is_empty());
    }

    #[test]
    fn non_utf8_reported_with_line_number() {
        let bad: &[u8] = b">a\nAC\xff\xfeGT\n";
        let err = parse(bad).unwrap_err();
        assert!(
            matches!(err, IoError::Parse { line: 2, .. }),
            "expected line-2 parse error, got {err}"
        );
    }

    #[test]
    fn truncated_header_only_file_is_tolerated() {
        let recs = parse(">only-a-header\n".as_bytes()).unwrap();
        assert_eq!(recs.len(), 1);
        assert!(recs[0].sequence.is_empty());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]
        #[test]
        fn parser_never_panics(input in proptest::string::string_regex("[ -~\\n]{0,200}").unwrap()) {
            let _ = parse(input.as_bytes());
        }

        #[test]
        fn valid_roundtrip(ids in proptest::collection::vec("[a-z]{1,8}", 1..4),
                           seqs in proptest::collection::vec("[ACGT]{1,120}", 1..4)) {
            let recs: Vec<Record> = ids
                .iter()
                .zip(&seqs)
                .map(|(i, s)| Record::new(i, s))
                .collect();
            let mut out = Vec::new();
            write(&mut out, &recs).unwrap();
            let back = parse(out.as_slice()).unwrap();
            proptest::prop_assert_eq!(back, recs);
        }
    }
}
