//! NCBI-format substitution-matrix files (the format BLAST ships BLOSUM
//! and PAM matrices in): a header row of residue letters, then one row
//! per residue with integer scores. `#` lines are comments.

use crate::IoError;
use smx_align_core::SubstMatrix;
use std::io::{BufRead, BufReader, Read, Write};

/// Parses an NCBI-format matrix into a 26×26 [`SubstMatrix`].
///
/// Letters absent from the file keep a neutral `-1` score (matching the
/// convention of the built-in matrices); the `*` stop column is ignored.
///
/// # Errors
///
/// Returns [`IoError::Parse`] with a line number on malformed content
/// (unknown residues, wrong column counts, asymmetry).
pub fn parse<R: Read>(reader: R) -> Result<SubstMatrix, IoError> {
    let buf = BufReader::new(reader);
    let mut columns: Vec<Option<usize>> = Vec::new(); // alphabet code per column
    let mut scores = [[-1i8; 26]; 26];
    let mut seen_rows = 0usize;
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let parse_residue = |tok: &str| -> Result<Option<usize>, IoError> {
            let c = tok.chars().next().unwrap_or(' ');
            if tok.len() == 1 && c.is_ascii_uppercase() {
                Ok(Some((c as u8 - b'A') as usize))
            } else if tok == "*" {
                Ok(None)
            } else {
                Err(IoError::Parse {
                    line: lineno + 1,
                    message: format!("unknown residue {tok:?}"),
                })
            }
        };
        if columns.is_empty() {
            // Header row.
            for tok in t.split_whitespace() {
                columns.push(parse_residue(tok)?);
            }
            if columns.is_empty() {
                return Err(IoError::Parse { line: lineno + 1, message: "empty header".into() });
            }
            continue;
        }
        let mut toks = t.split_whitespace();
        let row_tok = toks.next().expect("non-empty line");
        let Some(row) = parse_residue(row_tok)? else {
            continue; // the '*' row
        };
        let values: Vec<&str> = toks.collect();
        if values.len() != columns.len() {
            return Err(IoError::Parse {
                line: lineno + 1,
                message: format!(
                    "row {row_tok} has {} scores, header has {} columns",
                    values.len(),
                    columns.len()
                ),
            });
        }
        for (col, v) in columns.iter().zip(values) {
            let Some(col) = col else { continue };
            let score: i8 = v.parse().map_err(|_| IoError::Parse {
                line: lineno + 1,
                message: format!("invalid score {v:?}"),
            })?;
            scores[row][*col] = score;
        }
        seen_rows += 1;
    }
    if seen_rows == 0 {
        return Err(IoError::Parse { line: 0, message: "no matrix rows found".into() });
    }
    SubstMatrix::from_scores("custom", scores)
        .map_err(|e| IoError::Parse { line: 0, message: e.to_string() })
}

/// Writes a matrix in NCBI format over the 20 canonical residues plus the
/// ambiguity codes the built-in matrices define.
///
/// # Errors
///
/// Returns [`IoError::Io`] on write failures.
pub fn write<W: Write>(mut writer: W, matrix: &SubstMatrix) -> Result<(), IoError> {
    const ORDER: &[u8] = b"ARNDCQEGHILKMFPSTWYVBZX";
    writeln!(writer, "# {} (written by smx-io)", matrix.name())?;
    write!(writer, " ")?;
    for &c in ORDER {
        write!(writer, " {:>3}", c as char)?;
    }
    writeln!(writer)?;
    for &r in ORDER {
        write!(writer, "{}", r as char)?;
        for &c in ORDER {
            write!(writer, " {:>3}", matrix.score(r - b'A', c - b'A'))?;
        }
        writeln!(writer)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = "\
# tiny test matrix
   A  R  N  *
A  4 -1 -2 -4
R -1  5  0 -4
N -2  0  6 -4
* -4 -4 -4  1
";

    #[test]
    fn parse_small_matrix() {
        let m = parse(SMALL.as_bytes()).unwrap();
        assert_eq!(m.score(0, 0), 4); // A-A
        assert_eq!(m.score(0, 17), -1); // A-R
        assert_eq!(m.score(13, 13), 6); // N-N
                                        // Unlisted letters keep the neutral default.
        assert_eq!(m.score(22, 22), -1); // W-W
    }

    #[test]
    fn roundtrip_blosum62() {
        let b62 = SubstMatrix::blosum62();
        let mut out = Vec::new();
        write(&mut out, &b62).unwrap();
        let back = parse(out.as_slice()).unwrap();
        // All canonical residues survive the roundtrip.
        for a in 0..26u8 {
            for b in 0..26u8 {
                let orig = b62.score(a, b);
                let is_written = |c: u8| b"ARNDCQEGHILKMFPSTWYVBZX".contains(&(b'A' + c));
                if is_written(a) && is_written(b) {
                    assert_eq!(back.score(a, b), orig, "{a} {b}");
                }
            }
        }
    }

    #[test]
    fn asymmetric_rejected() {
        let bad = "   A  R\nA  4 -1\nR -2  5\n";
        assert!(parse(bad.as_bytes()).is_err());
    }

    #[test]
    fn wrong_column_count_rejected() {
        let bad = "   A  R\nA  4\n";
        let err = parse(bad.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn lowercase_residue_rejected() {
        let bad = "   a  R\nA 4 -1\n";
        assert!(parse(bad.as_bytes()).is_err());
    }

    #[test]
    fn empty_rejected() {
        assert!(parse("# only comments\n".as_bytes()).is_err());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]
        #[test]
        fn parser_never_panics(input in proptest::string::string_regex("[ -~\\n]{0,200}").unwrap()) {
            let _ = parse(input.as_bytes());
        }
    }

    #[test]
    fn parsed_matrix_usable_in_scheme() {
        let m = parse(SMALL.as_bytes()).unwrap();
        let scheme = smx_align_core::ScoringScheme::matrix(m, -5).unwrap();
        assert_eq!(scheme.score(0, 0), 4);
    }
}
