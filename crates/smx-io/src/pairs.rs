//! Pairing FASTA records into alignment tasks.

use crate::fasta::Record;
use crate::IoError;
use smx_align_core::{Alphabet, Sequence};

/// A named alignment pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamedPair {
    /// Query record id.
    pub query_id: String,
    /// Reference record id.
    pub reference_id: String,
    /// Decoded query.
    pub query: Sequence,
    /// Decoded reference.
    pub reference: Sequence,
}

/// Pairs records positionally: one query file record against the
/// reference file record at the same index (extra records in the longer
/// file are ignored).
///
/// # Errors
///
/// Returns [`IoError::Alphabet`] if any sequence fails validation.
pub fn pair_positional(
    queries: &[Record],
    references: &[Record],
    alphabet: Alphabet,
) -> Result<Vec<NamedPair>, IoError> {
    queries
        .iter()
        .zip(references)
        .map(|(q, r)| {
            Ok(NamedPair {
                query_id: q.id.clone(),
                reference_id: r.id.clone(),
                query: q.to_sequence(alphabet)?,
                reference: r.to_sequence(alphabet)?,
            })
        })
        .collect()
}

/// Pairs consecutive records of a single file: `(0,1), (2,3), …` — the
/// layout `smx-cli datagen` emits.
///
/// # Errors
///
/// Returns [`IoError::Parse`] if the record count is odd and
/// [`IoError::Alphabet`] on validation failures.
pub fn pair_interleaved(records: &[Record], alphabet: Alphabet) -> Result<Vec<NamedPair>, IoError> {
    if !records.len().is_multiple_of(2) {
        return Err(IoError::Parse {
            line: 0,
            message: format!(
                "interleaved pairing needs an even record count, got {}",
                records.len()
            ),
        });
    }
    records
        .chunks(2)
        .map(|pair| {
            let (q, r) = (&pair[0], &pair[1]);
            Ok(NamedPair {
                query_id: q.id.clone(),
                reference_id: r.id.clone(),
                query: q.to_sequence(alphabet)?,
                reference: r.to_sequence(alphabet)?,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: &str, seq: &str) -> Record {
        Record::new(id, seq)
    }

    #[test]
    fn positional_pairs() {
        let qs = vec![rec("q1", "ACGT"), rec("q2", "TTTT")];
        let rs = vec![rec("r1", "ACGA"), rec("r2", "TTAT"), rec("extra", "A")];
        let pairs = pair_positional(&qs, &rs, Alphabet::Dna2).unwrap();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].query_id, "q1");
        assert_eq!(pairs[0].reference_id, "r1");
    }

    #[test]
    fn interleaved_pairs() {
        let recs = vec![rec("a", "AC"), rec("b", "AG"), rec("c", "TT"), rec("d", "TA")];
        let pairs = pair_interleaved(&recs, Alphabet::Dna2).unwrap();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[1].query_id, "c");
    }

    #[test]
    fn odd_count_rejected() {
        let recs = vec![rec("a", "AC")];
        assert!(pair_interleaved(&recs, Alphabet::Dna2).is_err());
    }

    #[test]
    fn bad_symbols_surface_record_id() {
        let qs = vec![rec("bad", "ACGX")];
        let rs = vec![rec("r", "ACGT")];
        let err = pair_positional(&qs, &rs, Alphabet::Dna2).unwrap_err();
        assert!(err.to_string().contains("bad"));
    }
}
