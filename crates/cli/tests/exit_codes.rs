//! End-to-end exit-code contract for `--strict` batches: shed, deadline,
//! and integrity failures each get a distinct process exit code so
//! pipelines can branch without parsing stderr, and a torn checkpoint
//! tail is reported with its byte offset on resume.

use std::fs;
use std::path::Path;
use std::process::{Command, Output};

fn smx_cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_smx-cli"))
}

fn run(args: &[&str]) -> Output {
    smx_cli().args(args).output().expect("spawn smx-cli")
}

/// Deterministic DNA records, interleaved-pair style: one query file and
/// one reference file with `count` records of `len` bases each.
fn write_pairs(dir: &Path, count: usize, len: usize) -> (String, String) {
    let mut state: u64 = 0x243f_6a88_85a3_08d3;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let mut q = String::new();
    let mut r = String::new();
    const BASES: [char; 4] = ['A', 'C', 'G', 'T'];
    for i in 0..count {
        let seq: String = (0..len).map(|_| BASES[next() % 4]).collect();
        // The reference is the query with a couple of point edits, so the
        // alignment is non-trivial but still cheap to verify.
        let mut rseq: Vec<char> = seq.chars().collect();
        rseq[len / 3] = BASES[(next() + 1) % 4];
        rseq[2 * len / 3] = BASES[(next() + 2) % 4];
        q.push_str(&format!(">q{i}\n{seq}\n"));
        r.push_str(&format!(">r{i}\n{}\n", rseq.into_iter().collect::<String>()));
    }
    let qp = dir.join("q.fa");
    let rp = dir.join("r.fa");
    fs::write(&qp, q).unwrap();
    fs::write(&rp, r).unwrap();
    (qp.to_string_lossy().into_owned(), rp.to_string_lossy().into_owned())
}

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("smx-exit-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn strict_shed_exits_with_code_3() {
    let dir = tempdir("shed");
    // Two workers, queue of one, big pairs: the submitter outruns the
    // workers and the shed admission policy drops the overflow.
    let (q, r) = write_pairs(&dir, 16, 2000);
    let out = run(&["align", "--strict", "--shed", "--jobs", "2", "--queue-cap", "1", &q, &r]);
    assert_eq!(out.status.code(), Some(3), "stderr: {}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn strict_deadline_exits_with_code_4() {
    let dir = tempdir("deadline");
    // Every pair needs far more than 1 ms of matrix work, so each one
    // trips the deadline at a tile boundary.
    let (q, r) = write_pairs(&dir, 4, 2000);
    let out = run(&["align", "--strict", "--jobs", "2", "--deadline-ms", "1", &q, &r]);
    assert_eq!(out.status.code(), Some(4), "stderr: {}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn strict_integrity_violation_exits_with_code_5() {
    let dir = tempdir("integrity");
    // Every device result is silently corrupt and every pair is audited;
    // --no-degrade fails the audit closed instead of recomputing.
    let (q, r) = write_pairs(&dir, 4, 200);
    let out = run(&[
        "align",
        "--strict",
        "--no-degrade",
        "--jobs",
        "2",
        "--silent-rate",
        "1.0",
        "--audit-rate",
        "1.0",
        "--fault-seed",
        "7",
        &q,
        &r,
    ]);
    assert_eq!(out.status.code(), Some(5), "stderr: {}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn generic_errors_exit_with_code_2() {
    let out = run(&["align", "--config", "no-such-config", "a.fa", "b.fa"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn resume_reports_torn_tail_byte_offset() {
    let dir = tempdir("torn");
    let (q, r) = write_pairs(&dir, 4, 120);
    let manifest = dir.join("ckpt.tsv");
    let manifest_s = manifest.to_string_lossy().into_owned();

    let out = run(&["align", "--jobs", "2", "--checkpoint", &manifest_s, &q, &r]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));

    // Simulate a crash mid-write: a final line with no newline.
    let clean_len = fs::metadata(&manifest).unwrap().len();
    let mut torn = fs::read(&manifest).unwrap();
    torn.extend_from_slice(b"99\t17\t12");
    fs::write(&manifest, torn).unwrap();

    let out = run(&[
        "align",
        "--jobs",
        "2",
        "--resume",
        &manifest_s,
        "--checkpoint",
        &manifest_s,
        &q,
        &r,
    ]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains(&format!("byte offset {clean_len}")),
        "expected torn-tail warning with byte offset {clean_len}, got: {stderr}"
    );
}
