//! Lifecycle tests for `smx-cli serve`: crash consistency under kill -9
//! (acked pairs survive a restart byte-identically), graceful drain on
//! SIGTERM, and the forced-exit escape hatch on a second signal.

#![cfg(unix)]

use std::collections::HashMap;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use smx::server::proto::{Request, Response};
use smx::server::tenant::Priority;
use smx::Client;

extern "C" {
    fn kill(pid: i32, sig: i32) -> i32;
}

const SIGTERM: i32 = 15;

struct ServeProc {
    child: Child,
    addr: std::net::SocketAddr,
}

/// Spawns `smx-cli serve` on an ephemeral port and parses the bound
/// address off its first stdout line.
fn spawn_serve(extra: &[&str]) -> ServeProc {
    let mut child = Command::new(env!("CARGO_BIN_EXE_smx-cli"))
        .arg("serve")
        .args(["--port", "0", "--config", "dna-edit", "--jobs", "2"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn smx-cli serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("read listen line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .parse()
        .expect("parse bound address");
    ServeProc { child, addr }
}

fn connect(proc_: &ServeProc, session: &str) -> (Client, u64) {
    let mut client = Client::connect(proc_.addr).expect("connect");
    client.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    client
        .send(&Request::Hello {
            session: session.to_string(),
            tenant: "itest".to_string(),
            priority: Priority::Normal,
            deadline_ms: 0,
        })
        .expect("send hello");
    match client.recv().expect("recv hello reply") {
        Some(Response::Ok { resumed, .. }) => (client, resumed),
        other => panic!("expected OK, got {other:?}"),
    }
}

fn pair(id: usize) -> Request {
    // Distinct per-id sequences so a cross-wired replay would be caught
    // by the score/cigar comparison.
    let query = "ACGTACGTACGTACGT".repeat(1 + id % 3);
    let mut reference = query.clone();
    reference.insert(3, 'T');
    Request::Pair { id, query, reference }
}

#[test]
fn kill_dash_nine_then_resume_replays_every_acked_pair_byte_identically() {
    let dir = std::env::temp_dir().join(format!("smx-serve-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let dir_s = dir.to_string_lossy().into_owned();

    let mut proc_ = spawn_serve(&["--checkpoint-dir", &dir_s]);
    let (mut client, resumed) = connect(&proc_, "crashy");
    assert_eq!(resumed, 0, "fresh session must have nothing to resume");

    const PAIRS: usize = 6;
    const ACKS_BEFORE_KILL: usize = 3;
    for id in 0..PAIRS {
        client.send(&pair(id)).unwrap();
    }
    let mut acked: HashMap<usize, (i32, String)> = HashMap::new();
    while acked.len() < ACKS_BEFORE_KILL {
        match client.recv().expect("recv result") {
            Some(Response::Result { id, score, cigar, .. }) => {
                acked.insert(id, (score, cigar));
            }
            Some(Response::Reject { .. }) => {}
            other => panic!("expected RESULT, got {other:?}"),
        }
    }

    // SIGKILL mid-stream: no drain, no flush beyond what fsync already
    // made durable.
    proc_.child.kill().unwrap();
    proc_.child.wait().unwrap();
    drop(client);

    let mut proc_ = spawn_serve(&["--checkpoint-dir", &dir_s, "--resume-sessions"]);
    let (mut client, resumed) = connect(&proc_, "crashy");
    // Zero acked-but-lost: everything the client saw acked must be in
    // the manifest the restart loaded (the server may have recorded a
    // few more whose acks were still in flight).
    assert!(
        resumed >= acked.len() as u64,
        "manifest resumed {resumed} pairs but client held {} acks",
        acked.len()
    );

    for id in 0..PAIRS {
        client.send(&pair(id)).unwrap();
    }
    let mut replayed: HashMap<usize, (i32, String, bool)> = HashMap::new();
    while replayed.len() < PAIRS {
        match client.recv().expect("recv replayed result") {
            Some(Response::Result { id, score, cigar, resumed }) => {
                replayed.insert(id, (score, cigar, resumed));
            }
            other => panic!("expected RESULT, got {other:?}"),
        }
    }
    for (id, (score, cigar)) in &acked {
        let (rs, rc, was_resumed) = &replayed[id];
        assert_eq!((rs, rc.as_str()), (&score.clone(), cigar.as_str()), "pair {id} differs");
        assert!(was_resumed, "acked pair {id} should replay from the manifest, not recompute");
    }

    client.send(&Request::Bye).unwrap();
    match client.recv().expect("recv done") {
        Some(Response::Done { resumed, .. }) => assert!(resumed >= acked.len() as u64),
        other => panic!("expected DONE, got {other:?}"),
    }
    proc_.child.kill().ok();
    proc_.child.wait().ok();
}

#[test]
fn sigterm_drains_gracefully_and_reports_per_tenant_counts() {
    let mut proc_ = spawn_serve(&[]);
    let (mut client, _) = connect(&proc_, "-");

    client.send(&pair(0)).unwrap();
    match client.recv().expect("recv result") {
        Some(Response::Result { id: 0, .. }) => {}
        other => panic!("expected RESULT 0, got {other:?}"),
    }

    // SAFETY: kill(2) with the child's real pid and a standard signal;
    // no memory is touched.
    let rc = unsafe { kill(proc_.child.id() as i32, SIGTERM) };
    assert_eq!(rc, 0, "kill(SIGTERM) failed");

    // The drain flushes in-flight work and hands every connected
    // session a DONE summary before closing.
    loop {
        match client.recv().expect("recv during drain") {
            Some(Response::Done { completed, .. }) => {
                assert!(completed >= 1);
                break;
            }
            Some(_) => {}
            None => panic!("connection closed without a DONE"),
        }
    }

    let status = proc_.child.wait().expect("wait serve");
    assert!(status.success(), "drain exit should be clean, got {status:?}");
    let mut stderr = String::new();
    use std::io::Read as _;
    proc_.child.stderr.take().unwrap().read_to_string(&mut stderr).unwrap();
    assert!(stderr.contains("# drain: totals"), "missing drain totals in stderr: {stderr}");
    assert!(stderr.contains("tenant=itest"), "missing per-tenant drain line: {stderr}");
}

/// A second SIGTERM while the drain is still grinding through a slow
/// backlog forces an immediate exit with the documented distinct code
/// (6), instead of blocking until the backlog finishes. Acked pairs are
/// already fsynced, so operators lose nothing by pulling this cord.
#[test]
fn second_sigterm_mid_drain_forces_exit_with_distinct_code() {
    let mut proc_ = spawn_serve(&["--jobs", "1"]);
    let (mut client, _) = connect(&proc_, "-");

    // A backlog big enough that the single worker cannot drain it
    // before the second signal lands: long sequences make each pair an
    // O(m*n) grind.
    let query = "ACGTACGTACGTACGT".repeat(750);
    let mut reference = query.clone();
    reference.insert(3, 'T');
    for id in 0..8 {
        client
            .send(&Request::Pair { id, query: query.clone(), reference: reference.clone() })
            .unwrap();
    }
    // Let the reader pull the pairs off the socket before signalling.
    std::thread::sleep(Duration::from_millis(200));

    // SAFETY: kill(2) with the child's real pid and a standard signal;
    // no memory is touched.
    let rc = unsafe { kill(proc_.child.id() as i32, SIGTERM) };
    assert_eq!(rc, 0, "first kill(SIGTERM) failed");
    std::thread::sleep(Duration::from_millis(300));
    // SAFETY: as above.
    let rc = unsafe { kill(proc_.child.id() as i32, SIGTERM) };
    assert_eq!(rc, 0, "second kill(SIGTERM) failed");

    let status = proc_.child.wait().expect("wait serve");
    assert_eq!(
        status.code(),
        Some(6),
        "second SIGTERM mid-drain must exit with the documented forced code, got {status:?}"
    );
    let mut stderr = String::new();
    use std::io::Read as _;
    proc_.child.stderr.take().unwrap().read_to_string(&mut stderr).unwrap();
    assert!(
        stderr.contains("forcing immediate exit"),
        "missing forced-exit notice in stderr: {stderr}"
    );
    drop(client);
}
