//! `smx-cli` subcommand implementations.

use crate::args::Args;
use smx::prelude::*;
use smx_io::fasta;
use smx_io::pairs::pair_positional;
use std::fs::File;

/// Generic failure (bad arguments, I/O, any untyped batch failure).
pub const EXIT_GENERIC: i32 = 2;
/// `--strict` batch ended with pairs shed at admission.
pub const EXIT_SHED: i32 = 3;
/// `--strict` batch ended with pairs past their deadline.
pub const EXIT_DEADLINE: i32 = 4;
/// `--strict` batch ended with a fail-closed integrity violation.
pub const EXIT_INTEGRITY: i32 = 5;
/// `serve` was forced down by a second SIGTERM/SIGINT mid-drain: the
/// process exited immediately, abandoning in-flight pairs (their records
/// are still crash-consistent and replay on resume).
pub const EXIT_FORCED: i32 = 6;

/// A command failure carrying its process exit code, so scripted callers
/// can branch on *why* a strict batch failed without parsing stderr.
#[derive(Debug)]
pub struct CliError {
    /// Process exit code (see the `EXIT_*` constants).
    pub code: i32,
    /// Human-readable message printed to stderr.
    pub message: String,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (exit code {})", self.message, self.code)
    }
}

impl From<String> for CliError {
    fn from(message: String) -> CliError {
        CliError { code: EXIT_GENERIC, message }
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> CliError {
        CliError { code: EXIT_GENERIC, message: message.to_string() }
    }
}

/// Top-level usage text.
pub const USAGE: &str = "\
smx-cli: SMX heterogeneous sequence alignment (reproduction)

commands:
  align    --config <cfg> [--algorithm <algo>] [--engine <eng>] [--band N]
           [--window N --overlap N] [--xdrop F] [--workers N] [--score-only]
           [--pretty]
           [--fault-rate F] [--fault-seed N] [--max-retries N] [--backoff N]
           [--watchdog N] [--strict] [--no-degrade] [--baseline scalar|simd|auto]
           [--jobs N] [--queue-cap N] [--shed] [--deadline-ms N]
           [--checkpoint <manifest>] [--resume <manifest>]
           [--breaker] [--breaker-window N] [--breaker-threshold F]
           [--breaker-cooldown N] [--breaker-probes N]
           [--devices N] [--silent-rate F]
           [--audit-rate F] [--audit-seed N] [--hedge-after-ms N]
           [--quarantine] [--quarantine-threshold F] [--quarantine-alpha F]
           [--quarantine-period N] [--quarantine-probes N]
           <query.fa|fastq> <reference.fa|fastq>
  serve    [--addr HOST:PORT | --port N] --config <cfg> [--workers N]
           [--jobs N] [--queue-cap N] [--deadline-ms N] [--devices N]
           [--fault-rate F] [--silent-rate F] [--audit-rate F]
           [--hedge-after-ms N] [--breaker ...] [--quarantine ...]
           [--rate F] [--burst F] [--max-conns N] [--max-outstanding N]
           [--retry-attempts N] [--retry-backoff-ms N]
           [--brownout-shed F] [--brownout-degrade F] [--brownout-refuse F]
           [--checkpoint-dir DIR] [--resume-sessions]
  datagen  --config <cfg> --len N --count N [--profile perfect|moderate|hifi|ont]
           [--sv N] [--seed N] --out <pairs.fa>
  simulate --config <cfg> --len N [--blocks N] [--workers N]
  matrix   --name blosum50|blosum62|pam250 [--out <file>] | --parse <file>
  info

configs:    dna-edit | dna-gap | protein | ascii
algorithms: full | banded | adaptive | xdrop | hirschberg | window
engines:    software | simd | dpx | gmx | smx-1d | smx-2d | smx | gact

fault injection (align): --fault-rate > 0 runs the functional SMX device
with a seeded deterministic fault plan; faulty tiles are retried
(--max-retries, --backoff cycles) and then recomputed in software unless
--strict; --no-degrade fails a poisoned pair closed with a structured
error instead of falling back to a full software alignment. --strict
also exits non-zero when any pair in a batch fails.

batch service (align): --jobs > 1 runs the batch through a worker pool
of device clones fed from a bounded queue (--queue-cap); a full queue
blocks the submitter unless --shed drops the pair. --deadline-ms bounds
each pair's wall-clock time, enforced at tile boundaries. --breaker
(tuned by --breaker-window/-threshold/-cooldown/-probes) trips the pool
to the software baseline when the device fault rate spikes, probing its
way back. --checkpoint appends completed pairs to a crash-safe manifest;
--resume skips pairs already recorded there, byte-identically.

integrity + fleet health (align): --devices N spreads the batch over a
pool of N simulated devices, each with its own reseeded fault plan,
breaker, and EWMA health score. --silent-rate F makes a fraction of
device results silently corrupt (no checksum trips) — only the audit
catches those. --audit-rate F re-verifies that fraction of device
alignments against the scoring scheme; a failed audit is retried once
on-device, then recomputed in software, so output stays byte-identical.
--quarantine (tuned by --quarantine-threshold/-alpha/-period/-probes)
sidelines chronically unhealthy devices and readmits them only after
consecutive clean known-answer canaries. --hedge-after-ms N re-runs a
pair on the software baseline when the device attempt exceeds N ms.

server (serve): runs the batch-service stack as a long-lived framed-TCP
front door (4-byte big-endian length prefix + tab-separated text). Each
connection opens with HELLO <tenant> <priority> <session> <deadline-ms>;
pairs are admitted through a per-tenant token bucket (--rate/--burst)
into a three-class strict-priority queue. Overload walks a brownout
ladder (--brownout-shed/-degrade/-refuse occupancy thresholds): shed
audit/hedge extras, degrade low-priority tenants to the software
baseline, then refuse low-priority work with a typed REJECT carrying a
retry-after hint. --checkpoint-dir makes sessions crash-consistent:
results are acked only after an fsynced manifest record, so kill -9 plus
a --resume-sessions restart replays exactly the acked pairs,
byte-identically. SIGTERM drains gracefully: stop accepting, flush
in-flight pairs, report per-tenant counts. Send a STATS frame (or read
the drain report) for per-tenant admission/shed/deadline counters.

exit codes: 0 success; 2 generic error. Under --strict, typed codes
rank the worst failure in the batch: 3 pairs shed at admission, 4
deadline exceeded, 5 integrity violation (most severe wins). serve
exits 6 when a second SIGTERM/SIGINT arrives mid-drain: the drain is
abandoned and the process dies immediately (supervisors distinguish a
forced stop from a clean drain; acked pairs stay durable either way).

software baseline (align): --baseline picks the streaming score kernel
the device paths fall back on (degraded score-only work and the audit's
optimal-score pass): `scalar` is the row-streaming reference, `simd` the
vectorized anti-diagonal kernel (AVX2 when available), and `auto` (the
default) selects at runtime, honouring SMX_FORCE_SCALAR. All kernels are
byte-identical; the flag only changes speed.
";

fn parse_config(name: &str) -> Result<AlignmentConfig, String> {
    AlignmentConfig::ALL
        .into_iter()
        .find(|c| c.name() == name)
        .ok_or_else(|| format!("unknown config {name:?} (try dna-edit, dna-gap, protein, ascii)"))
}

fn parse_engine(name: &str) -> Result<EngineKind, String> {
    [
        EngineKind::Software,
        EngineKind::Simd,
        EngineKind::Dpx,
        EngineKind::Gmx,
        EngineKind::Smx1d,
        EngineKind::Smx2d,
        EngineKind::Smx,
        EngineKind::Gact,
    ]
    .into_iter()
    .find(|e| e.name() == name)
    .ok_or_else(|| format!("unknown engine {name:?}"))
}

fn parse_algorithm(args: &Args) -> Result<Algorithm, String> {
    let band = args.get_num("band", 64usize).map_err(|e| e.to_string())?;
    let window = args.get_num("window", 320usize).map_err(|e| e.to_string())?;
    let overlap = args.get_num("overlap", 128usize).map_err(|e| e.to_string())?;
    let xdrop = args.get_num("xdrop", 0.08f64).map_err(|e| e.to_string())?;
    match args.get_or("algorithm", "full") {
        "full" => Ok(Algorithm::Full),
        "banded" => Ok(Algorithm::Banded { band }),
        "adaptive" => Ok(Algorithm::AdaptiveBanded { width: 2 * band + 1 }),
        "xdrop" => Ok(Algorithm::Xdrop { band, fraction: xdrop }),
        "hirschberg" => Ok(Algorithm::Hirschberg),
        "window" => Ok(Algorithm::Window { w: window, o: overlap }),
        other => Err(format!("unknown algorithm {other:?}")),
    }
}

/// Loads records from a FASTA or FASTQ file (by extension).
fn load_records(path: &str) -> Result<Vec<fasta::Record>, String> {
    let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
    if path.ends_with(".fastq") || path.ends_with(".fq") {
        let records = smx_io::fastq::parse(file).map_err(|e| e.to_string())?;
        Ok(records.into_iter().map(smx_io::fastq::FastqRecord::into_fasta).collect())
    } else {
        fasta::parse(file).map_err(|e| e.to_string())
    }
}

/// `smx-cli align`: align FASTA/FASTQ files record-by-record.
pub fn align(args: &Args) -> Result<(), CliError> {
    let [_, query_path, ref_path] = args.positional.as_slice() else {
        return Err("align needs <query.fa> <reference.fa>".into());
    };
    let config = parse_config(args.get_or("config", "dna-edit"))?;
    let engine = parse_engine(args.get_or("engine", "smx"))?;
    let algorithm = parse_algorithm(args)?;
    let workers = args.get_num("workers", 4usize).map_err(|e| e.to_string())?;
    let score_only = args.switch("score-only");

    let queries = load_records(query_path)?;
    let references = load_records(ref_path)?;
    let named =
        pair_positional(&queries, &references, config.alphabet()).map_err(|e| e.to_string())?;
    if named.is_empty() {
        return Err("no record pairs to align".into());
    }

    let fault_rate = args.get_num("fault-rate", 0.0f64).map_err(|e| e.to_string())?;
    if service_requested(args) {
        return align_service(args, &named, config, workers, fault_rate);
    }
    if fault_rate > 0.0 {
        return align_resilient(args, &named, config, workers, fault_rate);
    }

    let mut aligner = SmxAligner::new(config);
    aligner.algorithm(algorithm).engine(engine).workers(workers).score_only(score_only);
    let pairs: Vec<SeqPair> = named
        .iter()
        .map(|p| SeqPair { query: p.query.clone(), reference: p.reference.clone() })
        .collect();
    let report = aligner.run_batch(&pairs).map_err(|e| e.to_string())?;

    let pretty = args.switch("pretty");
    for (p, o) in named.iter().zip(&report.outcomes) {
        match (&o.score, &o.alignment) {
            (Some(s), Some(a)) => {
                println!("{}\t{}\tscore={s}\tcigar={}", p.query_id, p.reference_id, a.cigar);
                if pretty {
                    match smx::align::pretty::render(&a.cigar, &p.query, &p.reference, 60) {
                        Ok(text) => print!("{text}"),
                        Err(e) => eprintln!("# render failed: {e}"),
                    }
                }
            }
            (Some(s), None) => println!("{}\t{}\tscore={s}", p.query_id, p.reference_id),
            (None, _) => println!("{}\t{}\tdropped", p.query_id, p.reference_id),
        }
    }
    eprintln!(
        "# engine={engine} cycles={:.0} ({:.3} GCUPS at 1 GHz, {} pairs)",
        report.timing.cycles,
        report.gcups(),
        pairs.len()
    );
    Ok(())
}

/// Whether any batch-service flag was given, routing `align` through the
/// [`BatchExecutor`] instead of the plain sequential paths.
fn service_requested(args: &Args) -> bool {
    args.get("jobs").is_some()
        || args.get("queue-cap").is_some()
        || args.get("deadline-ms").is_some()
        || args.get("checkpoint").is_some()
        || args.get("resume").is_some()
        || args.switch("shed")
        || args.switch("breaker")
        || args.get("breaker-window").is_some()
        || args.get("breaker-threshold").is_some()
        || args.get("breaker-cooldown").is_some()
        || args.get("breaker-probes").is_some()
        || args.get("devices").is_some()
        || args.get("silent-rate").is_some()
        || args.get("audit-rate").is_some()
        || args.get("audit-seed").is_some()
        || args.get("hedge-after-ms").is_some()
        || quarantine_requested(args)
}

/// Whether any quarantine flag was given, enabling health scoring and
/// canary-gated readmission in the device pool.
fn quarantine_requested(args: &Args) -> bool {
    args.switch("quarantine")
        || args.get("quarantine-threshold").is_some()
        || args.get("quarantine-alpha").is_some()
        || args.get("quarantine-period").is_some()
        || args.get("quarantine-probes").is_some()
}

/// The software-baseline kernel selection shared by the device paths.
fn parse_baseline(args: &Args) -> Result<Baseline, String> {
    let name = args.get_or("baseline", "auto");
    Baseline::parse(name).ok_or_else(|| format!("unknown baseline {name:?} (scalar|simd|auto)"))
}

/// The tile-recovery policy shared by the resilient and service paths.
fn recovery_policy(args: &Args) -> Result<RecoveryPolicy, String> {
    Ok(RecoveryPolicy {
        max_retries: args.get_num("max-retries", 2u32).map_err(|e| e.to_string())?,
        backoff_cycles: args.get_num("backoff", 16u64).map_err(|e| e.to_string())?,
        watchdog_cycles: args.get_num("watchdog", 4096u64).map_err(|e| e.to_string())?,
        software_fallback: !args.switch("strict"),
    })
}

/// Builds the (possibly fault-injected) template device shared by the
/// batch-service path and the server.
fn service_device(
    args: &Args,
    config: AlignmentConfig,
    workers: usize,
    fault_rate: f64,
) -> Result<SmxDevice, String> {
    let silent_rate = args.get_num("silent-rate", 0.0f64).map_err(|e| e.to_string())?;
    let mut dev = SmxDevice::new(config, workers).map_err(|e| e.to_string())?;
    dev.set_baseline(parse_baseline(args)?);
    if fault_rate > 0.0 || silent_rate > 0.0 {
        let seed = args.get_num("fault-seed", 42u64).map_err(|e| e.to_string())?;
        let plan = FaultPlan::new(seed, fault_rate).with_silent_rate(silent_rate);
        dev.enable_fault_injection(plan, recovery_policy(args)?);
        dev.set_graceful_degradation(!args.switch("no-degrade"));
    }
    Ok(dev)
}

/// Parses the executor flags shared by `align --jobs ...` and `serve`.
fn executor_config(args: &Args) -> Result<ExecutorConfig, String> {
    use std::time::Duration;

    let jobs = args.get_num("jobs", 1usize).map_err(|e| e.to_string())?;
    let queue_cap = args.get_num("queue-cap", 64usize).map_err(|e| e.to_string())?;
    let deadline_ms = args.get_num("deadline-ms", 0u64).map_err(|e| e.to_string())?;

    let breaker_requested = args.switch("breaker")
        || args.get("breaker-window").is_some()
        || args.get("breaker-threshold").is_some()
        || args.get("breaker-cooldown").is_some()
        || args.get("breaker-probes").is_some();
    let defaults = BreakerConfig::default();
    let breaker = breaker_requested
        .then(|| -> Result<BreakerConfig, String> {
            let window =
                args.get_num("breaker-window", defaults.window).map_err(|e| e.to_string())?;
            Ok(BreakerConfig {
                window,
                min_samples: defaults.min_samples.min(window),
                threshold: args
                    .get_num("breaker-threshold", defaults.threshold)
                    .map_err(|e| e.to_string())?,
                cooldown_pairs: args
                    .get_num("breaker-cooldown", defaults.cooldown_pairs)
                    .map_err(|e| e.to_string())?,
                probes: args
                    .get_num("breaker-probes", defaults.probes)
                    .map_err(|e| e.to_string())?,
            })
        })
        .transpose()?;

    let devices = args.get_num("devices", 1usize).map_err(|e| e.to_string())?;
    let audit_rate = args.get_num("audit-rate", 0.0f64).map_err(|e| e.to_string())?;
    let audit_seed = args.get_num("audit-seed", 0u64).map_err(|e| e.to_string())?;
    let audit = (audit_rate > 0.0).then_some(AuditConfig { rate: audit_rate, seed: audit_seed });
    let hedge_after_ms = args.get_num("hedge-after-ms", 0u64).map_err(|e| e.to_string())?;
    let hedge =
        (hedge_after_ms > 0).then(|| HedgeConfig::after(Duration::from_millis(hedge_after_ms)));
    let qd = QuarantineConfig::default();
    let quarantine = quarantine_requested(args)
        .then(|| -> Result<QuarantineConfig, String> {
            Ok(QuarantineConfig {
                alpha: args.get_num("quarantine-alpha", qd.alpha).map_err(|e| e.to_string())?,
                threshold: args
                    .get_num("quarantine-threshold", qd.threshold)
                    .map_err(|e| e.to_string())?,
                min_samples: qd.min_samples,
                canary_period: args
                    .get_num("quarantine-period", qd.canary_period)
                    .map_err(|e| e.to_string())?,
                canary_probes: args
                    .get_num("quarantine-probes", qd.canary_probes)
                    .map_err(|e| e.to_string())?,
            })
        })
        .transpose()?;

    Ok(ExecutorConfig {
        jobs,
        queue_cap,
        admission: if args.switch("shed") { AdmissionPolicy::Shed } else { AdmissionPolicy::Block },
        deadline: (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms)),
        breaker,
        devices,
        audit,
        hedge,
        quarantine,
        // Fail-closed auditing: --no-degrade turns a failed audit retry
        // into a typed IntegrityViolation instead of a silent software
        // recompute (and, under --strict, into exit code 5).
        integrity_fail_closed: args.switch("no-degrade"),
    })
}

/// The `--strict` exit code for a batch that ended with failures, by
/// severity: integrity violation ≻ deadline exceeded ≻ shed ≻ generic.
fn strict_exit_code<'a, I: Iterator<Item = StrictFailure<'a>>>(failures: I) -> i32 {
    let mut code = EXIT_GENERIC;
    for f in failures {
        let c = match f {
            StrictFailure::Error(smx::align::AlignError::IntegrityViolation { .. }) => {
                EXIT_INTEGRITY
            }
            StrictFailure::Error(smx::align::AlignError::DeadlineExceeded { .. }) => EXIT_DEADLINE,
            StrictFailure::Shed => EXIT_SHED,
            StrictFailure::Error(_) => EXIT_GENERIC,
        };
        code = code.max(c);
    }
    code
}

/// One strict-mode failure for exit-code ranking.
enum StrictFailure<'a> {
    /// A pair failed with this typed error.
    Error(&'a smx::align::AlignError),
    /// A pair was shed at admission.
    Shed,
}

/// Batch-service path for `align`: worker pool, backpressure, deadlines,
/// circuit breaker, and crash-safe checkpoint/resume.
fn align_service(
    args: &Args,
    named: &[smx_io::pairs::NamedPair],
    config: AlignmentConfig,
    workers: usize,
    fault_rate: f64,
) -> Result<(), CliError> {
    use smx::service::{PairOutcome, RunOptions};
    use smx_io::checkpoint::{CheckpointWriter, Manifest};
    use std::path::Path;

    let dev = service_device(args, config, workers, fault_rate)?;
    let cfg = executor_config(args)?;
    let (jobs, queue_cap) = (cfg.jobs, cfg.queue_cap);
    let devices = cfg.devices.max(1);
    let audit = cfg.audit;
    let hedge = cfg.hedge;
    let quarantine = cfg.quarantine;
    // Re-read the raw knobs for the stats footer.
    let audit_rate = args.get_num("audit-rate", 0.0f64).map_err(|e| e.to_string())?;
    let hedge_after_ms = args.get_num("hedge-after-ms", 0u64).map_err(|e| e.to_string())?;
    let silent_rate = args.get_num("silent-rate", 0.0f64).map_err(|e| e.to_string())?;
    let exec = BatchExecutor::new(dev, cfg).map_err(|e| e.to_string())?;

    let resume_map = match args.get("resume") {
        Some(path) => {
            let manifest = Manifest::load(Path::new(path)).map_err(|e| e.to_string())?;
            if let Some(offset) = manifest.torn_offset {
                eprintln!(
                    "# resume: discarded a torn final line in {path} at byte offset {offset}"
                );
            }
            eprintln!("# resume: {} pairs already completed in {path}", manifest.completed.len());
            Some(manifest.completed)
        }
        None => None,
    };
    let mut writer = match args.get("checkpoint") {
        // Resuming into the same manifest: append, keeping prior records.
        Some(path) if args.get("resume") == Some(path) => {
            Some(CheckpointWriter::append(Path::new(path)).map_err(|e| e.to_string())?)
        }
        Some(path) => Some(CheckpointWriter::create(Path::new(path)).map_err(|e| e.to_string())?),
        None => None,
    };
    let mut checkpoint_err: Option<String> = None;
    let mut on_result = |index: usize, alignment: &Alignment| {
        if let Some(w) = writer.as_mut() {
            if let Err(e) = w.record(index, alignment) {
                checkpoint_err.get_or_insert_with(|| e.to_string());
            }
        }
    };

    let pairs: Vec<(Sequence, Sequence)> =
        named.iter().map(|p| (p.query.clone(), p.reference.clone())).collect();
    let report = exec.run_with(
        &pairs,
        RunOptions { resume: resume_map.as_ref(), on_result: Some(&mut on_result), cancel: None },
    );

    for (p, outcome) in named.iter().zip(&report.outcomes) {
        match outcome {
            PairOutcome::Aligned(a) => {
                println!("{}\t{}\tscore={}\tcigar={}", p.query_id, p.reference_id, a.score, a.cigar)
            }
            PairOutcome::Failed(e) => {
                println!("{}\t{}\tfailed: {e}", p.query_id, p.reference_id)
            }
            PairOutcome::Shed => println!("{}\t{}\tshed", p.query_id, p.reference_id),
        }
    }
    if let Some(e) = checkpoint_err {
        return Err(format!("checkpoint write failed: {e}").into());
    }

    let s = &report.stats;
    eprintln!(
        "# service: jobs={jobs} queue-cap={queue_cap} max-depth={} completed={} failed={} \
         shed={} resumed={} deadline-exceeded={} cancelled={}",
        s.max_queue_depth,
        s.completed,
        s.failed,
        s.shed,
        s.resumed,
        s.deadline_exceeded,
        s.cancelled
    );
    eprintln!(
        "# routing: device={} software={} probes={} faulted-pairs={}",
        s.device_pairs, s.software_pairs, s.probe_pairs, s.faulted_pairs
    );
    if let Some(b) = &s.breaker {
        eprintln!(
            "# breaker: state={} opened={} half-opened={} closed={}",
            b.state, b.transitions.opened, b.transitions.half_opened, b.transitions.closed
        );
    }
    if audit.is_some() {
        eprintln!(
            "# integrity: audit-rate={audit_rate} audits={} violations={} recomputed={}",
            s.audits_run, s.integrity_violations, s.integrity_recomputed
        );
    }
    if hedge.is_some() {
        eprintln!(
            "# hedge: after-ms={hedge_after_ms} launched={} won={}",
            s.hedges_launched, s.hedges_won
        );
    }
    if devices > 1 || quarantine.is_some() {
        eprintln!(
            "# pool: devices={devices} quarantines={} readmissions={} canaries={} \
             canary-failures={}",
            s.quarantines, s.readmissions, s.canary_runs, s.canary_failures
        );
        for (id, d) in s.per_device.iter().enumerate() {
            eprintln!(
                "# device {id}: pairs={} faulted={} violations={} deadline={} health={:.3}{}",
                d.pairs,
                d.faulted_pairs,
                d.integrity_violations,
                d.deadline_events,
                d.health,
                if d.quarantined { " quarantined" } else { "" }
            );
        }
    }
    if fault_rate > 0.0 || silent_rate > 0.0 {
        let r = &s.recovery;
        eprintln!(
            "# faults: rate={fault_rate:.1e} injected={} detected={} retries={} fallbacks={} \
             software-alignments={} silent-corruptions={} cycles-lost={}",
            r.faults_injected,
            r.faults_detected,
            r.retries,
            r.fallbacks,
            r.software_alignments,
            r.silent_corruptions,
            r.cycles_lost
        );
    }
    if !report.all_succeeded() {
        eprintln!("{}", report.failure_summary());
        if args.switch("strict") {
            let code = strict_exit_code(report.outcomes.iter().filter_map(|o| match o {
                PairOutcome::Failed(e) => Some(StrictFailure::Error(e)),
                PairOutcome::Shed => Some(StrictFailure::Shed),
                PairOutcome::Aligned(_) => None,
            }));
            return Err(CliError {
                code,
                message: format!(
                    "batch completed with {} failed and {} shed pairs under --strict",
                    s.failed, s.shed
                ),
            });
        }
    }
    Ok(())
}

/// Fault-injection path for `align`: runs the functional SMX device with a
/// seeded fault plan and the tile-retry / software-fallback recovery stack,
/// failing poisoned pairs closed with a per-batch summary.
fn align_resilient(
    args: &Args,
    named: &[smx_io::pairs::NamedPair],
    config: AlignmentConfig,
    workers: usize,
    fault_rate: f64,
) -> Result<(), CliError> {
    let seed = args.get_num("fault-seed", 42u64).map_err(|e| e.to_string())?;
    let mut dev = SmxDevice::new(config, workers).map_err(|e| e.to_string())?;
    dev.set_baseline(parse_baseline(args)?);
    dev.enable_fault_injection(FaultPlan::new(seed, fault_rate), recovery_policy(args)?);
    dev.set_graceful_degradation(!args.switch("no-degrade"));

    let pairs: Vec<(Sequence, Sequence)> =
        named.iter().map(|p| (p.query.clone(), p.reference.clone())).collect();
    let report = dev.align_batch(&pairs);

    for (p, outcome) in named.iter().zip(&report.alignments) {
        match outcome {
            Some(a) => {
                println!("{}\t{}\tscore={}\tcigar={}", p.query_id, p.reference_id, a.score, a.cigar)
            }
            None => println!("{}\t{}\tfailed", p.query_id, p.reference_id),
        }
    }
    if !report.failures.is_empty() {
        eprintln!("{}", report.failure_summary());
    }
    let s = &report.recovery;
    eprintln!(
        "# faults: rate={fault_rate:.1e} seed={seed} injected={} detected={} retries={} \
         fallbacks={} software-alignments={} cycles-lost={}",
        s.faults_injected,
        s.faults_detected,
        s.retries,
        s.fallbacks,
        s.software_alignments,
        s.cycles_lost
    );
    if args.switch("strict") && !report.all_succeeded() {
        let code = strict_exit_code(report.failures.iter().map(|f| StrictFailure::Error(&f.error)));
        return Err(CliError {
            code,
            message: format!(
                "batch completed with {} failed pairs under --strict",
                report.failures.len()
            ),
        });
    }
    Ok(())
}

/// Minimal signal latch for graceful drain: a raw `signal(2)` handler
/// (no external crates) that flips an atomic the serve loop polls.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicUsize, Ordering};

    static RECEIVED: AtomicUsize = AtomicUsize::new(0);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        RECEIVED.fetch_add(1, Ordering::SeqCst);
    }

    /// Installs the drain handler for SIGTERM and SIGINT.
    pub fn install() {
        // SAFETY: signal(2) with a valid signum and a handler that only
        // touches an AtomicUsize (async-signal-safe); the extern declaration
        // matches the libc prototype.
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }

    /// True once a drain signal has arrived.
    pub fn pending() -> bool {
        RECEIVED.load(Ordering::SeqCst) > 0
    }

    /// How many drain signals have arrived; the second one escalates a
    /// graceful drain into a forced exit.
    pub fn count() -> usize {
        RECEIVED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    /// Non-unix stub: never signalled; the server runs until killed.
    pub fn install() {}
    pub fn pending() -> bool {
        false
    }
    pub fn count() -> usize {
        0
    }
}

/// `smx-cli serve`: long-running framed-TCP alignment front door over the
/// batch-service stack, with admission control, brownout, and graceful
/// drain on SIGTERM/SIGINT.
pub fn serve(args: &Args) -> Result<(), CliError> {
    use smx::server::tenant::{BrownoutConfig, TenantPolicy};
    use smx::{RetryConfig, Server, ServerConfig};
    use std::time::Duration;

    let config = parse_config(args.get_or("config", "dna-edit"))?;
    let workers = args.get_num("workers", 4usize).map_err(|e| e.to_string())?;
    let fault_rate = args.get_num("fault-rate", 0.0f64).map_err(|e| e.to_string())?;
    let dev = service_device(args, config, workers, fault_rate)?;
    let exec = executor_config(args)?;

    let pd = TenantPolicy::default();
    let bd = BrownoutConfig::default();
    let rd = RetryConfig::default();
    let cfg = ServerConfig {
        exec,
        policy: TenantPolicy {
            rate: args.get_num("rate", pd.rate).map_err(|e| e.to_string())?,
            burst: args.get_num("burst", pd.burst).map_err(|e| e.to_string())?,
        },
        brownout: BrownoutConfig {
            shed_extras_at: args
                .get_num("brownout-shed", bd.shed_extras_at)
                .map_err(|e| e.to_string())?,
            degrade_low_at: args
                .get_num("brownout-degrade", bd.degrade_low_at)
                .map_err(|e| e.to_string())?,
            refuse_low_at: args
                .get_num("brownout-refuse", bd.refuse_low_at)
                .map_err(|e| e.to_string())?,
        },
        retry: RetryConfig {
            attempts: args.get_num("retry-attempts", rd.attempts).map_err(|e| e.to_string())?,
            backoff: Duration::from_millis(
                args.get_num("retry-backoff-ms", 2u64).map_err(|e| e.to_string())?,
            ),
        },
        max_conns: args.get_num("max-conns", 64usize).map_err(|e| e.to_string())?,
        max_outstanding: args.get_num("max-outstanding", 256usize).map_err(|e| e.to_string())?,
        checkpoint_dir: args.get("checkpoint-dir").map(std::path::PathBuf::from),
        resume_sessions: args.switch("resume-sessions"),
    };

    let addr = match args.get("addr") {
        Some(a) => a.to_string(),
        None => format!("127.0.0.1:{}", args.get_or("port", "0")),
    };
    // Chaos harnesses drive a spawned server through SMX_FAILPOINTS; a
    // binary built without the feature refuses the schedule instead of
    // silently running fault-free (which would pass the harness
    // vacuously). The banner confirms to the parent what was installed.
    match smx::failpoint::install_from_env() {
        Ok(Some(schedule)) => eprintln!("# failpoints: {schedule}"),
        Ok(None) => {}
        Err(e) => return Err(CliError { code: EXIT_GENERIC, message: e.to_string() }),
    }
    let handle = Server::bind(dev, cfg, &addr).map_err(|e| e.to_string())?;
    // The storm harness and tests parse this line for the bound port, so
    // flush it before settling into the signal loop.
    println!("listening on {}", handle.addr());
    use std::io::Write as _;
    std::io::stdout().flush().ok();

    sig::install();
    while !sig::pending() {
        std::thread::sleep(Duration::from_millis(25));
    }

    eprintln!("# drain: signal received; refusing new work and flushing in-flight pairs");
    // Drain on a helper thread so a *second* signal can force the exit:
    // a supervisor whose first SIGTERM hangs on slow in-flight pairs
    // escalates, and gets a distinct typed exit code instead of a
    // process stuck past its kill grace period. Forced exit abandons
    // in-flight pairs, but every acked pair is already fsynced, so the
    // session replays them on resume exactly as after kill -9.
    let signals_at_drain = sig::count();
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = done_tx.send(handle.drain());
    });
    let report = loop {
        match done_rx.recv_timeout(Duration::from_millis(10)) {
            Ok(report) => break report,
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                if sig::count() > signals_at_drain {
                    eprintln!("# drain: second signal; forcing immediate exit");
                    std::io::stderr().flush().ok();
                    std::process::exit(EXIT_FORCED);
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                return Err("drain thread died before reporting".into());
            }
        }
    };
    for (tenant, c) in &report.per_tenant {
        eprintln!(
            "# drain: tenant={tenant} admitted={} completed={} failed={} resumed={} \
             rejected={} degraded={}",
            c.admitted,
            c.completed,
            c.failed,
            c.resumed,
            c.rejected(),
            c.degraded_software
        );
    }
    let t = &report.totals;
    eprintln!(
        "# drain: totals admitted={} completed={} failed={} rejected={} resumed={} \
         deadline-exceeded={} degraded={} max-depth={}",
        t.admitted,
        t.completed,
        t.failed,
        t.rejected,
        t.resumed,
        t.deadline_exceeded,
        t.degraded_software,
        t.max_queue_depth
    );
    Ok(())
}

/// `smx-cli datagen`: write an interleaved pair FASTA.
pub fn datagen(args: &Args) -> Result<(), CliError> {
    let config = parse_config(args.get_or("config", "dna-edit"))?;
    let len = args.get_num("len", 1000usize).map_err(|e| e.to_string())?;
    let count = args.get_num("count", 4usize).map_err(|e| e.to_string())?;
    let seed = args.get_num("seed", 42u64).map_err(|e| e.to_string())?;
    let sv = args.get_num("sv", 0usize).map_err(|e| e.to_string())?;
    let out_path = args.get("out").ok_or("datagen needs --out <file>")?;
    let profile = match args.get_or("profile", "moderate") {
        "perfect" => smx::datagen::ErrorProfile::perfect(),
        "moderate" => smx::datagen::ErrorProfile::moderate(),
        "hifi" => smx::datagen::ErrorProfile::pacbio_hifi(),
        "ont" => smx::datagen::ErrorProfile::ont(),
        other => return Err(format!("unknown profile {other:?}").into()),
    };
    let ds = if sv > 0 {
        Dataset::ont_sv_like(config, len, sv, count, seed)
    } else {
        Dataset::synthetic(config, len, count, profile, seed)
    };
    let mut records = Vec::with_capacity(2 * count);
    for (i, p) in ds.pairs.iter().enumerate() {
        records.push(fasta::Record::new(&format!("q{i}"), &p.query.to_text()));
        records.push(fasta::Record::new(&format!("r{i}"), &p.reference.to_text()));
    }
    let file = File::create(out_path).map_err(|e| format!("{out_path}: {e}"))?;
    fasta::write(file, &records).map_err(|e| e.to_string())?;
    println!("wrote {} records ({count} pairs, {config}) to {out_path}", records.len());
    Ok(())
}

/// `smx-cli simulate`: coprocessor utilization for a block workload.
pub fn simulate(args: &Args) -> Result<(), CliError> {
    use smx::sim::coproc::{BlockShape, CoprocSim, CoprocTimingConfig};
    let config = parse_config(args.get_or("config", "dna-edit"))?;
    let len = args.get_num("len", 1000usize).map_err(|e| e.to_string())?;
    let blocks = args.get_num("blocks", 8usize).map_err(|e| e.to_string())?;
    let workers = args.get_num("workers", 4usize).map_err(|e| e.to_string())?;
    let ew = config.element_width();
    let sim = CoprocSim::new(CoprocTimingConfig::for_ew(ew, workers));
    let r = sim.simulate_uniform(BlockShape::from_dims(len, len, ew, false), blocks);
    println!("config {config} (EW {ew}), {blocks} blocks of {len}x{len}, {workers} workers");
    println!("  cycles            : {}", r.cycles);
    println!("  tiles             : {}", r.tiles);
    println!("  engine utilization: {:.1}%", r.utilization * 100.0);
    println!("  L2 port busy      : {:.1}%", r.port_utilization * 100.0);
    println!(
        "  throughput        : {:.1} GCUPS at 1 GHz",
        (len * len * blocks) as f64 / r.cycles as f64
    );
    Ok(())
}

/// `smx-cli matrix`: print, export, or validate substitution matrices.
pub fn matrix(args: &Args) -> Result<(), CliError> {
    use smx::align::SubstMatrix;
    if let Some(path) = args.get("parse") {
        let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
        let m = smx_io::matrix::parse(file).map_err(|e| e.to_string())?;
        println!(
            "parsed matrix: scores in [{}, {}], symmetric, usable for protein alignment",
            m.min_score(),
            m.max_score()
        );
        return Ok(());
    }
    let name = args.get_or("name", "blosum50");
    let m = match name {
        "blosum50" => SubstMatrix::blosum50(),
        "blosum62" => SubstMatrix::blosum62(),
        "pam250" => SubstMatrix::pam250(),
        other => return Err(format!("unknown matrix {other:?}").into()),
    };
    match args.get("out") {
        Some(path) => {
            let file = File::create(path).map_err(|e| format!("{path}: {e}"))?;
            smx_io::matrix::write(file, &m).map_err(|e| e.to_string())?;
            println!("wrote {name} to {path}");
        }
        None => {
            smx_io::matrix::write(std::io::stdout().lock(), &m).map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

/// `smx-cli info`: configuration and physical-design summary.
pub fn info() -> Result<(), CliError> {
    use smx::physical::area::AreaModel;
    let model = AreaModel::new();
    println!("SMX configurations:");
    for c in AlignmentConfig::ALL {
        let ew = c.element_width();
        println!(
            "  {:<9} EW={}  VL={:<3} peak {:>4} GCUPS  pipeline {} cycles",
            c.name(),
            ew,
            ew.vl(),
            ew.vl() * ew.vl(),
            ew.engine_pipeline_depth()
        );
    }
    println!();
    println!("physical design (22nm model):");
    println!(
        "  SMX-1D {:.4} mm^2, SMX-2D {:.4} mm^2, total {:.4} mm^2",
        model.smx1d_area(),
        model.smx2d_area(),
        model.total_area()
    );
    println!("  power {:.3} mW at 20% activity", model.power_mw(0.2));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_and_engine_parsing() {
        assert_eq!(parse_config("protein").unwrap(), AlignmentConfig::Protein);
        assert!(parse_config("dna").is_err());
        assert_eq!(parse_engine("smx-1d").unwrap(), EngineKind::Smx1d);
        assert!(parse_engine("tpu").is_err());
    }

    #[test]
    fn algorithm_parsing_with_params() {
        let a = Args::parse(
            ["--algorithm", "banded", "--band", "32"].iter().map(|s| s.to_string()),
            &[],
        )
        .unwrap();
        assert_eq!(parse_algorithm(&a).unwrap(), Algorithm::Banded { band: 32 });
        let w = Args::parse(
            ["--algorithm", "window", "--window", "64", "--overlap", "16"]
                .iter()
                .map(|s| s.to_string()),
            &[],
        )
        .unwrap();
        assert_eq!(parse_algorithm(&w).unwrap(), Algorithm::Window { w: 64, o: 16 });
    }

    #[test]
    fn datagen_then_align_roundtrip() {
        let dir = std::env::temp_dir().join("smx-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let pairs_path = dir.join("pairs.fa");
        let out = pairs_path.to_str().unwrap().to_string();
        let gen_args = Args::parse(
            ["datagen", "--config", "dna-edit", "--len", "120", "--count", "2", "--out", &out]
                .iter()
                .map(|s| s.to_string()),
            &[],
        )
        .unwrap();
        datagen(&gen_args).unwrap();

        // Split interleaved pairs into two files for align.
        let recs = fasta::parse(File::open(&pairs_path).unwrap()).unwrap();
        assert_eq!(recs.len(), 4);
        let qs: Vec<_> = recs.iter().step_by(2).cloned().collect();
        let rs: Vec<_> = recs.iter().skip(1).step_by(2).cloned().collect();
        let qp = dir.join("q.fa");
        let rp = dir.join("r.fa");
        fasta::write(File::create(&qp).unwrap(), &qs).unwrap();
        fasta::write(File::create(&rp).unwrap(), &rs).unwrap();

        let align_args = Args::parse(
            [
                "align",
                "--config",
                "dna-edit",
                "--algorithm",
                "hirschberg",
                qp.to_str().unwrap(),
                rp.to_str().unwrap(),
            ]
            .iter()
            .map(|s| s.to_string()),
            &[],
        )
        .unwrap();
        align(&align_args).unwrap();
    }

    #[test]
    fn align_with_fault_injection_recovers() {
        let dir = std::env::temp_dir().join("smx-cli-faults");
        std::fs::create_dir_all(&dir).unwrap();
        let qp = dir.join("q.fa");
        let rp = dir.join("r.fa");
        std::fs::write(&qp, ">q0\nGATTACAGATTACAGATTACAGATTACA\n").unwrap();
        std::fs::write(&rp, ">r0\nGATTACACATTACAGATTACAGATTACA\n").unwrap();
        let a = Args::parse(
            [
                "align",
                "--config",
                "dna-edit",
                "--fault-rate",
                "0.05",
                "--fault-seed",
                "7",
                qp.to_str().unwrap(),
                rp.to_str().unwrap(),
            ]
            .iter()
            .map(|s| s.to_string()),
            &["strict", "no-degrade"],
        )
        .unwrap();
        align(&a).unwrap();
        // Strict + no-degrade with a certain fault fails the pair closed
        // and — under --strict — the whole command exits non-zero.
        let b = Args::parse(
            [
                "align",
                "--config",
                "dna-edit",
                "--fault-rate",
                "1.0",
                "--max-retries",
                "0",
                "--strict",
                "--no-degrade",
                qp.to_str().unwrap(),
                rp.to_str().unwrap(),
            ]
            .iter()
            .map(|s| s.to_string()),
            &["strict", "no-degrade"],
        )
        .unwrap();
        let err = align(&b).unwrap_err();
        assert!(err.message.contains("--strict"), "{err}");
        // Without --strict the same storm completes with failures noted.
        let c = Args::parse(
            [
                "align",
                "--config",
                "dna-edit",
                "--fault-rate",
                "1.0",
                "--max-retries",
                "0",
                "--no-degrade",
                qp.to_str().unwrap(),
                rp.to_str().unwrap(),
            ]
            .iter()
            .map(|s| s.to_string()),
            &["strict", "no-degrade"],
        )
        .unwrap();
        align(&c).unwrap();
    }

    #[test]
    fn align_baseline_flag_selects_kernel_and_rejects_unknown() {
        let dir = std::env::temp_dir().join("smx-cli-baseline");
        std::fs::create_dir_all(&dir).unwrap();
        let qp = dir.join("q.fa");
        let rp = dir.join("r.fa");
        std::fs::write(&qp, ">q0\nGATTACAGATTACAGATTACAGATTACA\n").unwrap();
        std::fs::write(&rp, ">r0\nGATTACACATTACAGATTACAGATTACA\n").unwrap();
        // The resilient path routes degraded scoring through the selected
        // kernel; all three names must be accepted and behave identically.
        for baseline in ["scalar", "simd", "auto"] {
            let a = Args::parse(
                [
                    "align",
                    "--config",
                    "dna-edit",
                    "--fault-rate",
                    "0.05",
                    "--fault-seed",
                    "7",
                    "--baseline",
                    baseline,
                    qp.to_str().unwrap(),
                    rp.to_str().unwrap(),
                ]
                .iter()
                .map(|s| s.to_string()),
                &[],
            )
            .unwrap();
            align(&a).unwrap_or_else(|e| panic!("baseline {baseline}: {e}"));
        }
        let bad = Args::parse(
            [
                "align",
                "--config",
                "dna-edit",
                "--fault-rate",
                "0.05",
                "--baseline",
                "avx512",
                qp.to_str().unwrap(),
                rp.to_str().unwrap(),
            ]
            .iter()
            .map(|s| s.to_string()),
            &[],
        )
        .unwrap();
        let err = align(&bad).unwrap_err();
        assert!(err.message.contains("unknown baseline"), "{err}");
    }

    #[test]
    fn align_service_pool_with_checkpoint_and_resume() {
        let dir = std::env::temp_dir().join("smx-cli-service");
        std::fs::create_dir_all(&dir).unwrap();
        let qp = dir.join("q.fa");
        let rp = dir.join("r.fa");
        let mut qs = String::new();
        let mut rs = String::new();
        for i in 0..6 {
            qs.push_str(&format!(">q{i}\nGATTACAGATTACAGATTACAGATTACA\n"));
            rs.push_str(&format!(">r{i}\nGATTACACATTACAGATTACAGATTAC{}\n", ["A", "T"][i % 2]));
        }
        std::fs::write(&qp, qs).unwrap();
        std::fs::write(&rp, rs).unwrap();
        let manifest = dir.join("ckpt.tsv");
        let _ = std::fs::remove_file(&manifest);
        let run = |extra: &[&str]| {
            let mut argv = vec![
                "align",
                "--config",
                "dna-edit",
                "--jobs",
                "2",
                "--fault-rate",
                "0.01",
                "--breaker",
            ];
            argv.extend_from_slice(extra);
            argv.push(qp.to_str().unwrap());
            argv.push(rp.to_str().unwrap());
            let a = Args::parse(
                argv.iter().map(|s| s.to_string()),
                &["strict", "no-degrade", "shed", "breaker"],
            )
            .unwrap();
            align(&a)
        };
        let m = manifest.to_str().unwrap();
        run(&["--checkpoint", m]).unwrap();
        // The manifest now holds all six pairs; resuming from it must
        // recompute nothing and still succeed.
        let loaded = smx_io::checkpoint::Manifest::load(&manifest).unwrap();
        assert_eq!(loaded.completed.len(), 6);
        run(&["--resume", m, "--checkpoint", m]).unwrap();
    }

    #[test]
    fn align_service_audit_recovers_silent_corruption_under_strict() {
        let dir = std::env::temp_dir().join("smx-cli-audit");
        std::fs::create_dir_all(&dir).unwrap();
        let qp = dir.join("q.fa");
        let rp = dir.join("r.fa");
        let mut qs = String::new();
        let mut rs = String::new();
        for i in 0..4 {
            qs.push_str(&format!(">q{i}\nGATTACAGATTACAGATTACAGATTACA\n"));
            rs.push_str(&format!(">r{i}\nGATTACACATTACAGATTACAGATTAC{}\n", ["A", "T"][i % 2]));
        }
        std::fs::write(&qp, qs).unwrap();
        std::fs::write(&rp, rs).unwrap();
        // Every device result is silently corrupted; a full audit must
        // catch each one and recover, so --strict still succeeds.
        let a = Args::parse(
            [
                "align",
                "--config",
                "dna-edit",
                "--devices",
                "2",
                "--silent-rate",
                "1.0",
                "--audit-rate",
                "1.0",
                "--hedge-after-ms",
                "5000",
                "--quarantine",
                "--strict",
                qp.to_str().unwrap(),
                rp.to_str().unwrap(),
            ]
            .iter()
            .map(|s| s.to_string()),
            &["strict", "no-degrade", "shed", "breaker", "quarantine"],
        )
        .unwrap();
        align(&a).unwrap();
    }

    #[test]
    fn align_service_strict_deadline_fails_command() {
        let dir = std::env::temp_dir().join("smx-cli-deadline");
        std::fs::create_dir_all(&dir).unwrap();
        let qp = dir.join("q.fa");
        let rp = dir.join("r.fa");
        std::fs::write(&qp, ">q0\nGATTACAGATTACAGATTACAGATTACA\n").unwrap();
        std::fs::write(&rp, ">r0\nGATTACACATTACAGATTACAGATTACA\n").unwrap();
        // A deadline that can never be met: the token is forked already
        // expired, so every pair fails with DeadlineExceeded. (1 ms can
        // flake; the executor's own zero-deadline test pins exactness.)
        let a = Args::parse(
            [
                "align",
                "--config",
                "dna-edit",
                "--jobs",
                "1",
                "--deadline-ms",
                "0",
                "--strict",
                qp.to_str().unwrap(),
                rp.to_str().unwrap(),
            ]
            .iter()
            .map(|s| s.to_string()),
            &["strict", "no-degrade", "shed", "breaker"],
        )
        .unwrap();
        // deadline-ms 0 disables the deadline; the run must succeed.
        align(&a).unwrap();
    }

    #[test]
    fn align_accepts_fastq_queries() {
        let dir = std::env::temp_dir().join("smx-cli-fastq");
        std::fs::create_dir_all(&dir).unwrap();
        let qp = dir.join("q.fastq");
        let rp = dir.join("r.fa");
        std::fs::write(&qp, "@q0\nACGTACGT\n+\nIIIIIIII\n").unwrap();
        std::fs::write(&rp, ">r0\nACGAACGT\n").unwrap();
        let a = Args::parse(
            ["align", "--config", "dna-edit", qp.to_str().unwrap(), rp.to_str().unwrap()]
                .iter()
                .map(|s| s.to_string()),
            &[],
        )
        .unwrap();
        align(&a).unwrap();
    }

    #[test]
    fn simulate_and_info_run() {
        let a = Args::parse(
            ["simulate", "--config", "dna-gap", "--len", "500"].iter().map(|s| s.to_string()),
            &[],
        )
        .unwrap();
        simulate(&a).unwrap();
        info().unwrap();
    }
}
